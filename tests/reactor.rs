//! Reactor determinism and cross-loop equivalence (DESIGN.md §14).
//!
//! Three contracts ride on the event-driven store:
//!
//! 1. **Readiness replay** — under `ReactorMode::Sim`, event delivery
//!    order is a pure function of the reactor seed, witnessed by the
//!    reactor's FNV digest over every delivered `(round, token,
//!    interest)` tuple. Same seed ⇒ same digest and byte-identical
//!    responses.
//! 2. **Loop equivalence** — threaded, epoll and sim serving loops all
//!    reduce a request to the same [`Served`] verdict, so response
//!    streams (calm or chaotic) are byte-identical across loops.
//! 3. **Torn-write robustness** — the reactor's incremental parser must
//!    produce identical responses no matter how request bytes are split
//!    across readiness events.
//! 4. **Client-side replay** — the non-blocking client state machines
//!    ([`drive_lanes`]) hold hundreds of lanes in flight from one poll
//!    loop, survive the chaos trio (reset, mid-frame stall, truncated
//!    body + range resume), and replay the whole multi-connection
//!    schedule bit-for-bit from the seeds in lockstep.
//!
//! [`Served`]: gaugenn::playstore::Served
//! [`drive_lanes`]: gaugenn::playstore::drive_lanes

use gaugenn::core::pipeline::{Pipeline, PipelineConfig};
use gaugenn::index::{AppDoc, AppSnap, CorpusIndex, ModelDoc, ModelQuery};
use gaugenn::modelfmt::Framework;
use gaugenn::playstore::corpus::{generate, CorpusScale, Snapshot};
use gaugenn::playstore::proto::read_response;
use gaugenn::playstore::{
    drive_lanes, CrawlStats, Endpoint, FaultKind, FaultPlan, FaultPlanConfig, LaneOpts, LaneSpec,
    LockstepServer, QueryClient, ReactorMode, RetryPolicy, Route, RouteListJob, ServerOptions,
    StoreServer,
};
use std::io::{BufReader, Write};
use std::sync::Arc;
use std::time::Duration;

/// A small index so `/query/*` routes serve real ranked rows.
fn synthetic_index() -> Arc<CorpusIndex> {
    let mut idx = CorpusIndex::new();
    let model = |checksum: &str, flops: u64| ModelDoc {
        checksum: checksum.into(),
        name: format!("net {checksum}"),
        framework: Framework::TfLite,
        task: None,
        quantised: false,
        size_bytes: flops / 2,
        flops,
        params: flops / 4,
        apps_by_snapshot: [("Apr 2021".to_string(), 1u64)].into_iter().collect(),
    };
    idx.ingest_snapshot(
        "Apr 2021",
        vec![model("aaa", 300), model("bbb", 100), model("ccc", 200)],
        vec![AppDoc {
            package: "com.example".into(),
            category: "maps & navigation".into(),
            by_snapshot: [(
                "Apr 2021".to_string(),
                AppSnap {
                    models: 3,
                    ml: true,
                    cloud: false,
                },
            )]
            .into_iter()
            .collect(),
        }],
    );
    Arc::new(idx)
}

fn start(mode: ReactorMode, reactor_seed: u64, chaos: Option<FaultPlan>) -> StoreServer {
    StoreServer::start_with(
        generate(CorpusScale::Tiny, Snapshot::Y2021, 7),
        ServerOptions {
            chaos,
            index: Some(synthetic_index()),
            reactor: Some(mode),
            reactor_seed,
        },
    )
    .expect("server")
}

/// The scripted request burst: raw GAUGE/1.0 frames for a fixed route
/// mix, one `Vec<u8>` per request so callers control write granularity.
fn scripted_requests() -> Vec<Vec<u8>> {
    [
        Route::Categories,
        Route::QueryStats,
        Route::QueryModels(ModelQuery::default()),
        Route::Categories,
        Route::QueryModels(ModelQuery {
            limit: Some(2),
            ..ModelQuery::default()
        }),
    ]
    .iter()
    .map(|r| format!("GET {} GAUGE/1.0\r\n\r\n", r.wire_path()).into_bytes())
    .collect()
}

/// Run the scripted burst against a sim server, writing request bytes in
/// `chunk`-sized slices, and return (responses, reactor digest).
fn scripted_sim_run(reactor_seed: u64, chunk: usize) -> (Vec<(u16, Vec<u8>)>, u64) {
    let mut server = start(ReactorMode::Sim, reactor_seed, None);
    assert_eq!(server.mode(), ReactorMode::Sim);
    let Endpoint::Sim(net) = server.endpoint() else {
        panic!("sim store must expose a sim endpoint");
    };
    let stream = net.connect(Duration::from_secs(10));
    let mut writer = stream.clone();
    let mut reader = BufReader::new(stream);
    let requests = scripted_requests();
    // Pipeline every request up front — the whole burst is buffered
    // before the first response is read, so the reactor sees a scripted,
    // scheduler-independent byte stream.
    for req in &requests {
        for piece in req.chunks(chunk) {
            writer.write_all(piece).expect("scripted write");
        }
    }
    let responses: Vec<(u16, Vec<u8>)> = requests
        .iter()
        .map(|_| {
            let resp = read_response(&mut reader).expect("scripted response");
            (resp.status, resp.body)
        })
        .collect();
    let digest = server
        .reactor_digest()
        .expect("sim server exposes its event digest");
    server.stop();
    (responses, digest)
}

#[test]
fn same_seed_replays_the_same_event_order_and_bytes() {
    let (resp_a, digest_a) = scripted_sim_run(42, 1 << 20);
    let (resp_b, digest_b) = scripted_sim_run(42, 1 << 20);
    assert_eq!(
        digest_a, digest_b,
        "same seed must deliver readiness events in the same order"
    );
    assert_eq!(resp_a, resp_b, "same seed must produce identical bytes");
    assert_ne!(digest_a, 0, "the digest must witness delivered events");
}

#[test]
fn torn_writes_parse_identically_through_the_real_loop() {
    // One byte per write is the worst case: every request head arrives
    // across many readiness events. The event *order* may differ from
    // the atomic-write run; the response bytes must not.
    let (atomic, _) = scripted_sim_run(42, 1 << 20);
    for chunk in [1usize, 2, 3, 7] {
        let (torn, _) = scripted_sim_run(42, chunk);
        assert_eq!(atomic, torn, "chunk size {chunk} changed response bytes");
    }
}

/// Replay a fixed query workload through one keep-alive client; returns
/// the concatenated (status, body) stream.
fn query_workload(server: &StoreServer) -> Vec<(u16, Vec<u8>)> {
    let mut client = QueryClient::builder_at(server.endpoint())
        .connection_id(5)
        .build()
        .expect("client");
    let routes = [
        Route::QueryModels(ModelQuery::default()),
        Route::Categories,
        Route::QueryModels(ModelQuery {
            frameworks: vec!["tflite".into()],
            limit: Some(2),
            ..ModelQuery::default()
        }),
        Route::QueryStats,
    ];
    routes
        .iter()
        .map(|r| {
            let resp = client.raw(r).expect("query survives");
            (resp.status, resp.body)
        })
        .collect()
}

fn chaos_plan() -> FaultPlan {
    FaultPlan::new(FaultPlanConfig {
        seed: 11,
        fault_permille: 400,
        kinds: vec![FaultKind::Reset, FaultKind::TransientStatus],
        max_faults_per_route: 2,
        ..FaultPlanConfig::default()
    })
}

#[test]
fn all_three_loops_serve_identical_bytes_calm_and_chaotic() {
    let modes = [ReactorMode::Threaded, ReactorMode::Epoll, ReactorMode::Sim];
    let calm: Vec<_> = modes
        .iter()
        .map(|&m| query_workload(&start(m, 1, None)))
        .collect();
    assert_eq!(calm[0], calm[1], "threaded vs epoll diverged (calm)");
    assert_eq!(calm[0], calm[2], "threaded vs sim diverged (calm)");

    let stormy: Vec<_> = modes
        .iter()
        .map(|&m| query_workload(&start(m, 1, Some(chaos_plan()))))
        .collect();
    assert_eq!(stormy[0], stormy[1], "threaded vs epoll diverged (chaos)");
    assert_eq!(stormy[0], stormy[2], "threaded vs sim diverged (chaos)");
    assert_eq!(
        calm[0], stormy[0],
        "chaos must only cost retries, never change response bytes"
    );
}

#[test]
fn sim_pipeline_report_matches_the_other_loops() {
    // The full crawl → extract → analyse pipeline, pinned to each loop:
    // the rendered report must be byte-identical, chaos included.
    let run = |mode: ReactorMode, chaos: bool| {
        let mut builder =
            PipelineConfig::builder(CorpusScale::Tiny, Snapshot::Y2021, 99).reactor(mode);
        if chaos {
            builder = builder.chaos(FaultPlanConfig {
                seed: 5,
                fault_permille: 350,
                kinds: vec![FaultKind::Reset, FaultKind::TransientStatus],
                max_faults_per_route: 2,
                ..FaultPlanConfig::default()
            });
        }
        Pipeline::new(builder.build())
            .run()
            .expect("pipeline")
            .render_text()
    };
    let baseline = run(ReactorMode::Threaded, false);
    assert_eq!(baseline, run(ReactorMode::Epoll, false), "epoll calm");
    assert_eq!(baseline, run(ReactorMode::Sim, false), "sim calm");
    let chaotic = run(ReactorMode::Threaded, true);
    assert_eq!(chaotic, run(ReactorMode::Sim, true), "sim chaos");
    assert_eq!(
        baseline, chaotic,
        "chaos under the retry budget must not change the report"
    );
}

/// One lockstep drive of `lanes` keep-alive [`RouteListJob`] lanes (two
/// listing routes each) against a steppable sim server: no threads, no
/// wall clock. Returns (client digest, server digest, peak in-flight,
/// response bodies in lane-major order).
fn lockstep_burst(
    lanes: u64,
    client_seed: u64,
    server_seed: u64,
) -> (u64, u64, usize, Vec<Vec<u8>>) {
    let mut server = LockstepServer::start(
        generate(CorpusScale::Tiny, Snapshot::Y2021, 7),
        ServerOptions {
            reactor_seed: server_seed,
            ..ServerOptions::default()
        },
    );
    let routes = vec![
        (Route::Categories, false),
        (
            Route::Category {
                name: "finance".into(),
                start: 0,
                count: 50,
            },
            false,
        ),
    ];
    let specs = (1..=lanes)
        .map(|id| LaneSpec {
            connection_id: id,
            retry: RetryPolicy::default(),
            job: RouteListJob::new(routes.clone()),
        })
        .collect();
    let opts = LaneOpts {
        sim_seed: client_seed,
        ..LaneOpts::default()
    };
    let endpoint = server.endpoint();
    let (outcomes, report) =
        drive_lanes(&endpoint, specs, &opts, Some(&mut || server.step())).expect("lockstep drive");
    let bodies = outcomes
        .into_iter()
        .flat_map(|o| o.job.into_results())
        .map(|r| r.expect("calm lockstep lane answers").body)
        .collect();
    (
        report.digest,
        server.reactor_digest(),
        report.peak_in_flight,
        bodies,
    )
}

#[test]
fn one_poll_loop_holds_256_lanes_in_flight_and_replays() {
    // The tentpole scaling claim: a single drive_lanes loop (one thread)
    // sustains 256 simultaneously in-flight connections — and the whole
    // multi-connection schedule replays bit-for-bit from the seeds.
    let first = lockstep_burst(256, 21, 9);
    assert!(
        first.2 >= 256,
        "one loop must hold all 256 lanes in flight, got {}",
        first.2
    );
    assert_eq!(first.3.len(), 512, "every lane answers both routes");
    assert_ne!(first.0, 0, "client digest records delivered events");
    let again = lockstep_burst(256, 21, 9);
    assert_eq!(
        (first.0, first.1, first.2),
        (again.0, again.1, again.2),
        "same seeds must replay the same event schedule"
    );
    assert_eq!(first.3, again.3, "same seeds must produce identical bytes");
    let reseeded = lockstep_burst(256, 22, 9);
    assert_eq!(first.3, reseeded.3, "the seed may only reorder events, never change bytes");
}

/// Four lanes of resumable APK downloads in lockstep, optionally under
/// the chaos trio (reset / truncate / mid-frame stall). Returns (client
/// digest, server digest, bodies in lane-major order, merged counters).
fn lockstep_apk_run(chaos: bool) -> (u64, u64, Vec<Vec<u8>>, CrawlStats) {
    let corpus = generate(CorpusScale::Tiny, Snapshot::Y2021, 7);
    let packages: Vec<String> = corpus.apps.iter().take(12).map(|a| a.package.clone()).collect();
    let plan = chaos.then(|| {
        FaultPlan::new(FaultPlanConfig {
            seed: 0xBADCAB,
            fault_permille: 600,
            kinds: vec![FaultKind::Reset, FaultKind::Truncate, FaultKind::Stall],
            max_faults_per_route: 2,
            stall_ms: 5,
            ..FaultPlanConfig::default()
        })
    });
    let mut server = LockstepServer::start(
        corpus,
        ServerOptions {
            chaos: plan,
            reactor_seed: 17,
            ..ServerOptions::default()
        },
    );
    let lanes = 4usize;
    let specs = (0..lanes)
        .map(|c| LaneSpec {
            connection_id: c as u64 + 1,
            retry: RetryPolicy::default(),
            job: RouteListJob::new(
                packages
                    .iter()
                    .skip(c)
                    .step_by(lanes)
                    .map(|p| (Route::Apk { package: p.clone() }, true))
                    .collect(),
            ),
        })
        .collect();
    let opts = LaneOpts {
        sim_seed: 31,
        ..LaneOpts::default()
    };
    let endpoint = server.endpoint();
    let (outcomes, report) =
        drive_lanes(&endpoint, specs, &opts, Some(&mut || server.step())).expect("lockstep drive");
    let mut stats = CrawlStats::default();
    let mut bodies = Vec::new();
    for o in outcomes {
        stats.merge(&o.stats);
        for r in o.job.into_results() {
            bodies.push(r.expect("bounded chaos always recovers").body);
        }
    }
    (report.digest, server.reactor_digest(), bodies, stats)
}

#[test]
fn chaos_trio_through_the_nonblocking_client_recovers_and_replays() {
    // Satellite contract: reset, truncated-body-with-range-resume and
    // mid-frame stall all pass through the client state machines without
    // changing a single payload byte — and the chaotic schedule itself
    // replays bit-for-bit from the seeds.
    let calm = lockstep_apk_run(false);
    let stormy = lockstep_apk_run(true);
    assert_eq!(
        calm.2, stormy.2,
        "chaos must only cost retries, never change APK bytes"
    );
    assert!(stormy.3.retries > 0, "faults must force retries: {:?}", stormy.3);
    assert!(
        stormy.3.range_resumes > 0,
        "truncated bodies must resume with a ranged re-request: {:?}",
        stormy.3
    );
    assert!(
        stormy.3.reconnects > 0,
        "resets and stalls must force re-dials: {:?}",
        stormy.3
    );
    let replay = lockstep_apk_run(true);
    assert_eq!(
        (stormy.0, stormy.1, &stormy.3),
        (replay.0, replay.1, &replay.3),
        "same seeds must replay digests and counters exactly"
    );
    assert_eq!(stormy.2, replay.2, "replayed bytes must match");
}
