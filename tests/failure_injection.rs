//! Failure injection: every network, container and model-payload failure
//! mode must surface as a typed error (or a tracked drop-out), never a
//! panic or a silent wrong answer.

use gaugenn::apk::apk::ApkBuilder;
use gaugenn::apk::zip::{ZipArchive, ZipWriter};
use gaugenn::core::extract::extract_app;
use gaugenn::playstore::chaos::{FaultKind, FaultPlan, FaultPlanConfig};
use gaugenn::playstore::corpus::{generate, CorpusScale, Snapshot};
use gaugenn::playstore::crawler::{AppMeta, CrawlStage, CrawledApp, Crawler};
use gaugenn::playstore::server::StoreServer;
use std::io::Write;
use std::net::TcpListener;

fn meta(pkg: &str) -> AppMeta {
    AppMeta {
        package: pkg.into(),
        title: "T".into(),
        category: "tools".into(),
        downloads: 1,
        rating: 4.0,
        version_code: 1,
        has_obb: false,
        has_bundle: false,
    }
}

#[test]
fn truncated_apk_is_an_error_not_a_panic() {
    let apk = ApkBuilder::new("com.t.app", 1).finish().unwrap();
    for cut in [0, 1, 10, apk.len() / 2, apk.len() - 1] {
        let crawled = CrawledApp {
            meta: meta("com.t.app"),
            apk: apk[..cut].to_vec(),
            obbs: vec![],
            bundle: None,
        };
        assert!(extract_app(&crawled).is_err(), "cut {cut}");
    }
}

#[test]
fn corrupted_model_body_drops_out_gracefully() {
    // A file with a valid TFLite signature but garbage body passes the
    // cheap probe, fails decoding, and must be counted as a drop-out.
    let mut fake = Vec::new();
    fake.extend_from_slice(&8u32.to_le_bytes());
    fake.extend_from_slice(b"TFL3");
    fake.extend_from_slice(&3u32.to_le_bytes());
    fake.extend_from_slice(&[0xFF; 64]); // not a valid graph body
    assert!(
        gaugenn::modelfmt::validate("m.tflite", &fake).is_some(),
        "signature probe accepts it"
    );
    assert!(
        gaugenn::modelfmt::decode(
            gaugenn::modelfmt::Framework::TfLite,
            &[("m.tflite".to_string(), fake.clone())]
        )
        .is_err(),
        "decode rejects it"
    );
    let mut b = ApkBuilder::new("com.t.badmodel", 1);
    b.add_asset("m.tflite", fake).unwrap();
    let crawled = CrawledApp {
        meta: meta("com.t.badmodel"),
        apk: b.finish().unwrap(),
        obbs: vec![],
        bundle: None,
    };
    let e = extract_app(&crawled).unwrap();
    // Extraction keeps it (probe passed)…
    assert_eq!(e.models.len(), 1);
    // …and the pipeline-level decode pass is what rejects it; covered by
    // the decode assertion above plus pipeline unit behaviour.
}

#[test]
fn crawler_surfaces_server_that_closes_mid_response() {
    // A hostile "store" that accepts and immediately closes.
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        if let Ok((stream, _)) = listener.accept() {
            drop(stream);
        }
    });
    let mut crawler = Crawler::builder(addr).build().unwrap();
    assert!(crawler.categories().is_err());
    handle.join().unwrap();
}

#[test]
fn crawler_surfaces_partial_response() {
    // A server that writes half a status line and disappears.
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        if let Ok((mut stream, _)) = listener.accept() {
            // Consume nothing; emit a truncated frame.
            let _ = stream.write_all(b"GAUGE/1.0 200 OK\r\nContent-Length: 999\r\n\r\nshort");
        }
    });
    let mut crawler = Crawler::builder(addr).build().unwrap();
    assert!(crawler.categories().is_err());
    handle.join().unwrap();
}

#[test]
fn zip_bomb_sized_claims_rejected() {
    // A central directory claiming a giant entry the stream can't hold.
    let mut w = ZipWriter::new();
    w.add("x", vec![1, 2, 3]).unwrap();
    let mut bytes = w.finish();
    // Corrupt the uncompressed-size field of the central directory record
    // (the parser must bound reads by the actual stream length).
    let cd = bytes
        .windows(4)
        .rposition(|w| w == [0x50, 0x4B, 0x01, 0x02])
        .unwrap();
    bytes[cd + 24] = 0xFF;
    bytes[cd + 25] = 0xFF;
    bytes[cd + 26] = 0xFF;
    bytes[cd + 27] = 0x0F;
    assert!(ZipArchive::parse(&bytes).is_err());
}

#[test]
fn validation_never_panics_on_mutations() {
    // Mutate a valid artifact at every byte; validate() must never panic
    // (it may accept or reject).
    use gaugenn::dnn::task::Task;
    use gaugenn::dnn::zoo::{build_for_task, SizeClass};
    let g = build_for_task(Task::MovementTracking, 1, SizeClass::Small, true).graph;
    let art = gaugenn::modelfmt::encode(&g, gaugenn::modelfmt::Framework::TfLite).unwrap();
    let bytes = art.primary();
    let stride = (bytes.len() / 200).max(1);
    for i in (0..bytes.len()).step_by(stride) {
        let mut m = bytes.to_vec();
        m[i] ^= 0xA5;
        let _ = gaugenn::modelfmt::validate("m.tflite", &m);
        // Decoding a mutated stream must also be panic-free.
        let _ = gaugenn::modelfmt::decode(
            gaugenn::modelfmt::Framework::TfLite,
            &[("m.tflite".to_string(), m)],
        );
    }
}

#[test]
fn chaos_crawl_recovers_every_transient_app_deterministically() {
    // A seeded fault plan at a ≥20 % injection rate: the crawler's retries
    // must still retrieve 100 % of the (all-retriable) corpus, and two
    // runs with the same seeds must be byte-identical.
    let chaos_cfg = FaultPlanConfig {
        seed: 0xBAD5EED,
        fault_permille: 400,
        ..FaultPlanConfig::default()
    };
    let crawl = |cfg: FaultPlanConfig| {
        let corpus = generate(CorpusScale::Tiny, Snapshot::Y2021, 7);
        let server = StoreServer::start_with_chaos(corpus, FaultPlan::new(cfg)).unwrap();
        let mut crawler = Crawler::builder(server.addr()).build().unwrap();
        let outcome = crawler.crawl_all().unwrap();
        let requests = server.chaos().unwrap().requests_seen();
        let injected = server.chaos().unwrap().injected();
        (outcome, requests, injected)
    };
    let (a, requests, injected) = crawl(chaos_cfg.clone());
    assert_eq!(a.apps.len(), 52, "every transient app recovered");
    assert!(a.dropouts.is_empty(), "{:?}", a.dropouts);
    assert!(
        injected * 5 >= requests,
        "want >=20% injection, got {injected}/{requests}"
    );
    assert!(a.stats.retries > 0 && a.stats.backoff_ms_total > 0);

    let (b, _, _) = crawl(chaos_cfg);
    let sums = |o: &gaugenn::playstore::crawler::CrawlOutcome| -> Vec<(String, String)> {
        o.apps
            .iter()
            .map(|x| {
                (
                    x.meta.package.clone(),
                    gaugenn::analysis::md5::md5_hex(&x.apk),
                )
            })
            .collect()
    };
    assert_eq!(sums(&a), sums(&b), "same seeds -> byte-identical crawl");
    assert_eq!(a.stats, b.stats, "same seeds -> identical fault schedule");
}

#[test]
fn permanent_failures_surface_as_staged_dropouts() {
    let corpus = generate(CorpusScale::Tiny, Snapshot::Y2021, 7);
    let apk_victim = corpus.apps[0].package.clone();
    let meta_victim = corpus.apps[1].package.clone();
    let server = StoreServer::start_with_chaos(
        corpus,
        FaultPlan::new(FaultPlanConfig {
            fault_permille: 0,
            permanent_routes: vec![
                format!("/apk/{apk_victim}"),
                format!("/app/{meta_victim}"),
            ],
            ..FaultPlanConfig::default()
        }),
    )
    .unwrap();
    let mut crawler = Crawler::builder(server.addr()).build().unwrap();
    let outcome = crawler.crawl_all().unwrap();
    assert_eq!(outcome.apps.len(), 50);
    assert_eq!(outcome.dropouts.len(), 2, "{:?}", outcome.dropouts);
    let stage_of = |pkg: &str| {
        outcome
            .dropouts
            .iter()
            .find(|d| d.package == pkg)
            .map(|d| d.stage)
    };
    assert_eq!(stage_of(&apk_victim), Some(CrawlStage::Apk));
    assert_eq!(stage_of(&meta_victim), Some(CrawlStage::Meta));
}

#[test]
fn malformed_metadata_is_a_typed_error_not_a_zero() {
    // A store that serves well-framed metadata with a garbage numeric
    // field: the crawler must fail with a protocol error, never coerce
    // the field to 0.
    use gaugenn::playstore::proto::{read_request, write_response, Response};
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        // One keep-alive connection is enough: a well-framed 200 with a
        // bad field is a permanent parse failure, never retried.
        if let Ok((stream, _)) = listener.accept() {
            let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            while let Ok(Some(_req)) = read_request(&mut reader) {
                let body = "package=com.x\ntitle=T\ncategory=tools\ndownloads=lots\n\
                            rating=4.5\nversion=1\nhas_obb=false\nhas_bundle=false\n";
                let resp = Response::ok(body.as_bytes().to_vec());
                if write_response(&mut writer, &resp).is_err() {
                    break;
                }
            }
        }
    });
    let mut crawler = Crawler::builder(addr).build().unwrap();
    let err = crawler.app_meta("com.x").unwrap_err();
    assert!(
        err.to_string().contains("malformed metadata field 'downloads'"),
        "{err}"
    );
    drop(crawler);
    handle.join().unwrap();
}

#[test]
fn desynced_keepalive_stream_is_reconnected() {
    // Truncation faults desync the keep-alive stream mid-frame; the
    // crawler must drop the connection, re-dial and re-request rather
    // than parse stale bytes.
    let corpus = generate(CorpusScale::Tiny, Snapshot::Y2021, 7);
    let server = StoreServer::start_with_chaos(
        corpus,
        FaultPlan::new(FaultPlanConfig {
            fault_permille: 1000,
            kinds: vec![FaultKind::Truncate],
            max_faults_per_route: 1,
            ..FaultPlanConfig::default()
        }),
    )
    .unwrap();
    let mut crawler = Crawler::builder(server.addr()).build().unwrap();
    let cats = crawler.categories().unwrap();
    assert!(cats.contains(&"communication".to_string()));
    let apps = crawler.list_category("communication").unwrap();
    assert!(!apps.is_empty());
    assert!(
        crawler.stats().reconnects >= 1,
        "truncated frames must force a reconnect: {:?}",
        crawler.stats()
    );
}

#[test]
fn campaign_quarantines_hung_device_while_fleet_finishes() {
    use gaugenn::dnn::task::Task;
    use gaugenn::dnn::zoo::{build_for_task, SizeClass};
    use gaugenn::harness::campaign::{
        run_campaign_with, Campaign, CampaignConfig, DeviceScript,
    };
    use gaugenn::harness::job::JobSpec;
    use gaugenn::harness::master::MasterConfig;
    use gaugenn::modelfmt::Framework;
    use gaugenn::soc::sched::ThreadConfig;
    use gaugenn::soc::spec::device;
    use gaugenn::soc::Backend;
    use std::time::Duration;

    let g = build_for_task(Task::MovementTracking, 1, SizeClass::Small, true).graph;
    let files = gaugenn::modelfmt::encode(&g, Framework::TfLite).unwrap().files;
    let jobs: Vec<Campaign> = (1..=3)
        .map(|id| Campaign {
            spec: JobSpec {
                warmups: 1,
                runs: 3,
                ..JobSpec::new(id, files[0].0.clone(), Backend::Cpu(ThreadConfig::unpinned(4)))
            },
            files: files.clone(),
        })
        .collect();
    let devices = vec![device("Q845").unwrap(), device("Q888").unwrap()];
    let config = CampaignConfig {
        master: MasterConfig {
            accept_timeout: Duration::from_millis(50),
            attempts: 1,
            ..MasterConfig::default()
        },
        job_retries: 0,
        quarantine_after: 2,
        probation_cooldown_ms: None,
        scripts: vec![DeviceScript {
            device: "Q845".into(),
            hang_jobs: u32::MAX,
        }],
        ..CampaignConfig::default()
    };
    let results = run_campaign_with(&devices, &jobs, &config);
    assert_eq!(results.len(), 6, "one result per (device, job), always");
    assert!(
        results
            .iter()
            .filter(|r| r.device == "Q888")
            .all(|r| r.outcome.is_ok()),
        "healthy device unaffected: {results:?}"
    );
    let hung: Vec<_> = results.iter().filter(|r| r.device == "Q845").collect();
    assert_eq!(hung.len(), 3);
    assert!(hung.iter().all(|r| r.outcome.is_err()));
    assert!(
        hung.iter()
            .any(|r| r.outcome.as_ref().unwrap_err().contains("quarantined")),
        "{results:?}"
    );
}

#[test]
fn harness_survives_model_deleted_between_push_and_run() {
    use gaugenn::harness::device::{DeviceAgent, MODEL_DIR};
    use gaugenn::harness::job::JobSpec;
    use gaugenn::soc::sched::ThreadConfig;
    use gaugenn::soc::spec::device;
    let mut agent = DeviceAgent::new(device("Q845").unwrap());
    // Push then delete the model before execution.
    agent
        .endpoint
        .write_local(&format!("{MODEL_DIR}/ghost.tflite"), vec![1, 2, 3]);
    agent.endpoint.write_local(&format!("{MODEL_DIR}/ghost.tflite"), vec![]);
    let job = JobSpec::new(
        1,
        "ghost.tflite",
        gaugenn::soc::Backend::Cpu(ThreadConfig::unpinned(4)),
    );
    assert!(agent.execute(&job).is_err());
}
