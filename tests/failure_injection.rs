//! Failure injection: every network, container and model-payload failure
//! mode must surface as a typed error (or a tracked drop-out), never a
//! panic or a silent wrong answer.

use gaugenn::apk::apk::ApkBuilder;
use gaugenn::apk::zip::{ZipArchive, ZipWriter};
use gaugenn::core::extract::extract_app;
use gaugenn::playstore::crawler::{AppMeta, CrawledApp, Crawler, CrawlerConfig};
use std::io::Write;
use std::net::TcpListener;

fn meta(pkg: &str) -> AppMeta {
    AppMeta {
        package: pkg.into(),
        title: "T".into(),
        category: "tools".into(),
        downloads: 1,
        rating: 4.0,
        version_code: 1,
        has_obb: false,
        has_bundle: false,
    }
}

#[test]
fn truncated_apk_is_an_error_not_a_panic() {
    let apk = ApkBuilder::new("com.t.app", 1).finish().unwrap();
    for cut in [0, 1, 10, apk.len() / 2, apk.len() - 1] {
        let crawled = CrawledApp {
            meta: meta("com.t.app"),
            apk: apk[..cut].to_vec(),
            obbs: vec![],
            bundle: None,
        };
        assert!(extract_app(&crawled).is_err(), "cut {cut}");
    }
}

#[test]
fn corrupted_model_body_drops_out_gracefully() {
    // A file with a valid TFLite signature but garbage body passes the
    // cheap probe, fails decoding, and must be counted as a drop-out.
    let mut fake = Vec::new();
    fake.extend_from_slice(&8u32.to_le_bytes());
    fake.extend_from_slice(b"TFL3");
    fake.extend_from_slice(&3u32.to_le_bytes());
    fake.extend_from_slice(&[0xFF; 64]); // not a valid graph body
    assert!(
        gaugenn::modelfmt::validate("m.tflite", &fake).is_some(),
        "signature probe accepts it"
    );
    assert!(
        gaugenn::modelfmt::decode(
            gaugenn::modelfmt::Framework::TfLite,
            &[("m.tflite".to_string(), fake.clone())]
        )
        .is_err(),
        "decode rejects it"
    );
    let mut b = ApkBuilder::new("com.t.badmodel", 1);
    b.add_asset("m.tflite", fake).unwrap();
    let crawled = CrawledApp {
        meta: meta("com.t.badmodel"),
        apk: b.finish().unwrap(),
        obbs: vec![],
        bundle: None,
    };
    let e = extract_app(&crawled).unwrap();
    // Extraction keeps it (probe passed)…
    assert_eq!(e.models.len(), 1);
    // …and the pipeline-level decode pass is what rejects it; covered by
    // the decode assertion above plus pipeline unit behaviour.
}

#[test]
fn crawler_surfaces_server_that_closes_mid_response() {
    // A hostile "store" that accepts and immediately closes.
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        if let Ok((stream, _)) = listener.accept() {
            drop(stream);
        }
    });
    let mut crawler = Crawler::connect(addr, CrawlerConfig::default()).unwrap();
    assert!(crawler.categories().is_err());
    handle.join().unwrap();
}

#[test]
fn crawler_surfaces_partial_response() {
    // A server that writes half a status line and disappears.
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        if let Ok((mut stream, _)) = listener.accept() {
            // Consume nothing; emit a truncated frame.
            let _ = stream.write_all(b"GAUGE/1.0 200 OK\r\nContent-Length: 999\r\n\r\nshort");
        }
    });
    let mut crawler = Crawler::connect(addr, CrawlerConfig::default()).unwrap();
    assert!(crawler.categories().is_err());
    handle.join().unwrap();
}

#[test]
fn zip_bomb_sized_claims_rejected() {
    // A central directory claiming a giant entry the stream can't hold.
    let mut w = ZipWriter::new();
    w.add("x", vec![1, 2, 3]).unwrap();
    let mut bytes = w.finish();
    // Corrupt the uncompressed-size field of the central directory record
    // (the parser must bound reads by the actual stream length).
    let cd = bytes
        .windows(4)
        .rposition(|w| w == [0x50, 0x4B, 0x01, 0x02])
        .unwrap();
    bytes[cd + 24] = 0xFF;
    bytes[cd + 25] = 0xFF;
    bytes[cd + 26] = 0xFF;
    bytes[cd + 27] = 0x0F;
    assert!(ZipArchive::parse(&bytes).is_err());
}

#[test]
fn validation_never_panics_on_mutations() {
    // Mutate a valid artifact at every byte; validate() must never panic
    // (it may accept or reject).
    use gaugenn::dnn::task::Task;
    use gaugenn::dnn::zoo::{build_for_task, SizeClass};
    let g = build_for_task(Task::MovementTracking, 1, SizeClass::Small, true).graph;
    let art = gaugenn::modelfmt::encode(&g, gaugenn::modelfmt::Framework::TfLite).unwrap();
    let bytes = art.primary();
    let stride = (bytes.len() / 200).max(1);
    for i in (0..bytes.len()).step_by(stride) {
        let mut m = bytes.to_vec();
        m[i] ^= 0xA5;
        let _ = gaugenn::modelfmt::validate("m.tflite", &m);
        // Decoding a mutated stream must also be panic-free.
        let _ = gaugenn::modelfmt::decode(
            gaugenn::modelfmt::Framework::TfLite,
            &[("m.tflite".to_string(), m)],
        );
    }
}

#[test]
fn harness_survives_model_deleted_between_push_and_run() {
    use gaugenn::harness::device::{DeviceAgent, MODEL_DIR};
    use gaugenn::harness::job::JobSpec;
    use gaugenn::soc::sched::ThreadConfig;
    use gaugenn::soc::spec::device;
    let mut agent = DeviceAgent::new(device("Q845").unwrap());
    // Push then delete the model before execution.
    agent
        .endpoint
        .write_local(&format!("{MODEL_DIR}/ghost.tflite"), vec![1, 2, 3]);
    agent.endpoint.write_local(&format!("{MODEL_DIR}/ghost.tflite"), vec![]);
    let job = JobSpec::new(
        1,
        "ghost.tflite",
        gaugenn::soc::Backend::Cpu(ThreadConfig::unpinned(4)),
    );
    assert!(agent.execute(&job).is_err());
}
