//! Property-based tests over the core data structures and codecs
//! (proptest): archive/codec roundtrips, checksum stability, statistics
//! invariants and quantisation error bounds.

use gaugenn::analysis::md5::md5_hex;
use gaugenn::analysis::stats::{line_fit, Ecdf};
use gaugenn::apk::crc32::crc32;
use gaugenn::apk::dex::{Dex, DexBuilder};
use gaugenn::apk::zip::{ZipArchive, ZipWriter};
use gaugenn::dnn::tensor::QuantParams;
use gaugenn::modelfmt::minipb::{unpack_floats, unpack_varints, PbReader, PbWriter};
use proptest::prelude::*;

proptest! {
    #[test]
    fn zip_roundtrips_arbitrary_entries(
        entries in prop::collection::vec(
            ("[a-z0-9_/]{1,24}", prop::collection::vec(any::<u8>(), 0..512)),
            0..8,
        )
    ) {
        let mut w = ZipWriter::new();
        let mut expected: Vec<(String, Vec<u8>)> = Vec::new();
        for (name, data) in entries {
            if w.add(name.clone(), data.clone()).is_ok() {
                expected.push((name, data));
            }
        }
        let archive = ZipArchive::parse(&w.finish()).unwrap();
        prop_assert_eq!(archive.len(), expected.len());
        for (name, data) in &expected {
            prop_assert_eq!(archive.get(name), Some(data.as_slice()));
        }
    }

    #[test]
    fn zip_rejects_any_single_byte_corruption_of_payload(
        data in prop::collection::vec(any::<u8>(), 16..128),
        flip in 0usize..16,
        xor in 1u8..=255,
    ) {
        let mut w = ZipWriter::new();
        w.add("f", data.clone()).unwrap();
        let mut bytes = w.finish();
        // Payload begins after 30-byte local header + 1-byte name.
        let idx = 31 + (flip % data.len());
        bytes[idx] ^= xor;
        prop_assert!(ZipArchive::parse(&bytes).is_err());
    }

    #[test]
    fn dex_string_table_roundtrips(
        strings in prop::collection::vec("[ -~]{0,64}", 0..16)
    ) {
        let mut b = DexBuilder::new();
        for s in &strings {
            b.add_string(s.clone());
        }
        let dex = Dex::parse(&b.finish()).unwrap();
        prop_assert_eq!(dex.strings(), &strings[..]);
    }

    #[test]
    fn minipb_varints_roundtrip(vals in prop::collection::vec(any::<u64>(), 0..64)) {
        let mut w = PbWriter::new();
        w.packed_varints(1, &vals);
        let bytes = w.finish();
        let mut r = PbReader::new(&bytes);
        let (_, v) = r.next_field().unwrap();
        prop_assert_eq!(unpack_varints(v.as_bytes().unwrap()).unwrap(), vals);
    }

    #[test]
    fn minipb_floats_roundtrip_bitexact(vals in prop::collection::vec(any::<f32>(), 0..64)) {
        let mut w = PbWriter::new();
        w.packed_floats(7, &vals);
        let bytes = w.finish();
        let mut r = PbReader::new(&bytes);
        let (_, v) = r.next_field().unwrap();
        let back = unpack_floats(v.as_bytes().unwrap()).unwrap();
        prop_assert_eq!(back.len(), vals.len());
        for (a, b) in back.iter().zip(&vals) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn md5_and_crc_are_deterministic_and_sensitive(
        data in prop::collection::vec(any::<u8>(), 1..256),
        idx in 0usize..256,
        xor in 1u8..=255,
    ) {
        let idx = idx % data.len();
        let mut mutated = data.clone();
        mutated[idx] ^= xor;
        prop_assert_eq!(md5_hex(&data), md5_hex(&data));
        prop_assert_ne!(md5_hex(&data), md5_hex(&mutated));
        prop_assert_ne!(crc32(&data), crc32(&mutated));
    }

    #[test]
    fn md5_block_kernel_matches_reference(
        data in prop::collection::vec(any::<u8>(), 0..700),
        split in 0usize..700,
    ) {
        use gaugenn::analysis::md5::{digest_hex, reference, Md5};
        // One-shot block kernel vs the original copy-and-pad scalar.
        prop_assert_eq!(md5_hex(&data), digest_hex(reference::md5(&data)));
        // Streaming at an arbitrary split point agrees too.
        let split = split % (data.len() + 1);
        let mut h = Md5::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize_hex(), digest_hex(reference::md5(&data)));
    }

    #[test]
    fn md5_block_kernel_matches_reference_at_block_boundaries(
        fill in any::<u8>(),
        delta in 0usize..3,
        blocks in 0usize..4,
    ) {
        use gaugenn::analysis::md5::{digest_hex, reference};
        // Exactly the padding edge cases: empty, 1 byte, and lengths
        // straddling the 55/56/64-byte block and length-field boundaries.
        for base in [0usize, 1, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128] {
            let len = base + delta + 64 * blocks;
            let data = vec![fill; len];
            prop_assert_eq!(md5_hex(&data), digest_hex(reference::md5(&data)), "len {}", len);
        }
    }

    #[test]
    fn crc32_sliced_kernel_matches_reference(
        data in prop::collection::vec(any::<u8>(), 0..700),
        split in 0usize..700,
    ) {
        use gaugenn::apk::crc32::{reference, Crc32};
        // Slice-by-8 vs the original byte-at-a-time table loop, covering
        // the empty input, the scalar tail (len % 8 != 0) and multi-fold
        // runs in one strategy.
        prop_assert_eq!(crc32(&data), reference::crc32(&data));
        let split = split % (data.len() + 1);
        let mut c = Crc32::new();
        c.update(&data[..split]);
        c.update(&data[split..]);
        prop_assert_eq!(c.finalize(), reference::crc32(&data));
    }

    #[test]
    fn crc32_sliced_kernel_matches_reference_at_fold_boundaries(
        fill in any::<u8>(),
        delta in 0usize..9,
    ) {
        use gaugenn::apk::crc32::reference;
        // Empty, 1 byte, and every length around the 8-byte fold window.
        for base in [0usize, 1, 7, 8, 9, 15, 16, 17, 64] {
            let data = vec![fill; base + delta];
            prop_assert_eq!(crc32(&data), reference::crc32(&data), "len {}", base + delta);
        }
    }

    #[test]
    fn quantisation_error_bounded_by_half_scale(
        scale in 0.001f32..1.0,
        zero in -20i32..20,
        x in -50.0f32..50.0,
    ) {
        let q = QuantParams { scale, zero_point: zero };
        let back = q.dequantize(q.quantize(x));
        // Inside the representable range the error is at most scale/2.
        let lo = q.dequantize(i8::MIN);
        let hi = q.dequantize(i8::MAX);
        if x >= lo && x <= hi {
            prop_assert!((back - x).abs() <= scale / 2.0 + 1e-6,
                "x={x} back={back} scale={scale}");
        } else {
            // Saturated: result clamps to the range edge.
            prop_assert!(back >= lo - scale && back <= hi + scale);
        }
    }

    #[test]
    fn ecdf_is_a_valid_distribution(sample in prop::collection::vec(-1e6f64..1e6, 1..128)) {
        let e = Ecdf::new(sample.clone());
        // Monotone non-decreasing, 0 before min, 1 at max.
        let min = sample.iter().cloned().fold(f64::MAX, f64::min);
        let max = sample.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert_eq!(e.eval(min - 1.0), 0.0);
        prop_assert_eq!(e.eval(max), 1.0);
        let mut prev = 0.0;
        for i in 0..=20 {
            let x = min + (max - min) * i as f64 / 20.0;
            let y = e.eval(x);
            prop_assert!(y >= prev - 1e-12);
            prev = y;
        }
        // Quantiles come from the sample.
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            prop_assert!(sample.contains(&e.quantile(q)));
        }
    }

    #[test]
    fn line_fit_recovers_exact_lines(
        slope in -100.0f64..100.0,
        intercept in -100.0f64..100.0,
        xs in prop::collection::btree_set(-1000i32..1000, 2..32),
    ) {
        let pts: Vec<(f64, f64)> = xs
            .iter()
            .map(|&x| (x as f64, slope * x as f64 + intercept))
            .collect();
        let f = line_fit(&pts).unwrap();
        prop_assert!((f.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        prop_assert!((f.intercept - intercept).abs() < 1e-5 * (1.0 + intercept.abs()));
        prop_assert!(f.r2 > 1.0 - 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn graph_codec_roundtrips_random_zoo_models(seed in 0u64..5000, task_idx in 0usize..23) {
        use gaugenn::dnn::task::Task;
        use gaugenn::dnn::zoo::{build_for_task, SizeClass};
        use gaugenn::modelfmt::graphcodec::{decode_graph, encode_graph};
        let task = Task::ALL[task_idx];
        let g = build_for_task(task, seed, SizeClass::Small, seed % 2 == 0).graph;
        let back = decode_graph(&encode_graph(&g)).unwrap();
        prop_assert_eq!(back, g);
    }

    #[test]
    fn every_framework_artifact_validates_and_decodes(seed in 0u64..2000) {
        use gaugenn::dnn::task::Task;
        use gaugenn::dnn::zoo::{build_for_task, SizeClass};
        use gaugenn::modelfmt::{decode, encode, validate, Framework};
        let g = build_for_task(Task::MovementTracking, seed, SizeClass::Small, true).graph;
        for fw in Framework::BENCHMARKED {
            let art = encode(&g, fw).unwrap();
            for (name, bytes) in &art.files {
                prop_assert!(validate(name, bytes).is_some(), "{:?} {}", fw, name);
            }
            prop_assert_eq!(decode(fw, &art.files).unwrap(), g.clone());
        }
    }

    #[test]
    fn rebatch_consistent_for_random_models(seed in 0u64..2000, batch in 2usize..32) {
        use gaugenn::dnn::task::Task;
        use gaugenn::dnn::trace::{rebatch, trace_graph, trace_graph_batched};
        use gaugenn::dnn::zoo::{build_for_task, SizeClass};
        let task = Task::ALL[(seed % 23) as usize];
        let g = build_for_task(task, seed, SizeClass::Small, true).graph;
        let direct = trace_graph_batched(&g, batch).unwrap();
        let scaled = rebatch(&trace_graph(&g).unwrap(), batch);
        prop_assert_eq!(direct, scaled);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn executor_output_shapes_match_inference(seed in 0u64..1000) {
        // The executor's runtime shapes must agree with static inference
        // for every (cheap) zoo family.
        use gaugenn::dnn::exec::Executor;
        use gaugenn::dnn::shape::infer_shapes;
        use gaugenn::dnn::task::Task;
        use gaugenn::dnn::zoo::{build_for_task, SizeClass};
        let cheap = [
            Task::MovementTracking,
            Task::CrashDetection,
            Task::KeywordDetection,
            Task::SentimentPrediction,
        ];
        let task = cheap[(seed % cheap.len() as u64) as usize];
        let g = build_for_task(task, seed, SizeClass::Small, true).graph;
        let shapes = infer_shapes(&g).unwrap();
        let ex = Executor::new(&g).unwrap();
        let outs = ex.run_random(1, seed).unwrap();
        for (out, &node) in outs.iter().zip(&g.outputs) {
            prop_assert_eq!(&out.shape, &shapes[node], "{:?}", task);
        }
    }

    #[test]
    fn obb_roundtrip_arbitrary_files(
        version in 1u32..1000,
        files in prop::collection::vec(("[a-z]{1,12}", prop::collection::vec(any::<u8>(), 0..128)), 0..5),
    ) {
        use gaugenn::apk::obb::{build_obb, Obb, ObbKind};
        let mut uniq: Vec<(String, Vec<u8>)> = Vec::new();
        for (name, data) in files {
            if !uniq.iter().any(|(n, _)| *n == name) {
                uniq.push((name, data));
            }
        }
        let refs: Vec<(&str, Vec<u8>)> = uniq.iter().map(|(n, d)| (n.as_str(), d.clone())).collect();
        let (name, bytes) = build_obb(ObbKind::Main, version, "com.a.b", &refs).unwrap();
        let obb = Obb::parse(&name, &bytes).unwrap();
        prop_assert_eq!(obb.version_code, version);
        prop_assert_eq!(obb.archive.len(), uniq.len());
        for (n, d) in &uniq {
            prop_assert_eq!(obb.archive.get(n), Some(d.as_slice()));
        }
    }

    #[test]
    fn latency_monotone_in_batch(seed in 0u64..500, b1 in 1usize..8, extra in 1usize..8) {
        // More samples can never be faster end-to-end.
        use gaugenn::dnn::task::Task;
        use gaugenn::dnn::trace::{rebatch, trace_graph};
        use gaugenn::dnn::zoo::{build_for_task, SizeClass};
        use gaugenn::soc::sched::ThreadConfig;
        use gaugenn::soc::spec::device;
        use gaugenn::soc::thermal::ThermalState;
        use gaugenn::soc::Backend;
        let g = build_for_task(Task::KeywordDetection, seed, SizeClass::Small, true).graph;
        let t = trace_graph(&g).unwrap();
        let d = device("S21").unwrap();
        let cool = ThermalState::cool();
        let cpu = Backend::Cpu(ThreadConfig::unpinned(4));
        let small = gaugenn::soc::estimate_latency(&d, cpu, &rebatch(&t, b1), &cool).unwrap();
        let big = gaugenn::soc::estimate_latency(&d, cpu, &rebatch(&t, b1 + extra), &cool).unwrap();
        prop_assert!(big.total_ms >= small.total_ms);
        // …but throughput must not collapse: the bigger batch processes
        // more samples per unit time than a linear slowdown would imply.
        prop_assert!(big.total_ms <= small.total_ms * (b1 + extra) as f64 / b1 as f64 + 1e-9);
    }

    #[test]
    fn fine_tuned_models_share_majority_of_weights(seed in 0u64..300, layers in 1usize..3) {
        use gaugenn::analysis::dedup::layer_checksums;
        use gaugenn::dnn::task::Task;
        use gaugenn::dnn::zoo::{build_for_task, fine_tune, SizeClass};
        let base = build_for_task(Task::ImageClassification, seed, SizeClass::Small, true).graph;
        let ft = fine_tune(&base, layers, seed ^ 0xF00D);
        let a = layer_checksums(&base);
        let b = layer_checksums(&ft);
        prop_assert_eq!(a.len(), b.len());
        let differing = a.iter().zip(&b).filter(|(x, y)| x.0 != y.0).count();
        prop_assert_eq!(differing, layers);
    }
}

proptest! {
    #[test]
    fn percent_encoding_roundtrips_any_string(s in "\\PC{0,40}") {
        use gaugenn::playstore::proto::{decode_component, encode_component};
        prop_assert_eq!(decode_component(&encode_component(&s)), s);
    }

    #[test]
    fn job_files_roundtrip_any_counts(
        warmups in 0u32..100,
        runs in 1u32..1000,
        sleep_ms in 0u32..10_000,
        batch in 1usize..64,
    ) {
        use gaugenn::harness::job::JobSpec;
        use gaugenn::soc::sched::ThreadConfig;
        use gaugenn::soc::Backend;
        let spec = JobSpec {
            warmups,
            runs,
            sleep_ms,
            batch,
            ..JobSpec::new(7, "m.tflite", Backend::Cpu(ThreadConfig::unpinned(4)))
        };
        prop_assert_eq!(JobSpec::from_text(&spec.to_text()).unwrap(), spec);
    }
}


// ---------------------------------------------------------------------------
// Route wire grammar: `Route::wire_path` and `Route::parse` are exact
// inverses for every variant, query routes included — arbitrary decoded
// text (spaces, `&`, `=`, `%`, unicode) must survive the percent-
// encoding round trip, and numeric filters must come back bit-exact.

/// SplitMix64 step, the file-local seedable generator for route fuzzing.
fn route_rng(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Adversarial decoded text: characters the wire grammar must escape
/// (separators, percent signs, multi-byte scalars) plus plain ASCII.
fn wire_text(state: &mut u64, max: u64) -> String {
    const POOL: [char; 17] = [
        'a', 'z', '0', ' ', '&', '=', '%', '?', '/', '+', '.', '-', '_', '~', 'é', '☃', '中',
    ];
    let len = route_rng(state) % (max + 1);
    (0..len)
        .map(|_| POOL[(route_rng(state) % POOL.len() as u64) as usize])
        .collect()
}

fn opt_u64(state: &mut u64) -> Option<u64> {
    (route_rng(state).is_multiple_of(2)).then(|| route_rng(state))
}

fn opt_text(state: &mut u64, max: u64) -> Option<String> {
    (route_rng(state).is_multiple_of(2)).then(|| wire_text(state, max))
}

fn texts(state: &mut u64, upto: u64, max: u64) -> Vec<String> {
    (0..route_rng(state) % (upto + 1))
        .map(|_| wire_text(state, max))
        .collect()
}

/// One seeded route, covering every variant with adversarial text in
/// every free-text slot (packages are kept non-empty: the store rejects
/// empty package paths, so they are outside the invertible surface).
fn route_from_seed(seed: u64) -> gaugenn::playstore::Route {
    use gaugenn::index::{AppQuery, ModelQuery};
    use gaugenn::playstore::Route;
    let mut state = seed;
    let s = &mut state;
    let package = |s: &mut u64| format!("p{}", wire_text(s, 10));
    match route_rng(s) % 9 {
        0 => Route::Categories,
        1 => Route::Category {
            name: wire_text(s, 10),
            start: route_rng(s) as usize,
            count: route_rng(s) as usize,
        },
        2 => Route::App { package: package(s) },
        3 => Route::Apk { package: package(s) },
        4 => Route::Obb { package: package(s) },
        5 => Route::Bundle { package: package(s) },
        6 => Route::QueryModels(ModelQuery {
            frameworks: texts(s, 2, 8),
            tasks: texts(s, 2, 8),
            modalities: texts(s, 2, 6),
            quantised: (route_rng(s).is_multiple_of(2)).then(|| route_rng(s).is_multiple_of(2)),
            snapshot: opt_text(s, 8),
            min_flops: opt_u64(s),
            max_flops: opt_u64(s),
            min_params: opt_u64(s),
            max_params: opt_u64(s),
            min_size: opt_u64(s),
            max_size: opt_u64(s),
            limit: opt_u64(s),
        }),
        7 => Route::QueryApps(AppQuery {
            categories: texts(s, 2, 10),
            ml_only: route_rng(s).is_multiple_of(2),
            cloud: (route_rng(s).is_multiple_of(2)).then(|| route_rng(s).is_multiple_of(2)),
            snapshot: opt_text(s, 8),
            limit: opt_u64(s),
        }),
        _ => Route::QueryStats,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn every_route_roundtrips_its_wire_path(seed in any::<u64>()) {
        use gaugenn::playstore::Route;
        let route = route_from_seed(seed);
        let wire = route.wire_path();
        prop_assert_eq!(Route::parse(&wire), Some(route.clone()), "wire: {wire:?} route: {route:?}");
    }
}
