//! Concurrency: the store server must serve parallel crawlers with
//! identical, uncorrupted results, and the multi-device harness campaign
//! must be deterministic in content (not ordering).

use gaugenn::playstore::corpus::{generate, CorpusScale, Snapshot};
use gaugenn::playstore::crawler::{Crawler, CrawlerConfig};
use gaugenn::playstore::server::StoreServer;

#[test]
fn parallel_crawlers_get_identical_corpora() {
    let server = StoreServer::start(generate(CorpusScale::Tiny, Snapshot::Y2021, 7)).unwrap();
    let addr = server.addr();
    let crawl = move || {
        let mut c = Crawler::connect(addr, CrawlerConfig::default()).expect("connect");
        let outcome = c.crawl_all().expect("crawl");
        assert!(outcome.dropouts.is_empty(), "clean store drops nothing");
        let mut sums: Vec<(String, String)> = outcome
            .apps
            .iter()
            .map(|a| {
                (
                    a.meta.package.clone(),
                    gaugenn::analysis::md5::md5_hex(&a.apk),
                )
            })
            .collect();
        sums.sort();
        sums
    };
    let handles: Vec<_> = (0..4).map(|_| std::thread::spawn(crawl)).collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for r in &results[1..] {
        assert_eq!(r, &results[0], "all crawlers must see identical bytes");
    }
    assert!(server.requests_served() >= 4 * 52);
}

#[test]
fn interleaved_requests_do_not_cross_wires() {
    // Two crawlers ping-pong between different endpoints; responses must
    // stay matched to their connection.
    let server = StoreServer::start(generate(CorpusScale::Tiny, Snapshot::Y2021, 7)).unwrap();
    let addr = server.addr();
    let t1 = std::thread::spawn(move || {
        let mut c = Crawler::connect(addr, CrawlerConfig::default()).unwrap();
        for _ in 0..20 {
            let cats = c.categories().unwrap();
            assert!(cats.contains(&"communication".to_string()));
        }
    });
    let t2 = std::thread::spawn(move || {
        let mut c = Crawler::connect(addr, CrawlerConfig::default()).unwrap();
        for _ in 0..20 {
            let apps = c.list_category("communication").unwrap();
            assert!(!apps.is_empty());
            assert!(apps.iter().all(|p| p.starts_with("com.")));
        }
    });
    t1.join().unwrap();
    t2.join().unwrap();
}

#[test]
fn campaign_results_content_deterministic_across_runs() {
    use gaugenn::dnn::task::Task;
    use gaugenn::dnn::zoo::{build_for_task, SizeClass};
    use gaugenn::harness::campaign::{run_campaign, Campaign};
    use gaugenn::harness::job::JobSpec;
    use gaugenn::modelfmt::Framework;
    use gaugenn::soc::sched::ThreadConfig;
    use gaugenn::soc::spec::hdks;
    use gaugenn::soc::Backend;

    let g = build_for_task(Task::FaceDetection, 4, SizeClass::Small, true).graph;
    let files = gaugenn::modelfmt::encode(&g, Framework::TfLite).unwrap().files;
    let jobs = vec![Campaign {
        spec: JobSpec {
            warmups: 1,
            runs: 3,
            ..JobSpec::new(1, files[0].0.clone(), Backend::Cpu(ThreadConfig::unpinned(4)))
        },
        files,
    }];
    let collect = || {
        let mut rows: Vec<(String, String)> = run_campaign(&hdks(), &jobs)
            .into_iter()
            .map(|r| {
                let j = r.outcome.expect("job succeeds");
                (r.device, format!("{:.9}", j.mean_latency_ms()))
            })
            .collect();
        rows.sort();
        rows
    };
    assert_eq!(collect(), collect(), "device threads race only in ordering");
}
