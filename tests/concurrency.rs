//! Concurrency: the store server must serve parallel crawlers with
//! identical, uncorrupted results, and the multi-device harness campaign
//! must be deterministic in content (not ordering).

use gaugenn::playstore::chaos::{FaultPlan, FaultPlanConfig};
use gaugenn::playstore::corpus::{generate, CorpusScale, Snapshot};
use gaugenn::playstore::crawler::Crawler;
use gaugenn::playstore::pool::{CrawlPool, CrawlPoolConfig};
use gaugenn::playstore::server::StoreServer;

#[test]
fn parallel_crawlers_get_identical_corpora() {
    let server = StoreServer::start(generate(CorpusScale::Tiny, Snapshot::Y2021, 7)).unwrap();
    let addr = server.addr();
    let crawl = move |conn: u64| {
        let mut c = Crawler::builder(addr)
            .connection_id(conn)
            .build()
            .expect("connect");
        let outcome = c.crawl_all().expect("crawl");
        assert!(outcome.dropouts.is_empty(), "clean store drops nothing");
        let mut sums: Vec<(String, String)> = outcome
            .apps
            .iter()
            .map(|a| {
                (
                    a.meta.package.clone(),
                    gaugenn::analysis::md5::md5_hex(&a.apk),
                )
            })
            .collect();
        sums.sort();
        sums
    };
    let handles: Vec<_> = (0..4u64)
        .map(|i| std::thread::spawn(move || crawl(i)))
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for r in &results[1..] {
        assert_eq!(r, &results[0], "all crawlers must see identical bytes");
    }
    assert!(server.requests_served() >= 4 * 52);
}

#[test]
fn interleaved_requests_do_not_cross_wires() {
    // Two crawlers ping-pong between different endpoints; responses must
    // stay matched to their connection.
    let server = StoreServer::start(generate(CorpusScale::Tiny, Snapshot::Y2021, 7)).unwrap();
    let addr = server.addr();
    let t1 = std::thread::spawn(move || {
        let mut c = Crawler::builder(addr).connection_id(1).build().unwrap();
        for _ in 0..20 {
            let cats = c.categories().unwrap();
            assert!(cats.contains(&"communication".to_string()));
        }
    });
    let t2 = std::thread::spawn(move || {
        let mut c = Crawler::builder(addr).connection_id(2).build().unwrap();
        for _ in 0..20 {
            let apps = c.list_category("communication").unwrap();
            assert!(!apps.is_empty());
            assert!(apps.iter().all(|p| p.starts_with("com.")));
        }
    });
    t1.join().unwrap();
    t2.join().unwrap();
}

#[test]
fn eight_worker_chaos_crawl_is_deterministic() {
    // The tentpole guarantee: with per-connection fault schedules and a
    // static category partition, a seeded chaos run through an 8-worker
    // pool merges to a byte-identical CrawlOutcome every time — corpus,
    // drop-out ledger and summed resilience counters included.
    let run = || {
        let corpus = generate(CorpusScale::Tiny, Snapshot::Y2021, 7);
        let server = StoreServer::start_with_chaos(
            corpus,
            FaultPlan::new(FaultPlanConfig {
                seed: 0xD15EA5E,
                fault_permille: 300,
                ..FaultPlanConfig::default()
            }),
        )
        .unwrap();
        CrawlPool::new(CrawlPoolConfig {
            workers: 8,
            ..CrawlPoolConfig::default()
        })
        .crawl(server.addr())
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.outcome, b.outcome, "merged outcome must be byte-identical");
    assert_eq!(a.admission, b.admission, "fleet totals must be stable");
    assert_eq!(a.outcome.apps.len(), 52, "every app recovered despite chaos");
    assert!(a.outcome.dropouts.is_empty(), "{:?}", a.outcome.dropouts);
    assert!(
        a.outcome.stats.retries > 0,
        "the plan must actually have injected faults: {:?}",
        a.outcome.stats
    );
}

#[test]
fn crawl_outcome_matrix_across_clients_workers_and_connections() {
    // The event-driven-client acceptance matrix: the merged corpus and
    // drop-out ledger are byte-identical across client transports
    // {threaded, epoll, sim}, worker counts {1, 4, 8} and
    // connections-per-worker {1, 64, 256}, calm and chaotic — and at a
    // fixed topology the *entire* PoolOutcome (summed resilience
    // counters included) matches between the blocking client and the
    // non-blocking lanes on the same endpoint.
    use gaugenn::playstore::server::ServerOptions;
    use gaugenn::playstore::{nonblocking_tcp_available, ReactorMode};

    // The chaos plan keeps per-(connection, route) fault budgets inside
    // the server, so every matrix cell crawls a freshly started store —
    // same corpus seed, same chaos seed, untouched budgets.
    let crawl = |sim: bool, chaos: bool, client: ReactorMode, workers: usize, conns: usize| {
        let plan = chaos.then(|| {
            FaultPlan::new(FaultPlanConfig {
                seed: 0xD15EA5E,
                fault_permille: 300,
                ..FaultPlanConfig::default()
            })
        });
        let server = StoreServer::start_with(
            generate(CorpusScale::Tiny, Snapshot::Y2021, 7),
            ServerOptions {
                chaos: plan,
                reactor: sim.then_some(ReactorMode::Sim),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        CrawlPool::new(CrawlPoolConfig {
            workers,
            connections_per_worker: conns,
            reactor: Some(client),
            ..CrawlPoolConfig::default()
        })
        .crawl_at(&server.endpoint())
        .unwrap()
    };

    for chaos in [false, true] {
        let reference = crawl(false, chaos, ReactorMode::Threaded, 1, 1).outcome;
        assert_eq!(reference.apps.len(), 52, "every app recovered (chaos={chaos})");
        assert!(reference.dropouts.is_empty(), "{:?}", reference.dropouts);

        for (sim, clients) in [
            (false, [ReactorMode::Threaded, ReactorMode::Epoll]),
            (true, [ReactorMode::Threaded, ReactorMode::Sim]),
        ] {
            // At a fixed topology the blocking and non-blocking clients
            // issue identical per-connection request schedules, so the
            // whole outcome (stats included) must match the threaded
            // run on the same endpoint.
            let threaded_fixed = crawl(sim, chaos, ReactorMode::Threaded, 4, 64);
            assert_eq!(threaded_fixed.peak_in_flight, 1, "blocking lanes run one at a time");
            for client in clients {
                let fixed = crawl(sim, chaos, client, 4, 64);
                assert_eq!(
                    fixed.outcome, threaded_fixed.outcome,
                    "client {client:?} diverged from the blocking baseline (chaos={chaos})"
                );
                if !matches!(fixed.reactor, ReactorMode::Threaded) {
                    // The non-blocking client really multiplexes: lanes
                    // are category-granular, so the tiny corpus caps the
                    // peak at categories-per-worker — still well past the
                    // blocking client's ceiling of one. (On hosts without
                    // epoll the pool resolves back to Threaded and this
                    // arm is skipped.)
                    assert!(
                        fixed.peak_in_flight > 1,
                        "client {client:?} lanes must overlap, got peak {}",
                        fixed.peak_in_flight
                    );
                }
                for (workers, conns) in [(1usize, 1usize), (4, 64), (8, 256)] {
                    let pooled = if (workers, conns) == (4, 64) {
                        continue; // already crawled as `fixed` above
                    } else {
                        crawl(sim, chaos, client, workers, conns)
                    };
                    assert_eq!(
                        pooled.outcome.apps, reference.apps,
                        "client {client:?} w={workers} c={conns} chaos={chaos}: corpus diverged"
                    );
                    assert_eq!(
                        pooled.outcome.dropouts, reference.dropouts,
                        "client {client:?} w={workers} c={conns} chaos={chaos}: ledger diverged"
                    );
                }
                assert_eq!(
                    fixed.outcome.apps, reference.apps,
                    "client {client:?} w=4 c=64 chaos={chaos}: corpus diverged"
                );
            }
        }
        assert!(
            nonblocking_tcp_available() || cfg!(not(target_os = "linux")),
            "linux hosts must drive non-blocking TCP lanes"
        );
    }
}

#[test]
fn analysis_worker_count_never_changes_the_report() {
    // The analysis-pool guarantee: the full pipeline's deterministic text
    // render is byte-identical at any analysis worker count, with and
    // without a chaotic store in front of the crawl.
    use gaugenn::core::pipeline::{Pipeline, PipelineConfig};

    let render = |analysis_workers: usize, chaos: bool| {
        let mut cfg = PipelineConfig::tiny(Snapshot::Y2021, 7);
        cfg.analysis_workers = analysis_workers;
        if chaos {
            cfg.chaos = Some(FaultPlanConfig {
                seed: 0xD15EA5E,
                fault_permille: 300,
                ..FaultPlanConfig::default()
            });
        }
        Pipeline::new(cfg).run().unwrap().render_text()
    };
    for chaos in [false, true] {
        let sequential = render(1, chaos);
        assert!(sequential.contains("cache:"), "render carries cache counters");
        for workers in [2usize, 8] {
            assert_eq!(
                render(workers, chaos),
                sequential,
                "{workers} analysis workers, chaos={chaos}"
            );
        }
    }
}

#[test]
fn sched_mode_and_cache_state_never_change_the_report() {
    // The scheduling tentpole's acceptance matrix: the deterministic text
    // render is byte-identical across worker counts {1, 2, 8}, scheduling
    // modes {static, lpt, stealing}, and cache states {cold, warm}. The
    // first run against the cache directory populates it (cold); every
    // later one attaches to it (warm).
    use gaugenn::core::pipeline::{Pipeline, PipelineConfig};
    use gaugenn::sched::SchedMode;

    let dir = std::env::temp_dir().join(format!("gaugenn-matrix-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let run = |workers: usize, mode: SchedMode, cached: bool| {
        let mut cfg = PipelineConfig::tiny(Snapshot::Y2021, 7);
        cfg.workers = workers;
        cfg.analysis_workers = workers;
        cfg.sched = mode;
        cfg.analysis_cache_dir = cached.then(|| dir.clone());
        Pipeline::new(cfg).run().unwrap()
    };
    let baseline = run(1, SchedMode::Static, false).render_text();
    let mut warm_hits = 0u64;
    for workers in [1usize, 2, 8] {
        for mode in [SchedMode::Static, SchedMode::Lpt, SchedMode::Stealing] {
            for cached in [false, true] {
                let report = run(workers, mode, cached);
                assert_eq!(
                    report.render_text(),
                    baseline,
                    "workers={workers} mode={mode:?} cached={cached}"
                );
                if cached {
                    warm_hits += report.analysis.persistent_hits;
                }
            }
        }
    }
    assert!(warm_hits > 0, "warm runs must attach to the persisted cache");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_store_never_changes_the_report() {
    // Satellite guarantee for the persistent cache: flipped bits in
    // entries and a torn index degrade to misses — the report stays
    // byte-identical and the pipeline recomputes instead of erroring.
    use gaugenn::core::pipeline::{Pipeline, PipelineConfig};

    let dir = std::env::temp_dir().join(format!("gaugenn-corrupt-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let run = |cached: bool| {
        let mut cfg = PipelineConfig::tiny(Snapshot::Y2021, 7);
        cfg.analysis_cache_dir = cached.then(|| dir.clone());
        Pipeline::new(cfg).run().unwrap()
    };
    let baseline = run(false).render_text();
    let cold = run(true);
    assert_eq!(cold.render_text(), baseline);
    assert!(cold.analysis.persistent_stores > 0, "{:?}", cold.analysis);

    // Bit-flip the tail of every entry (breaks each payload checksum).
    let mut entries = 0usize;
    for f in std::fs::read_dir(&dir).unwrap() {
        let path = f.unwrap().path();
        if path.extension().is_some_and(|e| e == "gnce") {
            let mut bytes = std::fs::read(&path).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0x40;
            std::fs::write(&path, bytes).unwrap();
            entries += 1;
        }
    }
    assert!(entries > 0, "the cold run must have persisted entries");
    let flipped = run(true);
    assert_eq!(flipped.render_text(), baseline, "bit flips degrade to misses");
    assert_eq!(flipped.analysis.persistent_hits, 0, "{:?}", flipped.analysis);

    // Tear the index header: the whole store degrades to misses.
    std::fs::write(dir.join("cache.idx"), b"not an index\n").unwrap();
    let torn = run(true);
    assert_eq!(torn.render_text(), baseline, "torn index degrades to misses");
    assert_eq!(torn.analysis.persistent_hits, 0, "{:?}", torn.analysis);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[ignore = "wall-clock comparison; run manually (cargo test -- --ignored) on an idle machine"]
fn pooled_crawl_is_faster_than_sequential_on_small() {
    let server = StoreServer::start(generate(CorpusScale::Small, Snapshot::Y2021, 7)).unwrap();
    let addr = server.addr();
    let t0 = std::time::Instant::now();
    let mut seq = Crawler::builder(addr).build().unwrap();
    let sequential = seq.crawl_all().unwrap();
    let t_seq = t0.elapsed();
    let t1 = std::time::Instant::now();
    let pooled = CrawlPool::new(CrawlPoolConfig {
        workers: 8,
        ..CrawlPoolConfig::default()
    })
    .crawl(addr)
    .unwrap();
    let t_pool = t1.elapsed();
    assert_eq!(pooled.outcome.apps, sequential.apps);
    assert!(
        t_pool < t_seq,
        "8 workers ({t_pool:?}) should beat sequential ({t_seq:?})"
    );
}

#[test]
fn campaign_results_content_deterministic_across_runs() {
    use gaugenn::dnn::task::Task;
    use gaugenn::dnn::zoo::{build_for_task, SizeClass};
    use gaugenn::harness::campaign::{run_campaign, Campaign};
    use gaugenn::harness::job::JobSpec;
    use gaugenn::modelfmt::Framework;
    use gaugenn::soc::sched::ThreadConfig;
    use gaugenn::soc::spec::hdks;
    use gaugenn::soc::Backend;

    let g = build_for_task(Task::FaceDetection, 4, SizeClass::Small, true).graph;
    let files = gaugenn::modelfmt::encode(&g, Framework::TfLite).unwrap().files;
    let jobs = vec![Campaign {
        spec: JobSpec {
            warmups: 1,
            runs: 3,
            ..JobSpec::new(1, files[0].0.clone(), Backend::Cpu(ThreadConfig::unpinned(4)))
        },
        files,
    }];
    let collect = || {
        let mut rows: Vec<(String, String)> = run_campaign(&hdks(), &jobs)
            .into_iter()
            .map(|r| {
                let j = r.outcome.expect("job succeeds");
                (r.device, format!("{:.9}", j.mean_latency_ms()))
            })
            .collect();
        rows.sort();
        rows
    };
    assert_eq!(collect(), collect(), "device threads race only in ordering");
}

/// The `lock-order-check` feature must reach the vendored `parking_lot`
/// through feature unification — otherwise `scripts/verify.sh`'s armed
/// run of this suite would silently test nothing extra.
#[test]
fn lock_order_mode_matches_build() {
    assert_eq!(
        gaugenn::parking_lot::lock_order_check_enabled(),
        cfg!(feature = "lock-order-check"),
        "gaugenn/lock-order-check must arm parking_lot/lock-order-check"
    );
}
