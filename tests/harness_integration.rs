//! Integration of the TCP master–slave harness with the rest of the
//! stack: models extracted from crawled APKs are benchmarked through the
//! full Fig. 3 workflow, and the harness's measurements must agree with
//! the analytic estimates the figures are built from.

use gaugenn::core::pipeline::{Pipeline, PipelineConfig};
use gaugenn::dnn::task::Task;
use gaugenn::dnn::zoo::{build_for_task, SizeClass};
use gaugenn::harness::campaign::{run_campaign, Campaign};
use gaugenn::harness::device::DeviceAgent;
use gaugenn::harness::job::JobSpec;
use gaugenn::harness::master::Master;
use gaugenn::modelfmt::Framework;
use gaugenn::playstore::corpus::Snapshot;
use gaugenn::soc::sched::ThreadConfig;
use gaugenn::soc::spec::{device, hdks};
use gaugenn::soc::thermal::ThermalState;
use gaugenn::soc::Backend;

fn cpu4() -> Backend {
    Backend::Cpu(ThreadConfig::unpinned(4))
}

#[test]
fn crawled_model_runs_through_the_real_harness() {
    // Crawl a tiny store, pick a real extracted TFLite model, and push it
    // through the full TCP workflow.
    let report = Pipeline::new(PipelineConfig::tiny(Snapshot::Y2021, 7))
        .run()
        .unwrap();
    let app = report
        .apps
        .iter()
        .find(|a| {
            a.models
                .iter()
                .any(|m| m.framework == Framework::TfLite && m.files.len() == 1)
        })
        .expect("an app with a single-file TFLite model");
    let found = app
        .models
        .iter()
        .find(|m| m.framework == Framework::TfLite && m.files.len() == 1)
        .unwrap();
    let file_name = found.files[0]
        .0
        .rsplit('/')
        .next()
        .unwrap()
        .to_string();
    let files = vec![(file_name.clone(), found.files[0].1.clone())];

    let master = Master::new().unwrap();
    let mut agent = DeviceAgent::new(device("Q845").unwrap());
    let job = JobSpec::new(1, file_name, cpu4());
    let result = master.run_job(&mut agent, &job, &files).unwrap();
    assert_eq!(result.latencies_ms.len(), 10);
    assert!(result.mean_latency_ms() > 0.0);

    // The harness measurement must agree with the analytic estimate the
    // figures use (same model, same device, same backend) within the
    // injected measurement noise and warm-up heating.
    let m = report
        .model(&gaugenn::analysis::dedup::model_checksum(&found.files))
        .expect("model is in the report");
    let analytic = gaugenn::soc::estimate_latency(
        &device("Q845").unwrap(),
        cpu4(),
        &m.trace,
        &ThermalState::cool(),
    )
    .unwrap();
    let ratio = result.mean_latency_ms() / analytic.total_ms;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "harness {} vs analytic {} (ratio {ratio})",
        result.mean_latency_ms(),
        analytic.total_ms
    );
}

#[test]
fn hdk_generation_ordering_through_the_harness() {
    // Fig. 9's generation ordering must also hold when measured through
    // the real TCP workflow, not just analytically.
    let g = build_for_task(Task::FaceDetection, 42, SizeClass::Small, true).graph;
    let files = gaugenn::modelfmt::encode(&g, Framework::TfLite).unwrap().files;
    let jobs = vec![Campaign {
        spec: JobSpec {
            warmups: 1,
            runs: 5,
            ..JobSpec::new(1, files[0].0.clone(), cpu4())
        },
        files,
    }];
    let results = run_campaign(&hdks(), &jobs);
    assert_eq!(results.len(), 3);
    let mean = |dev: &str| {
        results
            .iter()
            .find(|r| r.device == dev)
            .and_then(|r| r.outcome.as_ref().ok())
            .map(|j| j.mean_latency_ms())
            .expect("job succeeded")
    };
    assert!(mean("Q845") > mean("Q855"));
    assert!(mean("Q855") > mean("Q888"));
}

#[test]
fn backend_comparison_through_the_harness() {
    // §6.3 through the wire: XNNPACK modestly faster, NNAPI slower.
    let g = build_for_task(Task::ImageClassification, 43, SizeClass::Small, true).graph;
    let files = gaugenn::modelfmt::encode(&g, Framework::TfLite).unwrap().files;
    let master = Master::new().unwrap();
    let mut agent = DeviceAgent::new(device("Q845").unwrap());
    let mut measure = |id: u64, backend: Backend| {
        let job = JobSpec {
            warmups: 1,
            runs: 5,
            ..JobSpec::new(id, files[0].0.clone(), backend)
        };
        master
            .run_job(&mut agent, &job, &files)
            .unwrap()
            .mean_latency_ms()
    };
    let cpu = measure(1, cpu4());
    let xnn = measure(2, Backend::Xnnpack(ThreadConfig::unpinned(4)));
    let nnapi = measure(3, Backend::Nnapi);
    assert!(xnn < cpu, "xnnpack {xnn} should beat cpu {cpu}");
    assert!(nnapi > cpu, "nnapi {nnapi} should lag cpu {cpu}");
}

#[test]
fn verified_execution_of_extracted_model() {
    // The device agent can actually *run* an extracted model end to end
    // (real forward pass through the reference executor).
    let report = Pipeline::new(PipelineConfig::tiny(Snapshot::Y2021, 7))
        .run()
        .unwrap();
    // Pick the smallest single-file TFLite model to keep execution fast.
    let mut candidates: Vec<_> = report
        .apps
        .iter()
        .flat_map(|a| a.models.iter())
        .filter(|m| m.framework == Framework::TfLite && m.files.len() == 1)
        .collect();
    candidates.sort_by_key(|m| m.files[0].1.len());
    let found = candidates.first().expect("a TFLite model");
    let file_name = found.files[0].0.rsplit('/').next().unwrap().to_string();
    let files = vec![(file_name.clone(), found.files[0].1.clone())];
    let master = Master::new().unwrap();
    let mut agent = DeviceAgent::new(device("Q888").unwrap());
    let job = JobSpec {
        verify_outputs: true,
        warmups: 0,
        runs: 2,
        ..JobSpec::new(5, file_name, cpu4())
    };
    let result = master.run_job(&mut agent, &job, &files).unwrap();
    assert_eq!(result.latencies_ms.len(), 2);
}
