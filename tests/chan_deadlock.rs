//! Regression tests for the channel wait-for deadlock detector
//! (`parking_lot::chanwait` + the instrumented crossbeam shim).
//!
//! The scenario the lock-order graph cannot see: two threads each
//! blocked in `recv()` on channels whose fills depend on each other. No
//! lock is held, so the lock detector is blind — but gaugelint's static
//! wait-for graph knows a send on `a` depends on a recv from `b` and
//! vice versa, and the runtime detector combines that with its
//! blocked-receiver registry to panic *before* the second thread blocks,
//! with both receive sites in the message.
//!
//! The whole file is gated on `lock-order-check` (which forwards to
//! crossbeam's `wait-for-check`); run with `--test-threads=1` — the
//! detector state is process-global.
#![cfg(feature = "lock-order-check")]

use crossbeam::channel;
use parking_lot::chanwait;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;
use std::time::Duration;

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// Poll-recv on `rx` until the detector panics (the peer thread's
/// registration is visible) or the attempt budget runs out. Returns the
/// panic message.
fn recv_until_cycle_panics(rx: &channel::Receiver<u32>) -> String {
    for _ in 0..500 {
        match catch_unwind(AssertUnwindSafe(|| {
            rx.recv_timeout(Duration::from_millis(10))
        })) {
            Ok(_) => continue, // peer not blocked/registered yet — retry
            Err(e) => return panic_message(e),
        }
    }
    String::new()
}

#[test]
fn mutual_recv_cycle_panics_before_blocking_with_both_sites() {
    let (tx_a, rx_a) = channel::unbounded_named::<u32>("cycle.a");
    let (_tx_b, rx_b) = channel::unbounded_named::<u32>("cycle.b");

    // Thread 1 blocks receiving on `a`. The wait-for edges are added
    // only after it has (almost surely) registered, so the *second*
    // receive is deterministically the one that trips the check.
    let t1 = thread::spawn(move || rx_a.recv());
    thread::sleep(Duration::from_millis(50));
    chanwait::add_edge("cycle.a", "cycle.b");
    chanwait::add_edge("cycle.b", "cycle.a");

    let msg = recv_until_cycle_panics(&rx_b);
    assert!(
        msg.contains("wait-for-check") && msg.contains("channel wait cycle"),
        "second recv must panic with a wait-cycle report, got: {msg:?}"
    );
    assert!(
        msg.contains("cycle.a") && msg.contains("cycle.b"),
        "both channel names in the message: {msg}"
    );
    // Both receive *sites* (this file) are named — the blocked thread's
    // and the panicking thread's.
    assert!(
        msg.matches("chan_deadlock.rs").count() >= 2,
        "both recv sites in the message: {msg}"
    );

    // The blocked thread is recoverable the ordinary channel way:
    // dropping every sender of `a` turns its blocked recv into a clean
    // disconnect, proving the detector fired before anything wedged.
    drop(tx_a);
    assert!(t1.join().expect("thread 1 must not panic").is_err());
}

#[test]
fn waitfor_graph_json_arms_the_detector() {
    // Edges in exactly the shape the linter emits with `--waitfor`.
    chanwait::load_graph_str(
        r#"{
  "version": 1,
  "channels": [
    {"name": "json.x", "created": "a.rs:1", "senders": [], "receivers": []}
  ],
  "wait_edges": [
    {"from": "json.x", "to": "json.y", "via": "a::f", "site": "a.rs:1"},
    {"from": "json.y", "to": "json.x", "via": "b::g", "site": "b.rs:2"}
  ]
}"#,
    );
    let (tx_x, rx_x) = channel::unbounded_named::<u32>("json.x");
    let (_tx_y, rx_y) = channel::unbounded_named::<u32>("json.y");
    let t1 = thread::spawn(move || rx_x.recv());
    thread::sleep(Duration::from_millis(50));

    let msg = recv_until_cycle_panics(&rx_y);
    assert!(
        msg.contains("json.x") && msg.contains("json.y"),
        "JSON-loaded edges must close the cycle: {msg:?}"
    );
    drop(tx_x);
    assert!(t1.join().expect("thread 1 must not panic").is_err());
}

#[test]
fn acyclic_channels_stay_quiet() {
    // One-direction dependency only: no cycle, both receives proceed.
    chanwait::add_edge("quiet.a", "quiet.b");
    let (tx_a, rx_a) = channel::unbounded_named::<u32>("quiet.a");
    let (tx_b, rx_b) = channel::unbounded_named::<u32>("quiet.b");
    let t1 = thread::spawn(move || rx_a.recv());
    thread::sleep(Duration::from_millis(20));
    assert_eq!(
        rx_b.recv_timeout(Duration::from_millis(20)),
        Err(channel::RecvTimeoutError::Timeout),
        "a one-way dependency must not be reported as a cycle"
    );
    tx_a.send(7).expect("send");
    assert_eq!(t1.join().expect("no panic"), Ok(7));
    drop(tx_b);
}
