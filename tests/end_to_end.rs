//! End-to-end integration: the full pipeline (TCP store → crawler →
//! extraction → validation → offline analyses) with cross-crate
//! assertions that the *measured* corpus statistics reproduce the planted
//! structure.

use gaugenn::core::experiments::{backends, offline, runtime};
use gaugenn::core::pipeline::{Pipeline, PipelineConfig, PipelineReport};
use gaugenn::playstore::corpus::{CorpusScale, Snapshot};
use gaugenn::soc::spec::all_devices;
use std::sync::OnceLock;

fn r2021() -> &'static PipelineReport {
    static CELL: OnceLock<PipelineReport> = OnceLock::new();
    CELL.get_or_init(|| {
        Pipeline::new(PipelineConfig::builder(CorpusScale::Tiny, Snapshot::Y2021, 99).build())
            .run()
            .expect("pipeline")
    })
}

fn r2020() -> &'static PipelineReport {
    static CELL: OnceLock<PipelineReport> = OnceLock::new();
    CELL.get_or_init(|| {
        Pipeline::new(PipelineConfig::builder(CorpusScale::Tiny, Snapshot::Y2020, 99).build())
            .run()
            .expect("pipeline")
    })
}

#[test]
fn dataset_summary_matches_targets() {
    let r = r2021();
    let t = gaugenn::playstore::corpus::Targets::for_scale(
        gaugenn::playstore::corpus::CorpusScale::Tiny,
        Snapshot::Y2021,
    );
    assert_eq!(r.dataset.total_apps, t.total_apps as usize);
    assert_eq!(r.dataset.ml_apps, t.ml_lib_apps as usize);
    assert_eq!(
        r.dataset.benchmarkable_apps,
        (t.ml_lib_apps - t.obfuscated_apps) as usize
    );
    assert_eq!(r.dataset.cloud_apps, t.cloud_apps as usize);
    assert_eq!(r.dataset.nnapi_apps, t.nnapi_apps as usize);
    assert_eq!(r.dataset.snpe_apps, t.snpe_apps as usize);
}

#[test]
fn every_experiment_runs_on_the_same_report() {
    let r21 = r2021();
    let r20 = r2020();
    // Offline.
    assert!(!offline::tab2(r20, r21).render().is_empty());
    assert!(offline::tab3(r21).identified_fraction() > 0.5);
    assert!(!offline::fig4(r21).per_framework.is_empty());
    assert!(!offline::fig5(r20, r21).rows.is_empty());
    assert!(!offline::fig6(r21).rows.is_empty());
    assert!(!offline::fig7(r21).rows.is_empty());
    assert!(offline::sec45(r21).unique_models > 0);
    assert!(offline::sec61(r21).models > 0);
    assert!(offline::fig15(r21).total > 0);
    // Runtime.
    let sweep = runtime::latency_sweep(r21, &all_devices());
    assert_eq!(sweep.rows.len(), r21.models.len() * 6);
    assert!(!runtime::fig8(&sweep).fits.is_empty());
    assert!(!runtime::fig9(&sweep).ecdfs.is_empty());
    assert!(!runtime::fig10(r21).unwrap().rows.is_empty());
    assert!(!runtime::tab4(r21).unwrap().rows.is_empty());
    // Backends.
    assert!(backends::fig11(r21).common_models > 0);
    assert!(!backends::fig12(r21).rows.is_empty());
    assert!(!backends::fig13(r21).unwrap().rows.is_empty());
    assert!(!backends::fig14(r21).unwrap().rows.is_empty());
}

#[test]
fn snapshots_share_model_identities() {
    // Models present in both snapshots must have identical checksums —
    // otherwise Fig. 5's add/remove diff would be meaningless.
    let sums20: std::collections::BTreeSet<&str> = r2020()
        .models
        .iter()
        .map(|m| m.checksum.as_str())
        .collect();
    let sums21: std::collections::BTreeSet<&str> = r2021()
        .models
        .iter()
        .map(|m| m.checksum.as_str())
        .collect();
    let shared = sums20.intersection(&sums21).count();
    assert!(shared > 0, "snapshots must overlap in surviving models");
    assert!(
        sums21.len() > sums20.len(),
        "the 2021 snapshot must carry more unique models"
    );
}

#[test]
fn duplication_structure_survives_the_wire() {
    // §4.5: some models appear in multiple apps, byte-identical.
    let r = r2021();
    assert!(
        r.models.iter().any(|m| m.app_count >= 2),
        "at least one model must be shared across apps"
    );
    let d = offline::sec45(r);
    assert!(d.shared_instance_fraction > 0.0);
    assert_eq!(d.unique_models, r.models.len());
}

#[test]
fn snpe_apps_ship_dual_formats() {
    // §6.3: SNPE apps deploy both TFLite and dlc variants of one model.
    let r = r2021();
    let snpe_app = r
        .apps
        .iter()
        .find(|a| a.uses_snpe)
        .expect("tiny corpus has an SNPE app");
    let has_tflite = snpe_app
        .models
        .iter()
        .any(|m| m.framework == gaugenn::modelfmt::Framework::TfLite);
    let has_dlc = snpe_app
        .models
        .iter()
        .any(|m| m.framework == gaugenn::modelfmt::Framework::Snpe);
    assert!(has_tflite && has_dlc, "SNPE app must ship both variants");
}

#[test]
fn query_routes_serve_the_pipelines_index_under_chaos() {
    use gaugenn::index::{AppQuery, ModelQuery};
    use gaugenn::modelfmt::Framework;
    use gaugenn::playstore::corpus::generate;
    use gaugenn::playstore::{
        FaultKind, FaultPlan, FaultPlanConfig, QueryClient, ServerOptions, StoreServer,
    };

    let r = r2021();
    let index = r.corpus_index.clone();
    // The store injects resets and throttling statuses; two faults per
    // route stays inside the client's retry budget, so every query must
    // still succeed — through typed retries, never a panic.
    let chaos = FaultPlan::new(FaultPlanConfig {
        seed: 5,
        fault_permille: 350,
        kinds: vec![FaultKind::Reset, FaultKind::TransientStatus],
        max_faults_per_route: 2,
        ..FaultPlanConfig::default()
    });
    let server = StoreServer::start_with(
        generate(CorpusScale::Tiny, Snapshot::Y2021, 99),
        ServerOptions {
            chaos: Some(chaos),
            index: Some(index.clone()),
            ..ServerOptions::default()
        },
    )
    .expect("server");
    let mut client = QueryClient::builder(server.addr()).build().expect("client");

    // Wire answers must agree with the in-process index and the analysed
    // corpus, ranked FLOPs-descending (the determinism contract).
    let all = client.models(&ModelQuery::default()).expect("model query");
    assert_eq!(all.len(), index.model_count());
    assert_eq!(all.len(), r.models.len());
    assert!(all.windows(2).all(|w| w[0].flops >= w[1].flops));

    // Per-framework slices partition consistently with the records.
    for fw in Framework::ALL {
        let slice = client
            .models(&ModelQuery {
                frameworks: vec![fw.name().to_string()],
                ..ModelQuery::default()
            })
            .expect("framework query");
        let expect = r.models.iter().filter(|m| m.framework == fw).count();
        assert_eq!(slice.len(), expect, "framework {}", fw.name());
    }

    let ml_apps = client
        .apps(&AppQuery {
            ml_only: true,
            ..AppQuery::default()
        })
        .expect("app query");
    assert_eq!(
        ml_apps.len(),
        r.apps.iter().filter(|a| a.is_ml_app()).count()
    );

    let stats = client.stats().expect("stats");
    assert!(stats.iter().any(|(k, _)| k == "models"));

    let st = client.transport_stats();
    assert!(
        st.retries + st.reconnects > 0,
        "chaos must have cost at least one retry across {} requests",
        st.requests
    );
}

#[test]
fn etl_index_answers_store_queries() {
    use gaugenn::analysis::etl::Filter;
    let r = r2021();
    let ml = r.index.count(&Filter::EqBool("is_ml".into(), true));
    assert_eq!(ml, r.dataset.ml_apps);
    let cats = r.index.terms("category", None);
    assert!(cats.len() >= 30, "category aggregation works");
    let popular = r
        .index
        .count(&Filter::Range("downloads".into(), 1e8, f64::INFINITY));
    assert!(popular < r.dataset.total_apps);
}
