//! # gaugeNN
//!
//! A full reproduction of *"Smart at what cost? Characterising Mobile Deep
//! Neural Networks in the wild"* (Almeida, Laskaridis, et al., IMC 2021).
//!
//! This meta-crate re-exports every subsystem of the workspace under one
//! namespace. See `DESIGN.md` for the system inventory and the mapping from
//! paper tables/figures to modules, and `EXPERIMENTS.md` for reproduced
//! results.
//!
//! ## Quickstart
//!
//! ```
//! use gaugenn::core::pipeline::{Pipeline, PipelineConfig};
//! use gaugenn::playstore::corpus::Snapshot;
//!
//! // Build a tiny deterministic store snapshot, crawl it over TCP, extract
//! // and validate every model, then summarise the corpus.
//! let cfg = PipelineConfig::tiny(Snapshot::Y2021, 7);
//! let report = Pipeline::new(cfg).run().expect("pipeline");
//! assert!(report.dataset.total_models > 0);
//! ```

// Re-exported so integration suites can assert the `lock-order-check`
// feature actually reached the vendored crate (feature unification).
pub use parking_lot;

pub use gaugenn_analysis as analysis;
pub use gaugenn_apk as apk;
pub use gaugenn_core as core;
pub use gaugenn_dnn as dnn;
pub use gaugenn_harness as harness;
pub use gaugenn_index as index;
pub use gaugenn_modelfmt as modelfmt;
pub use gaugenn_playstore as playstore;
pub use gaugenn_sched as sched;
pub use gaugenn_power as power;
pub use gaugenn_soc as soc;
