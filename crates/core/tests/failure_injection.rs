//! Crash-fault injection matrix: really SIGKILL a child run at each
//! registered crash point, resume it, and demand **byte-identical**
//! stdout — at several workers × sched-mode combinations.
//!
//! The child is this same test binary re-invoked with
//! `GAUGENN_CRASH_CHILD` set, which turns the otherwise-inert
//! [`crash_child_runner`] test into the workload: a journaled,
//! persistently-cached tiny pipeline (or a journaled campaign) whose
//! crash point is armed through the `GAUGENN_CRASH` environment the
//! [`gaugenn_core::crashpoint`] layer reads. `CrashMode::Kill` delivers
//! a genuine `SIGKILL` — no destructors, no flushing — so everything the
//! journal and cache store claim about torn tails is exercised against
//! the real failure mode, not a polite unwind.

use gaugenn_core::pipeline::{Pipeline, PipelineConfig, PipelineReport};
use gaugenn_playstore::corpus::Snapshot;
use gaugenn_sched::SchedMode;
use std::collections::BTreeSet;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;

const SEED: u64 = 7;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gaugenn-failure-injection-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The child workload. Inert under `cargo test`; becomes the pipeline
/// (or campaign) under test when the parent re-invokes this binary with
/// `GAUGENN_CRASH_CHILD` set. The armed `GAUGENN_CRASH` point kills the
/// process mid-run; without one the run completes and writes its
/// rendered report (or commit ledger) for the parent to compare.
#[test]
fn crash_child_runner() {
    let Ok(mode) = std::env::var("GAUGENN_CRASH_CHILD") else {
        return;
    };
    match mode.as_str() {
        "pipeline" => pipeline_child(),
        "campaign" => campaign_child(),
        other => panic!("unknown child mode {other}"),
    }
}

fn pipeline_child() {
    let dir = PathBuf::from(std::env::var("GAUGENN_CHILD_DIR").expect("child dir"));
    let mut cfg = PipelineConfig::tiny(Snapshot::Y2021, SEED);
    cfg.workers = env_usize("GAUGENN_CHILD_WORKERS", 1);
    cfg.analysis_workers = env_usize("GAUGENN_CHILD_ANALYSIS_WORKERS", 1);
    cfg.sched = std::env::var("GAUGENN_CHILD_SCHED")
        .ok()
        .and_then(|s| SchedMode::parse(&s))
        .unwrap_or(SchedMode::Lpt);
    cfg.journal_dir = Some(dir.join("journal"));
    cfg.analysis_cache_dir = Some(dir.join("cache"));
    cfg.resume = std::env::var("GAUGENN_CHILD_RESUME").is_ok();
    let report = Pipeline::new(cfg).run().expect("child pipeline");
    fs::write(dir.join("report.txt"), report.render_text()).expect("write report");
}

/// Spawn the child runner with the given extra env; returns its exit
/// status.
fn spawn_child(mode: &str, dir: &Path, envs: &[(&str, String)]) -> std::process::ExitStatus {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = Command::new(exe);
    cmd.args(["crash_child_runner", "--exact", "--nocapture"])
        .env_remove("GAUGENN_CRASH")
        .env_remove("GAUGENN_CRASH_MODE")
        .env("GAUGENN_CRASH_CHILD", mode)
        .env("GAUGENN_CHILD_DIR", dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.status().expect("spawn child")
}

fn killed_by_sigkill(status: std::process::ExitStatus) -> bool {
    use std::os::unix::process::ExitStatusExt;
    status.signal() == Some(9)
}

fn baseline(workers: usize, analysis_workers: usize, sched: SchedMode) -> PipelineReport {
    let mut cfg = PipelineConfig::tiny(Snapshot::Y2021, SEED);
    cfg.workers = workers;
    cfg.analysis_workers = analysis_workers;
    cfg.sched = sched;
    Pipeline::new(cfg).run().expect("baseline")
}

/// The tentpole matrix: SIGKILL at three registered points, at three
/// workers × sched-mode shapes, resume each, and diff stdout bytes.
#[test]
fn sigkill_matrix_resume_is_byte_identical() {
    // render_text is worker- and sched-invariant by contract, so one
    // reference serves the whole matrix (other tests pin the contract).
    let reference = baseline(1, 1, SchedMode::Lpt).render_text();
    let combos: [(usize, usize, &str); 3] =
        [(1, 1, "lpt"), (4, 2, "static"), (2, 4, "stealing")];
    let points: [(&str, u64); 3] = [("post-crawl", 1), ("model-analysis", 2), ("cache-append", 2)];
    for (workers, analysis_workers, sched) in combos {
        for (point, nth) in points {
            let dir = scratch(&format!("matrix-{workers}-{sched}-{point}"));
            fs::create_dir_all(&dir).unwrap();
            let shape = [
                ("GAUGENN_CHILD_WORKERS", workers.to_string()),
                ("GAUGENN_CHILD_ANALYSIS_WORKERS", analysis_workers.to_string()),
                ("GAUGENN_CHILD_SCHED", sched.to_string()),
            ];
            let mut armed = shape.to_vec();
            armed.push(("GAUGENN_CRASH", format!("{point}:{nth}")));
            armed.push(("GAUGENN_CRASH_MODE", "kill".to_string()));
            let status = spawn_child("pipeline", &dir, &armed);
            assert!(
                killed_by_sigkill(status),
                "{workers}w/{sched} {point}:{nth}: child must die by SIGKILL, got {status:?}"
            );
            assert!(
                !dir.join("report.txt").exists(),
                "a killed child must not have reported"
            );

            let mut resume = shape.to_vec();
            resume.push(("GAUGENN_CHILD_RESUME", "1".to_string()));
            let status = spawn_child("pipeline", &dir, &resume);
            assert!(status.success(), "{workers}w/{sched} {point}: resume failed");
            let resumed = fs::read_to_string(dir.join("report.txt")).expect("resumed report");
            assert_eq!(
                resumed, reference,
                "{workers}w/{sched} {point}:{nth}: resumed stdout diverged"
            );
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

/// Pipeline-level journal corruption: flip a bit in the journal a killed
/// run left behind — resume must degrade to "replay from the last good
/// record", never error, never diverge.
#[test]
fn corrupted_journal_never_errors_and_never_diverges() {
    let reference = baseline(1, 1, SchedMode::Lpt).render_text();
    let dir = scratch("corrupt");
    fs::create_dir_all(&dir).unwrap();
    let armed = [
        ("GAUGENN_CRASH", "model-analysis:2".to_string()),
        ("GAUGENN_CRASH_MODE", "kill".to_string()),
    ];
    let status = spawn_child("pipeline", &dir, &armed);
    assert!(killed_by_sigkill(status));

    let journal = dir.join("journal").join("run-Y2021.gnjl");
    let mut raw = fs::read(&journal).expect("journal survives the kill");
    assert!(raw.len() > 64, "journaled crawl should be substantial");
    // Flip one bit mid-file: replay must stop at the last good record.
    let at = raw.len() / 2;
    raw[at] ^= 0x10;
    fs::write(&journal, &raw).unwrap();

    let resume = [("GAUGENN_CHILD_RESUME", "1".to_string())];
    let status = spawn_child("pipeline", &dir, &resume);
    assert!(status.success(), "corruption must degrade, not error");
    let resumed = fs::read_to_string(dir.join("report.txt")).unwrap();
    assert_eq!(resumed, reference, "corruption must never diverge output");
    let _ = fs::remove_dir_all(&dir);
}

/// A journal from a different run configuration (stale generation) is
/// discarded wholesale: the resumed run recrawls everything and still
/// matches its own baseline.
#[test]
fn stale_generation_journal_is_discarded_not_replayed() {
    let dir = scratch("stale");
    let mut cfg = PipelineConfig::tiny(Snapshot::Y2021, SEED);
    cfg.journal_dir = Some(dir.join("journal"));
    Pipeline::new(cfg).run().expect("first run");

    let mut other = PipelineConfig::tiny(Snapshot::Y2021, SEED + 1);
    other.journal_dir = Some(dir.join("journal"));
    other.resume = true;
    let resumed = Pipeline::new(other).run().expect("stale journal must not error");
    assert!(!resumed.crawl_replayed, "stale journal must not replay");
    assert_eq!(resumed.crawl_stats.journal_restores, 0);
    let mut fresh = PipelineConfig::tiny(Snapshot::Y2021, SEED + 1);
    fresh.probe_device_profiles = true;
    let fresh = Pipeline::new(fresh).run().unwrap();
    assert_eq!(resumed.render_text(), fresh.render_text());
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Campaign: job-commit crash + resume via the commit hook seam.
// ---------------------------------------------------------------------

fn campaign_jobs() -> Vec<gaugenn_harness::campaign::Campaign> {
    use gaugenn_dnn::task::Task;
    use gaugenn_dnn::zoo::{build_for_task, SizeClass};
    use gaugenn_harness::job::JobSpec;
    use gaugenn_soc::sched::ThreadConfig;
    use gaugenn_soc::Backend;
    (1..=3u64)
        .map(|id| {
            let g = build_for_task(Task::MovementTracking, id, SizeClass::Small, true).graph;
            let files = gaugenn_modelfmt::encode(&g, gaugenn_modelfmt::Framework::TfLite)
                .expect("encode")
                .files;
            gaugenn_harness::campaign::Campaign {
                spec: JobSpec {
                    runs: 2,
                    warmups: 1,
                    ..JobSpec::new(id, files[0].0.clone(), Backend::Cpu(ThreadConfig::unpinned(2)))
                },
                files,
            }
        })
        .collect()
}

fn campaign_child() {
    use gaugenn_core::crashpoint::{self, CrashPoint};
    use gaugenn_harness::campaign::{run_campaign_with, CampaignConfig, CampaignResult};

    let dir = PathBuf::from(std::env::var("GAUGENN_CHILD_DIR").expect("child dir"));
    let ledger = dir.join("commits.log");
    let resume = std::env::var("GAUGENN_CHILD_RESUME").is_ok();
    let completed: BTreeSet<(String, u64)> = if resume {
        fs::read_to_string(&ledger)
            .unwrap_or_default()
            .lines()
            .filter_map(|l| {
                let (dev, id) = l.split_once(' ')?;
                Some((dev.to_string(), id.parse().ok()?))
            })
            .collect()
    } else {
        BTreeSet::new()
    };

    let ledger_path = ledger.clone();
    let config = CampaignConfig {
        // The commit hook is the journaling seam: make the pair durable
        // (append + flush), then cross the registered job-commit crash
        // point — the armed kill lands *after* the commit it saw.
        on_commit: Some(Arc::new(move |r: &CampaignResult| {
            let mut f = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&ledger_path)
                .expect("open ledger");
            writeln!(f, "{} {}", r.device, r.job_id).expect("append ledger");
            f.flush().expect("flush ledger");
            crashpoint::hit(CrashPoint::JobCommit);
        })),
        completed: (!completed.is_empty()).then(|| Arc::new(completed)),
        ..CampaignConfig::default()
    };
    let devices = vec![gaugenn_soc::spec::device("Q888").expect("device")];
    run_campaign_with(&devices, &campaign_jobs(), &config);
}

/// SIGKILL at the second job commit, then resume with the durable ledger
/// as the skip set: every (device, job) pair is committed exactly once
/// across the two attempts.
#[test]
fn sigkill_at_job_commit_then_resume_covers_each_pair_once() {
    let dir = scratch("job-commit");
    fs::create_dir_all(&dir).unwrap();
    let armed = [
        ("GAUGENN_CRASH", "job-commit:2".to_string()),
        ("GAUGENN_CRASH_MODE", "kill".to_string()),
    ];
    let status = spawn_child("campaign", &dir, &armed);
    assert!(killed_by_sigkill(status), "campaign child must die, got {status:?}");
    let ledger = dir.join("commits.log");
    let after_crash = fs::read_to_string(&ledger).expect("ledger survives");
    assert_eq!(
        after_crash.lines().count(),
        2,
        "both committed jobs were durable before the kill: {after_crash:?}"
    );

    let status = spawn_child(
        "campaign",
        &dir,
        &[("GAUGENN_CHILD_RESUME", "1".to_string())],
    );
    assert!(status.success(), "resume must complete");
    let full = fs::read_to_string(&ledger).unwrap();
    let mut pairs: Vec<&str> = full.lines().collect();
    pairs.sort_unstable();
    let distinct: BTreeSet<&str> = pairs.iter().copied().collect();
    assert_eq!(pairs.len(), 3, "each pair exactly once: {full:?}");
    assert_eq!(distinct.len(), 3, "no pair re-committed: {full:?}");
    let _ = fs::remove_dir_all(&dir);
}
