//! Seeded crash-fault injection: named kill points at stage boundaries.
//!
//! The chaos layer (`playstore::chaos`) makes the *network* a fault
//! domain; this module makes the **process itself** one. A
//! [`CrashPlan`] arms exactly one named [`CrashPoint`] — a stage
//! boundary the pipeline declares by calling [`hit`] — and
//! deterministically takes the process down the `n`-th time execution
//! reaches it. Everything the journal layer (`core::journal`) and the
//! persistent cache claim about crash-tolerance is proven against these
//! points: the failure-injection matrix SIGKILLs a child run at each
//! point and asserts the resumed run's stdout is byte-identical to an
//! uninterrupted one.
//!
//! # Discipline
//!
//! Same rules as the chaos store:
//! * **Deterministic.** A plan is (point, nth-hit, mode); no wall clock,
//!   no entropy. Given the same schedule of `hit` calls, the same call
//!   crashes. (Across *worker threads* the global hit counter interleaves
//!   nondeterministically — which is exactly the point: recovery must be
//!   correct wherever in the stage the process dies.)
//! * **Off by default, zero-cost-ish.** Unarmed, `hit` is one atomic
//!   pointer load.
//! * **Typed unwind for tests.** `CrashMode::Panic` throws a
//!   [`CrashSignal`] payload instead of killing the process, so
//!   in-process tests and `crashbench` can `catch_unwind` the "crash"
//!   and immediately exercise resume in the same process.
//!
//! # Arming
//!
//! Environment (used by the child-process matrix and `verify.sh`):
//!
//! ```text
//! GAUGENN_CRASH=model-analysis:3   # die on the 3rd model-analysis hit
//! GAUGENN_CRASH_MODE=kill          # kill (SIGKILL) | abort | panic
//! ```
//!
//! or programmatic via [`arm`] / [`disarm`] (used by `crashbench`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A named stage boundary the process can be scheduled to die at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// After the crawl finished and its journal records are durable,
    /// before any analysis starts.
    PostCrawl,
    /// Per-app model extraction (analysis phase 1), once per app unit.
    AppExtract,
    /// Per-model analysis (analysis phase 2), once per model unit.
    ModelAnalysis,
    /// Cache-store append: after an entry file is atomically published
    /// but *before* its index line lands — the torn-append window the
    /// corruption policy must absorb.
    CacheAppend,
    /// Campaign job commit: a device worker finished a job and its
    /// result was handed to the commit hook.
    JobCommit,
}

/// All points, in pipeline order (used by `crashbench` to sweep).
pub const ALL_POINTS: [CrashPoint; 5] = [
    CrashPoint::PostCrawl,
    CrashPoint::AppExtract,
    CrashPoint::ModelAnalysis,
    CrashPoint::CacheAppend,
    CrashPoint::JobCommit,
];

impl CrashPoint {
    /// Stable external name (env var / CLI / bench tables).
    pub fn name(self) -> &'static str {
        match self {
            CrashPoint::PostCrawl => "post-crawl",
            CrashPoint::AppExtract => "app-extract",
            CrashPoint::ModelAnalysis => "model-analysis",
            CrashPoint::CacheAppend => "cache-append",
            CrashPoint::JobCommit => "job-commit",
        }
    }

    /// Parse an external name; `None` for anything unknown.
    pub fn parse(s: &str) -> Option<CrashPoint> {
        ALL_POINTS.into_iter().find(|p| p.name() == s)
    }
}

/// How the armed point takes the process down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// Real SIGKILL to ourselves: no destructors, no atexit, no flushing
    /// — the honest crash. Falls back to [`CrashMode::Abort`] if the
    /// signal cannot be delivered.
    Kill,
    /// `std::process::abort()`: still no unwinding, but raised in-process.
    Abort,
    /// Unwind with a [`CrashSignal`] panic payload (in-test crashes).
    Panic,
}

impl CrashMode {
    fn parse(s: &str) -> Option<CrashMode> {
        match s {
            "kill" => Some(CrashMode::Kill),
            "abort" => Some(CrashMode::Abort),
            "panic" => Some(CrashMode::Panic),
            _ => None,
        }
    }
}

/// Panic payload thrown by [`CrashMode::Panic`]. Tests downcast to this
/// to tell an injected crash from a genuine bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashSignal {
    /// The point that fired.
    pub point: &'static str,
    /// Which hit fired (1-based).
    pub hit: u64,
}

/// An armed crash: die on the `after`-th hit of `point`.
#[derive(Debug)]
pub struct CrashPlan {
    point: CrashPoint,
    /// 1-based hit count that fires; `3` means the third [`hit`] call.
    after: u64,
    mode: CrashMode,
    seen: AtomicU64,
}

impl CrashPlan {
    /// Build a plan. `after` is clamped to at least 1.
    pub fn new(point: CrashPoint, after: u64, mode: CrashMode) -> CrashPlan {
        CrashPlan {
            point,
            after: after.max(1),
            mode,
            seen: AtomicU64::new(0),
        }
    }

    /// Parse the `GAUGENN_CRASH` form `point[:n]` (n defaults to 1).
    pub fn parse(spec: &str, mode: CrashMode) -> Option<CrashPlan> {
        let (name, nth) = match spec.split_once(':') {
            Some((name, n)) => (name, n.trim().parse::<u64>().ok()?),
            None => (spec, 1),
        };
        Some(CrashPlan::new(CrashPoint::parse(name.trim())?, nth, mode))
    }
}

/// The installed plan. A `Mutex<Option<Arc<…>>>` rather than a bare
/// `OnceLock` so tests and `crashbench` can re-arm between runs; the hot
/// path avoids the lock entirely via [`ARMED`].
static PLAN: Mutex<Option<Arc<CrashPlan>>> = Mutex::new(None);
/// Fast-path flag: false ⇒ `hit` returns after one atomic load.
static ARMED: AtomicU64 = AtomicU64::new(0);
/// One-time env bootstrap.
static ENV_INIT: OnceLock<()> = OnceLock::new();

/// Install a plan (replacing any previous one) and reset its hit count.
pub fn arm(plan: CrashPlan) {
    let mut slot = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    *slot = Some(Arc::new(plan));
    ARMED.store(1, Ordering::SeqCst);
}

/// Remove the installed plan.
pub fn disarm() {
    let mut slot = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    *slot = None;
    ARMED.store(0, Ordering::SeqCst);
}

/// Read `GAUGENN_CRASH` / `GAUGENN_CRASH_MODE` once. A malformed spec
/// arms nothing — fault injection must never break a production run.
fn init_from_env() {
    ENV_INIT.get_or_init(|| {
        let Ok(spec) = std::env::var("GAUGENN_CRASH") else {
            return;
        };
        let mode = std::env::var("GAUGENN_CRASH_MODE")
            .ok()
            .and_then(|m| CrashMode::parse(&m))
            .unwrap_or(CrashMode::Kill);
        if let Some(plan) = CrashPlan::parse(&spec, mode) {
            arm(plan);
        }
    });
}

/// Declare a stage boundary. If the armed plan matches and this is its
/// `after`-th hit, the process dies (or unwinds, in panic mode).
pub fn hit(point: CrashPoint) {
    init_from_env();
    if ARMED.load(Ordering::SeqCst) == 0 {
        return;
    }
    let plan = {
        let slot = PLAN.lock().unwrap_or_else(|e| e.into_inner());
        match slot.as_ref() {
            Some(p) if p.point == point => Arc::clone(p),
            _ => return,
        }
    };
    let seen = plan.seen.fetch_add(1, Ordering::SeqCst) + 1;
    if seen != plan.after {
        return;
    }
    crash(plan.mode, point, seen);
}

fn crash(mode: CrashMode, point: CrashPoint, hit: u64) {
    match mode {
        CrashMode::Panic => std::panic::panic_any(CrashSignal {
            point: point.name(),
            hit,
        }),
        CrashMode::Abort => std::process::abort(),
        CrashMode::Kill => {
            // SIGKILL ourselves via /bin/kill (no libc binding in the
            // build environment). Spin until delivery; if the signal
            // could not be sent at all, abort — an armed crash point
            // must never be survived.
            let pid = std::process::id().to_string();
            let sent = std::process::Command::new("kill")
                .args(["-9", &pid])
                .status()
                .map(|s| s.success())
                .unwrap_or(false);
            if sent {
                loop {
                    std::hint::spin_loop();
                }
            }
            std::process::abort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Arm/disarm touch process-global state; serialise the tests that
    /// do, and have them use only [`CrashPoint::JobCommit`] — the one
    /// point no other test in this binary ever hits.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn names_roundtrip() {
        for p in ALL_POINTS {
            assert_eq!(CrashPoint::parse(p.name()), Some(p));
        }
        assert_eq!(CrashPoint::parse("no-such-point"), None);
    }

    #[test]
    fn spec_parsing() {
        let p = CrashPlan::parse("model-analysis:3", CrashMode::Panic).unwrap();
        assert_eq!(p.point, CrashPoint::ModelAnalysis);
        assert_eq!(p.after, 3);
        let p = CrashPlan::parse("post-crawl", CrashMode::Panic).unwrap();
        assert_eq!(p.after, 1);
        assert!(CrashPlan::parse("bogus:2", CrashMode::Panic).is_none());
        assert!(CrashPlan::parse("post-crawl:x", CrashMode::Panic).is_none());
    }

    #[test]
    fn panic_mode_fires_on_nth_hit_with_typed_payload() {
        let _serial = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        arm(CrashPlan::new(CrashPoint::JobCommit, 2, CrashMode::Panic));
        hit(CrashPoint::PostCrawl); // wrong point: ignored
        hit(CrashPoint::JobCommit); // 1st hit: survives
        let err = std::panic::catch_unwind(|| hit(CrashPoint::JobCommit))
            .expect_err("2nd hit must unwind");
        let sig = err.downcast_ref::<CrashSignal>().expect("typed payload");
        assert_eq!(sig.point, "job-commit");
        assert_eq!(sig.hit, 2);
        // Fired plans stay spent: a 3rd hit does nothing.
        hit(CrashPoint::JobCommit);
        disarm();
    }

    #[test]
    fn disarmed_hits_are_free() {
        let _serial = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        disarm();
        for p in ALL_POINTS {
            hit(p);
        }
    }
}
