//! Parallel offline analysis with a content-addressed model cache.
//!
//! The paper's offline stage (§4–§6: extraction, DAG decode, FLOPs/params
//! tracing, md5 + per-layer checksumming) used to run as one sequential
//! loop over the crawled corpus. [`AnalysisPool`] fans it out over N
//! worker threads in two scheduled phases sharing the
//! size-aware-assignment + ordered-merge discipline of
//! [`gaugenn_playstore::pool::CrawlPool`]:
//!
//! 1. **Extraction** — work units are apps, sized by container bytes
//!    (APK + OBBs + bundle), partitioned by the [`gaugenn_sched`]
//!    scheduler ([`SchedMode::Lpt`] by default; `GAUGENN_SCHED`
//!    overrides).
//! 2. **Model analysis** — work units are the *individual model files*
//!    found in phase 1, sized by their file bytes, scheduled the same
//!    way. One model-dense app no longer straggles its shard: its models
//!    spread across the fleet.
//!
//! The merge walks apps (and their models) in corpus-index order, so the
//! produced models, instances, index docs and counters are
//! **byte-identical to the sequential run at any worker count and under
//! any scheduling mode** — assignment moves wall-clock between workers,
//! never content.
//!
//! # The content-addressed cache
//!
//! The paper's dataset is heavily duplicated — most model instances are
//! byte-identical copies shipped by many apps — so the expensive work
//! (graph decode, [`trace_graph`], [`classify_graph`], [`inspect`],
//! [`layer_checksums`]) is keyed by the cheap [`model_checksum`] over the
//! raw bytes. The [`ModelCache`] is a sharded map (per-shard mutex, so
//! workers hashing different models never contend on one lock) of
//! compute-once slots: the first worker to claim a checksum computes the
//! full analysis under the slot's own lock while later instances block on
//! that slot and then attach to the finished result. Failed decodes are
//! cached too — an obfuscated model shipped by 40 apps is probed once,
//! not 40 times — while still charging one `failed_candidates` count per
//! instance, exactly as the sequential loop did.
//!
//! With [`AnalysisConfig::cache_dir`] set the cache is additionally
//! backed by a persistent [`CacheStore`]: the first claimant of a
//! checksum consults the on-disk store before computing, so the second
//! snapshot of a two-snapshot `repro` run (or a whole later invocation
//! pointed at the same directory) attaches to the first snapshot's
//! finished analyses. Persistent hits are tracked separately
//! ([`AnalysisStats::persistent_hits`]) and deliberately do **not**
//! perturb `cache_hits`/`cache_misses` — those appear in the
//! deterministic report render, which must stay byte-identical between
//! cold and warm runs.
//!
//! # Determinism
//!
//! * which worker analyses which unit is a pure function of `(unit
//!   sizes, workers, mode, seed)`, all fixed before any thread starts —
//!   no runtime work stealing, no shared queues;
//! * the cache only memoises a pure function of the model bytes, so the
//!   race for who computes a checksum first never changes *what* is
//!   computed;
//! * cache hit/miss totals are interleaving-independent (misses = unique
//!   checksums, hits = instances − misses) because slots are claimed
//!   exactly once under the shard lock;
//! * the merge assembles everything in corpus order, so first-sighting
//!   order — and with it model numbering, Table 2 counts and the Fig. 6
//!   composition — matches the sequential loop bit for bit.
//!
//! Only the wall-clock stage timings in [`AnalysisStats`] vary run to
//! run; they are reported for the `repro`/`analyzebench` breakdowns and
//! deliberately excluded from [`crate::pipeline::PipelineReport`]'s
//! deterministic text render.

use crate::cachestore::CacheStore;
use crate::crashpoint::{self, CrashPoint};
use crate::extract::{extract_app, AppExtraction};
use crate::{CoreError, Result};
use gaugenn_analysis::classify::{classify_graph, Classification, LayerComposition};
use gaugenn_analysis::dedup::{layer_checksums, model_checksum};
use gaugenn_analysis::etl::{doc, Index};
use gaugenn_analysis::optim::{inspect, ModelOptim};
use gaugenn_dnn::graph::LayerKind;
use gaugenn_dnn::trace::{trace_graph, TraceReport};
use gaugenn_modelfmt::Framework;
use gaugenn_playstore::crawler::CrawledApp;
use gaugenn_sched::{assign, SchedMode, WorkUnit};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tunables for an [`AnalysisPool`].
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Worker threads. Clamped to a minimum of 1; 1 reproduces the old
    /// sequential loop through the same code path.
    pub workers: usize,
    /// Content-addressed dedup cache in front of decode/trace. On by
    /// default; `analyzebench` switches it off to measure what the cache
    /// buys (every instance then pays the full decode + trace).
    pub dedup_cache: bool,
    /// How work units (apps in the extraction phase, model files in the
    /// analysis phase) are partitioned across workers. Defaults to the
    /// `GAUGENN_SCHED` environment variable (falling back to LPT).
    pub sched: SchedMode,
    /// Seed for the planned-steal sequence ([`SchedMode::Stealing`]).
    pub sched_seed: u64,
    /// Directory backing the [`ModelCache`] persistently across runs
    /// (see [`CacheStore`]). `None` keeps the cache in-memory only.
    /// Ignored when `dedup_cache` is off.
    pub cache_dir: Option<PathBuf>,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            workers: 1,
            dedup_cache: true,
            sched: SchedMode::from_env(),
            sched_seed: 0,
            cache_dir: None,
        }
    }
}

impl AnalysisConfig {
    /// Config with `workers` threads and the cache enabled.
    pub fn with_workers(workers: usize) -> AnalysisConfig {
        AnalysisConfig {
            workers,
            ..AnalysisConfig::default()
        }
    }
}

/// Everything computed once per unique model checksum.
#[derive(Debug)]
pub struct ModelAnalysis {
    /// Model name from the decoded graph.
    pub name: String,
    /// FLOPs/params trace.
    pub trace: TraceReport,
    /// Task classification.
    pub classification: Option<Classification>,
    /// §6.1 optimisation inspection.
    pub optim: ModelOptim,
    /// Per-layer weight checksums.
    pub layers: Vec<(String, u64)>,
    /// Layer-family histogram (Input layers excluded) — also the Fig. 6
    /// composition contribution, so the merge never needs the graph.
    pub layer_families: BTreeMap<String, u64>,
}

/// Why a cached model analysis failed.
#[derive(Debug, Clone)]
pub enum AnalyzeFailure {
    /// The file passed the cheap signature probe but would not decode
    /// (truncated/corrupted/obfuscated body) — the instance drops out of
    /// the benchmarkable set, charging one failed candidate.
    Undecodable,
    /// The decoded graph would not trace — fatal, aborts the pipeline
    /// like the sequential loop's `?` did.
    Trace(String),
}

/// A cache lookup result: the shared analysis, or the memoised failure.
pub type ModelOutcome = std::result::Result<Arc<ModelAnalysis>, AnalyzeFailure>;

/// Number of independently locked cache shards.
const CACHE_SHARDS: usize = 16;

/// One compute-once slot: the first claimant computes under the slot
/// lock; later claimants block on it and read the finished outcome.
struct Slot(Mutex<Option<ModelOutcome>>);

/// Sharded, content-addressed, compute-once cache over model checksums,
/// optionally backed by a persistent [`CacheStore`].
///
/// Counter atomics use `SeqCst`: the totals feed the rendered report,
/// and gaugelint's `relaxed-ordering-in-report` rule bans `Relaxed`
/// near report state so a future refactor cannot quietly weaken them.
pub struct ModelCache {
    shards: Vec<Mutex<BTreeMap<String, Arc<Slot>>>>,
    store: Option<Arc<CacheStore>>,
    hits: AtomicU64,
    misses: AtomicU64,
    persistent_hits: AtomicU64,
    persistent_stores: AtomicU64,
}

impl Default for ModelCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelCache {
    /// Empty in-memory cache.
    pub fn new() -> ModelCache {
        Self::with_store(None)
    }

    /// Empty cache, consulting (and writing back to) `store` when set.
    pub fn with_store(store: Option<Arc<CacheStore>>) -> ModelCache {
        ModelCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(BTreeMap::new()))
                .collect(),
            store,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            persistent_hits: AtomicU64::new(0),
            persistent_stores: AtomicU64::new(0),
        }
    }

    /// Shard index for a checksum (FNV-1a over the hex string).
    fn shard_of(checksum: &str) -> usize {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in checksum.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        (h % CACHE_SHARDS as u64) as usize
    }

    /// Return the cached outcome for `checksum`, or run `compute` exactly
    /// once across all workers and cache its result. Counts a miss for
    /// the claimant and a hit for everyone else, so the totals are a pure
    /// function of the corpus, not of thread interleaving.
    pub fn get_or_compute(
        &self,
        checksum: &str,
        compute: impl FnOnce() -> ModelOutcome,
    ) -> ModelOutcome {
        let slot = {
            let mut map = self.shards[Self::shard_of(checksum)]
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            match map.get(checksum) {
                Some(slot) => {
                    self.hits.fetch_add(1, Ordering::SeqCst);
                    slot.clone()
                }
                None => {
                    self.misses.fetch_add(1, Ordering::SeqCst);
                    let slot = Arc::new(Slot(Mutex::new(None)));
                    map.insert(checksum.to_string(), slot.clone());
                    slot
                }
            }
        };
        let mut guard = slot.0.lock().unwrap_or_else(|e| e.into_inner());
        if guard.is_none() {
            // First claimant: try the persistent store before paying the
            // full compute. A persistent hit still counted as an
            // in-memory *miss* above — disk state must never change the
            // hit/miss totals that reach the deterministic report.
            let outcome = match self.store.as_ref().and_then(|s| s.load(checksum)) {
                Some(found) => {
                    self.persistent_hits.fetch_add(1, Ordering::SeqCst);
                    found
                }
                None => {
                    let computed = compute();
                    if let Some(store) = &self.store {
                        store.save(checksum, &computed);
                        self.persistent_stores.fetch_add(1, Ordering::SeqCst);
                    }
                    computed
                }
            };
            *guard = Some(outcome);
        }
        guard.as_ref().expect("slot filled above").clone()
    }

    /// `(hits, misses)` so far.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::SeqCst),
            self.misses.load(Ordering::SeqCst),
        )
    }

    /// `(persistent hits, persistent write-backs)` so far. Zero unless
    /// the cache was built over a [`CacheStore`].
    pub fn persistent_counters(&self) -> (u64, u64) {
        (
            self.persistent_hits.load(Ordering::SeqCst),
            self.persistent_stores.load(Ordering::SeqCst),
        )
    }
}

/// Merged counters and wall-clock stage timings for one analysis run.
///
/// The counter fields are deterministic (pure functions of the corpus);
/// the `*_us` timings are wall-clock sums across workers and vary run to
/// run — keep them out of anything that must be byte-stable.
#[derive(Debug, Clone, Default)]
pub struct AnalysisStats {
    /// Worker threads used.
    pub workers: usize,
    /// Apps analysed.
    pub apps: usize,
    /// Model instances that went through the checksum funnel.
    pub instances: u64,
    /// Cache hits (instances that attached to an already-claimed slot).
    pub cache_hits: u64,
    /// Cache misses (unique checksums, decodable or not).
    pub cache_misses: u64,
    /// Unique models that decoded and traced successfully.
    pub unique_analysed: u64,
    /// Unique checksums whose analysis was loaded from the persistent
    /// [`CacheStore`] instead of recomputed. These are a subset of
    /// `cache_misses` by design: disk state must not perturb the hit/miss
    /// totals that reach the deterministic report.
    pub persistent_hits: u64,
    /// Outcomes offered to the persistent store for write-back.
    pub persistent_stores: u64,
    /// Wall-clock in app extraction across all workers, microseconds.
    pub extract_us: u64,
    /// Wall-clock computing whole-model checksums, microseconds.
    pub checksum_us: u64,
    /// Wall-clock in graph decode, microseconds.
    pub decode_us: u64,
    /// Wall-clock in trace/classify/inspect/layer-checksums, microseconds.
    pub trace_us: u64,
}

impl AnalysisStats {
    /// Fraction of instances served from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.instances == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.instances as f64
        }
    }

    /// Fraction of unique checksums served from the persistent store —
    /// the cross-snapshot attach rate of a warm `repro` run.
    pub fn persistent_hit_rate(&self) -> f64 {
        if self.cache_misses == 0 {
            0.0
        } else {
            self.persistent_hits as f64 / self.cache_misses as f64
        }
    }

    /// Total analysis wall-clock across all stages, milliseconds.
    pub fn total_ms(&self) -> f64 {
        (self.extract_us + self.checksum_us + self.decode_us + self.trace_us) as f64 / 1e3
    }
}

/// One unique (by checksum) model with every offline analysis attached.
#[derive(Debug, Clone)]
pub struct ModelRecord {
    /// md5 over all model files.
    pub checksum: String,
    /// Model name from the graph.
    pub name: String,
    /// Container framework.
    pub framework: Framework,
    /// Serialized size in bytes (all files).
    pub size_bytes: usize,
    /// FLOPs/params trace.
    pub trace: TraceReport,
    /// Task classification (None for the unidentifiable tail).
    pub classification: Option<Classification>,
    /// §6.1 optimisation inspection.
    pub optim: ModelOptim,
    /// Per-layer weight checksums for the §4.5 lineage analysis.
    pub layers: Vec<(String, u64)>,
    /// Layer-family histogram for Fig. 6.
    pub layer_families: BTreeMap<String, u64>,
    /// Number of apps carrying this model.
    pub app_count: usize,
}

/// One model instance (a file in an app).
#[derive(Debug, Clone)]
pub struct InstanceRecord {
    /// App package.
    pub app: String,
    /// Store category.
    pub category: String,
    /// Primary file path inside the app.
    pub path: String,
    /// Checksum linking to the [`ModelRecord`].
    pub checksum: String,
}

/// Everything the offline stage produced, merged in corpus order.
#[derive(Debug)]
pub struct AnalysisOutput {
    /// Per-app extraction facts, in corpus order.
    pub apps: Vec<AppExtraction>,
    /// Unique models in first-sighting order.
    pub models: Vec<ModelRecord>,
    /// Checksum → index into `models`.
    pub model_index: BTreeMap<String, usize>,
    /// All decodable model instances, in corpus order.
    pub instances: Vec<InstanceRecord>,
    /// Metadata index (the ElasticSearch stand-in).
    pub index: Index,
    /// Fig. 6 layer composition.
    pub composition: LayerComposition,
    /// Candidate files that failed signature validation or decode.
    pub failed_candidates: usize,
    /// Models found outside the base APK (§4.2: expected 0).
    pub models_outside_apk: usize,
    /// Merged counters + stage timings.
    pub stats: AnalysisStats,
}

/// Per-worker wall-clock accumulators.
#[derive(Debug, Clone, Copy, Default)]
struct StageTimers {
    extract: Duration,
    checksum: Duration,
    decode: Duration,
    trace: Duration,
}

/// Size estimate for one crawled app: every container byte the
/// extraction phase will walk.
fn container_bytes(app: &CrawledApp) -> u64 {
    app.apk.len() as u64
        + app.obbs.iter().map(|(_, b)| b.len() as u64).sum::<u64>()
        + app.bundle.as_ref().map_or(0, |b| b.len() as u64)
}

/// The scheduled analysis pool. See the module docs for the determinism
/// contract.
#[derive(Debug, Clone, Default)]
pub struct AnalysisPool {
    config: AnalysisConfig,
}

impl AnalysisPool {
    /// Build a pool.
    pub fn new(config: AnalysisConfig) -> AnalysisPool {
        AnalysisPool { config }
    }

    /// Analyse a crawled corpus with the configured worker fleet.
    ///
    /// Work is partitioned by the deterministic scheduler in two phases
    /// (apps for extraction, model files for decode/trace); results merge
    /// in corpus-index order, byte-identical at any worker count and
    /// under any [`SchedMode`].
    pub fn analyse(&self, crawled: &[CrawledApp]) -> Result<AnalysisOutput> {
        let workers = self.config.workers.max(1);
        let mode = self.config.sched;
        let seed = self.config.sched_seed;
        let use_cache = self.config.dedup_cache;
        let store = if use_cache {
            self.config.cache_dir.as_deref().map(CacheStore::open)
        } else {
            None
        };
        let store_handle = store.clone();
        let cache = ModelCache::with_store(store);
        let mut timers = StageTimers::default();

        // Phase 1 — extraction. Units are apps, sized by container bytes.
        let app_units: Vec<WorkUnit> = crawled
            .iter()
            .enumerate()
            .map(|(index, app)| WorkUnit {
                index,
                size: container_bytes(app),
            })
            .collect();
        let app_plan = assign(&app_units, workers, mode, seed);
        let mut extractions: Vec<Option<Result<AppExtraction>>> =
            (0..crawled.len()).map(|_| None).collect();
        // Per-worker output: (corpus index, extraction) pairs plus the
        // worker's extraction timer.
        type ExtractShard = (Vec<(usize, Result<AppExtraction>)>, Duration);
        let phase1: Vec<ExtractShard> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = app_plan
                    .iter()
                    .map(|shard| {
                        scope.spawn(move || {
                            let mut spent = Duration::default();
                            let mut out = Vec::new();
                            // Shards are ascending, so everything this
                            // worker extracts before its own first error
                            // is below any corpus index it skips — the
                            // merge aborts at the lowest-index error and
                            // never reads a skipped slot.
                            for &i in shard {
                                let t0 = Instant::now(); // gaugelint: deterministic-via(clock) — stage timers are diagnostics, never rendered into the deterministic report
                                let ext = extract_app(&crawled[i]).map_err(CoreError::from);
                                spent += t0.elapsed();
                                crashpoint::hit(CrashPoint::AppExtract);
                                let failed = ext.is_err();
                                out.push((i, ext));
                                if failed {
                                    break;
                                }
                            }
                            (out, spent)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("extraction worker panicked"))
                    .collect()
            });
        for (worker_out, spent) in phase1 {
            timers.extract += spent;
            for (i, ext) in worker_out {
                extractions[i] = Some(ext);
            }
        }

        // Phase 2 — model analysis. Units are the individual model files
        // of every successfully extracted app, enumerated app-major in
        // corpus order (the merge below walks the same sequence), sized
        // by their file bytes.
        let mut refs: Vec<(usize, usize)> = Vec::new();
        let mut model_units: Vec<WorkUnit> = Vec::new();
        for (i, slot) in extractions.iter().enumerate() {
            if let Some(Ok(ext)) = slot {
                for (j, found) in ext.models.iter().enumerate() {
                    model_units.push(WorkUnit {
                        index: model_units.len(),
                        size: found.files.iter().map(|(_, b)| b.len() as u64).sum(),
                    });
                    refs.push((i, j));
                }
            }
        }
        let model_plan = assign(&model_units, workers, mode, seed);
        let mut outcomes: Vec<Option<(String, ModelOutcome)>> =
            (0..model_units.len()).map(|_| None).collect();
        // Per-worker output: (unit sequence number, (checksum, outcome))
        // pairs plus the worker's stage timers.
        type AnalyseShard = (Vec<(usize, (String, ModelOutcome))>, StageTimers);
        let phase2: Vec<AnalyseShard> = {
            let cache = &cache;
            let refs = &refs;
            let extractions = &extractions;
            std::thread::scope(|scope| {
                let handles: Vec<_> = model_plan
                    .iter()
                    .map(|shard| {
                        scope.spawn(move || {
                            let mut t = StageTimers::default();
                            let mut out = Vec::new();
                            for &u in shard {
                                let (i, j) = refs[u];
                                let ext = match &extractions[i] {
                                    Some(Ok(e)) => e,
                                    _ => unreachable!("units come from successful extractions"),
                                };
                                let found = &ext.models[j];
                                let t1 = Instant::now(); // gaugelint: deterministic-via(clock) — stage timers are diagnostics, never rendered into the deterministic report
                                let checksum = model_checksum(&found.files);
                                t.checksum += t1.elapsed();
                                let outcome = if use_cache {
                                    cache.get_or_compute(&checksum, || {
                                        analyse_model(found.framework, &found.files, &mut t)
                                    })
                                } else {
                                    analyse_model(found.framework, &found.files, &mut t)
                                };
                                crashpoint::hit(CrashPoint::ModelAnalysis);
                                out.push((u, (checksum, outcome)));
                            }
                            (out, t)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("analysis worker panicked"))
                    .collect()
            })
        };
        for (worker_out, t) in phase2 {
            timers.checksum += t.checksum;
            timers.decode += t.decode;
            timers.trace += t.trace;
            for (u, pair) in worker_out {
                outcomes[u] = Some(pair);
            }
        }

        // Merge in corpus-index order, replicating the sequential loop.
        let mut apps: Vec<AppExtraction> = Vec::with_capacity(crawled.len());
        let mut models: Vec<ModelRecord> = Vec::new();
        let mut model_index: BTreeMap<String, usize> = BTreeMap::new();
        let mut model_apps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut instances = Vec::new();
        let mut index = Index::new();
        let mut composition = LayerComposition::default();
        let mut failed_candidates = 0usize;
        let mut models_outside_apk = 0usize;

        let mut seq = 0usize;
        for (i, app) in crawled.iter().enumerate() {
            let extraction = extractions[i]
                .take()
                .expect("every app before the first error is extracted")?;
            failed_candidates += extraction.failed_candidates;
            models_outside_apk += extraction.models_outside_apk();
            index.insert(doc([
                ("package", app.meta.package.as_str().into()),
                ("category", app.meta.category.as_str().into()),
                ("downloads", app.meta.downloads.into()),
                ("rating", (app.meta.rating as f64).into()),
                ("is_ml", extraction.is_ml_app().into()),
                ("has_models", (!extraction.models.is_empty()).into()),
                ("uses_cloud", (!extraction.cloud.is_empty()).into()),
                ("uses_nnapi", extraction.uses_nnapi.into()),
            ]));
            for found in &extraction.models {
                let (checksum, outcome) = outcomes[seq]
                    .take()
                    .expect("one phase-2 unit per model of an extracted app");
                seq += 1;
                let analysis = match outcome {
                    Ok(a) => a,
                    Err(AnalyzeFailure::Undecodable) => {
                        // A file can pass the cheap signature probe yet
                        // still be undecodable (truncated or corrupted
                        // body); such instances drop out of the
                        // benchmarkable set like the paper's obfuscated
                        // tail, they do not abort the run.
                        failed_candidates += 1;
                        continue;
                    }
                    Err(AnalyzeFailure::Trace(e)) => {
                        return Err(CoreError::Other(format!("trace: {e}")));
                    }
                };
                instances.push(InstanceRecord {
                    app: extraction.package.clone(),
                    category: extraction.category.clone(),
                    path: found.files[0].0.clone(),
                    checksum: checksum.clone(),
                });
                model_apps
                    .entry(checksum.clone())
                    .or_default()
                    .insert(extraction.package.clone());
                if model_index.contains_key(&checksum) {
                    continue;
                }
                // First sighting in corpus order: materialise the record.
                if let Some(c) = &analysis.classification {
                    let modality = c.task.modality();
                    for (family, count) in &analysis.layer_families {
                        *composition
                            .counts
                            .entry((modality, family.clone()))
                            .or_default() += count;
                    }
                }
                model_index.insert(checksum.clone(), models.len());
                models.push(ModelRecord {
                    checksum,
                    name: analysis.name.clone(),
                    framework: found.framework,
                    size_bytes: found.files.iter().map(|(_, b)| b.len()).sum(),
                    trace: analysis.trace.clone(),
                    classification: analysis.classification,
                    optim: analysis.optim,
                    layers: analysis.layers.clone(),
                    layer_families: analysis.layer_families.clone(),
                    app_count: 0,
                });
            }
            apps.push(extraction);
        }
        for m in &mut models {
            m.app_count = model_apps.get(&m.checksum).map_or(0, |s| s.len());
        }

        let (cache_hits, cache_misses) = cache.counters();
        let (persistent_hits, persistent_stores) = cache.persistent_counters();
        let stats = AnalysisStats {
            workers,
            apps: apps.len(),
            instances: cache_hits + cache_misses,
            cache_hits,
            cache_misses,
            unique_analysed: models.len() as u64,
            persistent_hits,
            persistent_stores,
            extract_us: timers.extract.as_micros() as u64,
            checksum_us: timers.checksum.as_micros() as u64,
            decode_us: timers.decode.as_micros() as u64,
            trace_us: timers.trace.as_micros() as u64,
        };

        // End-of-run compaction sweep: with `GAUGENN_CACHE_MAX_BYTES`
        // set, the cache directory is back under budget before the run
        // reports success (DESIGN.md §12).
        if let Some(store) = &store_handle {
            store.compact_if_over();
        }

        Ok(AnalysisOutput {
            apps,
            models,
            model_index,
            instances,
            index,
            composition,
            failed_candidates,
            models_outside_apk,
            stats,
        })
    }
}

/// The expensive once-per-unique-checksum work: decode, trace, classify,
/// inspect, layer-checksum.
fn analyse_model(
    framework: Framework,
    files: &[(String, Vec<u8>)],
    timers: &mut StageTimers,
) -> ModelOutcome {
    let t0 = Instant::now(); // gaugelint: deterministic-via(clock) — stage timers are diagnostics, never rendered into the deterministic report
    let graph = match gaugenn_modelfmt::decode(framework, files) {
        Ok(g) => g,
        Err(_) => {
            timers.decode += t0.elapsed();
            return Err(AnalyzeFailure::Undecodable);
        }
    };
    timers.decode += t0.elapsed();

    let t1 = Instant::now(); // gaugelint: deterministic-via(clock) — stage timers are diagnostics, never rendered into the deterministic report
    let trace = match trace_graph(&graph) {
        Ok(t) => t,
        Err(e) => {
            timers.trace += t1.elapsed();
            return Err(AnalyzeFailure::Trace(e.to_string()));
        }
    };
    let classification = classify_graph(&graph);
    let mut layer_families = BTreeMap::new();
    for n in &graph.nodes {
        if !matches!(n.kind, LayerKind::Input { .. }) {
            *layer_families
                .entry(n.kind.family().to_string())
                .or_default() += 1;
        }
    }
    let analysis = ModelAnalysis {
        name: graph.name.clone(),
        classification,
        optim: inspect(&graph),
        layers: layer_checksums(&graph),
        trace,
        layer_families,
    };
    timers.trace += t1.elapsed();
    Ok(Arc::new(analysis))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugenn_playstore::corpus::{generate, CorpusScale, Snapshot};
    use gaugenn_playstore::crawler::Crawler;
    use gaugenn_playstore::server::StoreServer;

    fn crawl_tiny() -> Vec<CrawledApp> {
        let server = StoreServer::start(generate(CorpusScale::Tiny, Snapshot::Y2021, 7)).unwrap();
        let mut c = Crawler::builder(server.addr()).build().unwrap();
        c.crawl_all().unwrap().apps
    }

    fn checksums(out: &AnalysisOutput) -> Vec<&str> {
        out.models.iter().map(|m| m.checksum.as_str()).collect()
    }

    #[test]
    fn worker_count_does_not_change_the_output() {
        let apps = crawl_tiny();
        let one = AnalysisPool::new(AnalysisConfig::with_workers(1))
            .analyse(&apps)
            .unwrap();
        for workers in [2usize, 4, 8] {
            let n = AnalysisPool::new(AnalysisConfig::with_workers(workers))
                .analyse(&apps)
                .unwrap();
            assert_eq!(checksums(&n), checksums(&one), "{workers} workers");
            assert_eq!(n.instances.len(), one.instances.len());
            assert_eq!(n.failed_candidates, one.failed_candidates);
            assert_eq!(n.composition.counts, one.composition.counts);
            assert_eq!(n.index.len(), one.index.len());
            assert_eq!(
                n.stats.cache_hits, one.stats.cache_hits,
                "{workers} workers"
            );
            assert_eq!(n.stats.cache_misses, one.stats.cache_misses);
        }
    }

    #[test]
    fn cache_dedups_duplicate_models() {
        let apps = crawl_tiny();
        let out = AnalysisPool::new(AnalysisConfig::with_workers(4))
            .analyse(&apps)
            .unwrap();
        // The corpus plants cross-app duplicates, so some instances must
        // attach to an already-analysed checksum.
        assert!(out.stats.cache_hits > 0, "{:?}", out.stats);
        assert_eq!(
            out.stats.cache_hits + out.stats.cache_misses,
            out.stats.instances
        );
        // Decodable uniques are a subset of the misses (undecodable
        // candidates also claim a slot, once each).
        assert!(out.stats.unique_analysed <= out.stats.cache_misses);
        assert_eq!(out.stats.unique_analysed as usize, out.models.len());
    }

    #[test]
    fn cache_disabled_matches_cached_output() {
        let apps = crawl_tiny();
        let cached = AnalysisPool::new(AnalysisConfig::with_workers(2))
            .analyse(&apps)
            .unwrap();
        let uncached = AnalysisPool::new(AnalysisConfig {
            workers: 2,
            dedup_cache: false,
            ..AnalysisConfig::default()
        })
        .analyse(&apps)
        .unwrap();
        assert_eq!(checksums(&uncached), checksums(&cached));
        assert_eq!(uncached.failed_candidates, cached.failed_candidates);
        assert_eq!(uncached.stats.cache_hits, 0, "no cache, no hits");
    }

    #[test]
    fn model_index_points_at_models() {
        let apps = crawl_tiny();
        let out = AnalysisPool::new(AnalysisConfig::default())
            .analyse(&apps)
            .unwrap();
        assert_eq!(out.model_index.len(), out.models.len());
        for (sum, &i) in &out.model_index {
            assert_eq!(&out.models[i].checksum, sum);
        }
    }

    #[test]
    fn compute_once_under_contention() {
        use std::sync::atomic::AtomicUsize;
        let cache = ModelCache::new();
        let computed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for i in 0..100 {
                        let key = format!("checksum-{}", i % 10);
                        let _ = cache.get_or_compute(&key, || {
                            computed.fetch_add(1, Ordering::SeqCst);
                            Err(AnalyzeFailure::Undecodable)
                        });
                    }
                });
            }
        });
        assert_eq!(computed.load(Ordering::SeqCst), 10, "one compute per key");
        let (hits, misses) = cache.counters();
        assert_eq!(misses, 10);
        assert_eq!(hits, 800 - 10);
    }

    #[test]
    fn sched_mode_does_not_change_the_output() {
        let apps = crawl_tiny();
        let base = AnalysisPool::new(AnalysisConfig {
            workers: 3,
            sched: SchedMode::Static,
            ..AnalysisConfig::default()
        })
        .analyse(&apps)
        .unwrap();
        for mode in [SchedMode::Lpt, SchedMode::Stealing] {
            let out = AnalysisPool::new(AnalysisConfig {
                workers: 3,
                sched: mode,
                sched_seed: 0xBEEF,
                ..AnalysisConfig::default()
            })
            .analyse(&apps)
            .unwrap();
            assert_eq!(checksums(&out), checksums(&base), "{mode:?}");
            assert_eq!(out.instances.len(), base.instances.len());
            assert_eq!(out.stats.cache_hits, base.stats.cache_hits, "{mode:?}");
            assert_eq!(out.stats.cache_misses, base.stats.cache_misses);
            assert_eq!(out.composition.counts, base.composition.counts);
            assert_eq!(out.failed_candidates, base.failed_candidates);
        }
    }

    #[test]
    fn persistent_cache_attaches_second_run() {
        let apps = crawl_tiny();
        let dir = std::env::temp_dir().join(format!("gaugenn-warm-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = |workers| AnalysisConfig {
            workers,
            cache_dir: Some(dir.clone()),
            ..AnalysisConfig::default()
        };
        let cold = AnalysisPool::new(cfg(2)).analyse(&apps).unwrap();
        assert_eq!(cold.stats.persistent_hits, 0, "{:?}", cold.stats);
        assert!(cold.stats.persistent_stores > 0, "{:?}", cold.stats);
        // A second pool over the same directory attaches to the first
        // run's analyses, even at a different worker count.
        let warm = AnalysisPool::new(cfg(4)).analyse(&apps).unwrap();
        assert!(warm.stats.persistent_hits > 0, "{:?}", warm.stats);
        assert!(warm.stats.persistent_hit_rate() > 0.0);
        // Disk state must not leak into the deterministic counters or
        // the merged content.
        assert_eq!(warm.stats.cache_hits, cold.stats.cache_hits);
        assert_eq!(warm.stats.cache_misses, cold.stats.cache_misses);
        assert_eq!(checksums(&warm), checksums(&cold));
        assert_eq!(warm.instances.len(), cold.instances.len());
        assert_eq!(warm.failed_candidates, cold.failed_candidates);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
