//! Parallel offline analysis with a content-addressed model cache.
//!
//! The paper's offline stage (§4–§6: extraction, DAG decode, FLOPs/params
//! tracing, md5 + per-layer checksumming) used to run as one sequential
//! loop over the crawled corpus. [`AnalysisPool`] fans it out over N
//! worker threads using the same static-shard + ordered-merge discipline
//! as [`gaugenn_playstore::pool::CrawlPool`]: worker `k` analyses every
//! app whose corpus index is congruent to `k` mod N, and the merge walks
//! apps in corpus-index order, so the produced models, instances, index
//! docs and counters are **byte-identical to the sequential run at any
//! worker count**.
//!
//! # The content-addressed cache
//!
//! The paper's dataset is heavily duplicated — most model instances are
//! byte-identical copies shipped by many apps — so the expensive work
//! (graph decode, [`trace_graph`], [`classify_graph`], [`inspect`],
//! [`layer_checksums`]) is keyed by the cheap [`model_checksum`] over the
//! raw bytes. The [`ModelCache`] is a sharded map (per-shard mutex, so
//! workers hashing different models never contend on one lock) of
//! compute-once slots: the first worker to claim a checksum computes the
//! full analysis under the slot's own lock while later instances block on
//! that slot and then attach to the finished result. Failed decodes are
//! cached too — an obfuscated model shipped by 40 apps is probed once,
//! not 40 times — while still charging one `failed_candidates` count per
//! instance, exactly as the sequential loop did.
//!
//! # Determinism
//!
//! * which worker analyses which app is a pure function of the corpus
//!   index — no work stealing, no shared queues;
//! * the cache only memoises a pure function of the model bytes, so the
//!   race for who computes a checksum first never changes *what* is
//!   computed;
//! * cache hit/miss totals are interleaving-independent (misses = unique
//!   checksums, hits = instances − misses) because slots are claimed
//!   exactly once under the shard lock;
//! * the merge assembles everything in corpus order, so first-sighting
//!   order — and with it model numbering, Table 2 counts and the Fig. 6
//!   composition — matches the sequential loop bit for bit.
//!
//! Only the wall-clock stage timings in [`AnalysisStats`] vary run to
//! run; they are reported for the `repro`/`analyzebench` breakdowns and
//! deliberately excluded from [`crate::pipeline::PipelineReport`]'s
//! deterministic text render.

use crate::extract::{extract_app, AppExtraction};
use crate::{CoreError, Result};
use gaugenn_analysis::classify::{classify_graph, Classification, LayerComposition};
use gaugenn_analysis::dedup::{layer_checksums, model_checksum};
use gaugenn_analysis::etl::{doc, Index};
use gaugenn_analysis::optim::{inspect, ModelOptim};
use gaugenn_dnn::graph::LayerKind;
use gaugenn_dnn::trace::{trace_graph, TraceReport};
use gaugenn_modelfmt::Framework;
use gaugenn_playstore::crawler::CrawledApp;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tunables for an [`AnalysisPool`].
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Worker threads. Clamped to a minimum of 1; 1 reproduces the old
    /// sequential loop through the same code path.
    pub workers: usize,
    /// Content-addressed dedup cache in front of decode/trace. On by
    /// default; `analyzebench` switches it off to measure what the cache
    /// buys (every instance then pays the full decode + trace).
    pub dedup_cache: bool,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            workers: 1,
            dedup_cache: true,
        }
    }
}

impl AnalysisConfig {
    /// Config with `workers` threads and the cache enabled.
    pub fn with_workers(workers: usize) -> AnalysisConfig {
        AnalysisConfig {
            workers,
            ..AnalysisConfig::default()
        }
    }
}

/// Everything computed once per unique model checksum.
#[derive(Debug)]
pub struct ModelAnalysis {
    /// Model name from the decoded graph.
    pub name: String,
    /// FLOPs/params trace.
    pub trace: TraceReport,
    /// Task classification.
    pub classification: Option<Classification>,
    /// §6.1 optimisation inspection.
    pub optim: ModelOptim,
    /// Per-layer weight checksums.
    pub layers: Vec<(String, u64)>,
    /// Layer-family histogram (Input layers excluded) — also the Fig. 6
    /// composition contribution, so the merge never needs the graph.
    pub layer_families: BTreeMap<String, u64>,
}

/// Why a cached model analysis failed.
#[derive(Debug, Clone)]
pub enum AnalyzeFailure {
    /// The file passed the cheap signature probe but would not decode
    /// (truncated/corrupted/obfuscated body) — the instance drops out of
    /// the benchmarkable set, charging one failed candidate.
    Undecodable,
    /// The decoded graph would not trace — fatal, aborts the pipeline
    /// like the sequential loop's `?` did.
    Trace(String),
}

/// A cache lookup result: the shared analysis, or the memoised failure.
pub type ModelOutcome = std::result::Result<Arc<ModelAnalysis>, AnalyzeFailure>;

/// Number of independently locked cache shards.
const CACHE_SHARDS: usize = 16;

/// One compute-once slot: the first claimant computes under the slot
/// lock; later claimants block on it and read the finished outcome.
struct Slot(Mutex<Option<ModelOutcome>>);

/// Sharded, content-addressed, compute-once cache over model checksums.
pub struct ModelCache {
    shards: Vec<Mutex<BTreeMap<String, Arc<Slot>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for ModelCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelCache {
    /// Empty cache.
    pub fn new() -> ModelCache {
        ModelCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(BTreeMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Shard index for a checksum (FNV-1a over the hex string).
    fn shard_of(checksum: &str) -> usize {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in checksum.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        (h % CACHE_SHARDS as u64) as usize
    }

    /// Return the cached outcome for `checksum`, or run `compute` exactly
    /// once across all workers and cache its result. Counts a miss for
    /// the claimant and a hit for everyone else, so the totals are a pure
    /// function of the corpus, not of thread interleaving.
    pub fn get_or_compute(
        &self,
        checksum: &str,
        compute: impl FnOnce() -> ModelOutcome,
    ) -> ModelOutcome {
        let slot = {
            let mut map = self.shards[Self::shard_of(checksum)]
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            match map.get(checksum) {
                Some(slot) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    slot.clone()
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let slot = Arc::new(Slot(Mutex::new(None)));
                    map.insert(checksum.to_string(), slot.clone());
                    slot
                }
            }
        };
        let mut guard = slot.0.lock().unwrap_or_else(|e| e.into_inner());
        if guard.is_none() {
            *guard = Some(compute());
        }
        guard.as_ref().expect("slot filled above").clone()
    }

    /// `(hits, misses)` so far.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// Merged counters and wall-clock stage timings for one analysis run.
///
/// The counter fields are deterministic (pure functions of the corpus);
/// the `*_us` timings are wall-clock sums across workers and vary run to
/// run — keep them out of anything that must be byte-stable.
#[derive(Debug, Clone, Default)]
pub struct AnalysisStats {
    /// Worker threads used.
    pub workers: usize,
    /// Apps analysed.
    pub apps: usize,
    /// Model instances that went through the checksum funnel.
    pub instances: u64,
    /// Cache hits (instances that attached to an already-claimed slot).
    pub cache_hits: u64,
    /// Cache misses (unique checksums, decodable or not).
    pub cache_misses: u64,
    /// Unique models that decoded and traced successfully.
    pub unique_analysed: u64,
    /// Wall-clock in app extraction across all workers, microseconds.
    pub extract_us: u64,
    /// Wall-clock computing whole-model checksums, microseconds.
    pub checksum_us: u64,
    /// Wall-clock in graph decode, microseconds.
    pub decode_us: u64,
    /// Wall-clock in trace/classify/inspect/layer-checksums, microseconds.
    pub trace_us: u64,
}

impl AnalysisStats {
    /// Fraction of instances served from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.instances == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.instances as f64
        }
    }

    /// Total analysis wall-clock across all stages, milliseconds.
    pub fn total_ms(&self) -> f64 {
        (self.extract_us + self.checksum_us + self.decode_us + self.trace_us) as f64 / 1e3
    }
}

/// One unique (by checksum) model with every offline analysis attached.
#[derive(Debug, Clone)]
pub struct ModelRecord {
    /// md5 over all model files.
    pub checksum: String,
    /// Model name from the graph.
    pub name: String,
    /// Container framework.
    pub framework: Framework,
    /// Serialized size in bytes (all files).
    pub size_bytes: usize,
    /// FLOPs/params trace.
    pub trace: TraceReport,
    /// Task classification (None for the unidentifiable tail).
    pub classification: Option<Classification>,
    /// §6.1 optimisation inspection.
    pub optim: ModelOptim,
    /// Per-layer weight checksums for the §4.5 lineage analysis.
    pub layers: Vec<(String, u64)>,
    /// Layer-family histogram for Fig. 6.
    pub layer_families: BTreeMap<String, u64>,
    /// Number of apps carrying this model.
    pub app_count: usize,
}

/// One model instance (a file in an app).
#[derive(Debug, Clone)]
pub struct InstanceRecord {
    /// App package.
    pub app: String,
    /// Store category.
    pub category: String,
    /// Primary file path inside the app.
    pub path: String,
    /// Checksum linking to the [`ModelRecord`].
    pub checksum: String,
}

/// Everything the offline stage produced, merged in corpus order.
#[derive(Debug)]
pub struct AnalysisOutput {
    /// Per-app extraction facts, in corpus order.
    pub apps: Vec<AppExtraction>,
    /// Unique models in first-sighting order.
    pub models: Vec<ModelRecord>,
    /// Checksum → index into `models`.
    pub model_index: BTreeMap<String, usize>,
    /// All decodable model instances, in corpus order.
    pub instances: Vec<InstanceRecord>,
    /// Metadata index (the ElasticSearch stand-in).
    pub index: Index,
    /// Fig. 6 layer composition.
    pub composition: LayerComposition,
    /// Candidate files that failed signature validation or decode.
    pub failed_candidates: usize,
    /// Models found outside the base APK (§4.2: expected 0).
    pub models_outside_apk: usize,
    /// Merged counters + stage timings.
    pub stats: AnalysisStats,
}

/// Per-worker wall-clock accumulators.
#[derive(Debug, Clone, Copy, Default)]
struct StageTimers {
    extract: Duration,
    checksum: Duration,
    decode: Duration,
    trace: Duration,
}

/// One analysed model instance, pre-merge.
struct InstanceWork {
    path: String,
    checksum: String,
    framework: Framework,
    size_bytes: usize,
    outcome: ModelOutcome,
}

/// One analysed app, pre-merge.
struct AppWork {
    extraction: AppExtraction,
    instances: Vec<InstanceWork>,
}

/// What one worker hands the merge: its shard's `(corpus index, analysed
/// app)` pairs plus its stage timers.
type ShardOutput = (Vec<(usize, Result<AppWork>)>, StageTimers);

/// The sharded analysis pool. See the module docs for the determinism
/// contract.
#[derive(Debug, Clone, Default)]
pub struct AnalysisPool {
    config: AnalysisConfig,
}

impl AnalysisPool {
    /// Build a pool.
    pub fn new(config: AnalysisConfig) -> AnalysisPool {
        AnalysisPool { config }
    }

    /// Analyse a crawled corpus with the configured worker fleet.
    ///
    /// Worker `k` analyses every app with `index % workers == k`; results
    /// merge in corpus-index order, byte-identical at any worker count.
    pub fn analyse(&self, crawled: &[CrawledApp]) -> Result<AnalysisOutput> {
        let workers = self.config.workers.max(1);
        let cache = ModelCache::new();
        let use_cache = self.config.dedup_cache;

        let results: Vec<ShardOutput> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let cache = &cache;
                    scope.spawn(move || {
                        let mut timers = StageTimers::default();
                        let mut out = Vec::new();
                        for (i, app) in crawled.iter().enumerate().filter(|(i, _)| i % workers == w)
                        {
                            let work = analyse_app(app, cache, use_cache, &mut timers);
                            let failed = work.is_err();
                            out.push((i, work));
                            if failed {
                                // The merge aborts at the lowest-index
                                // error; anything this worker analysed
                                // past its own first failure is waste.
                                break;
                            }
                        }
                        (out, timers)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("analysis worker panicked"))
                .collect()
        });

        // Merge in corpus-index order, replicating the sequential loop.
        let mut timers = StageTimers::default();
        let mut slots: Vec<Option<Result<AppWork>>> = (0..crawled.len()).map(|_| None).collect();
        for (worker_out, t) in results {
            timers.extract += t.extract;
            timers.checksum += t.checksum;
            timers.decode += t.decode;
            timers.trace += t.trace;
            for (i, work) in worker_out {
                slots[i] = Some(work);
            }
        }

        let mut apps: Vec<AppExtraction> = Vec::with_capacity(crawled.len());
        let mut models: Vec<ModelRecord> = Vec::new();
        let mut model_index: BTreeMap<String, usize> = BTreeMap::new();
        let mut model_apps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut instances = Vec::new();
        let mut index = Index::new();
        let mut composition = LayerComposition::default();
        let mut failed_candidates = 0usize;
        let mut models_outside_apk = 0usize;

        for (app, slot) in crawled.iter().zip(slots) {
            let work = slot.expect("every app before the first error is analysed")?;
            let extraction = work.extraction;
            failed_candidates += extraction.failed_candidates;
            models_outside_apk += extraction.models_outside_apk();
            index.insert(doc([
                ("package", app.meta.package.as_str().into()),
                ("category", app.meta.category.as_str().into()),
                ("downloads", app.meta.downloads.into()),
                ("rating", (app.meta.rating as f64).into()),
                ("is_ml", extraction.is_ml_app().into()),
                ("has_models", (!extraction.models.is_empty()).into()),
                ("uses_cloud", (!extraction.cloud.is_empty()).into()),
                ("uses_nnapi", extraction.uses_nnapi.into()),
            ]));
            for inst in work.instances {
                let analysis = match inst.outcome {
                    Ok(a) => a,
                    Err(AnalyzeFailure::Undecodable) => {
                        // A file can pass the cheap signature probe yet
                        // still be undecodable (truncated or corrupted
                        // body); such instances drop out of the
                        // benchmarkable set like the paper's obfuscated
                        // tail, they do not abort the run.
                        failed_candidates += 1;
                        continue;
                    }
                    Err(AnalyzeFailure::Trace(e)) => {
                        return Err(CoreError::Other(format!("trace: {e}")));
                    }
                };
                instances.push(InstanceRecord {
                    app: extraction.package.clone(),
                    category: extraction.category.clone(),
                    path: inst.path,
                    checksum: inst.checksum.clone(),
                });
                model_apps
                    .entry(inst.checksum.clone())
                    .or_default()
                    .insert(extraction.package.clone());
                if model_index.contains_key(&inst.checksum) {
                    continue;
                }
                // First sighting in corpus order: materialise the record.
                if let Some(c) = &analysis.classification {
                    let modality = c.task.modality();
                    for (family, count) in &analysis.layer_families {
                        *composition
                            .counts
                            .entry((modality, family.clone()))
                            .or_default() += count;
                    }
                }
                model_index.insert(inst.checksum.clone(), models.len());
                models.push(ModelRecord {
                    checksum: inst.checksum,
                    name: analysis.name.clone(),
                    framework: inst.framework,
                    size_bytes: inst.size_bytes,
                    trace: analysis.trace.clone(),
                    classification: analysis.classification,
                    optim: analysis.optim,
                    layers: analysis.layers.clone(),
                    layer_families: analysis.layer_families.clone(),
                    app_count: 0,
                });
            }
            apps.push(extraction);
        }
        for m in &mut models {
            m.app_count = model_apps.get(&m.checksum).map_or(0, |s| s.len());
        }

        let (cache_hits, cache_misses) = cache.counters();
        let stats = AnalysisStats {
            workers,
            apps: apps.len(),
            instances: cache_hits + cache_misses,
            cache_hits,
            cache_misses,
            unique_analysed: models.len() as u64,
            extract_us: timers.extract.as_micros() as u64,
            checksum_us: timers.checksum.as_micros() as u64,
            decode_us: timers.decode.as_micros() as u64,
            trace_us: timers.trace.as_micros() as u64,
        };

        Ok(AnalysisOutput {
            apps,
            models,
            model_index,
            instances,
            index,
            composition,
            failed_candidates,
            models_outside_apk,
            stats,
        })
    }
}

/// Extract one app and push every found model through the cache.
fn analyse_app(
    app: &CrawledApp,
    cache: &ModelCache,
    use_cache: bool,
    timers: &mut StageTimers,
) -> Result<AppWork> {
    let t0 = Instant::now(); // gaugelint: allow(wall-clock) — stage timers are diagnostics, never rendered into the deterministic report
    let extraction = extract_app(app)?;
    timers.extract += t0.elapsed();

    let mut instances = Vec::with_capacity(extraction.models.len());
    for found in &extraction.models {
        let t1 = Instant::now(); // gaugelint: allow(wall-clock) — stage timers are diagnostics, never rendered into the deterministic report
        let checksum = model_checksum(&found.files);
        timers.checksum += t1.elapsed();
        let outcome = if use_cache {
            cache.get_or_compute(&checksum, || {
                analyse_model(found.framework, &found.files, timers)
            })
        } else {
            analyse_model(found.framework, &found.files, timers)
        };
        instances.push(InstanceWork {
            path: found.files[0].0.clone(),
            checksum,
            framework: found.framework,
            size_bytes: found.files.iter().map(|(_, b)| b.len()).sum(),
            outcome,
        });
    }
    Ok(AppWork {
        extraction,
        instances,
    })
}

/// The expensive once-per-unique-checksum work: decode, trace, classify,
/// inspect, layer-checksum.
fn analyse_model(
    framework: Framework,
    files: &[(String, Vec<u8>)],
    timers: &mut StageTimers,
) -> ModelOutcome {
    let t0 = Instant::now(); // gaugelint: allow(wall-clock) — stage timers are diagnostics, never rendered into the deterministic report
    let graph = match gaugenn_modelfmt::decode(framework, files) {
        Ok(g) => g,
        Err(_) => {
            timers.decode += t0.elapsed();
            return Err(AnalyzeFailure::Undecodable);
        }
    };
    timers.decode += t0.elapsed();

    let t1 = Instant::now(); // gaugelint: allow(wall-clock) — stage timers are diagnostics, never rendered into the deterministic report
    let trace = match trace_graph(&graph) {
        Ok(t) => t,
        Err(e) => {
            timers.trace += t1.elapsed();
            return Err(AnalyzeFailure::Trace(e.to_string()));
        }
    };
    let classification = classify_graph(&graph);
    let mut layer_families = BTreeMap::new();
    for n in &graph.nodes {
        if !matches!(n.kind, LayerKind::Input { .. }) {
            *layer_families
                .entry(n.kind.family().to_string())
                .or_default() += 1;
        }
    }
    let analysis = ModelAnalysis {
        name: graph.name.clone(),
        classification,
        optim: inspect(&graph),
        layers: layer_checksums(&graph),
        trace,
        layer_families,
    };
    timers.trace += t1.elapsed();
    Ok(Arc::new(analysis))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugenn_playstore::corpus::{generate, CorpusScale, Snapshot};
    use gaugenn_playstore::crawler::Crawler;
    use gaugenn_playstore::server::StoreServer;

    fn crawl_tiny() -> Vec<CrawledApp> {
        let server = StoreServer::start(generate(CorpusScale::Tiny, Snapshot::Y2021, 7)).unwrap();
        let mut c = Crawler::builder(server.addr()).build().unwrap();
        c.crawl_all().unwrap().apps
    }

    fn checksums(out: &AnalysisOutput) -> Vec<&str> {
        out.models.iter().map(|m| m.checksum.as_str()).collect()
    }

    #[test]
    fn worker_count_does_not_change_the_output() {
        let apps = crawl_tiny();
        let one = AnalysisPool::new(AnalysisConfig::with_workers(1))
            .analyse(&apps)
            .unwrap();
        for workers in [2usize, 4, 8] {
            let n = AnalysisPool::new(AnalysisConfig::with_workers(workers))
                .analyse(&apps)
                .unwrap();
            assert_eq!(checksums(&n), checksums(&one), "{workers} workers");
            assert_eq!(n.instances.len(), one.instances.len());
            assert_eq!(n.failed_candidates, one.failed_candidates);
            assert_eq!(n.composition.counts, one.composition.counts);
            assert_eq!(n.index.len(), one.index.len());
            assert_eq!(
                n.stats.cache_hits, one.stats.cache_hits,
                "{workers} workers"
            );
            assert_eq!(n.stats.cache_misses, one.stats.cache_misses);
        }
    }

    #[test]
    fn cache_dedups_duplicate_models() {
        let apps = crawl_tiny();
        let out = AnalysisPool::new(AnalysisConfig::with_workers(4))
            .analyse(&apps)
            .unwrap();
        // The corpus plants cross-app duplicates, so some instances must
        // attach to an already-analysed checksum.
        assert!(out.stats.cache_hits > 0, "{:?}", out.stats);
        assert_eq!(
            out.stats.cache_hits + out.stats.cache_misses,
            out.stats.instances
        );
        // Decodable uniques are a subset of the misses (undecodable
        // candidates also claim a slot, once each).
        assert!(out.stats.unique_analysed <= out.stats.cache_misses);
        assert_eq!(out.stats.unique_analysed as usize, out.models.len());
    }

    #[test]
    fn cache_disabled_matches_cached_output() {
        let apps = crawl_tiny();
        let cached = AnalysisPool::new(AnalysisConfig::with_workers(2))
            .analyse(&apps)
            .unwrap();
        let uncached = AnalysisPool::new(AnalysisConfig {
            workers: 2,
            dedup_cache: false,
        })
        .analyse(&apps)
        .unwrap();
        assert_eq!(checksums(&uncached), checksums(&cached));
        assert_eq!(uncached.failed_candidates, cached.failed_candidates);
        assert_eq!(uncached.stats.cache_hits, 0, "no cache, no hits");
    }

    #[test]
    fn model_index_points_at_models() {
        let apps = crawl_tiny();
        let out = AnalysisPool::new(AnalysisConfig::default())
            .analyse(&apps)
            .unwrap();
        assert_eq!(out.model_index.len(), out.models.len());
        for (sum, &i) in &out.model_index {
            assert_eq!(&out.models[i].checksum, sum);
        }
    }

    #[test]
    fn compute_once_under_contention() {
        use std::sync::atomic::AtomicUsize;
        let cache = ModelCache::new();
        let computed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for i in 0..100 {
                        let key = format!("checksum-{}", i % 10);
                        let _ = cache.get_or_compute(&key, || {
                            computed.fetch_add(1, Ordering::Relaxed);
                            Err(AnalyzeFailure::Undecodable)
                        });
                    }
                });
            }
        });
        assert_eq!(computed.load(Ordering::Relaxed), 10, "one compute per key");
        let (hits, misses) = cache.counters();
        assert_eq!(misses, 10);
        assert_eq!(hits, 800 - 10);
    }
}
