//! Offline experiments: Tables 2–3, Figs. 4–7, Fig. 15, §4.5 and §6.1.

use crate::pipeline::PipelineReport;
use crate::report::{count_pct, eng, TextTable};
use gaugenn_analysis::dedup::{dedup, DedupReport, ModelEntry};
use gaugenn_analysis::stats;
use gaugenn_dnn::task::{Modality, Task};
use gaugenn_modelfmt::Framework;
use std::collections::{BTreeMap, BTreeSet};

/// Table 2: dataset snapshot details, measured from both pipelines.
#[derive(Debug, Clone)]
pub struct Tab2 {
    /// `(label, summary)` per snapshot, 2020 first.
    pub snapshots: Vec<crate::pipeline::DatasetSummary>,
}

/// Run Table 2 from both snapshot reports.
pub fn tab2(r2020: &PipelineReport, r2021: &PipelineReport) -> Tab2 {
    Tab2 {
        snapshots: vec![r2020.dataset.clone(), r2021.dataset.clone()],
    }
}

impl Tab2 {
    /// Paper-style table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["", "Snapshot '20", "Snapshot '21"]);
        let g = |f: &dyn Fn(&crate::pipeline::DatasetSummary) -> String| -> Vec<String> {
            self.snapshots.iter().map(f).collect()
        };
        let rows: Vec<(&str, Vec<String>)> = vec![
            ("Date", g(&|s| s.snapshot.to_string())),
            ("# apps", g(&|s| s.total_apps.to_string())),
            (
                "# apps with ML",
                g(&|s| count_pct(s.ml_apps, s.total_apps)),
            ),
            (
                "# apps benchmarked",
                g(&|s| count_pct(s.benchmarkable_apps, s.total_apps)),
            ),
            ("# models", g(&|s| s.total_models.to_string())),
            (
                "# unique models",
                g(&|s| count_pct(s.unique_models, s.total_models)),
            ),
            (
                "models outside apk",
                g(&|s| s.models_outside_apk.to_string()),
            ),
            ("# cloud-API apps", g(&|s| s.cloud_apps.to_string())),
            (
                "# download drop-outs",
                g(&|s| s.download_dropouts.to_string()),
            ),
        ];
        for (label, vals) in rows {
            let mut cells = vec![label.to_string()];
            cells.extend(vals);
            t.row(cells);
        }
        format!("Table 2: dataset snapshots\n{}", t.render())
    }
}

/// Table 3: task classification of the corpus (instance-weighted, like the
/// paper's per-model counts).
#[derive(Debug, Clone)]
pub struct Tab3 {
    /// Instance count per task.
    pub per_task: BTreeMap<Task, usize>,
    /// Instances that could not be classified.
    pub unidentified: usize,
    /// Total instances.
    pub total: usize,
    /// Instances whose classification came from a name hint (§4.4 reports
    /// "around 67 % having names which hint either the model, task at
    /// hand or both").
    pub by_name_hint: usize,
}

/// Run Table 3.
pub fn tab3(report: &PipelineReport) -> Tab3 {
    let mut per_task: BTreeMap<Task, usize> = BTreeMap::new();
    let mut unidentified = 0usize;
    let mut by_name_hint = 0usize;
    for inst in &report.instances {
        match report
            .model(&inst.checksum)
            .and_then(|m| m.classification)
        {
            Some(c) => {
                *per_task.entry(c.task).or_default() += 1;
                if c.evidence == gaugenn_analysis::classify::Evidence::NameHint {
                    by_name_hint += 1;
                }
            }
            None => unidentified += 1,
        }
    }
    Tab3 {
        per_task,
        unidentified,
        total: report.instances.len(),
        by_name_hint,
    }
}

impl Tab3 {
    /// Instances per modality.
    pub fn per_modality(&self) -> BTreeMap<Modality, usize> {
        let mut out = BTreeMap::new();
        for (task, n) in &self.per_task {
            *out.entry(task.modality()).or_default() += n;
        }
        out
    }

    /// Identified fraction (paper: 91.9 %).
    pub fn identified_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            (self.total - self.unidentified) as f64 / self.total as f64
        }
    }

    /// Paper-style table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["Task", "Models"]);
        for modality in Modality::ALL {
            let mod_total: usize = self
                .per_task
                .iter()
                .filter(|(k, _)| k.modality() == modality)
                .map(|(_, v)| v)
                .sum();
            t.row([
                format!("{} ({} models)", modality.name(), mod_total),
                String::new(),
            ]);
            let mut rows: Vec<(&Task, &usize)> = self
                .per_task
                .iter()
                .filter(|(k, _)| k.modality() == modality)
                .collect();
            rows.sort_by(|a, b| b.1.cmp(a.1));
            for (task, n) in rows {
                t.row([format!("  {}", task.name()), count_pct(*n, mod_total)]);
            }
        }
        format!(
            "Table 3: DNN task classification ({} identified, {:.1}%; {:.0}% via name hints, paper: ~67%)\n{}",
            self.total - self.unidentified,
            100.0 * self.identified_fraction(),
            100.0 * self.by_name_hint as f64 / (self.total - self.unidentified).max(1) as f64,
            t.render()
        )
    }
}

/// Fig. 4: models per framework and category.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// `(category, framework) -> instance count`.
    pub counts: BTreeMap<(String, Framework), usize>,
    /// Instance totals per framework.
    pub per_framework: BTreeMap<Framework, usize>,
}

/// Run Fig. 4.
pub fn fig4(report: &PipelineReport) -> Fig4 {
    Fig4 {
        counts: report.instances_per_category_framework(),
        per_framework: report.instances_per_framework(),
    }
}

impl Fig4 {
    /// Categories sorted by model count descending.
    pub fn categories_ranked(&self) -> Vec<(String, usize)> {
        let mut per_cat: BTreeMap<&str, usize> = BTreeMap::new();
        for ((cat, _), n) in &self.counts {
            *per_cat.entry(cat).or_default() += n;
        }
        let mut v: Vec<(String, usize)> =
            per_cat.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Paper-style table (categories with ≥ `min_models`).
    pub fn render(&self) -> String {
        let total: usize = self.per_framework.values().sum();
        let mut header = vec!["Category".to_string(), "Total".to_string()];
        for fw in Framework::BENCHMARKED {
            header.push(fw.name().to_string());
        }
        let mut t = TextTable::new(header);
        for (cat, n) in self.categories_ranked() {
            let mut cells = vec![cat.clone(), n.to_string()];
            for fw in Framework::BENCHMARKED {
                let c = self.counts.get(&(cat.clone(), fw)).copied().unwrap_or(0);
                cells.push(c.to_string());
            }
            t.row(cells);
        }
        let mut fw_line = String::new();
        for fw in Framework::BENCHMARKED {
            let n = self.per_framework.get(&fw).copied().unwrap_or(0);
            fw_line.push_str(&format!("{}: {}  ", fw.name(), count_pct(n, total)));
        }
        format!(
            "Fig 4: models per framework and category ({total} total)\n{}\nFramework split: {}\n",
            t.render(),
            fw_line.trim_end()
        )
    }
}

/// Fig. 5: per-category model add/remove between snapshots.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// `(category, added, removed)` sorted by `added - removed` descending.
    pub rows: Vec<(String, usize, usize)>,
    /// Unique-model totals `(2020, 2021)`.
    pub unique_totals: (usize, usize),
}

/// Run Fig. 5 from both snapshots. Model identity is the checksum.
pub fn fig5(r2020: &PipelineReport, r2021: &PipelineReport) -> Fig5 {
    let per_cat_sums = |r: &PipelineReport| -> BTreeMap<String, BTreeSet<String>> {
        let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for inst in &r.instances {
            out.entry(inst.category.clone())
                .or_default()
                .insert(inst.checksum.clone());
        }
        out
    };
    let c20 = per_cat_sums(r2020);
    let c21 = per_cat_sums(r2021);
    let cats: BTreeSet<&String> = c20.keys().chain(c21.keys()).collect();
    let empty = BTreeSet::new();
    let mut rows: Vec<(String, usize, usize)> = cats
        .into_iter()
        .map(|cat| {
            let s20 = c20.get(cat).unwrap_or(&empty);
            let s21 = c21.get(cat).unwrap_or(&empty);
            let added = s21.difference(s20).count();
            let removed = s20.difference(s21).count();
            (cat.clone(), added, removed)
        })
        .filter(|(_, a, r)| *a + *r > 0)
        .collect();
    rows.sort_by_key(|(_, a, r)| std::cmp::Reverse(*a as i64 - *r as i64));
    Fig5 {
        rows,
        unique_totals: (r2020.dataset.unique_models, r2021.dataset.unique_models),
    }
}

impl Fig5 {
    /// Paper-style table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["Category", "Added", "Removed", "Net"]);
        for (cat, a, r) in &self.rows {
            t.row([
                cat.clone(),
                a.to_string(),
                r.to_string(),
                format!("{:+}", *a as i64 - *r as i64),
            ]);
        }
        format!(
            "Fig 5: individual models added/removed between snapshots (unique: {} -> {})\n{}",
            self.unique_totals.0,
            self.unique_totals.1,
            t.render()
        )
    }
}

/// Fig. 6: layer composition per modality.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// `(modality, family, fraction)` rows, top families per modality.
    pub rows: Vec<(Modality, String, f64)>,
}

/// Run Fig. 6.
pub fn fig6(report: &PipelineReport) -> Fig6 {
    let mut rows = Vec::new();
    for modality in Modality::ALL {
        for (family, _count) in report.composition.top_families(modality) {
            let frac = report.composition.fraction(modality, &family);
            rows.push((modality, family, frac));
        }
    }
    Fig6 { rows }
}

impl Fig6 {
    /// Fraction lookup.
    pub fn fraction(&self, modality: Modality, family: &str) -> f64 {
        self.rows
            .iter()
            .find(|(m, f, _)| *m == modality && f == family)
            .map(|(_, _, v)| *v)
            .unwrap_or(0.0)
    }

    /// Paper-style table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["Modality", "Layer family", "Share"]);
        for (m, f, frac) in &self.rows {
            if *frac >= 0.01 {
                t.row([m.name().to_string(), f.clone(), format!("{:.1}%", frac * 100.0)]);
            }
        }
        format!("Fig 6: model layer composition per input modality\n{}", t.render())
    }
}

/// Fig. 7: FLOPs and parameters per task.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// Per task: `(count, flops min/median/max, params min/median/max)`.
    pub rows: Vec<(Task, usize, [f64; 3], [f64; 3])>,
}

/// Run Fig. 7 over unique models.
pub fn fig7(report: &PipelineReport) -> Fig7 {
    let mut per_task: BTreeMap<Task, (Vec<f64>, Vec<f64>)> = BTreeMap::new();
    for m in &report.models {
        if let Some(c) = m.classification {
            let e = per_task.entry(c.task).or_default();
            e.0.push(m.trace.total_flops as f64);
            e.1.push(m.trace.total_params as f64);
        }
    }
    let mut rows = Vec::new();
    for (task, (flops, params)) in per_task {
        let f = stats::Ecdf::new(flops.clone());
        let p = stats::Ecdf::new(params.clone());
        rows.push((
            task,
            flops.len(),
            [f.quantile(0.0), f.median(), f.quantile(1.0)],
            [p.quantile(0.0), p.median(), p.quantile(1.0)],
        ));
    }
    rows.sort_by(|a, b| b.2[1].partial_cmp(&a.2[1]).expect("finite medians"));
    Fig7 { rows }
}

impl Fig7 {
    /// Orders-of-magnitude span of median FLOPs across tasks (the paper
    /// reports four orders of magnitude across models).
    pub fn flops_magnitude_span(&self) -> f64 {
        let meds: Vec<f64> = self.rows.iter().map(|r| r.2[1]).filter(|v| *v > 0.0).collect();
        if meds.is_empty() {
            return 0.0;
        }
        let max = meds.iter().cloned().fold(f64::MIN, f64::max);
        let min = meds.iter().cloned().fold(f64::MAX, f64::min);
        (max / min).log10()
    }

    /// Paper-style table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["Task", "n", "FLOPs (min/med/max)", "Params (min/med/max)"]);
        for (task, n, f, p) in &self.rows {
            t.row([
                task.name().to_string(),
                n.to_string(),
                format!("{}/{}/{}", eng(f[0]), eng(f[1]), eng(f[2])),
                format!("{}/{}/{}", eng(p[0]), eng(p[1]), eng(p[2])),
            ]);
        }
        format!("Fig 7: FLOPs and parameters per DNN task (unique models)\n{}", t.render())
    }
}

/// Fig. 15: cloud-ML-API apps per category and provider.
#[derive(Debug, Clone)]
pub struct Fig15 {
    /// `(category, google_apps, amazon_apps)` sorted by total.
    pub rows: Vec<(String, usize, usize)>,
    /// Total distinct cloud-API apps.
    pub total: usize,
    /// Google-family total.
    pub google: usize,
    /// Amazon total.
    pub amazon: usize,
}

/// Run Fig. 15.
pub fn fig15(report: &PipelineReport) -> Fig15 {
    let mut per_cat: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    let mut total = 0;
    let mut google = 0;
    let mut amazon = 0;
    for app in &report.apps {
        if app.cloud.is_empty() {
            continue;
        }
        total += 1;
        let has_google = app.cloud.iter().any(|p| p.is_google());
        let has_amazon = app
            .cloud
            .iter()
            .any(|p| !p.is_google());
        let e = per_cat.entry(app.category.clone()).or_default();
        if has_google {
            e.0 += 1;
            google += 1;
        }
        if has_amazon {
            e.1 += 1;
            amazon += 1;
        }
    }
    let mut rows: Vec<(String, usize, usize)> =
        per_cat.into_iter().map(|(c, (g, a))| (c, g, a)).collect();
    rows.sort_by_key(|(_, g, a)| std::cmp::Reverse(g + a));
    Fig15 {
        rows,
        total,
        google,
        amazon,
    }
}

impl Fig15 {
    /// Paper-style table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["Category", "Google", "Amazon"]);
        for (cat, g, a) in &self.rows {
            t.row([cat.clone(), g.to_string(), a.to_string()]);
        }
        format!(
            "Fig 15: apps invoking cloud ML APIs ({} apps: {} Google, {} Amazon)\n{}",
            self.total,
            self.google,
            self.amazon,
            t.render()
        )
    }
}

/// §4.5: uniqueness and fine-tuning analysis.
pub fn sec45(report: &PipelineReport) -> DedupReport {
    let entries: Vec<ModelEntry> = report
        .instances
        .iter()
        .map(|inst| {
            let m = report.model(&inst.checksum).expect("instances link to models");
            ModelEntry {
                app: inst.app.clone(),
                path: inst.path.clone(),
                checksum: inst.checksum.clone(),
                layers: m.layers.clone(),
            }
        })
        .collect();
    dedup(&entries)
}

/// Render the §4.5 report paper-style.
pub fn render_sec45(r: &DedupReport) -> String {
    format!(
        "Sec 4.5: model uniqueness\n\
         total instances:            {}\n\
         unique models:              {} ({:.1}%)\n\
         instances shared >=2 apps:  {:.1}%\n\
         unique sharing >=20% wts:   {} ({:.2}% of unique)\n\
         unique differing <=3 layers:{} ({:.2}% of unique)\n",
        r.total_instances,
        r.unique_models,
        100.0 * r.unique_fraction(),
        100.0 * r.shared_instance_fraction,
        r.sharing_20pct,
        100.0 * r.sharing_20pct as f64 / r.unique_models.max(1) as f64,
        r.diff_le3_layers,
        100.0 * r.diff_le3_layers as f64 / r.unique_models.max(1) as f64,
    )
}

/// §6.1: optimisation census over unique models.
pub fn sec61(report: &PipelineReport) -> gaugenn_analysis::optim::OptimCensus {
    let mut census = gaugenn_analysis::optim::OptimCensus::default();
    for m in &report.models {
        census.add(&m.optim);
    }
    census
}

/// Render the §6.1 census paper-style.
pub fn render_sec61(c: &gaugenn_analysis::optim::OptimCensus) -> String {
    format!(
        "Sec 6.1: model-level optimisations ({} unique models)\n\
         clustering markers:   {}\n\
         pruning markers:      {}\n\
         near-zero weights:    {:.2}%\n\
         dequantize layer:     {:.1}% of models\n\
         int8 weights:         {:.1}% of models\n\
         int8 activations:     {:.1}% of models\n",
        c.models,
        c.clustered,
        c.prune_marked,
        100.0 * c.sparsity(),
        100.0 * c.dequantize_fraction(),
        100.0 * c.int8_weight_fraction(),
        100.0 * c.int8_activation_fraction(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Pipeline, PipelineConfig};
    use gaugenn_playstore::corpus::Snapshot;
    use std::sync::OnceLock;

    fn reports() -> &'static (PipelineReport, PipelineReport) {
        static CELL: OnceLock<(PipelineReport, PipelineReport)> = OnceLock::new();
        CELL.get_or_init(|| {
            let r20 = Pipeline::new(PipelineConfig::tiny(Snapshot::Y2020, 7))
                .run()
                .unwrap();
            let r21 = Pipeline::new(PipelineConfig::tiny(Snapshot::Y2021, 7))
                .run()
                .unwrap();
            (r20, r21)
        })
    }

    #[test]
    fn tab2_shows_growth() {
        let (r20, r21) = reports();
        let t = tab2(r20, r21);
        assert!(t.snapshots[1].total_models > t.snapshots[0].total_models);
        assert!(t.snapshots[1].ml_apps > t.snapshots[0].ml_apps);
        let s = t.render();
        assert!(s.contains("Snapshot '21"));
        assert!(s.contains("# models"));
        assert!(s.contains("# download drop-outs"));
    }

    #[test]
    fn tab3_vision_dominates() {
        let (_, r21) = reports();
        let t = tab3(r21);
        assert!(t.identified_fraction() > 0.8);
        let per_mod = t.per_modality();
        let vision = per_mod.get(&Modality::Vision).copied().unwrap_or(0);
        let others: usize = per_mod
            .iter()
            .filter(|(m, _)| **m != Modality::Vision)
            .map(|(_, n)| n)
            .sum();
        assert!(vision > others, "vision {vision} vs others {others}");
        assert!(t.render().contains("vision"));
    }

    #[test]
    fn fig4_tflite_leads() {
        let (_, r21) = reports();
        let f = fig4(r21);
        let tflite = f.per_framework.get(&Framework::TfLite).copied().unwrap_or(0);
        let total: usize = f.per_framework.values().sum();
        assert!(tflite * 2 > total, "TFLite should dominate: {tflite}/{total}");
        assert!(!f.categories_ranked().is_empty());
        assert!(f.render().contains("tflite"));
    }

    #[test]
    fn fig5_has_adds_and_removes() {
        let (r20, r21) = reports();
        let f = fig5(r20, r21);
        let added: usize = f.rows.iter().map(|r| r.1).sum();
        let removed: usize = f.rows.iter().map(|r| r.2).sum();
        assert!(added > 0, "new models appear in '21");
        assert!(removed > 0, "some models disappear from '20");
        assert!(added > removed, "the corpus grows overall");
        // Rows sorted by net change.
        let nets: Vec<i64> = f.rows.iter().map(|(_, a, r)| *a as i64 - *r as i64).collect();
        assert!(nets.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn fig6_vision_has_conv() {
        let (_, r21) = reports();
        let f = fig6(r21);
        assert!(f.fraction(Modality::Vision, "conv") > 0.1);
        assert!(f.render().contains("conv"));
    }

    #[test]
    fn fig7_span_is_wide() {
        let (_, r21) = reports();
        let f = fig7(r21);
        assert!(!f.rows.is_empty());
        assert!(
            f.flops_magnitude_span() >= 1.0,
            "expect at least an order of magnitude, got {}",
            f.flops_magnitude_span()
        );
    }

    #[test]
    fn fig15_counts_match_dataset() {
        let (_, r21) = reports();
        let f = fig15(r21);
        assert_eq!(f.total, r21.dataset.cloud_apps);
        assert!(f.google > f.amazon, "Google APIs dominate (Fig 15)");
    }

    #[test]
    fn sec45_dedup_runs() {
        let (_, r21) = reports();
        let d = sec45(r21);
        assert_eq!(d.total_instances, r21.dataset.total_models);
        assert_eq!(d.unique_models, r21.dataset.unique_models);
        assert!(d.shared_instance_fraction > 0.0);
        assert!(render_sec45(&d).contains("unique models"));
    }

    #[test]
    fn sec61_census_measures_planted_population() {
        let (_, r21) = reports();
        let c = sec61(r21);
        assert_eq!(c.models as usize, r21.models.len());
        assert_eq!(c.clustered, 0, "no clustering in the wild (§6.1)");
        assert_eq!(c.prune_marked, 0, "no pruning markers in the wild (§6.1)");
        assert!(c.sparsity() > 0.01, "sparsity {}", c.sparsity());
        assert!(render_sec61(&c).contains("int8 weights"));
    }
}
