//! Experiment drivers: one per table and figure of the paper's evaluation.
//!
//! | id | artefact | driver |
//! |----|----------|--------|
//! | T1 | Table 1 device specs | [`runtime::tab1`] |
//! | T2 | Table 2 dataset snapshots | [`offline::tab2`] |
//! | T3 | Table 3 task classification | [`offline::tab3`] |
//! | T4 | Table 4 scenario energy | [`runtime::tab4`] |
//! | F4 | models per framework × category | [`offline::fig4`] |
//! | F5 | models added/removed across snapshots | [`offline::fig5`] |
//! | F6 | layer composition per modality | [`offline::fig6`] |
//! | F7 | FLOPs & params per task | [`offline::fig7`] |
//! | F8 | latency vs FLOPs | [`runtime::fig8`] |
//! | F9 | latency ECDF per device | [`runtime::fig9`] |
//! | F10 | energy/power/efficiency distributions | [`runtime::fig10`] |
//! | F11 | throughput vs batch size | [`backends::fig11`] |
//! | F12 | throughput vs threads/affinity | [`backends::fig12`] |
//! | F13 | CPU-runtime ECDFs (CPU/XNNPACK/NNAPI) | [`backends::fig13`] |
//! | F14 | SNPE-target ECDFs | [`backends::fig14`] |
//! | F15 | cloud-API apps per category | [`offline::fig15`] |
//! | §4.5 | uniqueness / fine-tuning | [`offline::sec45`] |
//! | §6.1 | optimisation census | [`offline::sec61`] |
//! | §6.1+ | what-if: applying the unadopted optimisations | [`whatif::whatif`] |
//! | §8.1+ | DNN co-habitation study (future work) | [`cohab::cohab_study`] |
//! | X3 | model-mechanism ablations | [`ablations::ablation_study`] |
//! | X4 | §6.4 cloud offloading vs on-device | [`offload::offload_study`] |
//!
//! Every driver is a pure function of its inputs; outputs implement
//! `render()` returning a paper-style text block.

pub mod ablations;
pub mod backends;
pub mod cohab;
pub mod offline;
pub mod offload;
pub mod runtime;
pub mod whatif;

use crate::pipeline::{ModelRecord, PipelineReport};
use gaugenn_modelfmt::Framework;

/// Models usable by a runtime experiment on a given framework set.
pub fn models_for_frameworks<'r>(
    report: &'r PipelineReport,
    frameworks: &[Framework],
) -> Vec<&'r ModelRecord> {
    report
        .models
        .iter()
        .filter(|m| frameworks.contains(&m.framework))
        .collect()
}
