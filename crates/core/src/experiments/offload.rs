//! §6.4 extension: when does cloud offloading beat on-device inference?
//!
//! The paper tracks *who* calls cloud ML APIs (Fig. 15) and argues the
//! motivation is consistent QoE across heterogeneous handsets. This study
//! quantifies it over the extracted corpus: per (device, network), the
//! fraction of models for which offloading is faster, and the cross-device
//! latency spread of each strategy.

use crate::pipeline::PipelineReport;
use crate::report::TextTable;
use crate::Result;
use gaugenn_analysis::stats;
use gaugenn_soc::offload::{compare, CloudSpec, NETWORKS};
use gaugenn_soc::sched::ThreadConfig;
use gaugenn_soc::spec::all_devices;
use gaugenn_soc::Backend;

/// Camera inputs cross the network JPEG-compressed.
const COMPRESSION: f64 = 20.0;

/// One (device, network) row.
#[derive(Debug, Clone)]
pub struct OffloadRow {
    /// Device name.
    pub device: String,
    /// Network name.
    pub network: &'static str,
    /// Fraction of models where offloading is strictly faster.
    pub offload_wins: f64,
    /// Mean local latency, ms.
    pub local_mean_ms: f64,
    /// Mean offloaded latency, ms.
    pub offload_mean_ms: f64,
}

/// The offloading study.
#[derive(Debug, Clone)]
pub struct OffloadStudy {
    /// All rows.
    pub rows: Vec<OffloadRow>,
}

/// Run the study over every Table 1 device and network profile.
pub fn offload_study(report: &PipelineReport) -> Result<OffloadStudy> {
    let cloud = CloudSpec::default();
    let cpu = Backend::Cpu(ThreadConfig::unpinned(4));
    let mut rows = Vec::new();
    for d in all_devices() {
        for net in &NETWORKS {
            let mut wins = 0usize;
            let mut n = 0usize;
            let mut locals = Vec::new();
            let mut clouds = Vec::new();
            for m in &report.models {
                let Ok((local, off)) = compare(&d, cpu, &m.trace, net, &cloud, COMPRESSION)
                else {
                    continue;
                };
                n += 1;
                locals.push(local);
                clouds.push(off);
                if off < local {
                    wins += 1;
                }
            }
            rows.push(OffloadRow {
                device: d.name.to_string(),
                network: net.name,
                offload_wins: wins as f64 / n.max(1) as f64,
                local_mean_ms: stats::mean(&locals),
                offload_mean_ms: stats::mean(&clouds),
            });
        }
    }
    Ok(OffloadStudy { rows })
}

impl OffloadStudy {
    /// Row lookup.
    pub fn row(&self, device: &str, network: &str) -> Option<&OffloadRow> {
        self.rows
            .iter()
            .find(|r| r.device == device && r.network == network)
    }

    /// Cross-device spread (max/min of mean latency) for a strategy on a
    /// network — the QoE-consistency metric. `offload=false` → local.
    pub fn device_spread(&self, network: &str, offload: bool) -> f64 {
        let means: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.network == network)
            .map(|r| if offload { r.offload_mean_ms } else { r.local_mean_ms })
            .collect();
        let max = means.iter().cloned().fold(f64::MIN, f64::max);
        let min = means.iter().cloned().fold(f64::MAX, f64::min);
        max / min
    }

    /// Paper-style table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "Device",
            "Network",
            "offload wins",
            "local mean ms",
            "cloud mean ms",
        ]);
        for r in &self.rows {
            t.row([
                r.device.clone(),
                r.network.to_string(),
                format!("{:.0}%", 100.0 * r.offload_wins),
                format!("{:.1}", r.local_mean_ms),
                format!("{:.1}", r.offload_mean_ms),
            ]);
        }
        format!(
            "Sec 6.4 (extension): cloud offloading vs on-device inference\n{}\
             QoE spread across devices on WiFi: local {:.1}x vs cloud {:.1}x\n\
             (the paper's motivation: cloud latency \"is not dependent on the target device\")\n",
            t.render(),
            self.device_spread("WiFi", false),
            self.device_spread("WiFi", true),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Pipeline, PipelineConfig};
    use gaugenn_playstore::corpus::Snapshot;

    #[test]
    fn offloading_helps_weak_devices_most() {
        let report = Pipeline::new(PipelineConfig::tiny(Snapshot::Y2021, 7))
            .run()
            .unwrap();
        let s = offload_study(&report).unwrap();
        assert_eq!(s.rows.len(), 6 * 3);
        // On WiFi, the A20 benefits from offloading more often than the S21.
        let a20 = s.row("A20", "WiFi").unwrap().offload_wins;
        let s21 = s.row("S21", "WiFi").unwrap().offload_wins;
        assert!(a20 >= s21, "A20 {a20} vs S21 {s21}");
        // Worse networks reduce the win rate on every device.
        for dev in ["A20", "A70", "S21"] {
            let wifi = s.row(dev, "WiFi").unwrap().offload_wins;
            let hspa = s.row(dev, "HSPA").unwrap().offload_wins;
            assert!(wifi >= hspa, "{dev}: wifi {wifi} vs hspa {hspa}");
        }
        // The QoE-consistency claim: cloud latency varies far less across
        // devices than local latency does.
        let local_spread = s.device_spread("WiFi", false);
        let cloud_spread = s.device_spread("WiFi", true);
        assert!(
            cloud_spread < 1.01 && local_spread > 2.0,
            "local {local_spread} vs cloud {cloud_spread}"
        );
        assert!(s.render().contains("offload wins"));
    }
}
