//! Runtime experiments: Table 1, Figs. 8–10 and Table 4.
//!
//! These drive the analytic SoC/power models over the unique models the
//! pipeline extracted — the same measurements the physical harness makes,
//! minus the wall-clock (see `gaugenn-harness` for the real TCP workflow,
//! which the integration tests and examples exercise on corpus subsets).

use crate::pipeline::PipelineReport;
use crate::report::TextTable;
use crate::Result;
use gaugenn_analysis::stats::{self, Ecdf, Kde, LineFit};
use gaugenn_dnn::task::Task;
use gaugenn_power::monsoon::PowerMonitor;
use gaugenn_power::{measure_inference, sustained_run};
use gaugenn_soc::sched::ThreadConfig;
use gaugenn_soc::spec::{all_devices, hdks, phones, DeviceSpec};
use gaugenn_soc::thermal::ThermalState;
use gaugenn_soc::Backend;

fn cpu4() -> Backend {
    Backend::Cpu(ThreadConfig::unpinned(4))
}

/// Table 1: the device roster.
pub fn tab1() -> String {
    let mut t = TextTable::new(["Model", "SoC", "RAM", "Battery", "Form"]);
    for d in all_devices() {
        t.row([
            d.name.to_string(),
            d.soc.name.to_string(),
            format!("{}GB", d.ram_gb),
            d.battery_mah
                .map(|b| format!("{b}mAh"))
                .unwrap_or_else(|| "N/A".into()),
            format!("{:?}", d.form),
        ]);
    }
    format!("Table 1: device specifications\n{}", t.render())
}

/// Per-(device, model) latency measurements backing Figs. 8 and 9.
#[derive(Debug, Clone)]
pub struct LatencySweep {
    /// Device names, in Table 1 order.
    pub devices: Vec<String>,
    /// `(device, model_checksum, flops, latency_ms)` rows; incompatible
    /// models are skipped per device (none on CPU, but kept general).
    pub rows: Vec<(String, String, u64, f64)>,
}

/// Benchmark every unique model on every device (CPU, 4 threads).
pub fn latency_sweep(report: &PipelineReport, devices: &[DeviceSpec]) -> LatencySweep {
    let cool = ThermalState::cool();
    let mut rows = Vec::new();
    for d in devices {
        for m in &report.models {
            if let Ok(lat) = gaugenn_soc::estimate_latency(d, cpu4(), &m.trace, &cool) {
                rows.push((
                    d.name.to_string(),
                    m.checksum.clone(),
                    m.trace.total_flops,
                    lat.total_ms,
                ));
            }
        }
    }
    LatencySweep {
        devices: devices.iter().map(|d| d.name.to_string()).collect(),
        rows,
    }
}

/// Fig. 8: latency vs FLOPs with per-device line fits.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// Per device: sample count and the least-squares fit.
    pub fits: Vec<(String, usize, Option<LineFit>)>,
}

/// Run Fig. 8 from a latency sweep.
pub fn fig8(sweep: &LatencySweep) -> Fig8 {
    let fits = sweep
        .devices
        .iter()
        .map(|dev| {
            let pts: Vec<(f64, f64)> = sweep
                .rows
                .iter()
                .filter(|(d, ..)| d == dev)
                .map(|(_, _, flops, ms)| (*flops as f64 / 1e9, *ms))
                .collect();
            let fit = stats::line_fit(&pts);
            (dev.clone(), pts.len(), fit)
        })
        .collect();
    Fig8 { fits }
}

impl Fig8 {
    /// Worst (lowest) r² across devices — the paper's point is that FLOPs
    /// is a weak predictor everywhere.
    pub fn min_r2(&self) -> f64 {
        self.fits
            .iter()
            .filter_map(|(_, _, f)| f.map(|f| f.r2))
            .fold(1.0, f64::min)
    }

    /// Max/min spread of latency-per-GFLOP across models, per device.
    /// A wide spread is the figure's point: knowing a model's FLOPs alone
    /// leaves a multi-x uncertainty in its latency.
    pub fn per_flop_spread(&self, sweep: &LatencySweep, device: &str) -> f64 {
        let per_flop: Vec<f64> = sweep
            .rows
            .iter()
            .filter(|(d, _, flops, _)| d == device && *flops > 0)
            .map(|(_, _, flops, ms)| ms / (*flops as f64 / 1e9))
            .collect();
        if per_flop.is_empty() {
            return 1.0;
        }
        let max = per_flop.iter().cloned().fold(f64::MIN, f64::max);
        let min = per_flop.iter().cloned().fold(f64::MAX, f64::min);
        max / min
    }

    /// Paper-style table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["Device", "n", "slope ms/GFLOP", "intercept ms", "r^2"]);
        for (dev, n, fit) in &self.fits {
            match fit {
                Some(f) => t.row([
                    dev.clone(),
                    n.to_string(),
                    format!("{:.2}", f.slope),
                    format!("{:.2}", f.intercept),
                    format!("{:.3}", f.r2),
                ]),
                None => t.row([dev.clone(), n.to_string(), "-".into(), "-".into(), "-".into()]),
            };
        }
        format!(
            "Fig 8: latency vs FLOPs (line fits; non-linearity = low r^2)\n{}",
            t.render()
        )
    }
}

/// Fig. 9: latency ECDF per device plus the headline ratios.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// Per device: `(name, ecdf)` over model latencies.
    pub ecdfs: Vec<(String, Ecdf)>,
    /// Mean latency per device.
    pub means: Vec<(String, f64)>,
}

/// Run Fig. 9 from a latency sweep.
pub fn fig9(sweep: &LatencySweep) -> Fig9 {
    let mut ecdfs = Vec::new();
    let mut means = Vec::new();
    for dev in &sweep.devices {
        let lats: Vec<f64> = sweep
            .rows
            .iter()
            .filter(|(d, ..)| d == dev)
            .map(|(_, _, _, ms)| *ms)
            .collect();
        means.push((dev.clone(), stats::mean(&lats)));
        ecdfs.push((dev.clone(), Ecdf::new(lats)));
    }
    Fig9 { ecdfs, means }
}

impl Fig9 {
    /// Mean latency of a device.
    pub fn mean_of(&self, device: &str) -> Option<f64> {
        self.means.iter().find(|(d, _)| d == device).map(|(_, m)| *m)
    }

    /// Slowdown of `a` relative to `b` on mean latency.
    pub fn slowdown(&self, a: &str, b: &str) -> Option<f64> {
        Some(self.mean_of(a)? / self.mean_of(b)?)
    }

    /// Paper-style summary with ECDF quartiles.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["Device", "mean ms", "p25", "median", "p75", "p95"]);
        for (dev, e) in &self.ecdfs {
            let mean = self.mean_of(dev).unwrap_or(f64::NAN);
            t.row([
                dev.clone(),
                format!("{mean:.1}"),
                format!("{:.1}", e.quantile(0.25)),
                format!("{:.1}", e.median()),
                format!("{:.1}", e.quantile(0.75)),
                format!("{:.1}", e.quantile(0.95)),
            ]);
        }
        let mut s = format!("Fig 9: latency per device (ECDF summary)\n{}", t.render());
        if let (Some(a20), Some(a70)) = (self.slowdown("A20", "S21"), self.slowdown("A70", "S21")) {
            s.push_str(&format!(
                "tier gaps vs S21: A20 {a20:.2}x slower, A70 {a70:.2}x slower (paper: 3.4x / 1.51x)\n"
            ));
        }
        s
    }
}

/// Fig. 10: energy / power / efficiency distributions on the HDKs.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// Per device: `(name, energy_mj, power_w, efficiency MFLOP/s/W)` rows.
    pub rows: Vec<(String, f64, f64, f64)>,
}

/// Run Fig. 10 over the HDK boards.
pub fn fig10(report: &PipelineReport) -> Result<Fig10> {
    let cool = ThermalState::cool();
    let monitor = PowerMonitor::new(0x00F1_6010);
    let mut rows = Vec::new();
    for d in hdks() {
        for m in &report.models {
            let rep = match measure_inference(&d, cpu4(), &m.trace, &cool, &monitor) {
                Ok(r) => r,
                Err(_) => continue,
            };
            rows.push((
                d.name.to_string(),
                rep.energy_mj,
                rep.avg_power_w,
                rep.efficiency_mflops_per_sw,
            ));
        }
    }
    Ok(Fig10 { rows })
}

impl Fig10 {
    /// Median of one metric per device. `metric`: 0 energy, 1 power, 2
    /// efficiency.
    pub fn median(&self, device: &str, metric: usize) -> f64 {
        let vals: Vec<f64> = self
            .rows
            .iter()
            .filter(|(d, ..)| d == device)
            .map(|(_, e, p, eff)| match metric {
                0 => *e,
                1 => *p,
                _ => *eff,
            })
            .collect();
        Ecdf::new(vals).median()
    }

    /// KDE curve of one metric for a device (for plotting, Fig. 10's
    /// smooth lines).
    pub fn kde(&self, device: &str, metric: usize, points: usize) -> Vec<(f64, f64)> {
        let vals: Vec<f64> = self
            .rows
            .iter()
            .filter(|(d, ..)| d == device)
            .map(|(_, e, p, eff)| match metric {
                0 => *e,
                1 => *p,
                _ => *eff,
            })
            .collect();
        Kde::new(vals).curve(points)
    }

    /// Paper-style summary.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "Device",
            "median energy mJ",
            "median power W",
            "median eff MFLOP/sW",
        ]);
        for dev in ["Q845", "Q855", "Q888"] {
            t.row([
                dev.to_string(),
                format!("{:.1}", self.median(dev, 0)),
                format!("{:.2}", self.median(dev, 1)),
                format!("{:.0}", self.median(dev, 2)),
            ]);
        }
        format!(
            "Fig 10: inference energy/power/efficiency across SoC generations\n{}\
             (paper medians: efficiency 730 / 765 / 873 MFLOP/sW)\n",
            t.render()
        )
    }
}

/// One Table 4 scenario row.
#[derive(Debug, Clone)]
pub struct ScenarioRow {
    /// Device.
    pub device: String,
    /// Scenario label.
    pub scenario: &'static str,
    /// Number of models that ran.
    pub models: usize,
    /// Battery-discharge stats in mAh: avg, median, min, max.
    pub mah: [f64; 4],
}

/// Table 4: scenario-driven energy consumption.
#[derive(Debug, Clone)]
pub struct Tab4 {
    /// All rows, grouped by device.
    pub rows: Vec<ScenarioRow>,
}

/// The §5.2.2 scenarios: `(label, tasks, inferences, duration_s)`.
///
/// * sound recognition — 1 h of audio; ambient recognisers classify a
///   ~10 s window per inference ("the most likely amount of audio input
///   per inference considering the model's input dimension and common
///   practices in speech ML");
/// * typing — 275 words, one inference per word [12, 54, 66];
/// * segmentation — 15 FPS for a 1 h video call (frames drop when a model
///   cannot hold the rate).
fn scenarios() -> [(&'static str, Vec<Task>, u64, f64); 3] {
    [
        (
            "Sound R.",
            vec![Task::SoundRecognition, Task::SpeechRecognition, Task::KeywordDetection],
            360, // one inference per ~10 s audio window
            3600.0,
        ),
        ("Typing", vec![Task::AutoComplete], 275, 3600.0),
        (
            "Segm.",
            vec![
                Task::SemanticSegmentation,
                Task::HairReconstruction,
                Task::PhotoBeauty,
            ],
            15 * 3600,
            3600.0,
        ),
    ]
}

/// Run Table 4 over the HDKs.
pub fn tab4(report: &PipelineReport) -> Result<Tab4> {
    let mut rows = Vec::new();
    for d in hdks() {
        for (label, tasks, inferences, duration) in scenarios() {
            let mut mah_values = Vec::new();
            for m in &report.models {
                let Some(c) = m.classification else { continue };
                if !tasks.contains(&c.task) {
                    continue;
                }
                let rep = sustained_run(&d, cpu4(), &m.trace, inferences, duration)?;
                mah_values.push(rep.battery_mah);
            }
            if mah_values.is_empty() {
                continue;
            }
            let e = Ecdf::new(mah_values.clone());
            rows.push(ScenarioRow {
                device: d.name.to_string(),
                scenario: label,
                models: mah_values.len(),
                mah: [
                    stats::mean(&mah_values),
                    e.median(),
                    e.quantile(0.0),
                    e.quantile(1.0),
                ],
            });
        }
    }
    Ok(Tab4 { rows })
}

impl Tab4 {
    /// Row lookup.
    pub fn row(&self, device: &str, scenario: &str) -> Option<&ScenarioRow> {
        self.rows
            .iter()
            .find(|r| r.device == device && r.scenario == scenario)
    }

    /// Paper-style table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["Device", "Use-case", "n", "Avg mAh", "Median", "Min", "Max"]);
        for r in &self.rows {
            t.row([
                r.device.clone(),
                r.scenario.to_string(),
                r.models.to_string(),
                format!("{:.3}", r.mah[0]),
                format!("{:.3}", r.mah[1]),
                format!("{:.3}", r.mah[2]),
                format!("{:.3}", r.mah[3]),
            ]);
        }
        format!(
            "Table 4: scenario-driven energy (1h sound recognition / 275-word typing / 1h 15FPS segmentation)\n{}",
            t.render()
        )
    }
}

/// Convenience: the three phones + three HDKs.
pub fn all_table1_devices() -> Vec<DeviceSpec> {
    all_devices()
}

/// Convenience: phones only.
pub fn phone_devices() -> Vec<DeviceSpec> {
    phones()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Pipeline, PipelineConfig};
    use gaugenn_playstore::corpus::Snapshot;
    use std::sync::OnceLock;

    fn report() -> &'static PipelineReport {
        static CELL: OnceLock<PipelineReport> = OnceLock::new();
        CELL.get_or_init(|| {
            Pipeline::new(PipelineConfig::tiny(Snapshot::Y2021, 7))
                .run()
                .unwrap()
        })
    }

    #[test]
    fn tab1_lists_six_devices() {
        let s = tab1();
        for d in ["A20", "A70", "S21", "Q845", "Q855", "Q888"] {
            assert!(s.contains(d), "{d} missing from Table 1");
        }
        assert!(s.contains("Snapdragon 888"));
        assert!(s.contains("N/A"), "Q855/Q888 have no battery");
    }

    #[test]
    fn fig8_flops_is_a_weak_predictor() {
        let sweep = latency_sweep(report(), &all_devices());
        let f = fig8(&sweep);
        assert_eq!(f.fits.len(), 6);
        assert!(f.min_r2() < 1.0);
        // The figure's point: FLOPs alone leaves a multi-x latency
        // uncertainty, and the fit differs from device to device.
        for dev in ["A20", "A70", "S21", "Q845"] {
            let spread = f.per_flop_spread(&sweep, dev);
            assert!(spread > 2.0, "{dev}: latency-per-GFLOP spread {spread}");
        }
        let slopes: Vec<f64> = f.fits.iter().filter_map(|(_, _, x)| x.map(|x| x.slope)).collect();
        let smax = slopes.iter().cloned().fold(f64::MIN, f64::max);
        let smin = slopes.iter().cloned().fold(f64::MAX, f64::min);
        assert!(smax / smin > 1.5, "fits must differ across devices: {slopes:?}");
        assert!(f.render().contains("r^2"));
    }

    #[test]
    fn fig9_tier_ordering() {
        let sweep = latency_sweep(report(), &all_devices());
        let f = fig9(&sweep);
        let a20 = f.slowdown("A20", "S21").unwrap();
        let a70 = f.slowdown("A70", "S21").unwrap();
        assert!(a20 > a70, "low tier slower than mid: {a20} vs {a70}");
        assert!(a70 > 1.0, "mid tier slower than flagship");
        // HDK generation ordering.
        assert!(f.mean_of("Q845").unwrap() > f.mean_of("Q855").unwrap());
        assert!(f.mean_of("Q855").unwrap() > f.mean_of("Q888").unwrap());
        // Same-SoC open deck faster than the phone.
        assert!(f.mean_of("Q888").unwrap() < f.mean_of("S21").unwrap());
        assert!(f.render().contains("tier gaps"));
    }

    #[test]
    fn fig10_power_rises_energy_similar() {
        let f = fig10(report()).unwrap();
        let p845 = f.median("Q845", 1);
        let p888 = f.median("Q888", 1);
        assert!(p888 > p845, "newer generations draw more power");
        let e845 = f.median("Q845", 0);
        let e888 = f.median("Q888", 0);
        let ratio = e888 / e845;
        assert!((0.3..=1.5).contains(&ratio), "energy similar, ratio {ratio}");
        let eff845 = f.median("Q845", 2);
        let eff888 = f.median("Q888", 2);
        assert!(eff888 > 0.8 * eff845, "efficiency should not regress much");
        assert!(!f.kde("Q845", 2, 16).is_empty());
    }

    #[test]
    fn tab4_scenario_ordering() {
        let t = tab4(report()).unwrap();
        assert!(!t.rows.is_empty());
        // Segmentation dwarfs typing wherever both exist.
        for dev in ["Q845", "Q855", "Q888"] {
            if let (Some(seg), Some(typ)) = (t.row(dev, "Segm."), t.row(dev, "Typing")) {
                assert!(
                    seg.mah[0] > 50.0 * typ.mah[0],
                    "{dev}: segmentation {} vs typing {}",
                    seg.mah[0],
                    typ.mah[0]
                );
            }
        }
        assert!(t.render().contains("Use-case"));
    }
}
