//! §8.1 co-habitation study (future work made concrete).
//!
//! Pairs the most popular corpus models and runs them side by side on each
//! device through the `gaugenn-soc` co-habitation model, quantifying how
//! much a second resident DNN costs — the workload the paper predicts "OS
//! or hardware-level solutions" will have to manage.

use crate::pipeline::PipelineReport;
use crate::report::TextTable;
use crate::Result;
use gaugenn_analysis::stats;
use gaugenn_soc::cohab::cohabitate;
use gaugenn_soc::spec::all_devices;
use gaugenn_soc::thermal::ThermalState;

/// Per-device co-habitation summary.
#[derive(Debug, Clone)]
pub struct CohabStudy {
    /// `(device, pairs, mean tenant-A slowdown, mean tenant-B slowdown,
    /// mean throughput gain)` rows.
    pub rows: Vec<(String, usize, f64, f64, f64)>,
}

/// Run the study: pair the top-`k` most duplicated models against each
/// other on every Table 1 device.
pub fn cohab_study(report: &PipelineReport, k: usize) -> Result<CohabStudy> {
    let mut popular: Vec<_> = report.models.iter().collect();
    popular.sort_by_key(|m| std::cmp::Reverse(m.app_count));
    let top: Vec<_> = popular.into_iter().take(k.max(2)).collect();
    let cool = ThermalState::cool();
    let mut rows = Vec::new();
    for d in all_devices() {
        let mut slow_a = Vec::new();
        let mut slow_b = Vec::new();
        let mut gains = Vec::new();
        let mut pairs = 0usize;
        for (i, a) in top.iter().enumerate() {
            for b in top.iter().skip(i + 1) {
                let rep = cohabitate(&d, &a.trace, &b.trace, &cool)?;
                let [sa, sb] = rep.slowdowns();
                slow_a.push(sa);
                slow_b.push(sb);
                gains.push(rep.throughput_gain());
                pairs += 1;
            }
        }
        rows.push((
            d.name.to_string(),
            pairs,
            stats::mean(&slow_a),
            stats::mean(&slow_b),
            stats::mean(&gains),
        ));
    }
    Ok(CohabStudy { rows })
}

impl CohabStudy {
    /// Row lookup.
    pub fn row(&self, device: &str) -> Option<&(String, usize, f64, f64, f64)> {
        self.rows.iter().find(|(d, ..)| d == device)
    }

    /// Paper-style table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "Device",
            "pairs",
            "tenant-A slowdown",
            "tenant-B slowdown",
            "throughput vs sequential",
        ]);
        for (dev, pairs, sa, sb, gain) in &self.rows {
            t.row([
                dev.clone(),
                pairs.to_string(),
                format!("{sa:.2}x"),
                format!("{sb:.2}x"),
                format!("{gain:.2}x"),
            ]);
        }
        format!(
            "Sec 8.1 (extension): DNN co-habitation — two resident models per device\n{}\
             (naive core partitioning: the late tenant inherits LITTLE cores — the paper's\n\
              anticipated 'emerging problem' for OS/hardware-level schedulers)\n",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Pipeline, PipelineConfig};
    use gaugenn_playstore::corpus::Snapshot;

    #[test]
    fn study_covers_all_devices_with_consistent_shape() {
        let report = Pipeline::new(PipelineConfig::tiny(Snapshot::Y2021, 7))
            .run()
            .unwrap();
        let s = cohab_study(&report, 4).unwrap();
        assert_eq!(s.rows.len(), 6);
        for (dev, pairs, sa, sb, gain) in &s.rows {
            assert!(*pairs >= 1, "{dev}");
            // Tenant A can even *gain* on devices whose 4-thread pool
            // pays a big island-crossing penalty (the A70 pathology of
            // Fig. 12) — it now has two dedicated big cores.
            assert!(*sa > 0.7, "{dev}: tenant A factor {sa}");
            assert!(*sb >= *sa, "{dev}: the late tenant suffers at least as much");
            assert!(*gain > 0.2 && *gain < 2.0, "{dev}: gain {gain}");
        }
        assert!(s.render().contains("tenant-B"));
    }
}
