//! Ablations of the SoC model's calibrated design choices.
//!
//! The device model has three load-bearing calibration mechanisms (see
//! `DESIGN.md` §2 and `gaugenn-soc`): the big/LITTLE **cross-island
//! penalty**, per-SoC **sustained-clock factors**, and the **vendor
//! factor** separating a sealed phone from its open-deck twin. Each
//! ablation disables one mechanism and reports which paper shape it
//! carries — evidence that the reproduced figures are driven by the model
//! structure rather than per-figure tuning.

use crate::pipeline::PipelineReport;
use crate::report::TextTable;
use gaugenn_analysis::stats;
use gaugenn_modelfmt::Framework;
use gaugenn_soc::sched::ThreadConfig;
use gaugenn_soc::spec::{all_devices, DeviceSpec};
use gaugenn_soc::thermal::ThermalState;
use gaugenn_soc::Backend;

/// Which mechanism an ablation removes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ablation {
    /// Full model (control).
    None,
    /// `cross_island_factor := 1.0` on every SoC.
    NoCrossIslandPenalty,
    /// `sustained_clock_factor := 1.0` on every SoC.
    NoSustainedClockModel,
    /// `vendor_factor := 1.0` on every device.
    NoVendorFactor,
}

impl Ablation {
    /// Display label.
    pub const fn label(self) -> &'static str {
        match self {
            Ablation::None => "full model",
            Ablation::NoCrossIslandPenalty => "no cross-island penalty",
            Ablation::NoSustainedClockModel => "no sustained-clock model",
            Ablation::NoVendorFactor => "no vendor factor",
        }
    }

    /// All ablations, control first.
    pub const ALL: [Ablation; 4] = [
        Ablation::None,
        Ablation::NoCrossIslandPenalty,
        Ablation::NoSustainedClockModel,
        Ablation::NoVendorFactor,
    ];

    /// Apply to a device spec.
    pub fn apply(self, mut d: DeviceSpec) -> DeviceSpec {
        match self {
            Ablation::None => {}
            Ablation::NoCrossIslandPenalty => d.soc.cross_island_factor = 1.0,
            Ablation::NoSustainedClockModel => d.soc.sustained_clock_factor = 1.0,
            Ablation::NoVendorFactor => d.vendor_factor = 1.0,
        }
        d
    }
}

/// One ablation's signature metrics.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Which ablation.
    pub ablation: Ablation,
    /// Best unpinned thread count on the A70 (paper/full model: 2).
    pub a70_best_threads: usize,
    /// HDK generation spread: Q845 mean latency over Q888's (paper ≈ 2.17).
    pub hdk_spread: f64,
    /// Same-SoC gap: S21 mean latency over Q888's (paper: slightly > 1).
    pub same_soc_gap: f64,
}

/// The ablation study result.
#[derive(Debug, Clone)]
pub struct AblationStudy {
    /// One row per ablation, control first.
    pub rows: Vec<AblationRow>,
}

fn mean_latency(report: &PipelineReport, device: &DeviceSpec) -> f64 {
    let cool = ThermalState::cool();
    let lats: Vec<f64> = report
        .models
        .iter()
        .filter(|m| m.framework == Framework::TfLite)
        .filter_map(|m| {
            gaugenn_soc::estimate_latency(
                device,
                Backend::Cpu(ThreadConfig::unpinned(4)),
                &m.trace,
                &cool,
            )
            .ok()
            .map(|l| l.total_ms)
        })
        .collect();
    stats::mean(&lats)
}

fn best_threads(report: &PipelineReport, device: &DeviceSpec) -> usize {
    let cool = ThermalState::cool();
    [2usize, 4, 8]
        .into_iter()
        .max_by(|&a, &b| {
            let t = |threads: usize| -> f64 {
                let lats: Vec<f64> = report
                    .models
                    .iter()
                    .filter(|m| m.framework == Framework::TfLite)
                    .filter_map(|m| {
                        gaugenn_soc::estimate_latency(
                            device,
                            Backend::Cpu(ThreadConfig::unpinned(threads)),
                            &m.trace,
                            &cool,
                        )
                        .ok()
                        .map(|l| 1e3 / l.total_ms)
                    })
                    .collect();
                stats::mean(&lats)
            };
            t(a).partial_cmp(&t(b)).expect("finite throughput")
        })
        .expect("non-empty candidate list")
}

/// Run the ablation study over the report's TFLite models.
pub fn ablation_study(report: &PipelineReport) -> AblationStudy {
    let devices = all_devices();
    let by_name = |name: &str, ab: Ablation| -> DeviceSpec {
        ab.apply(
            devices
                .iter()
                .find(|d| d.name == name)
                .expect("Table 1 device")
                .clone(),
        )
    };
    let rows = Ablation::ALL
        .iter()
        .map(|&ab| {
            let a70 = by_name("A70", ab);
            let q845 = by_name("Q845", ab);
            let q888 = by_name("Q888", ab);
            let s21 = by_name("S21", ab);
            AblationRow {
                ablation: ab,
                a70_best_threads: best_threads(report, &a70),
                hdk_spread: mean_latency(report, &q845) / mean_latency(report, &q888),
                same_soc_gap: mean_latency(report, &s21) / mean_latency(report, &q888),
            }
        })
        .collect();
    AblationStudy { rows }
}

impl AblationStudy {
    /// Row lookup.
    pub fn row(&self, ablation: Ablation) -> &AblationRow {
        self.rows
            .iter()
            .find(|r| r.ablation == ablation)
            .expect("all ablations present")
    }

    /// Render the study.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "Ablation",
            "A70 best threads",
            "Q845/Q888 spread",
            "S21/Q888 gap",
        ]);
        for r in &self.rows {
            t.row([
                r.ablation.label().to_string(),
                r.a70_best_threads.to_string(),
                format!("{:.2}x", r.hdk_spread),
                format!("{:.3}x", r.same_soc_gap),
            ]);
        }
        format!(
            "Ablations: which model mechanism carries which paper shape\n{}\
             (paper anchors: A70 optimum 2 threads; Q845/Q888 latency spread ~2.17x; S21 slightly slower than Q888)\n",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Pipeline, PipelineConfig};
    use gaugenn_playstore::corpus::Snapshot;

    #[test]
    fn each_mechanism_carries_its_shape() {
        let report = Pipeline::new(PipelineConfig::tiny(Snapshot::Y2021, 7))
            .run()
            .unwrap();
        let s = ablation_study(&report);
        let full = s.row(Ablation::None);
        // Control reproduces the three shapes.
        assert_eq!(full.a70_best_threads, 2, "control: A70 optimum");
        assert!(full.hdk_spread > 1.6, "control: HDK spread {}", full.hdk_spread);
        assert!(full.same_soc_gap > 1.0, "control: S21 behind Q888");

        // Removing the cross-island penalty flips the A70 optimum to 4+.
        let no_island = s.row(Ablation::NoCrossIslandPenalty);
        assert!(
            no_island.a70_best_threads > 2,
            "without the island penalty the A70 should prefer more threads"
        );

        // Removing sustained clocks compresses the HDK generation spread.
        let no_clock = s.row(Ablation::NoSustainedClockModel);
        assert!(
            no_clock.hdk_spread < full.hdk_spread - 0.2,
            "clock model carries the generation spread: {} vs {}",
            no_clock.hdk_spread,
            full.hdk_spread
        );

        // Removing the vendor factor erases the same-SoC gap.
        let no_vendor = s.row(Ablation::NoVendorFactor);
        assert!(
            (no_vendor.same_soc_gap - 1.0).abs() < 0.01,
            "vendor factor carries the S21/Q888 gap, got {}",
            no_vendor.same_soc_gap
        );
        assert!(s.render().contains("Ablation"));
    }
}
