//! §6.1 what-if experiment: apply the three model-level optimisations
//! gaugeNN looked for — clustering, pruning, quantisation — to
//! representative models and measure what they actually buy.
//!
//! The paper's finding: "off-the-shelf model-level optimisations deployed
//! with major frameworks more often than not do not result to latency or
//! memory benefits during inference, but are focused on compressibility of
//! the model" (§2 results, §6.1). This driver quantifies that: entropy
//! (compressed-size proxy) drops sharply under clustering; serialized and
//! runtime sizes barely move; latency does not move at all.

use crate::report::TextTable;
use crate::Result;
use gaugenn_analysis::stats::word_entropy;
use gaugenn_dnn::quant::{apply, cluster_graph, prune_graph, QuantMode};
use gaugenn_dnn::task::Task;
use gaugenn_dnn::trace::trace_graph;
use gaugenn_dnn::zoo::{build_for_task, SizeClass};
use gaugenn_dnn::Graph;
use gaugenn_modelfmt::{encode, Framework};
use gaugenn_soc::sched::ThreadConfig;
use gaugenn_soc::spec::device;
use gaugenn_soc::thermal::ThermalState;
use gaugenn_soc::Backend;

/// One (model, optimisation) measurement.
#[derive(Debug, Clone)]
pub struct WhatIfRow {
    /// Model family label.
    pub model: String,
    /// Optimisation label.
    pub optimisation: &'static str,
    /// Serialized size in bytes.
    pub size_bytes: usize,
    /// Entropy over 32-bit words of the serialized bytes (bits/word) —
    /// the compressed-size proxy (clustering to k centroids caps the
    /// weight payload near log2(k)).
    pub entropy_bits: f64,
    /// CPU latency on the Q845, ms.
    pub latency_ms: f64,
}

/// The full §6.1 what-if sweep.
#[derive(Debug, Clone)]
pub struct WhatIf {
    /// All rows, grouped by model then optimisation.
    pub rows: Vec<WhatIfRow>,
}

fn measure(model: &str, optimisation: &'static str, graph: &Graph) -> Result<WhatIfRow> {
    let art = encode(graph, Framework::TfLite)
        .map_err(|e| crate::CoreError::Other(format!("encode: {e}")))?;
    let bytes = art.primary();
    let trace = trace_graph(graph).map_err(|e| crate::CoreError::Other(e.to_string()))?;
    let d = device("Q845").ok_or_else(|| crate::CoreError::Other("no Q845".into()))?;
    let lat = gaugenn_soc::estimate_latency(
        &d,
        Backend::Cpu(ThreadConfig::unpinned(4)),
        &trace,
        &ThermalState::cool(),
    )?;
    Ok(WhatIfRow {
        model: model.to_string(),
        optimisation,
        size_bytes: art.total_bytes(),
        entropy_bits: word_entropy(bytes),
        latency_ms: lat.total_ms,
    })
}

/// Run the sweep over representative vision/audio/NLP models.
pub fn whatif() -> Result<WhatIf> {
    let subjects = [
        (Task::ImageClassification, "mobilenet"),
        (Task::FaceDetection, "blazeface"),
        (Task::SoundRecognition, "audio_cnn"),
    ];
    let mut rows = Vec::new();
    for (i, (task, label)) in subjects.iter().enumerate() {
        let base = build_for_task(*task, 4000 + i as u64, SizeClass::Small, true).graph;
        rows.push(measure(label, "baseline", &base)?);
        rows.push(measure(label, "clustered(k=32)", &cluster_graph(&base, 32))?);
        rows.push(measure(label, "pruned(50%)", &prune_graph(&base, 0.5))?);
        rows.push(measure(
            label,
            "quantised(int8)",
            &apply(&base, QuantMode::WeightOnly),
        )?);
    }
    Ok(WhatIf { rows })
}

impl WhatIf {
    /// Find a row.
    pub fn row(&self, model: &str, optimisation: &str) -> Option<&WhatIfRow> {
        self.rows
            .iter()
            .find(|r| r.model == model && r.optimisation == optimisation)
    }

    /// Paper-style table with deltas vs the baseline.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "Model",
            "Optimisation",
            "size",
            "entropy b/w",
            "latency ms",
            "Δsize",
            "Δentropy",
            "Δlatency",
        ]);
        for r in &self.rows {
            let base = self.row(&r.model, "baseline").expect("baseline measured");
            t.row([
                r.model.clone(),
                r.optimisation.to_string(),
                crate::report::eng(r.size_bytes as f64),
                format!("{:.2}", r.entropy_bits),
                format!("{:.2}", r.latency_ms),
                format!("{:+.1}%", 100.0 * (r.size_bytes as f64 / base.size_bytes as f64 - 1.0)),
                format!("{:+.1}%", 100.0 * (r.entropy_bits / base.entropy_bits - 1.0)),
                format!("{:+.1}%", 100.0 * (r.latency_ms / base.latency_ms - 1.0)),
            ]);
        }
        format!(
            "Sec 6.1 what-if: applying the unadopted optimisations\n{}\
             (clustering/pruning cut entropy — i.e. compressed size — not latency; §6.1's finding)\n",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustering_cuts_entropy_not_latency() {
        let w = whatif().unwrap();
        for model in ["mobilenet", "blazeface", "audio_cnn"] {
            let base = w.row(model, "baseline").unwrap();
            let clustered = w.row(model, "clustered(k=32)").unwrap();
            assert!(
                clustered.entropy_bits < 0.75 * base.entropy_bits,
                "{model}: clustering should slash entropy ({} -> {})",
                base.entropy_bits,
                clustered.entropy_bits
            );
            let lat_delta = (clustered.latency_ms / base.latency_ms - 1.0).abs();
            assert!(
                lat_delta < 0.01,
                "{model}: clustering must not change latency, delta {lat_delta}"
            );
            // Serialized size essentially unchanged: the same number of
            // f32 weights (only the `cluster_` name prefixes are new).
            let size_ratio = clustered.size_bytes as f64 / base.size_bytes as f64;
            assert!((0.999..1.01).contains(&size_ratio), "{model}: {size_ratio}");
        }
    }

    #[test]
    fn pruning_cuts_entropy_not_latency() {
        let w = whatif().unwrap();
        let base = w.row("mobilenet", "baseline").unwrap();
        let pruned = w.row("mobilenet", "pruned(50%)").unwrap();
        assert!(pruned.entropy_bits < base.entropy_bits);
        assert!((pruned.latency_ms - base.latency_ms).abs() / base.latency_ms < 0.01);
    }

    #[test]
    fn quantisation_cuts_size_and_entropy() {
        // Unlike clustering/pruning, int8 storage genuinely shrinks the
        // file — which is why quantisation is the one optimisation with
        // real-world adoption (§6.1).
        let w = whatif().unwrap();
        let base = w.row("blazeface", "baseline").unwrap();
        let quant = w.row("blazeface", "quantised(int8)").unwrap();
        assert!(
            (quant.size_bytes as f64) < 0.5 * base.size_bytes as f64,
            "int8 weights should roughly quarter the file: {} vs {}",
            quant.size_bytes,
            base.size_bytes
        );
    }

    #[test]
    fn render_mentions_the_finding() {
        let w = whatif().unwrap();
        let s = w.render();
        assert!(s.contains("compressed size"));
        assert!(s.contains("baseline"));
    }
}
