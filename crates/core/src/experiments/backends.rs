//! System-level and hardware-specific optimisation experiments:
//! Figs. 11–14 (§6.2–§6.3).

use crate::pipeline::PipelineReport;
use crate::report::TextTable;
use crate::Result;
use gaugenn_analysis::stats::{self, Ecdf};
use gaugenn_dnn::trace::rebatch;
use gaugenn_modelfmt::Framework;
use gaugenn_power::monsoon::PowerMonitor;
use gaugenn_power::measure_inference;
use gaugenn_soc::sched::ThreadConfig;
use gaugenn_soc::spec::{device, phones};
use gaugenn_soc::thermal::ThermalState;
use gaugenn_soc::{Backend, SnpeTarget};

fn cpu4() -> Backend {
    Backend::Cpu(ThreadConfig::unpinned(4))
}

/// Fig. 11: inference throughput vs batch size on the three phones.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// Batch sizes swept.
    pub batches: Vec<usize>,
    /// `(device, batch) -> mean throughput (inferences/s)` over the common
    /// model subset.
    pub rows: Vec<(String, usize, f64)>,
    /// Number of models that ran every batch on every device (the paper's
    /// "149 in total").
    pub common_models: usize,
}

/// Run Fig. 11: batches {2, 5, 10, 25}, 4 threads, TFLite models only.
pub fn fig11(report: &PipelineReport) -> Fig11 {
    let batches = vec![2usize, 5, 10, 25];
    let cool = ThermalState::cool();
    let devices = phones();
    // Common subset: models that succeed at every (device, batch).
    let tflite: Vec<_> = report
        .models
        .iter()
        .filter(|m| m.framework == Framework::TfLite)
        .collect();
    let mut common = Vec::new();
    'model: for m in &tflite {
        for d in &devices {
            for &b in &batches {
                let tr = rebatch(&m.trace, b);
                if gaugenn_soc::estimate_latency(d, cpu4(), &tr, &cool).is_err() {
                    continue 'model;
                }
            }
        }
        common.push(*m);
    }
    let mut rows = Vec::new();
    for d in &devices {
        for &b in &batches {
            let mut tputs = Vec::new();
            for m in &common {
                let tr = rebatch(&m.trace, b);
                if let Ok(lat) = gaugenn_soc::estimate_latency(d, cpu4(), &tr, &cool) {
                    tputs.push(b as f64 / (lat.total_ms / 1e3));
                }
            }
            rows.push((d.name.to_string(), b, stats::mean(&tputs)));
        }
    }
    Fig11 {
        batches,
        rows,
        common_models: common.len(),
    }
}

impl Fig11 {
    /// Throughput lookup.
    pub fn throughput(&self, device: &str, batch: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|(d, b, _)| d == device && *b == batch)
            .map(|(_, _, t)| *t)
    }

    /// Paper-style table.
    pub fn render(&self) -> String {
        let mut header = vec!["Device".to_string()];
        header.extend(self.batches.iter().map(|b| format!("batch {b}")));
        let mut t = TextTable::new(header);
        for dev in ["A20", "A70", "S21"] {
            let mut cells = vec![dev.to_string()];
            for &b in &self.batches {
                cells.push(format!("{:.1}/s", self.throughput(dev, b).unwrap_or(0.0)));
            }
            t.row(cells);
        }
        let gap_a70 = self.throughput("S21", 25).unwrap_or(0.0)
            / self.throughput("A70", 25).unwrap_or(1.0);
        let gap_a20 = self.throughput("S21", 25).unwrap_or(0.0)
            / self.throughput("A20", 25).unwrap_or(1.0);
        format!(
            "Fig 11: throughput vs batch size ({} common models, 4 threads)\n{}\
             S21 at batch 25: {gap_a70:.2}x vs A70, {gap_a20:.2}x vs A20 (paper: 2.14x / 5.42x)\n",
            self.common_models,
            t.render()
        )
    }
}

/// Fig. 12: throughput vs thread count and affinity on the three phones.
#[derive(Debug, Clone)]
pub struct Fig12 {
    /// Configurations swept, in display order.
    pub configs: Vec<ThreadConfig>,
    /// `(device, config_label, mean throughput)`.
    pub rows: Vec<(String, String, f64)>,
}

/// Run Fig. 12: threads {2,4,8} and affinities {2a2, 4a2, 4a4, 8a4}.
pub fn fig12(report: &PipelineReport) -> Fig12 {
    let configs = vec![
        ThreadConfig::unpinned(2),
        ThreadConfig::unpinned(4),
        ThreadConfig::unpinned(8),
        ThreadConfig::pinned(2, 2),
        ThreadConfig::pinned(4, 2),
        ThreadConfig::pinned(4, 4),
        ThreadConfig::pinned(8, 4),
    ];
    let cool = ThermalState::cool();
    let mut rows = Vec::new();
    for d in phones() {
        for &cfg in &configs {
            let mut tputs = Vec::new();
            for m in report
                .models
                .iter()
                .filter(|m| m.framework == Framework::TfLite)
            {
                if let Ok(lat) =
                    gaugenn_soc::estimate_latency(&d, Backend::Cpu(cfg), &m.trace, &cool)
                {
                    tputs.push(1e3 / lat.total_ms);
                }
            }
            rows.push((d.name.to_string(), cfg.label(), stats::mean(&tputs)));
        }
    }
    Fig12 { configs, rows }
}

impl Fig12 {
    /// Throughput lookup by config label.
    pub fn throughput(&self, device: &str, label: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|(d, l, _)| d == device && l == label)
            .map(|(_, _, t)| *t)
    }

    /// Best unpinned thread count for a device.
    pub fn best_threads(&self, device: &str) -> Option<usize> {
        [2usize, 4, 8]
            .into_iter()
            .max_by(|&a, &b| {
                let ta = self.throughput(device, &a.to_string()).unwrap_or(0.0);
                let tb = self.throughput(device, &b.to_string()).unwrap_or(0.0);
                ta.partial_cmp(&tb).expect("finite throughputs")
            })
    }

    /// Paper-style table.
    pub fn render(&self) -> String {
        let labels: Vec<String> = self.configs.iter().map(|c| c.label()).collect();
        let mut header = vec!["Device".to_string()];
        header.extend(labels.iter().cloned());
        let mut t = TextTable::new(header);
        for dev in ["A20", "A70", "S21"] {
            let mut cells = vec![dev.to_string()];
            for l in &labels {
                cells.push(format!("{:.1}", self.throughput(dev, l).unwrap_or(0.0)));
            }
            t.row(cells);
        }
        let bests: Vec<String> = ["A20", "A70", "S21"]
            .iter()
            .map(|d| format!("{d}:{}", self.best_threads(d).unwrap_or(0)))
            .collect();
        format!(
            "Fig 12: TFLite throughput (inferences/s) per thread config\n{}\
             best thread counts: {} (paper: A20:4, A70:2, S21:4)\n",
            t.render(),
            bests.join(" ")
        )
    }
}

/// A backend-comparison experiment: latency + energy ECDFs per backend on
/// one device (Figs. 13 and 14 share this shape).
#[derive(Debug, Clone)]
pub struct BackendCompare {
    /// Device name.
    pub device: String,
    /// Per backend: name, models that ran, latency ECDF, energy ECDF,
    /// mean speedup vs baseline, mean efficiency gain vs baseline.
    pub rows: Vec<BackendRow>,
    /// Baseline backend name.
    pub baseline: String,
}

/// One backend's aggregate row.
#[derive(Debug, Clone)]
pub struct BackendRow {
    /// Backend display name.
    pub backend: String,
    /// Models that were compatible.
    pub models: usize,
    /// Latency ECDF (ms).
    pub latency: Ecdf,
    /// Energy ECDF (mJ).
    pub energy: Ecdf,
    /// Geometric-mean speedup vs the baseline over the common subset.
    pub speedup: f64,
    /// Geometric-mean efficiency gain vs the baseline.
    pub efficiency_gain: f64,
}

fn compare_backends(
    report: &PipelineReport,
    device_name: &str,
    frameworks: &[Framework],
    backends: &[Backend],
    baseline: Backend,
) -> Result<BackendCompare> {
    let d = device(device_name)
        .ok_or_else(|| crate::CoreError::Other(format!("unknown device {device_name}")))?;
    let cool = ThermalState::cool();
    let monitor = PowerMonitor::new(0xBAC4);
    let models: Vec<_> = report
        .models
        .iter()
        .filter(|m| frameworks.contains(&m.framework))
        .collect();
    // Baseline measurements per model checksum.
    let mut base: std::collections::BTreeMap<&str, (f64, f64)> = Default::default();
    for m in &models {
        if let Ok(rep) = measure_inference(&d, baseline, &m.trace, &cool, &monitor) {
            base.insert(
                m.checksum.as_str(),
                (rep.latency_ms, rep.efficiency_mflops_per_sw),
            );
        }
    }
    let mut rows = Vec::new();
    for &b in backends {
        let mut lats = Vec::new();
        let mut ens = Vec::new();
        let mut log_speedup = Vec::new();
        let mut log_eff = Vec::new();
        for m in &models {
            let Ok(rep) = measure_inference(&d, b, &m.trace, &cool, &monitor) else {
                continue;
            };
            lats.push(rep.latency_ms);
            ens.push(rep.energy_mj);
            if let Some(&(bl, beff)) = base.get(m.checksum.as_str()) {
                if rep.latency_ms > 0.0 && beff > 0.0 {
                    log_speedup.push((bl / rep.latency_ms).ln());
                    log_eff.push((rep.efficiency_mflops_per_sw / beff).ln());
                }
            }
        }
        rows.push(BackendRow {
            backend: b.name(),
            models: lats.len(),
            latency: Ecdf::new(lats),
            energy: Ecdf::new(ens),
            speedup: stats::mean(&log_speedup).exp(),
            efficiency_gain: stats::mean(&log_eff).exp(),
        });
    }
    Ok(BackendCompare {
        device: device_name.to_string(),
        rows,
        baseline: baseline.name(),
    })
}

impl BackendCompare {
    /// Row lookup by backend name.
    pub fn row(&self, backend: &str) -> Option<&BackendRow> {
        self.rows.iter().find(|r| r.backend == backend)
    }

    /// Paper-style table.
    pub fn render(&self, title: &str) -> String {
        let mut t = TextTable::new([
            "Backend",
            "n",
            "median ms",
            "median mJ",
            "speedup",
            "eff gain",
        ]);
        for r in &self.rows {
            t.row([
                r.backend.clone(),
                r.models.to_string(),
                format!("{:.2}", r.latency.median()),
                format!("{:.1}", r.energy.median()),
                format!("{:.2}x", r.speedup),
                format!("{:.2}x", r.efficiency_gain),
            ]);
        }
        format!(
            "{title} (device {}, baseline {})\n{}",
            self.device,
            self.baseline,
            t.render()
        )
    }
}

/// Fig. 13: TFLite CPU runtimes — baseline CPU vs XNNPACK vs NNAPI on Q845.
pub fn fig13(report: &PipelineReport) -> Result<BackendCompare> {
    compare_backends(
        report,
        "Q845",
        &[Framework::TfLite],
        &[
            cpu4(),
            Backend::Xnnpack(ThreadConfig::unpinned(4)),
            Backend::Nnapi,
        ],
        cpu4(),
    )
}

/// Fig. 14: SNPE targets vs CPU/GPU baselines over TFLite + caffe models
/// on Q845.
pub fn fig14(report: &PipelineReport) -> Result<BackendCompare> {
    compare_backends(
        report,
        "Q845",
        &[Framework::TfLite, Framework::Caffe],
        &[
            cpu4(),
            Backend::Gpu,
            Backend::Snpe(SnpeTarget::Cpu),
            Backend::Snpe(SnpeTarget::Gpu),
            Backend::Snpe(SnpeTarget::Dsp),
        ],
        cpu4(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Pipeline, PipelineConfig, PipelineReport};
    use gaugenn_playstore::corpus::Snapshot;
    use std::sync::OnceLock;

    fn report() -> &'static PipelineReport {
        static CELL: OnceLock<PipelineReport> = OnceLock::new();
        CELL.get_or_init(|| {
            Pipeline::new(PipelineConfig::tiny(Snapshot::Y2021, 7))
                .run()
                .unwrap()
        })
    }

    #[test]
    fn fig11_throughput_scales_with_batch() {
        let f = fig11(report());
        assert!(f.common_models > 0);
        for dev in ["A20", "A70", "S21"] {
            let t2 = f.throughput(dev, 2).unwrap();
            let t25 = f.throughput(dev, 25).unwrap();
            assert!(t25 > t2, "{dev}: batch throughput must grow");
        }
        // S21 fastest at the largest batch.
        assert!(f.throughput("S21", 25).unwrap() > f.throughput("A70", 25).unwrap());
        assert!(f.throughput("A70", 25).unwrap() > f.throughput("A20", 25).unwrap());
        assert!(f.render().contains("batch 25"));
    }

    #[test]
    fn fig12_optima_match_paper() {
        let f = fig12(report());
        assert_eq!(f.best_threads("A20"), Some(4));
        assert_eq!(f.best_threads("A70"), Some(2));
        assert_eq!(f.best_threads("S21"), Some(4));
        // Oversubscribed affinity loses badly.
        for dev in ["A20", "A70", "S21"] {
            assert!(
                f.throughput(dev, "4a2").unwrap() < f.throughput(dev, "4").unwrap(),
                "{dev}: 4a2 must lose to 4"
            );
            assert!(
                f.throughput(dev, "8a4").unwrap() < f.throughput(dev, "4").unwrap(),
                "{dev}: 8a4 must lose to 4"
            );
        }
        assert!(f.render().contains("best thread counts"));
    }

    #[test]
    fn fig13_xnnpack_wins_nnapi_loses() {
        let f = fig13(report()).unwrap();
        let xnn = f.row("XNNPACK(4)").unwrap();
        assert!(xnn.speedup > 1.0, "xnnpack speedup {}", xnn.speedup);
        assert!(xnn.speedup < 1.3, "xnnpack is a modest win (paper 1.03x)");
        assert!(xnn.efficiency_gain > 1.0);
        let nnapi = f.row("NNAPI").unwrap();
        assert!(nnapi.speedup < 1.0, "nnapi slower than CPU (paper 0.49x)");
        assert!(nnapi.efficiency_gain < 1.0);
        // XNNPACK loses incompatible models (recurrent/quant layers).
        let cpu = f.row("CPU(4)").unwrap();
        assert!(xnn.models <= cpu.models);
        assert!(f.render("Fig 13").contains("Backend"));
    }

    #[test]
    fn fig14_dsp_dominates() {
        let f = fig14(report()).unwrap();
        let dsp = f.row("SNPE-DSP").unwrap();
        let gpu = f.row("SNPE-GPU").unwrap();
        assert!(dsp.speedup > gpu.speedup, "DSP beats GPU");
        assert!(gpu.speedup > 1.0, "SNPE-GPU beats CPU baseline");
        assert!(
            dsp.efficiency_gain > 3.0,
            "DSP efficiency gain {} (paper 20.3x)",
            dsp.efficiency_gain
        );
        let snpe_cpu = f.row("SNPE-CPU").unwrap();
        assert!(
            snpe_cpu.speedup < 1.0,
            "SNPE CPU lags the vanilla CPU path (§6.3)"
        );
        // Operator-support funnel: DSP runs fewer models than CPU.
        let cpu = f.row("CPU(4)").unwrap();
        assert!(dsp.models <= cpu.models);
    }
}
