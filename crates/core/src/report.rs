//! Plain-text table rendering for the experiment reports.
//!
//! Every experiment prints paper-style rows; this module provides an
//! aligned-column formatter so the `repro` binary's output is readable
//! next to the original tables.

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> TextTable {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: vec![],
        }
    }

    /// Append a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                let pad = widths[i].saturating_sub(cell.chars().count());
                if i + 1 < cols {
                    line.extend(std::iter::repeat_n(' ', pad));
                }
            }
            line
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.extend(std::iter::repeat_n('-', total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a count with a percentage of a total, paper-style: `318 (19.1%)`.
pub fn count_pct(count: usize, total: usize) -> String {
    if total == 0 {
        format!("{count}")
    } else {
        format!("{count} ({:.1}%)", 100.0 * count as f64 / total as f64)
    }
}

/// Format engineering-notation FLOPs: `12.3M`, `1.2G`.
pub fn eng(value: f64) -> String {
    let abs = value.abs();
    if abs >= 1e9 {
        format!("{:.2}G", value / 1e9)
    } else if abs >= 1e6 {
        format!("{:.2}M", value / 1e6)
    } else if abs >= 1e3 {
        format!("{:.2}k", value / 1e3)
    } else {
        format!("{value:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(["Device", "Latency"]);
        t.row(["A20", "123.4"]);
        t.row(["Q888", "35.0"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Device"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "Latency" starts at the same offset everywhere.
        let col = lines[0].find("Latency").unwrap();
        assert_eq!(lines[2].find("123.4"), Some(col));
        assert_eq!(lines[3].find("35.0"), Some(col));
    }

    #[test]
    fn rows_resized_to_header() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1"]);
        t.row(["1", "2", "3", "4"]);
        assert_eq!(t.len(), 2);
        assert!(t.render().lines().count() == 4);
    }

    #[test]
    fn count_pct_formats() {
        assert_eq!(count_pct(318, 1666), "318 (19.1%)");
        assert_eq!(count_pct(5, 0), "5");
    }

    #[test]
    fn eng_notation() {
        assert_eq!(eng(1_500_000_000.0), "1.50G");
        assert_eq!(eng(12_300_000.0), "12.30M");
        assert_eq!(eng(1_500.0), "1.50k");
        assert_eq!(eng(12.0), "12.00");
    }
}
