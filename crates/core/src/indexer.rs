//! Pipeline stage: fold an analysed corpus into the queryable
//! [`CorpusIndex`].
//!
//! The indexer is the bridge between [`crate::analyze`]'s per-run output
//! (model records, app extractions) and the persistent index the store
//! server answers `/query/*` routes from. It runs after analysis on every
//! pipeline run; ingesting is idempotent per snapshot label, so a
//! resumed, repeated or re-seeded run over the same index directory
//! converges to the same index instead of double-counting.
//!
//! Persistence follows the `CacheStore` discipline: the index lives in
//! one crc-guarded file (`corpus.gnix`) beside the analysis cache, and
//! any corruption on load degrades to an empty index that this stage
//! immediately repopulates — a rebuild, never an error.

use crate::analyze::ModelRecord;
use crate::extract::AppExtraction;
use gaugenn_index::{AppDoc, AppSnap, CorpusIndex, ModelDoc};
use std::path::Path;

/// File name of the persisted index inside the index directory.
pub const INDEX_FILE: &str = "corpus.gnix";

/// Convert one analysed model record into its index document, scoped to
/// the snapshot `label`.
pub fn model_doc(record: &ModelRecord, label: &str) -> ModelDoc {
    ModelDoc {
        checksum: record.checksum.clone(),
        name: record.name.clone(),
        framework: record.framework,
        task: record.classification.as_ref().map(|c| c.task),
        // §6.1's quantisation definition: int8 weights or activations.
        quantised: record.optim.int8_weights || record.optim.int8_activations,
        size_bytes: record.size_bytes as u64,
        flops: record.trace.total_flops,
        params: record.trace.total_params,
        apps_by_snapshot: [(label.to_string(), record.app_count as u64)]
            .into_iter()
            .collect(),
    }
}

/// Convert one app extraction into its index document, scoped to the
/// snapshot `label`.
pub fn app_doc(app: &AppExtraction, label: &str) -> AppDoc {
    AppDoc {
        package: app.package.clone(),
        category: app.category.clone(),
        by_snapshot: [(
            label.to_string(),
            AppSnap {
                models: app.models.len() as u64,
                ml: app.is_ml_app(),
                cloud: !app.cloud.is_empty(),
            },
        )]
        .into_iter()
        .collect(),
    }
}

/// Fold one snapshot's analysed corpus into `index` (idempotent per
/// label — see [`CorpusIndex::ingest_snapshot`]).
pub fn ingest(index: &mut CorpusIndex, label: &str, models: &[ModelRecord], apps: &[AppExtraction]) {
    index.ingest_snapshot(
        label,
        models.iter().map(|m| model_doc(m, label)).collect(),
        apps.iter().map(|a| app_doc(a, label)).collect(),
    );
}

/// Load the persisted index from `dir`, or start empty when the file is
/// missing or corrupt in any way (the corruption⇒miss discipline).
pub fn load_or_empty(dir: &Path) -> CorpusIndex {
    CorpusIndex::load(&dir.join(INDEX_FILE)).unwrap_or_default()
}

/// Persist `index` into `dir` (write-temp + atomic rename). Returns
/// `false` on IO failure — persistence is an optimisation; the next run
/// rebuilds from its own analysis output.
pub fn persist(index: &CorpusIndex, dir: &Path) -> bool {
    if std::fs::create_dir_all(dir).is_err() {
        return false;
    }
    index.save(&dir.join(INDEX_FILE))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugenn_analysis::optim::ModelOptim;
    use gaugenn_dnn::trace::TraceReport;
    use gaugenn_modelfmt::Framework;
    use std::collections::BTreeMap;

    fn record(checksum: &str, flops: u64, int8: bool) -> ModelRecord {
        ModelRecord {
            checksum: checksum.into(),
            name: format!("m {checksum}"),
            framework: Framework::TfLite,
            size_bytes: 1000,
            trace: TraceReport {
                layers: vec![],
                total_macs: flops / 2,
                total_flops: flops,
                total_params: flops / 4,
                peak_activation_elems: 0,
            },
            classification: None,
            optim: ModelOptim {
                clustered: false,
                prune_marked: false,
                has_dequantize: false,
                int8_weights: int8,
                int8_activations: false,
                total_weights: 0,
                near_zero_weights: 0,
            },
            layers: vec![],
            layer_families: BTreeMap::new(),
            app_count: 3,
        }
    }

    #[test]
    fn model_doc_carries_quantisation_and_counts() {
        let doc = model_doc(&record("ff", 64, true), "Apr 2021");
        assert!(doc.quantised);
        assert_eq!(doc.flops, 64);
        assert_eq!(doc.app_count(Some("Apr 2021")), 3);
        assert!(!model_doc(&record("ee", 64, false), "Apr 2021").quantised);
    }

    #[test]
    fn ingest_is_idempotent_and_persistence_roundtrips() {
        let dir = std::env::temp_dir().join(format!("gaugenn-indexer-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut index = load_or_empty(&dir);
        assert!(index.is_empty(), "missing dir is an empty index");
        let models = vec![record("aa", 10, false), record("bb", 20, true)];
        ingest(&mut index, "Apr 2021", &models, &[]);
        ingest(&mut index, "Apr 2021", &models, &[]);
        assert_eq!(index.model_count(), 2, "re-ingest does not double-count");
        assert!(persist(&index, &dir));
        let back = load_or_empty(&dir);
        assert_eq!(back.model_count(), 2);
        assert_eq!(back.stats_text(), index.stats_text());
        // Corrupt the file: the next load degrades to empty, not an error.
        let path = dir.join(INDEX_FILE);
        let mut raw = std::fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        assert!(load_or_empty(&dir).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
