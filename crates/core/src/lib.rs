//! # gaugenn-core — the gaugeNN pipeline and experiments
//!
//! This crate is the paper's primary contribution: the tool that
//! "automates the deployment, measurement and analysis of DNNs on devices"
//! (§1). It composes every substrate crate into the three-stage workflow
//! of Fig. 1:
//!
//! 1. **DNN retrieval** ([`pipeline`]) — crawl the store over TCP, download
//!    APKs/OBBs/bundles, extract candidate files, validate signatures.
//! 2. **Offline analysis** ([`extract`], `gaugenn-analysis`) — decode
//!    graphs, checksum models and layers, classify tasks, census
//!    optimisations, scan for cloud APIs and acceleration markers.
//! 3. **Benchmarking** ([`experiments`]) — drive the SoC/power models (and
//!    the TCP master–slave harness) to regenerate every table and figure
//!    of the evaluation.
//!
//! See `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for
//! paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod cachestore;
pub mod crashpoint;
pub mod experiments;
pub mod extract;
pub mod indexer;
pub mod journal;
pub mod pipeline;
pub mod report;

pub use pipeline::{Pipeline, PipelineConfig, PipelineReport};

/// Errors from pipeline orchestration.
#[derive(Debug)]
pub enum CoreError {
    /// Store/crawler failure.
    Store(gaugenn_playstore::StoreError),
    /// Container parsing failure.
    Apk(gaugenn_apk::ApkError),
    /// Harness failure.
    Harness(gaugenn_harness::HarnessError),
    /// SoC model failure.
    Soc(gaugenn_soc::SocError),
    /// Power model failure.
    Power(gaugenn_power::PowerError),
    /// Anything else.
    Other(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Store(e) => write!(f, "store: {e}"),
            CoreError::Apk(e) => write!(f, "apk: {e}"),
            CoreError::Harness(e) => write!(f, "harness: {e}"),
            CoreError::Soc(e) => write!(f, "soc: {e}"),
            CoreError::Power(e) => write!(f, "power: {e}"),
            CoreError::Other(r) => write!(f, "{r}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<gaugenn_playstore::StoreError> for CoreError {
    fn from(e: gaugenn_playstore::StoreError) -> Self {
        CoreError::Store(e)
    }
}
impl From<gaugenn_apk::ApkError> for CoreError {
    fn from(e: gaugenn_apk::ApkError) -> Self {
        CoreError::Apk(e)
    }
}
impl From<gaugenn_harness::HarnessError> for CoreError {
    fn from(e: gaugenn_harness::HarnessError) -> Self {
        CoreError::Harness(e)
    }
}
impl From<gaugenn_soc::SocError> for CoreError {
    fn from(e: gaugenn_soc::SocError) -> Self {
        CoreError::Soc(e)
    }
}
impl From<gaugenn_power::PowerError> for CoreError {
    fn from(e: gaugenn_power::PowerError) -> Self {
        CoreError::Power(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
