//! Journaled checkpoints: a crc32-guarded, append-only, torn-tail-
//! truncating record log, plus the typed run journal the pipeline
//! replays on `--resume`.
//!
//! # Why a journal *and* a cache
//!
//! The persistent [`crate::cachestore::CacheStore`] already makes model
//! analyses crash-durable — but it is content-addressed, so it can only
//! resume work whose *inputs* exist. A killed run loses the crawl
//! itself: the corpus, the drop-out ledger, the probe verdict. The run
//! journal records those completed work units keyed by the run
//! configuration, so a resumed run skips straight past them and, because
//! every rendered byte derives from journaled or recomputed-identical
//! state, produces **byte-identical stdout** to an uninterrupted run.
//!
//! # On-disk format (same discipline as `cachestore.rs`)
//!
//! ```text
//! header  b"GNJL" | version:u32 | run_key:u64          (16 bytes)
//! record  len:u32 | crc32(payload):u32 | payload       (repeated)
//! ```
//!
//! All integers little-endian. The `run_key` hashes the run
//! configuration (scale, snapshot, seed): a journal left behind by a
//! *different* configuration — a stale generation — fails the key check
//! and is discarded wholesale rather than replayed into the wrong run.
//!
//! # Corruption policy
//!
//! Opening **never fails**. A missing, stale, or header-corrupt file
//! replays nothing; a record with a bad length or crc ends replay at the
//! last good record and the file is truncated there (the torn tail of a
//! crashed append is expected, not exceptional). Every degradation means
//! "redo that work", never "error" and never divergent output.

use gaugenn_apk::crc32::crc32;
use gaugenn_playstore::crawler::{AppMeta, CrawlStage, CrawlStats, CrawledApp, DropOut};
use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Journal file magic.
const MAGIC: &[u8; 4] = b"GNJL";
/// Format version; bump on any codec change so old journals read as
/// stale and are discarded instead of misparsed.
const VERSION: u32 = 1;
/// Header length in bytes.
const HEADER_LEN: usize = 16;
/// A record larger than this is treated as corruption, not a record.
const MAX_RECORD: u32 = 1 << 28;

/// The generic append-only record log.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    /// `None` when the file could not be created: the journal is inert
    /// (appends are dropped) but the run proceeds normally.
    file: Mutex<Option<fs::File>>,
}

impl Journal {
    /// Open the journal at `path`. With `resume` set, surviving records
    /// whose header matches `run_key` are returned for replay (stopping
    /// at the first corrupt record, which also truncates the tail);
    /// otherwise — or on any header mismatch — the file is started
    /// fresh. Never fails; an unwritable path yields an inert journal.
    pub fn open(path: &Path, run_key: u64, resume: bool) -> (Journal, Vec<Vec<u8>>) {
        if let Some(parent) = path.parent() {
            let _ = fs::create_dir_all(parent);
        }
        let mut replayed = Vec::new();
        let mut good_len = 0u64;
        if resume {
            if let Ok(raw) = fs::read(path) {
                if let Some((records, end)) = parse(&raw, run_key) {
                    replayed = records;
                    good_len = end as u64;
                }
            }
        }
        let file = if good_len >= HEADER_LEN as u64 {
            // Keep the good prefix; drop any torn tail before appending.
            let f = fs::OpenOptions::new().read(true).write(true).open(path);
            match f {
                Ok(f) => {
                    let _ = f.set_len(good_len);
                    let _ = f.sync_data();
                    fs::OpenOptions::new().append(true).open(path).ok()
                }
                Err(_) => None,
            }
        } else {
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(MAGIC);
            header.extend_from_slice(&VERSION.to_le_bytes());
            header.extend_from_slice(&run_key.to_le_bytes());
            match fs::write(path, &header) {
                Ok(()) => fs::OpenOptions::new().append(true).open(path).ok(),
                Err(_) => None,
            }
        };
        (
            Journal {
                path: path.to_path_buf(),
                file: Mutex::new(file),
            },
            replayed,
        )
    }

    /// Append one record, best-effort: the payload and its guard are
    /// written in a single `write_all` so a crash mid-call leaves at
    /// most one torn tail for the next open to truncate.
    pub fn append(&self, payload: &[u8]) {
        if payload.len() as u64 > MAX_RECORD as u64 {
            return;
        }
        let mut rec = Vec::with_capacity(payload.len() + 8);
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&crc32(payload).to_le_bytes());
        rec.extend_from_slice(payload);
        let mut slot = self.file.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(f) = slot.as_mut() {
            if f.write_all(&rec).is_err() {
                // A failed append poisons nothing: drop the handle so the
                // journal goes inert instead of interleaving torn writes.
                *slot = None;
            }
        }
    }

    /// Path this journal lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Parse header + records. Returns the replayed payloads and the byte
/// offset of the last good record's end, or `None` when the header is
/// missing, short, version-skewed, or from another run (stale key).
fn parse(raw: &[u8], run_key: u64) -> Option<(Vec<Vec<u8>>, usize)> {
    if raw.len() < HEADER_LEN || &raw[0..4] != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(raw[4..8].try_into().ok()?);
    let key = u64::from_le_bytes(raw[8..16].try_into().ok()?);
    if version != VERSION || key != run_key {
        return None;
    }
    let mut out = Vec::new();
    let mut at = HEADER_LEN;
    while raw.len() - at >= 8 {
        let len = u32::from_le_bytes(raw[at..at + 4].try_into().ok()?);
        if len > MAX_RECORD {
            break;
        }
        let want_crc = u32::from_le_bytes(raw[at + 4..at + 8].try_into().ok()?);
        let body_at = at + 8;
        let Some(payload) = raw.get(body_at..body_at + len as usize) else {
            break; // torn tail
        };
        if crc32(payload) != want_crc {
            break; // bit-flip or torn write: stop at the last good record
        }
        out.push(payload.to_vec());
        at = body_at + len as usize;
    }
    Some((out, at))
}

/// Derive the run key from the configuration axes that shape the corpus.
pub fn run_key(scale: &str, snapshot: &str, seed: u64) -> u64 {
    splitmix64(hash_str(scale) ^ splitmix64(hash_str(snapshot)) ^ splitmix64(seed))
}

/// FNV-1a, as used across the chaos/sched seeding paths.
fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------
// Typed pipeline journal.
// ---------------------------------------------------------------------

/// Record tags.
const TAG_APP: u8 = 1;
const TAG_CRAWL_DONE: u8 = 2;
const TAG_PROBE: u8 = 3;

/// The pipeline's typed view of one run's journal: replayed state from
/// a previous (killed) attempt plus append methods for this attempt's
/// completed units.
#[derive(Debug)]
pub struct RunJournal {
    journal: Journal,
    /// Replayed apps by package, with their corpus sequence number.
    apps: BTreeMap<String, (u64, CrawledApp)>,
    /// Replayed end-of-crawl marker: the full drop-out ledger and stats.
    crawl_done: Option<(Vec<DropOut>, CrawlStats)>,
    /// Replayed probe verdict (`None` = not journaled).
    probe: Option<Option<bool>>,
}

impl RunJournal {
    /// Open `dir/file`, replaying prior records when `resume` is set.
    pub fn open(dir: &Path, file: &str, run_key: u64, resume: bool) -> RunJournal {
        let (journal, raw) = Journal::open(&dir.join(file), run_key, resume);
        let mut apps = BTreeMap::new();
        let mut crawl_done = None;
        let mut probe = None;
        for payload in raw {
            // An undecodable record body (future tag, short fields) is
            // skipped, not fatal — same miss-not-error stance as the
            // cache store.
            match decode_entry(&payload) {
                Some(Entry::App(seq, app)) => {
                    apps.insert(app.meta.package.clone(), (seq, app));
                }
                Some(Entry::CrawlDone(dropouts, stats)) => {
                    crawl_done = Some((dropouts, stats));
                }
                Some(Entry::Probe(v)) => probe = Some(v),
                None => {}
            }
        }
        RunJournal {
            journal,
            apps,
            crawl_done,
            probe,
        }
    }

    /// Packages already journaled, with their payloads — handed to the
    /// crawler as a resume cache so listed-again apps skip the network.
    pub fn resume_apps(&self) -> BTreeMap<String, CrawledApp> {
        self.apps
            .iter()
            .map(|(k, (_, app))| (k.clone(), app.clone()))
            .collect()
    }

    /// Number of replayed app records.
    pub fn replayed_app_count(&self) -> usize {
        self.apps.len()
    }

    /// Replayed end-of-crawl marker, when the previous attempt got that
    /// far: the whole crawl can then be served from the journal.
    pub fn crawl_done(&self) -> Option<&(Vec<DropOut>, CrawlStats)> {
        self.crawl_done.as_ref()
    }

    /// The replayed corpus in its original (sequence) order.
    pub fn apps_in_order(&self) -> Vec<CrawledApp> {
        let mut seq: Vec<(&u64, &CrawledApp)> =
            self.apps.values().map(|(s, a)| (s, a)).collect();
        seq.sort_by_key(|(s, _)| **s);
        seq.into_iter().map(|(_, a)| a.clone()).collect()
    }

    /// Replayed probe verdict.
    pub fn probe(&self) -> Option<Option<bool>> {
        self.probe
    }

    /// Journal one crawled app at corpus position `seq` (skipping
    /// packages already durable from the replayed attempt).
    pub fn record_app(&mut self, seq: u64, app: &CrawledApp) {
        if self.apps.contains_key(&app.meta.package) {
            return;
        }
        self.journal.append(&encode_app(seq, app));
        self.apps
            .insert(app.meta.package.clone(), (seq, app.clone()));
    }

    /// Journal the end-of-crawl marker.
    pub fn record_crawl_done(&mut self, dropouts: &[DropOut], stats: &CrawlStats) {
        if self.crawl_done.is_some() {
            return;
        }
        self.journal.append(&encode_crawl_done(dropouts, stats));
        self.crawl_done = Some((dropouts.to_vec(), stats.clone()));
    }

    /// Journal the device-profile probe verdict.
    pub fn record_probe(&mut self, verdict: Option<bool>) {
        if self.probe.is_some() {
            return;
        }
        self.journal.append(&encode_probe(verdict));
        self.probe = Some(verdict);
    }

    /// Path of the underlying journal file.
    pub fn path(&self) -> &Path {
        self.journal.path()
    }
}

// ---------------------------------------------------------------------
// Entry codec (hand-rolled, cachestore discipline: bounds-checked reads,
// any anomaly ⇒ the record is dropped).
// ---------------------------------------------------------------------

enum Entry {
    App(u64, CrawledApp),
    CrawlDone(Vec<DropOut>, CrawlStats),
    Probe(Option<bool>),
}

fn stage_code(s: CrawlStage) -> u8 {
    match s {
        CrawlStage::Listing => 0,
        CrawlStage::Meta => 1,
        CrawlStage::Apk => 2,
        CrawlStage::Obb => 3,
        CrawlStage::Bundle => 4,
    }
}

fn stage_from(code: u8) -> Option<CrawlStage> {
    Some(match code {
        0 => CrawlStage::Listing,
        1 => CrawlStage::Meta,
        2 => CrawlStage::Apk,
        3 => CrawlStage::Obb,
        4 => CrawlStage::Bundle,
        _ => return None,
    })
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u64(out, b.len() as u64);
    out.extend_from_slice(b);
}

fn encode_app(seq: u64, app: &CrawledApp) -> Vec<u8> {
    let mut out = vec![TAG_APP];
    put_u64(&mut out, seq);
    let m = &app.meta;
    put_str(&mut out, &m.package);
    put_str(&mut out, &m.title);
    put_str(&mut out, &m.category);
    put_u64(&mut out, m.downloads);
    put_u64(&mut out, m.rating.to_bits() as u64);
    put_u64(&mut out, m.version_code as u64);
    out.push(m.has_obb as u8);
    out.push(m.has_bundle as u8);
    put_bytes(&mut out, &app.apk);
    put_u64(&mut out, app.obbs.len() as u64);
    for (name, bytes) in &app.obbs {
        put_str(&mut out, name);
        put_bytes(&mut out, bytes);
    }
    match &app.bundle {
        None => out.push(0),
        Some(b) => {
            out.push(1);
            put_bytes(&mut out, b);
        }
    }
    out
}

fn encode_crawl_done(dropouts: &[DropOut], stats: &CrawlStats) -> Vec<u8> {
    let mut out = vec![TAG_CRAWL_DONE];
    put_u64(&mut out, dropouts.len() as u64);
    for d in dropouts {
        put_str(&mut out, &d.package);
        out.push(stage_code(d.stage));
        put_str(&mut out, &d.error);
    }
    for v in [
        stats.requests,
        stats.retries,
        stats.reconnects,
        stats.backoff_ms_total,
        stats.range_resumes,
        stats.throttled,
        stats.throttle_ms_total,
        stats.breaker_rejections,
        stats.journal_restores,
    ] {
        put_u64(&mut out, v);
    }
    out
}

fn encode_probe(verdict: Option<bool>) -> Vec<u8> {
    match verdict {
        None => vec![TAG_PROBE, 0],
        Some(v) => vec![TAG_PROBE, 1, v as u8],
    }
}

/// Bounds-checked reader (cachestore's `Reader`, journal-local).
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, at: 0 }
    }

    fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.at)?;
        self.at += 1;
        Some(b)
    }

    fn u64(&mut self) -> Option<u64> {
        let bytes = self.buf.get(self.at..self.at + 8)?;
        self.at += 8;
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }

    fn len(&mut self) -> Option<usize> {
        let n = usize::try_from(self.u64()?).ok()?;
        (n <= self.buf.len() - self.at).then_some(n)
    }

    fn str(&mut self) -> Option<String> {
        let n = self.len()?;
        let bytes = self.buf.get(self.at..self.at + n)?;
        self.at += n;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn bytes(&mut self) -> Option<Vec<u8>> {
        let n = self.len()?;
        let bytes = self.buf.get(self.at..self.at + n)?;
        self.at += n;
        Some(bytes.to_vec())
    }

    fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    fn done(&self) -> bool {
        self.at == self.buf.len()
    }
}

fn decode_app(r: &mut Reader<'_>) -> Option<(u64, CrawledApp)> {
    let seq = r.u64()?;
    let package = r.str()?;
    let title = r.str()?;
    let category = r.str()?;
    let downloads = r.u64()?;
    let rating = f32::from_bits(u32::try_from(r.u64()?).ok()?);
    let version_code = u32::try_from(r.u64()?).ok()?;
    let has_obb = r.bool()?;
    let has_bundle = r.bool()?;
    let apk = r.bytes()?;
    let n_obbs = r.len()?;
    let mut obbs = Vec::with_capacity(n_obbs.min(1 << 10));
    for _ in 0..n_obbs {
        let name = r.str()?;
        obbs.push((name, r.bytes()?));
    }
    let bundle = match r.u8()? {
        0 => None,
        1 => Some(r.bytes()?),
        _ => return None,
    };
    Some((
        seq,
        CrawledApp {
            meta: AppMeta {
                package,
                title,
                category,
                downloads,
                rating,
                version_code,
                has_obb,
                has_bundle,
            },
            apk,
            obbs,
            bundle,
        },
    ))
}

fn decode_crawl_done(r: &mut Reader<'_>) -> Option<(Vec<DropOut>, CrawlStats)> {
    let n = r.len()?;
    let mut dropouts = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let package = r.str()?;
        let stage = stage_from(r.u8()?)?;
        let error = r.str()?;
        dropouts.push(DropOut {
            package,
            stage,
            error,
        });
    }
    Some((
        dropouts,
        CrawlStats {
            requests: r.u64()?,
            retries: r.u64()?,
            reconnects: r.u64()?,
            backoff_ms_total: r.u64()?,
            range_resumes: r.u64()?,
            throttled: r.u64()?,
            throttle_ms_total: r.u64()?,
            breaker_rejections: r.u64()?,
            journal_restores: r.u64()?,
        },
    ))
}

fn decode_entry(payload: &[u8]) -> Option<Entry> {
    let mut r = Reader::new(payload);
    let entry = match r.u8()? {
        TAG_APP => {
            let (seq, app) = decode_app(&mut r)?;
            Entry::App(seq, app)
        }
        TAG_CRAWL_DONE => {
            let (d, s) = decode_crawl_done(&mut r)?;
            Entry::CrawlDone(d, s)
        }
        TAG_PROBE => {
            let verdict = match r.u8()? {
                0 => None,
                1 => Some(r.bool()?),
                _ => return None,
            };
            Entry::Probe(verdict)
        }
        _ => return None,
    };
    r.done().then_some(entry)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gaugenn-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_app(pkg: &str, payload: u8) -> CrawledApp {
        CrawledApp {
            meta: AppMeta {
                package: pkg.into(),
                title: format!("Title {pkg}"),
                category: "tools".into(),
                downloads: 1_000_000,
                rating: 4.25,
                version_code: 42,
                has_obb: payload.is_multiple_of(2),
                has_bundle: payload.is_multiple_of(3),
            },
            apk: vec![payload; 64],
            obbs: if payload.is_multiple_of(2) {
                vec![(format!("main.{pkg}.obb"), vec![payload ^ 0xFF; 16])]
            } else {
                Vec::new()
            },
            bundle: (payload.is_multiple_of(3)).then(|| vec![payload ^ 0xAA; 8]),
        }
    }

    fn sample_stats() -> CrawlStats {
        CrawlStats {
            requests: 100,
            retries: 7,
            reconnects: 2,
            backoff_ms_total: 1234,
            range_resumes: 1,
            throttled: 9,
            throttle_ms_total: 90,
            breaker_rejections: 0,
            journal_restores: 0,
        }
    }

    #[test]
    fn roundtrips_apps_crawl_done_and_probe() {
        let dir = tmp("roundtrip");
        let key = run_key("tiny", "y2020", 7);
        let mut j = RunJournal::open(&dir, "run.gnjl", key, false);
        j.record_app(0, &sample_app("com.a", 1));
        j.record_app(1, &sample_app("com.b", 2));
        let dropouts = vec![DropOut {
            package: "com.fail".into(),
            stage: CrawlStage::Apk,
            error: "transient: io".into(),
        }];
        j.record_crawl_done(&dropouts, &sample_stats());
        j.record_probe(Some(true));
        drop(j);

        let j = RunJournal::open(&dir, "run.gnjl", key, true);
        assert_eq!(j.replayed_app_count(), 2);
        let apps = j.apps_in_order();
        assert_eq!(apps[0], sample_app("com.a", 1));
        assert_eq!(apps[1], sample_app("com.b", 2));
        let (d, s) = j.crawl_done().expect("crawl done replays");
        assert_eq!(*d, dropouts);
        assert_eq!(*s, sample_stats());
        assert_eq!(j.probe(), Some(Some(true)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_open_discards_previous_records() {
        let dir = tmp("fresh");
        let key = run_key("tiny", "y2020", 7);
        let mut j = RunJournal::open(&dir, "run.gnjl", key, false);
        j.record_app(0, &sample_app("com.a", 1));
        drop(j);
        let j = RunJournal::open(&dir, "run.gnjl", key, false);
        assert_eq!(j.replayed_app_count(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_run_key_replays_nothing() {
        let dir = tmp("stale");
        let key = run_key("tiny", "y2020", 7);
        let mut j = RunJournal::open(&dir, "run.gnjl", key, false);
        j.record_app(0, &sample_app("com.a", 1));
        drop(j);
        // Same path, different configuration: a stale-generation journal.
        let other = run_key("tiny", "y2021", 7);
        let j = RunJournal::open(&dir, "run.gnjl", other, true);
        assert_eq!(j.replayed_app_count(), 0);
        assert!(j.crawl_done().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let dir = tmp("torn");
        let key = run_key("small", "y2021", 3);
        let mut j = RunJournal::open(&dir, "run.gnjl", key, false);
        j.record_app(0, &sample_app("com.a", 1));
        j.record_app(1, &sample_app("com.b", 2));
        let path = j.path().to_path_buf();
        drop(j);
        let raw = fs::read(&path).unwrap();
        fs::write(&path, &raw[..raw.len() - 9]).unwrap();

        let mut j = RunJournal::open(&dir, "run.gnjl", key, true);
        assert_eq!(j.replayed_app_count(), 1, "torn record drops, prefix survives");
        // The journal stays appendable after truncation and the re-added
        // record replays on the next open.
        j.record_app(1, &sample_app("com.b", 2));
        drop(j);
        let j = RunJournal::open(&dir, "run.gnjl", key, true);
        assert_eq!(j.replayed_app_count(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_stops_replay_at_last_good_record() {
        let dir = tmp("flip");
        let key = run_key("small", "y2021", 3);
        let mut j = RunJournal::open(&dir, "run.gnjl", key, false);
        j.record_app(0, &sample_app("com.a", 1));
        j.record_app(1, &sample_app("com.b", 2));
        j.record_app(2, &sample_app("com.c", 3));
        let path = j.path().to_path_buf();
        drop(j);
        let mut raw = fs::read(&path).unwrap();
        // Flip a byte inside the second record's payload.
        let second_start = HEADER_LEN + 8 + encode_app(0, &sample_app("com.a", 1)).len();
        raw[second_start + 20] ^= 0x01;
        fs::write(&path, &raw).unwrap();

        let j = RunJournal::open(&dir, "run.gnjl", key, true);
        assert_eq!(j.replayed_app_count(), 1, "replay ends before the flipped record");
        assert_eq!(j.apps_in_order()[0], sample_app("com.a", 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_header_replays_nothing_and_reinitialises() {
        let dir = tmp("header");
        let key = run_key("tiny", "y2020", 1);
        let mut j = RunJournal::open(&dir, "run.gnjl", key, false);
        j.record_app(0, &sample_app("com.a", 1));
        let path = j.path().to_path_buf();
        drop(j);
        let raw = fs::read(&path).unwrap();
        fs::write(&path, &raw[..7]).unwrap();

        let mut j = RunJournal::open(&dir, "run.gnjl", key, true);
        assert_eq!(j.replayed_app_count(), 0);
        // And the reinitialised file journals normally again.
        j.record_app(0, &sample_app("com.a", 1));
        drop(j);
        let j = RunJournal::open(&dir, "run.gnjl", key, true);
        assert_eq!(j.replayed_app_count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
