//! The end-to-end gaugeNN pipeline: generate a store, crawl it over TCP,
//! extract + validate + decode models, and run the offline analyses.

use crate::analyze::{AnalysisConfig, AnalysisPool, AnalysisStats};
use crate::crashpoint::{self, CrashPoint};
use crate::extract::AppExtraction;
use crate::indexer;
use crate::journal::{self, RunJournal};
use crate::report::TextTable;
use crate::Result;
use gaugenn_analysis::classify::LayerComposition;
use gaugenn_analysis::etl::Index;
use gaugenn_index::CorpusIndex;
use gaugenn_modelfmt::Framework;
use gaugenn_playstore::admission::{AdmissionConfig, AdmissionStats};
use gaugenn_playstore::chaos::{FaultPlan, FaultPlanConfig};
use gaugenn_playstore::corpus::{generate, CorpusScale, Snapshot};
use gaugenn_playstore::crawler::{
    CrawlOutcome, CrawlStage, CrawlStats, Crawler, CrawlerConfig, DropOut, RetryPolicy,
};
use gaugenn_playstore::pool::{CrawlPool, CrawlPoolConfig};
use gaugenn_playstore::reactor::ReactorMode;
use gaugenn_playstore::server::{ServerOptions, StoreServer};
use gaugenn_sched::SchedMode;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Corpus scale.
    pub scale: CorpusScale,
    /// Which snapshot to crawl.
    pub snapshot: Snapshot,
    /// Corpus seed (must match across snapshots of one study).
    pub seed: u64,
    /// Crawler identity.
    pub crawler: CrawlerConfig,
    /// Retry/backoff policy for every store request.
    pub retry: RetryPolicy,
    /// Crawl worker threads. 1 (the default) crawls sequentially; more
    /// run a sharded [`CrawlPool`] whose merged corpus is byte-identical
    /// to the sequential crawl at any worker count.
    pub workers: usize,
    /// Store-wide admission control (rate limit + circuit breaker) the
    /// crawl fleet shares when `workers > 1`.
    pub admission: AdmissionConfig,
    /// Run the store under a seeded fault plan (None = clean store).
    /// Transient faults are absorbed by the crawler's retries; permanent
    /// routes surface as download drop-outs in the Table 2 accounting.
    pub chaos: Option<FaultPlanConfig>,
    /// Re-crawl a sample with an old device profile and compare APKs
    /// (§4.2's device-specific-distribution probe).
    pub probe_device_profiles: bool,
    /// Offline-analysis worker threads. 1 (the default) analyses
    /// sequentially; more fan the crawled corpus over a sharded
    /// [`AnalysisPool`] whose merged report is byte-identical to the
    /// sequential run at any worker count.
    pub analysis_workers: usize,
    /// How both pools partition work across their fleets. Defaults to
    /// the `GAUGENN_SCHED` environment variable (falling back to LPT);
    /// never changes report content, only who does the work.
    pub sched: SchedMode,
    /// Per-category crawl-size hints in bytes (e.g. measured by a
    /// previous snapshot) — passed to the crawl pool so size-aware modes
    /// skip their bootstrap listing probe.
    pub crawl_size_hints: Option<BTreeMap<String, u64>>,
    /// Directory for the persistent analysis cache. When set, a second
    /// run (or second snapshot) over the same directory attaches to
    /// already-computed model analyses instead of re-tracing them.
    pub analysis_cache_dir: Option<PathBuf>,
    /// Directory for the run journal (one crc-guarded checkpoint file
    /// per snapshot). When set, completed work units — crawled apps, the
    /// end-of-crawl marker, the probe verdict — are journaled as they
    /// finish, so a killed run can be resumed. See `DESIGN.md` §12.
    pub journal_dir: Option<PathBuf>,
    /// Replay a surviving journal instead of starting fresh: journaled
    /// apps skip the network, a journaled end-of-crawl marker skips the
    /// whole crawl, a journaled probe verdict skips the probe. Output is
    /// byte-identical to an uninterrupted run either way.
    pub resume: bool,
    /// Directory for the persistent corpus index (`corpus.gnix`). When
    /// set, the index stage loads whatever index survives there, folds
    /// this snapshot in, and persists the result — so two snapshot runs
    /// over one directory accumulate a single cross-snapshot index. A
    /// corrupt file degrades to a rebuild, never an error. When `None`,
    /// the index is still built (and lands in the report) but stays
    /// in-memory.
    pub index_dir: Option<PathBuf>,
    /// Which serving loop the store runs (`None` = the `GAUGENN_REACTOR`
    /// environment variable, falling back to the platform default).
    /// A pooled crawl (`workers > 1`) passes the same choice to the
    /// [`CrawlPool`] as its *client* transport, so `epoll`/`sim` runs
    /// are event-driven end to end. Never changes report content — the
    /// crawler reaches a sim store through in-process pipes and a TCP
    /// store through sockets, and the report is byte-identical either
    /// way.
    pub reactor: Option<ReactorMode>,
    /// Store connections each crawl worker multiplexes (pooled crawls
    /// only; clamped to a minimum of 1). With a non-threaded
    /// [`Self::reactor`] one worker thread drives all of them as
    /// non-blocking lanes; the threaded baseline walks them
    /// sequentially. Never changes report content.
    pub connections_per_worker: usize,
}

impl PipelineConfig {
    /// Tiny corpus for tests.
    pub fn tiny(snapshot: Snapshot, seed: u64) -> Self {
        Self::with_scale(CorpusScale::Tiny, snapshot, seed)
    }

    /// Small corpus for examples.
    pub fn small(snapshot: Snapshot, seed: u64) -> Self {
        Self::with_scale(CorpusScale::Small, snapshot, seed)
    }

    /// Paper-scale corpus for the repro binary.
    pub fn paper(snapshot: Snapshot, seed: u64) -> Self {
        Self::with_scale(CorpusScale::Paper, snapshot, seed)
    }

    /// Explicit scale.
    pub fn with_scale(scale: CorpusScale, snapshot: Snapshot, seed: u64) -> Self {
        PipelineConfig {
            scale,
            snapshot,
            seed,
            crawler: CrawlerConfig::default(),
            retry: RetryPolicy::default(),
            workers: 1,
            admission: AdmissionConfig::default(),
            chaos: None,
            probe_device_profiles: true,
            analysis_workers: 1,
            sched: SchedMode::from_env(),
            crawl_size_hints: None,
            analysis_cache_dir: None,
            journal_dir: None,
            resume: false,
            index_dir: None,
            reactor: None,
            connections_per_worker: 1,
        }
    }

    /// Start configuring a pipeline, builder-style — the same shape as
    /// `Crawler::builder`. Scale, snapshot and seed identify the corpus
    /// and are therefore positional; everything else has a default and
    /// chains:
    ///
    /// ```
    /// # use gaugenn_core::pipeline::PipelineConfig;
    /// # use gaugenn_playstore::corpus::{CorpusScale, Snapshot};
    /// let cfg = PipelineConfig::builder(CorpusScale::Tiny, Snapshot::Y2021, 7)
    ///     .workers(4)
    ///     .analysis_workers(2)
    ///     .build();
    /// ```
    pub fn builder(scale: CorpusScale, snapshot: Snapshot, seed: u64) -> PipelineConfigBuilder {
        PipelineConfigBuilder {
            config: PipelineConfig::with_scale(scale, snapshot, seed),
        }
    }
}

/// Configures and builds a [`PipelineConfig`]. Obtained from
/// [`PipelineConfig::builder`]; every method consumes and returns the
/// builder, mirroring the crawler's builder.
#[derive(Debug, Clone)]
pub struct PipelineConfigBuilder {
    config: PipelineConfig,
}

impl PipelineConfigBuilder {
    /// Crawler identity (user-agent, locale, device profile, page size).
    pub fn crawler(mut self, crawler: CrawlerConfig) -> PipelineConfigBuilder {
        self.config.crawler = crawler;
        self
    }

    /// Retry/backoff policy for every store request.
    pub fn retry(mut self, retry: RetryPolicy) -> PipelineConfigBuilder {
        self.config.retry = retry;
        self
    }

    /// Crawl worker threads (1 = sequential).
    pub fn workers(mut self, workers: usize) -> PipelineConfigBuilder {
        self.config.workers = workers;
        self
    }

    /// Store-wide admission control for pooled crawls.
    pub fn admission(mut self, admission: AdmissionConfig) -> PipelineConfigBuilder {
        self.config.admission = admission;
        self
    }

    /// Run the store under a seeded fault plan.
    pub fn chaos(mut self, chaos: FaultPlanConfig) -> PipelineConfigBuilder {
        self.config.chaos = Some(chaos);
        self
    }

    /// Enable/disable the §4.2 device-profile probe.
    pub fn probe_device_profiles(mut self, probe: bool) -> PipelineConfigBuilder {
        self.config.probe_device_profiles = probe;
        self
    }

    /// Offline-analysis worker threads (1 = sequential).
    pub fn analysis_workers(mut self, workers: usize) -> PipelineConfigBuilder {
        self.config.analysis_workers = workers;
        self
    }

    /// Pool scheduling mode for both fleets.
    pub fn sched(mut self, sched: SchedMode) -> PipelineConfigBuilder {
        self.config.sched = sched;
        self
    }

    /// Per-category crawl-size hints for size-aware scheduling.
    pub fn crawl_size_hints(mut self, hints: BTreeMap<String, u64>) -> PipelineConfigBuilder {
        self.config.crawl_size_hints = Some(hints);
        self
    }

    /// Directory for the persistent analysis cache.
    pub fn analysis_cache_dir(mut self, dir: PathBuf) -> PipelineConfigBuilder {
        self.config.analysis_cache_dir = Some(dir);
        self
    }

    /// Directory for the run journal.
    pub fn journal_dir(mut self, dir: PathBuf) -> PipelineConfigBuilder {
        self.config.journal_dir = Some(dir);
        self
    }

    /// Replay a surviving journal instead of starting fresh.
    pub fn resume(mut self, resume: bool) -> PipelineConfigBuilder {
        self.config.resume = resume;
        self
    }

    /// Directory for the persistent corpus index.
    pub fn index_dir(mut self, dir: PathBuf) -> PipelineConfigBuilder {
        self.config.index_dir = Some(dir);
        self
    }

    /// Pin the store's serving loop (threaded, epoll or sim) instead of
    /// resolving it from `GAUGENN_REACTOR`. A pooled crawl runs its
    /// client connections on the same substrate.
    pub fn reactor(mut self, mode: ReactorMode) -> PipelineConfigBuilder {
        self.config.reactor = Some(mode);
        self
    }

    /// Store connections each crawl worker multiplexes (pooled crawls
    /// only).
    pub fn connections_per_worker(mut self, connections: usize) -> PipelineConfigBuilder {
        self.config.connections_per_worker = connections;
        self
    }

    /// Finish: the assembled configuration.
    pub fn build(self) -> PipelineConfig {
        self.config
    }
}

pub use crate::analyze::{InstanceRecord, ModelRecord};

/// Table 2-shaped dataset summary — *measured*, not copied from the
/// corpus spec.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Snapshot label.
    pub snapshot: &'static str,
    /// Total apps crawled.
    pub total_apps: usize,
    /// Apps with ML libraries (incl. obfuscated models).
    pub ml_apps: usize,
    /// Apps with at least one validated (benchmarkable) model.
    pub benchmarkable_apps: usize,
    /// Total model instances extracted.
    pub total_models: usize,
    /// Unique models by checksum.
    pub unique_models: usize,
    /// Candidate files that failed signature validation.
    pub failed_candidates: usize,
    /// Models found outside the base APK (§4.2: expected 0).
    pub models_outside_apk: usize,
    /// Apps using cloud ML APIs.
    pub cloud_apps: usize,
    /// Apps using NNAPI / XNNPACK / SNPE (§6.3).
    pub nnapi_apps: usize,
    /// Apps using XNNPACK.
    pub xnnpack_apps: usize,
    /// Apps using SNPE.
    pub snpe_apps: usize,
    /// Apps with on-device-training markers (§4.5: expected 0).
    pub on_device_training_apps: usize,
    /// Apps (or listings) that never downloaded after every retry — the
    /// paper's download-failure line in the Table 2 accounting.
    pub download_dropouts: usize,
    /// Whether the old-device-profile re-crawl produced identical APKs.
    pub device_profile_invariant: Option<bool>,
}

/// Everything the pipeline produced.
#[derive(Debug)]
pub struct PipelineReport {
    /// Config used.
    pub snapshot: Snapshot,
    /// Scale used.
    pub scale: CorpusScale,
    /// Seed used.
    pub seed: u64,
    /// Table 2 numbers.
    pub dataset: DatasetSummary,
    /// Unique models with analyses.
    pub models: Vec<ModelRecord>,
    /// Checksum → index into `models`, kept alongside so per-checksum
    /// lookups are a map probe, not a linear scan.
    pub model_index: BTreeMap<String, usize>,
    /// All instances.
    pub instances: Vec<InstanceRecord>,
    /// Per-app extraction facts.
    pub apps: Vec<AppExtraction>,
    /// Metadata index (the ElasticSearch stand-in).
    pub index: Index,
    /// Fig. 6 layer composition.
    pub composition: LayerComposition,
    /// Per-app download failures with their failing stage.
    pub dropouts: Vec<DropOut>,
    /// Crawl resilience counters (merged across workers when pooled).
    pub crawl_stats: CrawlStats,
    /// Fleet-wide admission counters (None for sequential crawls, which
    /// run without an admission controller).
    pub admission: Option<AdmissionStats>,
    /// Crawl workers used.
    pub workers: usize,
    /// Whether the whole crawl was served from the run journal (resume
    /// after a post-crawl checkpoint). Run provenance, not corpus
    /// content: excluded from [`PipelineReport::render_text`].
    pub crawl_replayed: bool,
    /// Offline-analysis counters and per-stage wall-clock timings (the
    /// timing fields vary run to run and are excluded from
    /// [`PipelineReport::render_text`]).
    pub analysis: AnalysisStats,
    /// The queryable corpus index with this snapshot folded in — hand it
    /// to `StoreServer::start_with` to serve the `/query/*` routes.
    /// `Arc`-wrapped because the server shares it immutably across
    /// connection threads.
    pub corpus_index: Arc<CorpusIndex>,
    /// The sim reactor's event-stream digest (None unless the store ran
    /// under [`ReactorMode::Sim`]). Schedule provenance, not content: it
    /// names which readiness schedule this run took. Free-running crawls
    /// may take different schedules run to run — the report must stay
    /// byte-identical regardless; only a lockstep harness (no server
    /// thread) replays the digest itself. Excluded from
    /// [`PipelineReport::render_text`].
    pub reactor_digest: Option<u64>,
}

impl PipelineReport {
    /// Model record by checksum — a `model_index` probe, so iterating
    /// every instance stays O(n log u) instead of the old O(n·u) scan.
    pub fn model(&self, checksum: &str) -> Option<&ModelRecord> {
        self.model_index.get(checksum).map(|&i| &self.models[i])
    }

    /// Instance count per framework (§4.3 / Fig. 4).
    pub fn instances_per_framework(&self) -> BTreeMap<Framework, usize> {
        let mut out = BTreeMap::new();
        for inst in &self.instances {
            if let Some(m) = self.model(&inst.checksum) {
                *out.entry(m.framework).or_default() += 1;
            }
        }
        out
    }

    /// Per-stage drop-out breakdown — the crawl half of the Table 2
    /// accounting: how many apps (or listings) were lost at each crawl
    /// stage, with an example package for triage.
    pub fn dropout_breakdown(&self) -> TextTable {
        let mut t = TextTable::new(["crawl stage", "drop-outs", "example"]);
        for stage in CrawlStage::ALL {
            let mut of_stage = self.dropouts.iter().filter(|d| d.stage == stage);
            let example = of_stage.next().map_or(String::new(), |d| d.package.clone());
            let count = self.dropouts.iter().filter(|d| d.stage == stage).count();
            t.row([stage.name().to_string(), count.to_string(), example]);
        }
        t.row([
            "total".to_string(),
            self.dropouts.len().to_string(),
            String::new(),
        ]);
        t
    }

    /// One-line crawl resilience summary (pool stats included when the
    /// crawl ran sharded).
    pub fn crawl_summary(&self) -> String {
        let s = &self.crawl_stats;
        let mut line = format!(
            "crawl: {} worker(s), {} requests, {} retries, {} reconnects, \
             {} range resumes, {} ms logical backoff",
            self.workers, s.requests, s.retries, s.reconnects, s.range_resumes, s.backoff_ms_total
        );
        if let Some(a) = &self.admission {
            line.push_str(&format!(
                "; admission: {} admitted, {} throttled ({} ms), {} rejected, breaker opened {}x",
                a.admitted, a.throttled, a.throttle_ms_total, a.rejections, a.breaker_opens
            ));
        }
        line
    }

    /// Instance count per (category, framework) for Fig. 4.
    pub fn instances_per_category_framework(&self) -> BTreeMap<(String, Framework), usize> {
        let mut out = BTreeMap::new();
        for inst in &self.instances {
            if let Some(m) = self.model(&inst.checksum) {
                *out.entry((inst.category.clone(), m.framework)).or_default() += 1;
            }
        }
        out
    }

    /// One-line offline-analysis summary. Cache counters are corpus
    /// properties (deterministic at any worker count); the trailing
    /// wall-clock total is not.
    pub fn analysis_summary(&self) -> String {
        let a = &self.analysis;
        let mut line = format!(
            "analysis: {} worker(s), {} apps, {} instances, \
             {} cache hits / {} misses ({:.1}% hit rate), {} unique analysed, {:.1} ms",
            a.workers,
            a.apps,
            a.instances,
            a.cache_hits,
            a.cache_misses,
            a.cache_hit_rate() * 100.0,
            a.unique_analysed,
            a.total_ms(),
        );
        if a.persistent_hits > 0 || a.persistent_stores > 0 {
            line.push_str(&format!(
                "; persistent cache: {} hits / {} stored ({:.1}% of uniques warm)",
                a.persistent_hits,
                a.persistent_stores,
                a.persistent_hit_rate() * 100.0,
            ));
        }
        line
    }

    /// Per-stage wall-clock breakdown of the offline analysis (extract /
    /// checksum / decode / trace), summed across workers. Wall-clock
    /// content: do not fold into anything that must be byte-stable.
    pub fn analysis_breakdown(&self) -> TextTable {
        let a = &self.analysis;
        let stages = [
            ("extract", a.extract_us),
            ("checksum", a.checksum_us),
            ("decode", a.decode_us),
            ("trace+classify", a.trace_us),
        ];
        let total: u64 = stages.iter().map(|(_, us)| us).sum();
        let mut t = TextTable::new(["analysis stage", "ms", "share"]);
        for (name, us) in stages {
            let share = if total == 0 {
                0.0
            } else {
                us as f64 / total as f64 * 100.0
            };
            t.row([
                name.to_string(),
                format!("{:.1}", us as f64 / 1e3),
                format!("{share:.1}%"),
            ]);
        }
        t.row([
            "total".to_string(),
            format!("{:.1}", total as f64 / 1e3),
            String::new(),
        ]);
        t
    }

    /// Deterministic text render of the corpus-derived report content:
    /// the dataset summary, drop-out breakdown, cache counters, every
    /// model record and the per-framework instance counts. Byte-identical
    /// across crawl and analysis worker counts on the same corpus —
    /// wall-clock timings and worker counts are deliberately excluded —
    /// which is what the determinism tests pin.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "gaugeNN report: scale={:?} snapshot={:?} seed={}\n",
            self.scale, self.snapshot, self.seed
        ));
        out.push_str(&format!("{:#?}\n", self.dataset));
        out.push_str(&self.dropout_breakdown().render());
        out.push_str(&format!(
            "cache: {} hits, {} misses over {} instances\n",
            self.analysis.cache_hits, self.analysis.cache_misses, self.analysis.instances
        ));
        let mut models = TextTable::new(["model", "checksum", "fw", "bytes", "flops", "apps"]);
        for m in &self.models {
            models.row([
                m.name.clone(),
                m.checksum.clone(),
                format!("{:?}", m.framework),
                m.size_bytes.to_string(),
                m.trace.total_flops.to_string(),
                m.app_count.to_string(),
            ]);
        }
        out.push_str(&models.render());
        for (fw, n) in self.instances_per_framework() {
            out.push_str(&format!("instances[{fw:?}] = {n}\n"));
        }
        out
    }
}

/// The pipeline runner.
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// Create a pipeline.
    pub fn new(config: PipelineConfig) -> Pipeline {
        Pipeline { config }
    }

    /// Run end to end: corpus → TCP store → crawl → extract → analyse.
    pub fn run(&self) -> Result<PipelineReport> {
        let corpus = generate(self.config.scale, self.config.snapshot, self.config.seed);
        let server = StoreServer::start_with(
            corpus,
            ServerOptions {
                chaos: self.config.chaos.clone().map(FaultPlan::new),
                reactor: self.config.reactor,
                ..ServerOptions::default()
            },
        )?;
        // Journaled checkpoints (DESIGN.md §12): every completed crawl
        // unit becomes durable as it finishes, so a killed run resumed
        // over the same journal directory skips the journaled work and
        // still renders byte-identical output.
        let mut run_journal = self.config.journal_dir.as_ref().map(|dir| {
            let key = journal::run_key(
                &format!("{:?}", self.config.scale),
                self.config.snapshot.label(),
                self.config.seed,
            );
            let file = format!("run-{:?}.gnjl", self.config.snapshot);
            RunJournal::open(dir, &file, key, self.config.resume)
        });

        let replayed_crawl = run_journal.as_ref().and_then(|j| {
            j.crawl_done().cloned().map(|(dropouts, stats)| CrawlOutcome {
                apps: j.apps_in_order(),
                dropouts,
                stats,
            })
        });
        let crawl_replayed = replayed_crawl.is_some();
        let (outcome, admission, workers) = if let Some(outcome) = replayed_crawl {
            // The previous attempt finished its crawl: the corpus, the
            // drop-out ledger and the stats all replay from the journal
            // without touching the store.
            (outcome, None, self.config.workers)
        } else {
            let resume_cache = run_journal
                .as_ref()
                .map(|j| Arc::new(j.resume_apps()))
                .filter(|r| !r.is_empty());
            if self.config.workers > 1 {
                let pooled = CrawlPool::new(CrawlPoolConfig {
                    workers: self.config.workers,
                    crawler: self.config.crawler.clone(),
                    retry: self.config.retry.clone(),
                    admission: self.config.admission.clone(),
                    sched: self.config.sched,
                    sched_seed: self.config.seed,
                    size_hints: self.config.crawl_size_hints.clone(),
                    resume: resume_cache,
                    connections_per_worker: self.config.connections_per_worker,
                    reactor: self.config.reactor,
                })
                .crawl_at(&server.endpoint())?;
                (pooled.outcome, Some(pooled.admission), pooled.workers)
            } else {
                let mut builder = Crawler::builder_at(server.endpoint())
                    .config(self.config.crawler.clone())
                    .retry(self.config.retry.clone());
                if let Some(resume) = resume_cache {
                    builder = builder.resume_cache(resume);
                }
                let mut crawler = builder.build()?;
                (crawler.crawl_all()?, None, 1)
            }
        };
        // Make the whole crawl durable before analysis starts; after the
        // post-crawl boundary a resumed run never re-crawls.
        if let Some(j) = run_journal.as_mut() {
            for (seq, app) in outcome.apps.iter().enumerate() {
                j.record_app(seq as u64, app);
            }
            j.record_crawl_done(&outcome.dropouts, &outcome.stats);
        }
        crashpoint::hit(CrashPoint::PostCrawl);
        let crawled = &outcome.apps;

        // §4.2 probe: re-download a sample of ML-app APKs with a
        // three-generations-older device profile and compare bytes.
        let journaled_probe = run_journal.as_ref().and_then(|j| j.probe());
        let device_profile_invariant = if let Some(verdict) = journaled_probe {
            verdict
        } else if self.config.probe_device_profiles {
            let mut old_cfg = self.config.crawler.clone();
            old_cfg.device_profile = "SM-G935F".into(); // Galaxy S7 edge
            old_cfg.user_agent = "gaugeNN/1.0 (Android 8; SM-G935F)".into();
            // A distinct connection id keeps the probe's chaos fault
            // schedule independent of the crawl fleet's.
            let mut old_crawler = Crawler::builder_at(server.endpoint())
                .config(old_cfg)
                .retry(self.config.retry.clone())
                .connection_id(u64::MAX)
                .build()?;
            let mut invariant = true;
            for app in crawled.iter().take(20) {
                let again = old_crawler.download_apk(&app.meta.package)?;
                if again != app.apk {
                    invariant = false;
                    break;
                }
            }
            Some(invariant)
        } else {
            None
        };
        if let Some(j) = run_journal.as_mut() {
            j.record_probe(device_profile_invariant);
        }

        // Offline stage: fan the corpus over the analysis pool (1 worker
        // reproduces the old sequential loop through the same code path).
        let analysed = AnalysisPool::new(AnalysisConfig {
            workers: self.config.analysis_workers,
            sched: self.config.sched,
            sched_seed: self.config.seed,
            cache_dir: self.config.analysis_cache_dir.clone(),
            ..AnalysisConfig::default()
        })
        .analyse(crawled)?;
        let crate::analyze::AnalysisOutput {
            apps,
            models,
            model_index,
            instances,
            index,
            composition,
            failed_candidates,
            models_outside_apk,
            stats: analysis,
        } = analysed;

        // Index stage: fold this snapshot's analysed corpus into the
        // queryable index. With an index directory configured the stage
        // is incremental — whatever index survives on disk (other
        // snapshots included) is loaded first, this snapshot replaces its
        // own prior contribution, and the result is persisted back. A
        // corrupt file loads as empty and is rebuilt right here.
        let mut corpus_index = match &self.config.index_dir {
            Some(dir) => indexer::load_or_empty(dir),
            None => CorpusIndex::new(),
        };
        indexer::ingest(
            &mut corpus_index,
            self.config.snapshot.label(),
            &models,
            &apps,
        );
        if let Some(dir) = &self.config.index_dir {
            indexer::persist(&corpus_index, dir);
        }
        let corpus_index = Arc::new(corpus_index);

        let dataset = DatasetSummary {
            snapshot: self.config.snapshot.label(),
            total_apps: apps.len(),
            ml_apps: apps.iter().filter(|a| a.is_ml_app()).count(),
            benchmarkable_apps: apps.iter().filter(|a| !a.models.is_empty()).count(),
            total_models: instances.len(),
            unique_models: models.len(),
            failed_candidates,
            models_outside_apk,
            cloud_apps: apps.iter().filter(|a| !a.cloud.is_empty()).count(),
            nnapi_apps: apps.iter().filter(|a| a.uses_nnapi).count(),
            xnnpack_apps: apps.iter().filter(|a| a.uses_xnnpack).count(),
            snpe_apps: apps.iter().filter(|a| a.uses_snpe).count(),
            on_device_training_apps: apps.iter().filter(|a| a.uses_on_device_training).count(),
            download_dropouts: outcome.dropouts.len(),
            device_profile_invariant,
        };

        Ok(PipelineReport {
            snapshot: self.config.snapshot,
            scale: self.config.scale,
            seed: self.config.seed,
            dataset,
            models,
            model_index,
            instances,
            apps,
            index,
            composition,
            dropouts: outcome.dropouts,
            crawl_stats: outcome.stats,
            admission,
            workers,
            crawl_replayed,
            analysis,
            corpus_index,
            reactor_digest: server.reactor_digest(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_tiny() -> PipelineReport {
        Pipeline::new(PipelineConfig::tiny(Snapshot::Y2021, 7))
            .run()
            .unwrap()
    }

    #[test]
    fn tiny_pipeline_end_to_end() {
        let r = run_tiny();
        assert_eq!(r.dataset.total_apps, 52);
        assert_eq!(r.dataset.ml_apps, 11);
        assert_eq!(r.dataset.benchmarkable_apps, 10);
        assert!(r.dataset.total_models >= 10);
        assert!(r.dataset.unique_models <= r.dataset.total_models);
        assert!(
            r.dataset.failed_candidates > 0,
            "decoys + obfuscated models"
        );
        assert_eq!(r.dataset.models_outside_apk, 0, "the §4.2 finding");
        assert_eq!(r.dataset.cloud_apps, 7);
        assert_eq!(r.dataset.download_dropouts, 0, "clean store drops nothing");
        assert_eq!(r.dataset.device_profile_invariant, Some(true));
        assert_eq!(r.index.len(), 52);
    }

    #[test]
    fn chaotic_store_yields_the_same_dataset() {
        // Every fault under the default plan is transient (bounded per
        // route), so the crawler's retries must recover the full corpus
        // and the Table 2 numbers must match the clean run exactly.
        let clean = run_tiny();
        let cfg = PipelineConfig::builder(CorpusScale::Tiny, Snapshot::Y2021, 7)
            .chaos(gaugenn_playstore::chaos::FaultPlanConfig {
                fault_permille: 250,
                ..Default::default()
            })
            .build();
        let chaotic = Pipeline::new(cfg).run().unwrap();
        assert_eq!(chaotic.dataset, clean.dataset);
        assert!(chaotic.dropouts.is_empty(), "{:?}", chaotic.dropouts);
    }

    #[test]
    fn permanent_failures_become_dropouts() {
        let corpus = generate(CorpusScale::Tiny, Snapshot::Y2021, 7);
        let victim = corpus.apps[0].package.clone();
        let cfg = PipelineConfig::builder(CorpusScale::Tiny, Snapshot::Y2021, 7)
            .probe_device_profiles(false) // the victim may be in the probe sample
            .chaos(gaugenn_playstore::chaos::FaultPlanConfig {
                fault_permille: 0,
                permanent_routes: vec![format!("/apk/{victim}")],
                ..Default::default()
            })
            .build();
        let r = Pipeline::new(cfg).run().unwrap();
        assert_eq!(r.dataset.total_apps, 51, "one app dropped out");
        assert_eq!(r.dataset.download_dropouts, 1);
        assert_eq!(r.dropouts.len(), 1);
        assert_eq!(r.dropouts[0].package, victim);
        assert_eq!(
            r.dropouts[0].stage,
            gaugenn_playstore::crawler::CrawlStage::Apk
        );
    }

    #[test]
    fn pooled_pipeline_matches_sequential() {
        let sequential = run_tiny();
        let cfg = PipelineConfig::builder(CorpusScale::Tiny, Snapshot::Y2021, 7)
            .workers(4)
            .build();
        let pooled = Pipeline::new(cfg).run().unwrap();
        assert_eq!(pooled.workers, 4);
        assert_eq!(pooled.dataset, sequential.dataset);
        let sums_p: Vec<&str> = pooled.models.iter().map(|m| m.checksum.as_str()).collect();
        let sums_s: Vec<&str> = sequential
            .models
            .iter()
            .map(|m| m.checksum.as_str())
            .collect();
        assert_eq!(sums_p, sums_s, "same models in the same order");
        let adm = pooled.admission.expect("pooled runs carry admission stats");
        assert_eq!(adm.admitted, pooled.crawl_stats.requests);
        assert!(sequential.admission.is_none());
    }

    #[test]
    fn parallel_analysis_matches_sequential() {
        let sequential = run_tiny();
        assert_eq!(sequential.analysis.workers, 1);
        for analysis_workers in [2usize, 8] {
            let cfg = PipelineConfig::builder(CorpusScale::Tiny, Snapshot::Y2021, 7)
                .analysis_workers(analysis_workers)
                .build();
            let parallel = Pipeline::new(cfg).run().unwrap();
            assert_eq!(parallel.analysis.workers, analysis_workers);
            assert_eq!(parallel.dataset, sequential.dataset);
            assert_eq!(
                parallel.render_text(),
                sequential.render_text(),
                "{analysis_workers} analysis workers"
            );
        }
    }

    #[test]
    fn analysis_cache_hits_on_duplicate_models() {
        let r = run_tiny();
        // The corpus plants cross-app duplicate models, so instances must
        // outnumber unique checksums and the cache must score hits.
        assert!(r.analysis.cache_hits > 0, "{:?}", r.analysis);
        assert_eq!(
            r.analysis.cache_hits + r.analysis.cache_misses,
            r.analysis.instances
        );
        assert_eq!(r.analysis.unique_analysed as usize, r.models.len());
        assert!(r.analysis_summary().contains("cache hits"));
        let breakdown = r.analysis_breakdown().render();
        assert!(breakdown.contains("decode"), "{breakdown}");
    }

    #[test]
    fn model_index_is_consistent() {
        let r = run_tiny();
        assert_eq!(r.model_index.len(), r.models.len());
        for (i, m) in r.models.iter().enumerate() {
            assert_eq!(r.model_index[&m.checksum], i);
            assert_eq!(r.model(&m.checksum).unwrap().checksum, m.checksum);
        }
        assert!(r.model("not-a-checksum").is_none());
    }

    #[test]
    fn unique_models_have_full_analyses() {
        let r = run_tiny();
        for m in &r.models {
            assert_eq!(m.checksum.len(), 32);
            assert!(m.trace.total_flops > 0, "{}", m.name);
            assert!(m.size_bytes > 0);
            assert!(m.app_count >= 1);
            assert!(!m.layers.is_empty());
            assert!(!m.layer_families.is_empty());
        }
        // Most models classify (paper: 91.9 %).
        let classified = r
            .models
            .iter()
            .filter(|m| m.classification.is_some())
            .count();
        assert!(
            classified as f64 / r.models.len() as f64 > 0.8,
            "{classified}/{}",
            r.models.len()
        );
    }

    #[test]
    fn instances_link_to_models() {
        let r = run_tiny();
        for inst in &r.instances {
            assert!(r.model(&inst.checksum).is_some(), "{}", inst.path);
        }
        let per_fw = r.instances_per_framework();
        let total: usize = per_fw.values().sum();
        assert_eq!(total, r.instances.len());
        assert!(per_fw.contains_key(&Framework::TfLite));
    }

    fn journal_tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gaugenn-pipeline-journal-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn journaled_resume_replays_the_whole_crawl_byte_identically() {
        let dir = journal_tmp("full");
        let baseline = run_tiny();
        let builder = PipelineConfig::builder(CorpusScale::Tiny, Snapshot::Y2021, 7)
            .journal_dir(dir.clone());
        let first = Pipeline::new(builder.clone().build()).run().unwrap();
        assert_eq!(first.render_text(), baseline.render_text());

        // The resumed run replays corpus + drop-outs + probe from the
        // journal — no store traffic shows up in its (replayed) stats —
        // and still renders byte-identically.
        let resumed = Pipeline::new(builder.resume(true).build()).run().unwrap();
        assert!(resumed.crawl_replayed, "the whole crawl comes off disk");
        assert!(!first.crawl_replayed);
        assert_eq!(resumed.render_text(), baseline.render_text());
        assert_eq!(resumed.crawl_stats, first.crawl_stats, "stats replay verbatim");
        assert_eq!(resumed.dataset, first.dataset);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_journal_resumes_partially_and_restores_apps_from_disk() {
        let dir = journal_tmp("torn");
        let baseline = run_tiny();
        let builder = PipelineConfig::builder(CorpusScale::Tiny, Snapshot::Y2021, 7)
            .journal_dir(dir.clone());
        Pipeline::new(builder.clone().build()).run().unwrap();

        // Simulate a mid-crawl kill: chop the journal to 60% of its
        // length, losing the crawl-done marker, the probe verdict and the
        // tail of the app records (plus one torn record the open
        // truncates).
        let path = dir.join("run-Y2021.gnjl");
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() * 6 / 10]).unwrap();

        let resumed = Pipeline::new(builder.resume(true).build()).run().unwrap();
        assert_eq!(resumed.render_text(), baseline.render_text());
        assert!(
            resumed.crawl_stats.journal_restores > 0,
            "journaled apps must skip the network: {:?}",
            resumed.crawl_stats
        );
        assert!(
            (resumed.crawl_stats.journal_restores as usize) < resumed.dataset.total_apps,
            "the torn tail must be re-crawled"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_run_ignores_a_stale_journal_without_resume() {
        let dir = journal_tmp("fresh");
        let builder = PipelineConfig::builder(CorpusScale::Tiny, Snapshot::Y2021, 7)
            .journal_dir(dir.clone());
        Pipeline::new(builder.clone().build()).run().unwrap();
        // resume stays false: the journal restarts and nothing replays.
        let again = Pipeline::new(builder.build()).run().unwrap();
        assert_eq!(again.crawl_stats.journal_restores, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pipeline_is_deterministic() {
        let a = run_tiny();
        let b = run_tiny();
        assert_eq!(a.dataset, b.dataset);
        let sums_a: Vec<&str> = a.models.iter().map(|m| m.checksum.as_str()).collect();
        let sums_b: Vec<&str> = b.models.iter().map(|m| m.checksum.as_str()).collect();
        assert_eq!(sums_a, sums_b);
    }

    #[test]
    fn report_carries_a_consistent_corpus_index() {
        let r = run_tiny();
        let idx = &r.corpus_index;
        assert_eq!(idx.model_count(), r.models.len());
        assert_eq!(idx.app_count(), r.apps.len());
        assert_eq!(idx.snapshot_labels(), vec![r.dataset.snapshot]);
        // Every analysed model is queryable under its snapshot.
        let hits = idx.query_models(&gaugenn_index::ModelQuery {
            snapshot: Some(r.dataset.snapshot.to_string()),
            ..Default::default()
        });
        assert_eq!(hits.len(), r.models.len());
        // ML-app counts agree with the Table 2 summary.
        let ml = idx.query_apps(&gaugenn_index::AppQuery {
            ml_only: true,
            ..Default::default()
        });
        assert_eq!(ml.len(), r.dataset.ml_apps);
    }

    #[test]
    fn index_dir_accumulates_across_snapshots() {
        let dir = journal_tmp("index-accumulate");
        for snapshot in [Snapshot::Y2020, Snapshot::Y2021] {
            let cfg = PipelineConfig::builder(CorpusScale::Tiny, snapshot, 7)
                .index_dir(dir.clone())
                .build();
            Pipeline::new(cfg).run().unwrap();
        }
        let merged = crate::indexer::load_or_empty(&dir);
        assert_eq!(
            merged.snapshot_labels(),
            vec![Snapshot::Y2021.label(), Snapshot::Y2020.label()]
                .into_iter()
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect::<Vec<_>>(),
            "both snapshots folded into one persisted index"
        );
        // Re-running one snapshot leaves the merged counts unchanged
        // (per-label idempotence survives persistence).
        let before = merged.stats_text();
        let cfg = PipelineConfig::builder(CorpusScale::Tiny, Snapshot::Y2021, 7)
            .index_dir(dir.clone())
            .build();
        Pipeline::new(cfg).run().unwrap();
        let again = crate::indexer::load_or_empty(&dir);
        // Only the generation line may differ.
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("generation"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&again.stats_text()), strip(&before));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
