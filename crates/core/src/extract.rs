//! Per-app model extraction and code analysis (§3.1–§3.2).
//!
//! Given one downloaded app (APK + optional OBBs/bundle), this module:
//!
//! * walks candidate files, applies the extension pre-filter and binary
//!   signature validation, and pairs split-format parts (caffe's
//!   `.prototxt`+`.caffemodel`, ncnn's `.param`+`.bin`);
//! * detects ML frameworks via native-library and dex string inclusion
//!   (catching obfuscated-model apps — §3.1);
//! * scans smali for cloud ML API call sites and hardware-acceleration
//!   markers (NNAPI / XNNPACK / SNPE — §6.3);
//! * scans expansion files and asset packs for models distributed outside
//!   the base APK (the §4.2 measurement).

use gaugenn_analysis::cloudapi::{self, Provider};
use gaugenn_apk::bundle::Bundle;
use gaugenn_apk::obb::Obb;
use gaugenn_apk::{nativelib, Apk};
use gaugenn_modelfmt::validate::FileRole;
use gaugenn_modelfmt::{validate, Framework};
use gaugenn_playstore::crawler::CrawledApp;

/// A validated model found in an app: one or more files forming one model.
#[derive(Debug, Clone)]
pub struct FoundModel {
    /// Framework.
    pub framework: Framework,
    /// `(entry_path, bytes)` of every file of the model, primary first.
    pub files: Vec<(String, Vec<u8>)>,
    /// Where it was found.
    pub source: ModelSource,
}

/// Where in the app distribution a model was located.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSource {
    /// Inside the base APK.
    BaseApk,
    /// Inside an OBB expansion file.
    Obb,
    /// Inside a bundle asset pack.
    AssetPack,
}

/// Result of extracting one app.
#[derive(Debug, Clone)]
pub struct AppExtraction {
    /// Package name.
    pub package: String,
    /// Store category.
    pub category: String,
    /// Validated models, ready to decode.
    pub models: Vec<FoundModel>,
    /// Candidate files that matched an extension but failed signature
    /// validation (encrypted/obfuscated/decoys).
    pub failed_candidates: usize,
    /// ML frameworks detected via library inclusion (independent of model
    /// extraction).
    pub frameworks_by_libs: Vec<Framework>,
    /// Cloud ML API providers invoked from code.
    pub cloud: Vec<Provider>,
    /// NNAPI delegate usage detected.
    pub uses_nnapi: bool,
    /// XNNPACK usage detected.
    pub uses_xnnpack: bool,
    /// SNPE usage detected.
    pub uses_snpe: bool,
    /// On-device training / transfer-learning markers detected (§4.5:
    /// "we checked for traces of online fine-tuning done on device (e.g.
    /// through TFLiteTransferConverter) and found none").
    pub uses_on_device_training: bool,
}

impl AppExtraction {
    /// An app counts as ML-powered when it has models or ships framework
    /// libraries (§3.1: obfuscated models are "tracked … indirectly by
    /// means of library inclusion").
    pub fn is_ml_app(&self) -> bool {
        !self.models.is_empty() || !self.frameworks_by_libs.is_empty()
    }

    /// Models found outside the base APK (the §4.2 headline is zero).
    pub fn models_outside_apk(&self) -> usize {
        self.models
            .iter()
            .filter(|m| m.source != ModelSource::BaseApk)
            .count()
    }
}

/// Extract one crawled app.
pub fn extract_app(app: &CrawledApp) -> Result<AppExtraction, gaugenn_apk::ApkError> {
    let apk = Apk::parse(&app.apk)?;
    let mut models = Vec::new();
    let mut failed = 0usize;
    collect_models(
        apk.candidate_files().map(|(p, b)| (p.to_string(), b.to_vec())),
        ModelSource::BaseApk,
        &mut models,
        &mut failed,
    );
    // Expansion files and asset packs (§4.2): same funnel, different source.
    for (name, bytes) in &app.obbs {
        if let Ok(obb) = Obb::parse(name, bytes) {
            collect_models(
                obb.archive
                    .entries()
                    .iter()
                    .map(|e| (e.name.clone(), e.data.clone())),
                ModelSource::Obb,
                &mut models,
                &mut failed,
            );
        }
    }
    if let Some(bundle_bytes) = &app.bundle {
        if let Ok(bundle) = Bundle::parse(bundle_bytes) {
            for pack in &bundle.packs {
                collect_models(
                    pack.files.iter().cloned(),
                    ModelSource::AssetPack,
                    &mut models,
                    &mut failed,
                );
            }
        }
    }

    // Library-inclusion analysis (native libs + dex strings).
    let mut frameworks = Vec::new();
    let mut lib_strings: Vec<String> = Vec::new();
    for (soname, bytes) in apk.native_libs() {
        lib_strings.push(soname.to_string());
        if let Ok(strings) = nativelib::extract_strings(bytes) {
            lib_strings.extend(strings);
        }
    }
    let smali = apk.dex().map(|d| d.to_smali()).unwrap_or_default();
    let haystack = format!("{smali}\n{}", lib_strings.join("\n"));
    for (fw, markers) in FRAMEWORK_MARKERS {
        if markers.iter().any(|m| haystack.contains(m)) {
            frameworks.push(*fw);
        }
    }

    Ok(AppExtraction {
        package: apk.package().to_string(),
        category: app.meta.category.clone(),
        models,
        failed_candidates: failed,
        frameworks_by_libs: frameworks,
        cloud: cloudapi::scan_smali(&smali),
        uses_nnapi: haystack.contains("org/tensorflow/lite/nnapi/NnApiDelegate"),
        uses_xnnpack: haystack.contains("TFLITE_ENABLE_XNNPACK")
            || haystack.contains("libxnnpack.so"),
        uses_snpe: haystack.contains("com/qualcomm/qti/snpe") || haystack.contains("libSNPE.so"),
        uses_on_device_training: haystack.contains("TFLiteTransferConverter")
            || haystack.contains("org/tensorflow/lite/transfer"),
    })
}

/// Library-inclusion markers per framework (Xu et al. [70] methodology).
const FRAMEWORK_MARKERS: &[(Framework, &[&str])] = &[
    (
        Framework::TfLite,
        &["libtensorflowlite_jni.so", "org/tensorflow/lite/Interpreter"],
    ),
    (Framework::Caffe, &["libcaffe_jni.so", "caffe::Net"]),
    (Framework::Ncnn, &["libncnn.so", "com/tencent/ncnn"]),
    (
        Framework::TensorFlow,
        &["libtensorflow_inference.so", "org/tensorflow/TensorFlowInferenceInterface"],
    ),
    (Framework::Snpe, &["libSNPE.so", "com/qualcomm/qti/snpe"]),
];

/// Run the validation funnel over an entry iterator and assemble models,
/// pairing split formats by file stem.
fn collect_models(
    entries: impl Iterator<Item = (String, Vec<u8>)>,
    source: ModelSource,
    models: &mut Vec<FoundModel>,
    failed: &mut usize,
) {
    // First pass: validate everything, remembering split-format parts.
    let mut complete: Vec<(Framework, String, Vec<u8>)> = Vec::new();
    let mut graph_parts: Vec<(Framework, String, Vec<u8>)> = Vec::new();
    let mut weight_parts: Vec<(Framework, String, Vec<u8>)> = Vec::new();
    for (path, bytes) in entries {
        let file_name = path.rsplit('/').next().unwrap_or(&path).to_string();
        let had_candidates = !gaugenn_modelfmt::formats::candidates_for(&file_name).is_empty();
        match validate(&file_name, &bytes) {
            Some(v) => match v.role {
                FileRole::Complete => complete.push((v.framework, path, bytes)),
                FileRole::GraphPart => graph_parts.push((v.framework, path, bytes)),
                FileRole::WeightsPart => weight_parts.push((v.framework, path, bytes)),
            },
            None => {
                if had_candidates {
                    *failed += 1;
                }
            }
        }
    }
    for (fw, path, bytes) in complete {
        models.push(FoundModel {
            framework: fw,
            files: vec![(path, bytes)],
            source,
        });
    }
    // Pair split formats by stem; a weights part without its graph part is
    // still a model (the codecs treat the binary part as authoritative).
    let stem = |p: &str| -> String {
        let name = p.rsplit('/').next().unwrap_or(p);
        name.split('.').next().unwrap_or(name).to_string()
    };
    for (fw, wpath, wbytes) in weight_parts {
        let wstem = stem(&wpath);
        let mate = graph_parts
            .iter()
            .position(|(gfw, gpath, _)| *gfw == fw && stem(gpath) == wstem);
        let mut files = vec![(wpath, wbytes)];
        if let Some(idx) = mate {
            let (_, gpath, gbytes) = graph_parts.remove(idx);
            files.push((gpath, gbytes));
        }
        models.push(FoundModel {
            framework: fw,
            files,
            source,
        });
    }
    // Orphaned graph parts (a prototxt without weights) are not models.
    *failed += graph_parts.len();
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugenn_playstore::corpus::{generate, CorpusScale, Snapshot};
    use gaugenn_playstore::crawler::AppMeta;

    fn crawl_tiny() -> Vec<CrawledApp> {
        let corpus = generate(CorpusScale::Tiny, Snapshot::Y2021, 7);
        let pool = corpus.pool.clone();
        let mut cache: std::collections::BTreeMap<usize, gaugenn_modelfmt::ModelArtifact> =
            Default::default();
        corpus
            .apps
            .iter()
            .map(|a| {
                let apk = corpus.build_apk(a, &mut |id| {
                    cache
                        .entry(id)
                        .or_insert_with(|| pool[id].artifact(&pool))
                        .clone()
                });
                CrawledApp {
                    meta: AppMeta {
                        package: a.package.clone(),
                        title: a.title.clone(),
                        category: gaugenn_playstore::categories::CATEGORIES[a.category]
                            .name
                            .to_string(),
                        downloads: a.downloads,
                        rating: a.rating,
                        version_code: a.version_code,
                        has_obb: a.has_obb,
                        has_bundle: a.has_bundle,
                    },
                    apk,
                    obbs: vec![],
                    bundle: None,
                }
            })
            .collect()
    }

    #[test]
    fn extraction_finds_planted_structure() {
        let corpus = generate(CorpusScale::Tiny, Snapshot::Y2021, 7);
        let apps = crawl_tiny();
        let extractions: Vec<AppExtraction> =
            apps.iter().map(|a| extract_app(a).unwrap()).collect();
        let ml_apps = extractions.iter().filter(|e| e.is_ml_app()).count();
        assert_eq!(ml_apps, corpus.targets.ml_lib_apps as usize);
        let with_models = extractions.iter().filter(|e| !e.models.is_empty()).count();
        assert_eq!(
            with_models,
            (corpus.targets.ml_lib_apps - corpus.targets.obfuscated_apps) as usize
        );
        // Obfuscated apps: ML by libs, zero validated models, failed
        // candidates observed.
        let obf: Vec<&AppExtraction> = extractions
            .iter()
            .filter(|e| e.is_ml_app() && e.models.is_empty())
            .collect();
        assert_eq!(obf.len(), corpus.targets.obfuscated_apps as usize);
        assert!(obf.iter().all(|e| e.failed_candidates > 0));
        // Cloud APIs.
        let cloud = extractions.iter().filter(|e| !e.cloud.is_empty()).count();
        assert_eq!(cloud, corpus.targets.cloud_apps as usize);
        // Acceleration markers.
        let nnapi = extractions.iter().filter(|e| e.uses_nnapi).count();
        assert_eq!(nnapi, corpus.targets.nnapi_apps as usize);
        let snpe = extractions.iter().filter(|e| e.uses_snpe).count();
        assert_eq!(snpe, corpus.targets.snpe_apps as usize);
    }

    #[test]
    fn extracted_models_decode() {
        let apps = crawl_tiny();
        let mut decoded = 0;
        for app in &apps {
            let e = extract_app(app).unwrap();
            for m in &e.models {
                let g = gaugenn_modelfmt::decode(m.framework, &m.files)
                    .unwrap_or_else(|err| panic!("{}: {err}", app.meta.package));
                assert!(g.layer_count() > 0);
                decoded += 1;
            }
        }
        assert!(decoded > 0);
    }

    #[test]
    fn no_models_outside_base_apk_in_corpus() {
        // §4.2: the crawler checks OBBs and bundles and finds nothing.
        let apps = crawl_tiny();
        for app in &apps {
            let e = extract_app(app).unwrap();
            assert_eq!(e.models_outside_apk(), 0);
        }
    }
}
