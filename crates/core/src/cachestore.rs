//! Persistent, checksum-keyed store for model analyses.
//!
//! The paper's study is a *two-snapshot* design (§3): most unique models
//! in the 2021 crawl already existed in the 2020 one, so re-deriving
//! their decode/trace/classify/inspect results from scratch on every
//! `repro` run is pure waste. [`CacheStore`] persists each
//! [`ModelAnalysis`] (and each memoised undecodable verdict) under its
//! content checksum so a later run — the second snapshot of the same
//! process, or a whole separate invocation pointed at the same directory
//! — attaches to the finished analysis instead of recomputing it.
//!
//! # On-disk format
//!
//! * `cache.idx` — a text index: the header line `gnca v2 gen <N>`
//!   (`<N>` is the compaction generation), then one line per persisted
//!   entry: `<checksum> <clock> <bytes>` — a 32-hex-digit checksum, the
//!   logical-clock tick of the entry's last use, and the entry file's
//!   size. Appends are line-atomic; a *touch* (cache hit) appends a
//!   fresh line for the same checksum and replay keeps the last one, so
//!   recency survives restarts without rewriting the file. A missing or
//!   mismatched header disables the whole index; a malformed line (e.g.
//!   the torn tail of a truncated file) disables just that entry.
//! * `<checksum>.gnce` — one binary entry per checksum:
//!   `b"GNCE" | version:u32 | crc32(payload):u32 | len(payload):u64 |
//!   payload`, all integers little-endian. The payload serialises the
//!   [`ModelOutcome`] with a hand-rolled codec (no serde in the build
//!   environment): a tag byte (0 = undecodable, 1 = analysis) followed by
//!   the analysis fields.
//!
//! # Size bound, eviction, compaction
//!
//! `GAUGENN_CACHE_MAX_BYTES` (or [`CacheStore::open_with_limit`]) caps
//! the cache directory. When entries plus the index exceed the cap, a
//! compaction sweep evicts entries in **deterministic LRU order** —
//! ascending last-use clock, checksum as the tie-break — until the
//! survivors fit, rewrites the index (header generation +1, survivors
//! only) through the same write-temp + atomic-rename helper every index
//! rewrite uses, and only then deletes the evicted entry files plus any
//! orphaned `.gnce` the index no longer vouches for. A crash at any
//! point mid-compaction therefore degrades to the *old* generation: the
//! previous index is intact until the rename lands, and entry files
//! deleted after it are exactly the ones the new index already disowned.
//!
//! # Corruption policy
//!
//! The cache is an accelerator, never an authority: **every** failure —
//! unreadable directory, truncated index, bit-flipped entry, version
//! mismatch, short payload, unknown enum code — degrades to a cache miss
//! and the caller recomputes from the model bytes. No corruption can
//! surface as an error or, worse, as wrong analysis output; the crc32
//! guard plus strict bounds-checked parsing reject torn writes before any
//! field is trusted.
//!
//! Trace failures ([`AnalyzeFailure::Trace`]) are deliberately *not*
//! persisted: they abort the pipeline, so memoising them across runs
//! would turn a transient abort into a sticky one.

use crate::analyze::{AnalyzeFailure, ModelAnalysis, ModelOutcome};
use crate::crashpoint::{self, CrashPoint};
use gaugenn_analysis::classify::{Classification, Evidence};
use gaugenn_analysis::optim::ModelOptim;
use gaugenn_apk::crc32::crc32;
use gaugenn_dnn::task::Task;
use gaugenn_dnn::tensor::Shape;
use gaugenn_dnn::trace::{LayerTrace, TraceReport};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Entry-file magic.
const MAGIC: &[u8; 4] = b"GNCE";
/// Entry/index format version. Bump on any codec change; old entries
/// then read as misses and are rewritten.
const VERSION: u32 = 1;
/// Index header prefix; the full header line is `gnca v2 gen <N>`. A
/// `gnca v1` index (or anything else) fails the header check and reads
/// as cold — its entries are recomputed and re-persisted in v2 form.
const INDEX_HEADER: &str = "gnca v2";
/// Index file name.
const INDEX_FILE: &str = "cache.idx";
/// Environment cap on the cache directory, in bytes.
pub const MAX_BYTES_ENV: &str = "GAUGENN_CACHE_MAX_BYTES";

/// Every layer-family label [`gaugenn_dnn::graph::LayerKind::family`] can
/// produce, used to re-intern deserialised `&'static str` families. An
/// unknown label in a file means a corrupt or future-format entry — a
/// miss, per the corruption policy.
const FAMILIES: [&str; 16] = [
    "input",
    "conv",
    "depth_conv",
    "dense",
    "activation",
    "pool",
    "math",
    "concat",
    "reshape",
    "resize",
    "slice",
    "norm",
    "pad",
    "quant",
    "embedding",
    "recurrent",
];

fn intern_family(s: &str) -> Option<&'static str> {
    FAMILIES.iter().find(|f| **f == s).copied()
}

/// Stable wire codes for [`Task`]. Exhaustive in both directions so
/// adding a variant without bumping [`VERSION`] fails to compile here.
fn task_code(t: Task) -> u8 {
    match t {
        Task::ObjectDetection => 0,
        Task::FaceDetection => 1,
        Task::ContourDetection => 2,
        Task::TextRecognition => 3,
        Task::AugmentedReality => 4,
        Task::SemanticSegmentation => 5,
        Task::ObjectRecognition => 6,
        Task::PoseEstimation => 7,
        Task::PhotoBeauty => 8,
        Task::ImageClassification => 9,
        Task::NudityDetection => 10,
        Task::HairReconstruction => 11,
        Task::OtherVision => 12,
        Task::AutoComplete => 13,
        Task::SentimentPrediction => 14,
        Task::ContentFilter => 15,
        Task::TextClassification => 16,
        Task::Translation => 17,
        Task::SoundRecognition => 18,
        Task::SpeechRecognition => 19,
        Task::KeywordDetection => 20,
        Task::MovementTracking => 21,
        Task::CrashDetection => 22,
    }
}

fn task_from(code: u8) -> Option<Task> {
    Some(match code {
        0 => Task::ObjectDetection,
        1 => Task::FaceDetection,
        2 => Task::ContourDetection,
        3 => Task::TextRecognition,
        4 => Task::AugmentedReality,
        5 => Task::SemanticSegmentation,
        6 => Task::ObjectRecognition,
        7 => Task::PoseEstimation,
        8 => Task::PhotoBeauty,
        9 => Task::ImageClassification,
        10 => Task::NudityDetection,
        11 => Task::HairReconstruction,
        12 => Task::OtherVision,
        13 => Task::AutoComplete,
        14 => Task::SentimentPrediction,
        15 => Task::ContentFilter,
        16 => Task::TextClassification,
        17 => Task::Translation,
        18 => Task::SoundRecognition,
        19 => Task::SpeechRecognition,
        20 => Task::KeywordDetection,
        21 => Task::MovementTracking,
        22 => Task::CrashDetection,
        _ => return None,
    })
}

fn evidence_code(e: Evidence) -> u8 {
    match e {
        Evidence::NameHint => 0,
        Evidence::IoDims => 1,
        Evidence::Structure => 2,
    }
}

fn evidence_from(code: u8) -> Option<Evidence> {
    Some(match code {
        0 => Evidence::NameHint,
        1 => Evidence::IoDims,
        2 => Evidence::Structure,
        _ => return None,
    })
}

/// Recency + size metadata for one indexed entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EntryMeta {
    /// Logical-clock tick of the entry's last save or load.
    clock: u64,
    /// Entry file size in bytes (as written; the eviction budget metric).
    bytes: u64,
}

/// The mutable index state, guarded by one lock so concurrent workers
/// keep the index file line-atomic and the logical clock monotonic.
#[derive(Debug)]
struct IndexState {
    entries: BTreeMap<String, EntryMeta>,
    /// Next logical-clock tick.
    next_clock: u64,
    /// Compaction generation (from the header; bumped on every sweep).
    generation: u64,
    /// Whether the on-disk index already carries a valid v2 header.
    header_written: bool,
}

/// The persistent cache. Cheap to share behind an [`Arc`]; `load` takes
/// `&self` and `save` serialises writers on an internal index lock.
#[derive(Debug)]
pub struct CacheStore {
    dir: PathBuf,
    /// Directory size cap; `None` = unbounded (no compaction).
    max_bytes: Option<u64>,
    state: Mutex<IndexState>,
}

impl CacheStore {
    /// Open (creating if needed) the cache at `dir` and return it
    /// shared, honouring a `GAUGENN_CACHE_MAX_BYTES` cap when set (a
    /// malformed value means unbounded — the cache never fails a run).
    ///
    /// Never fails: an unreadable/uncreatable directory or a corrupt
    /// index just yields an empty index, so every lookup misses and every
    /// save is attempted fresh — the pipeline's output is identical
    /// either way.
    pub fn open(dir: &Path) -> Arc<CacheStore> {
        let max = std::env::var(MAX_BYTES_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok());
        CacheStore::open_with_limit(dir, max)
    }

    /// [`CacheStore::open`] with an explicit size cap. Runs a compaction
    /// sweep immediately when the directory is already over budget.
    pub fn open_with_limit(dir: &Path, max_bytes: Option<u64>) -> Arc<CacheStore> {
        let _ = fs::create_dir_all(dir);
        let index_path = dir.join(INDEX_FILE);
        let parsed = read_index(&index_path);
        if parsed.is_none() && index_path.exists() {
            // Stale format or corrupt header: everything below it is
            // untrusted, so clear the file rather than appending v2
            // lines after a dead header.
            let _ = fs::remove_file(&index_path);
        }
        let (entries, generation) = parsed.clone().unwrap_or_default();
        let next_clock = entries.values().map(|m| m.clock).max().map_or(1, |c| c + 1);
        let store = Arc::new(CacheStore {
            dir: dir.to_path_buf(),
            max_bytes,
            state: Mutex::new(IndexState {
                entries,
                next_clock,
                generation,
                header_written: parsed.is_some(),
            }),
        });
        store.compact_if_over();
        store
    }

    /// Entries the index currently vouches for.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current compaction generation.
    pub fn generation(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .generation
    }

    /// Configured directory cap, if any.
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    /// Bytes the cache accounts for: indexed entry files plus the index
    /// file itself.
    pub fn total_bytes(&self) -> u64 {
        let entries: u64 = self
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .values()
            .map(|m| m.bytes)
            .sum();
        entries + fs::metadata(self.dir.join(INDEX_FILE)).map_or(0, |m| m.len())
    }

    fn entry_path(&self, checksum: &str) -> PathBuf {
        self.dir.join(format!("{checksum}.gnce"))
    }

    /// Look up a persisted outcome. `None` is a miss — absent, corrupt,
    /// truncated, wrong-version and future-format entries all land here.
    /// A hit is a *touch*: it advances the entry's last-use clock and
    /// appends the refreshed line so LRU recency survives restarts.
    pub fn load(&self, checksum: &str) -> Option<ModelOutcome> {
        if !valid_checksum(checksum) {
            return None;
        }
        {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            let clock = st.next_clock;
            let meta = st.entries.get_mut(checksum)?;
            meta.clock = clock;
            let bytes = meta.bytes;
            st.next_clock = clock + 1;
            append_index_line(&self.dir, &mut st, checksum, clock, bytes);
        }
        let raw = fs::read(self.entry_path(checksum)).ok()?;
        decode_entry(&raw)
    }

    /// Persist an outcome, best-effort: serialisation is infallible but
    /// I/O errors are swallowed (the cache never gets to fail a run).
    /// Trace failures are not persisted (see the module docs).
    pub fn save(&self, checksum: &str, outcome: &ModelOutcome) {
        if !valid_checksum(checksum) {
            return;
        }
        let payload = match outcome {
            Ok(analysis) => encode_analysis(analysis),
            Err(AnalyzeFailure::Undecodable) => vec![0u8],
            Err(AnalyzeFailure::Trace(_)) => return,
        };
        let mut entry = Vec::with_capacity(payload.len() + 20);
        entry.extend_from_slice(MAGIC);
        entry.extend_from_slice(&VERSION.to_le_bytes());
        entry.extend_from_slice(&crc32(&payload).to_le_bytes());
        entry.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        entry.extend_from_slice(&payload);

        // Atomic-publish the entry file, then its index line. The crash
        // point sits in the gap on purpose: a run killed here leaves an
        // entry file the index never vouches for — the torn-append
        // window the `unlisted entry ⇒ miss` policy absorbs.
        let name = format!("{checksum}.gnce");
        if !write_atomic(&self.dir, &name, &entry) {
            return;
        }
        crashpoint::hit(CrashPoint::CacheAppend);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let clock = st.next_clock;
        st.next_clock = clock + 1;
        let bytes = entry.len() as u64;
        st.entries.insert(checksum.to_string(), EntryMeta { clock, bytes });
        append_index_line(&self.dir, &mut st, checksum, clock, bytes);
    }

    /// Run a compaction sweep if the configured cap is exceeded.
    pub fn compact_if_over(&self) {
        if let Some(max) = self.max_bytes {
            self.compact_to(max);
        }
    }

    /// Evict-and-compact down to `max` bytes (entries + rewritten
    /// index). Victims leave in deterministic LRU order: ascending
    /// last-use clock, checksum as the tie-break. The new index is
    /// published with [`write_atomic`] before any entry file is deleted,
    /// so a crash anywhere mid-sweep degrades to the old generation.
    pub fn compact_to(&self, max: u64) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let index_path = self.dir.join(INDEX_FILE);
        let entries_total: u64 = st.entries.values().map(|m| m.bytes).sum();
        let index_len = fs::metadata(&index_path).map_or(0, |m| m.len());
        if entries_total + index_len <= max {
            return;
        }
        let generation = st.generation + 1;
        let header = format!("{INDEX_HEADER} gen {generation}\n");

        // Keep most-recent-first while the survivors (entry bytes plus
        // their index lines plus the header) still fit under the cap.
        let mut by_recency: Vec<(String, EntryMeta)> = st
            .entries
            .iter()
            .map(|(k, m)| (k.clone(), *m))
            .collect();
        by_recency.sort_by(|a, b| b.1.clock.cmp(&a.1.clock).then(a.0.cmp(&b.0)));
        let mut used = header.len() as u64;
        let mut keep: BTreeMap<String, EntryMeta> = BTreeMap::new();
        for (sum, meta) in by_recency {
            let line_len = index_line(&sum, meta.clock, meta.bytes).len() as u64;
            if used + meta.bytes + line_len <= max {
                used += meta.bytes + line_len;
                keep.insert(sum, meta);
            }
        }

        let mut content = header;
        for (sum, meta) in &keep {
            content.push_str(&index_line(sum, meta.clock, meta.bytes));
        }
        if !write_atomic(&self.dir, INDEX_FILE, content.as_bytes()) {
            return; // old index (old generation) stays authoritative
        }
        st.generation = generation;
        st.header_written = true;
        st.entries = keep;

        // Only now delete what the new index disowns: evicted entries
        // plus any orphaned `.gnce` a torn append left behind.
        if let Ok(dirents) = fs::read_dir(&self.dir) {
            for d in dirents.flatten() {
                let name = d.file_name();
                let Some(name) = name.to_str() else { continue };
                let Some(stem) = name.strip_suffix(".gnce") else {
                    continue;
                };
                if !st.entries.contains_key(stem) {
                    let _ = fs::remove_file(d.path());
                }
            }
        }
    }
}

/// Write `bytes` to `dir/name` through a temp file and an atomic rename:
/// readers observe either the old file or the new one, never a torn
/// write. Shared by entry publication and every index rewrite. Returns
/// `false` (leaving the old file intact) on any I/O error.
fn write_atomic(dir: &Path, name: &str, bytes: &[u8]) -> bool {
    let tmp = dir.join(format!("{name}.tmp"));
    if fs::write(&tmp, bytes).is_err() || fs::rename(&tmp, dir.join(name)).is_err() {
        let _ = fs::remove_file(&tmp);
        return false;
    }
    true
}

/// 32 lowercase hex digits (an md5), which also keeps entry file names
/// shell-safe by construction.
fn valid_checksum(s: &str) -> bool {
    s.len() == 32 && s.bytes().all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
}

fn index_line(checksum: &str, clock: u64, bytes: u64) -> String {
    format!("{checksum} {clock} {bytes}\n")
}

/// Parse the index file: `(entries, generation)`, or `None` when the
/// file is missing or its header line is anything but a valid v2 header
/// (which disables the whole index). Malformed entry lines (torn tails)
/// disable just themselves; repeated checksums keep the last line, so
/// appended touches refresh recency.
fn read_index(path: &Path) -> Option<(BTreeMap<String, EntryMeta>, u64)> {
    let text = fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    let header = lines.next()?;
    let rest = header.strip_prefix(INDEX_HEADER)?;
    let generation = match rest.trim() {
        "" => 0,
        g => g.strip_prefix("gen ")?.trim().parse::<u64>().ok()?,
    };
    let mut entries = BTreeMap::new();
    for line in lines {
        let mut parts = line.split_ascii_whitespace();
        let (Some(sum), Some(clock), Some(bytes), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        if !valid_checksum(sum) {
            continue;
        }
        let (Ok(clock), Ok(bytes)) = (clock.parse::<u64>(), bytes.parse::<u64>()) else {
            continue;
        };
        entries.insert(sum.to_string(), EntryMeta { clock, bytes });
    }
    Some((entries, generation))
}

/// Append one `<checksum> <clock> <bytes>` line (writing the header
/// first on a fresh file). Must be called with the state lock held so
/// appends stay ordered; failures are swallowed — at worst the entry
/// reads as unlisted next open, i.e. a miss.
fn append_index_line(dir: &Path, st: &mut IndexState, checksum: &str, clock: u64, bytes: u64) {
    use std::io::Write as _;
    let mut opts = fs::OpenOptions::new();
    opts.append(true).create(true);
    if let Ok(mut f) = opts.open(dir.join(INDEX_FILE)) {
        let line = if st.header_written {
            index_line(checksum, clock, bytes)
        } else {
            format!(
                "{INDEX_HEADER} gen {}\n{}",
                st.generation,
                index_line(checksum, clock, bytes)
            )
        };
        if f.write_all(line.as_bytes()).is_ok() {
            st.header_written = true;
        }
    }
}

// ---------------------------------------------------------------------
// Payload codec.
// ---------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn encode_trace(out: &mut Vec<u8>, trace: &TraceReport) {
    put_u64(out, trace.layers.len() as u64);
    for l in &trace.layers {
        put_u64(out, l.node as u64);
        put_str(out, &l.name);
        put_str(out, l.family);
        put_u64(out, l.out_shape.0.len() as u64);
        for &d in &l.out_shape.0 {
            put_u64(out, d as u64);
        }
        for v in [l.macs, l.flops, l.params, l.bytes_read, l.bytes_written, l.weight_bytes] {
            put_u64(out, v);
        }
    }
    for v in [
        trace.total_macs,
        trace.total_flops,
        trace.total_params,
        trace.peak_activation_elems,
    ] {
        put_u64(out, v);
    }
}

fn encode_analysis(a: &ModelAnalysis) -> Vec<u8> {
    let mut out = vec![1u8];
    put_str(&mut out, &a.name);
    encode_trace(&mut out, &a.trace);
    match &a.classification {
        None => out.push(0),
        Some(c) => {
            out.push(1);
            out.push(task_code(c.task));
            out.push(evidence_code(c.evidence));
        }
    }
    for flag in [
        a.optim.clustered,
        a.optim.prune_marked,
        a.optim.has_dequantize,
        a.optim.int8_weights,
        a.optim.int8_activations,
    ] {
        out.push(flag as u8);
    }
    put_u64(&mut out, a.optim.total_weights);
    put_u64(&mut out, a.optim.near_zero_weights);
    put_u64(&mut out, a.layers.len() as u64);
    for (name, sum) in &a.layers {
        put_str(&mut out, name);
        put_u64(&mut out, *sum);
    }
    put_u64(&mut out, a.layer_families.len() as u64);
    for (family, count) in &a.layer_families {
        put_str(&mut out, family);
        put_u64(&mut out, *count);
    }
    out
}

/// Strict bounds-checked reader over a payload; every getter returns
/// `None` past the end, which bubbles up as a cache miss.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, at: 0 }
    }

    fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.at)?;
        self.at += 1;
        Some(b)
    }

    fn u64(&mut self) -> Option<u64> {
        let bytes = self.buf.get(self.at..self.at + 8)?;
        self.at += 8;
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }

    /// A length prefix that must still fit in the remaining buffer —
    /// rejects absurd lengths before any allocation trusts them.
    fn len(&mut self) -> Option<usize> {
        let n = usize::try_from(self.u64()?).ok()?;
        (n <= self.buf.len() - self.at).then_some(n)
    }

    fn str(&mut self) -> Option<String> {
        let n = self.len()?;
        let bytes = self.buf.get(self.at..self.at + n)?;
        self.at += n;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn done(&self) -> bool {
        self.at == self.buf.len()
    }
}

fn decode_trace(r: &mut Reader<'_>) -> Option<TraceReport> {
    let n_layers = r.len()?;
    let mut layers = Vec::with_capacity(n_layers.min(1 << 16));
    for _ in 0..n_layers {
        let node = usize::try_from(r.u64()?).ok()?;
        let name = r.str()?;
        let family = intern_family(&r.str()?)?;
        let n_dims = r.len()?;
        let mut dims = Vec::with_capacity(n_dims.min(64));
        for _ in 0..n_dims {
            dims.push(usize::try_from(r.u64()?).ok()?);
        }
        let [macs, flops, params, bytes_read, bytes_written, weight_bytes] =
            [r.u64()?, r.u64()?, r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        layers.push(LayerTrace {
            node,
            name,
            family,
            out_shape: Shape(dims),
            macs,
            flops,
            params,
            bytes_read,
            bytes_written,
            weight_bytes,
        });
    }
    Some(TraceReport {
        layers,
        total_macs: r.u64()?,
        total_flops: r.u64()?,
        total_params: r.u64()?,
        peak_activation_elems: r.u64()?,
    })
}

fn decode_analysis(r: &mut Reader<'_>) -> Option<ModelAnalysis> {
    let name = r.str()?;
    let trace = decode_trace(r)?;
    let classification = match r.u8()? {
        0 => None,
        1 => Some(Classification {
            task: task_from(r.u8()?)?,
            evidence: evidence_from(r.u8()?)?,
        }),
        _ => return None,
    };
    let mut flags = [false; 5];
    for f in &mut flags {
        *f = match r.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
    }
    let optim = ModelOptim {
        clustered: flags[0],
        prune_marked: flags[1],
        has_dequantize: flags[2],
        int8_weights: flags[3],
        int8_activations: flags[4],
        total_weights: r.u64()?,
        near_zero_weights: r.u64()?,
    };
    let n_layers = r.len()?;
    let mut layers = Vec::with_capacity(n_layers.min(1 << 16));
    for _ in 0..n_layers {
        let name = r.str()?;
        layers.push((name, r.u64()?));
    }
    let n_families = r.len()?;
    let mut layer_families = BTreeMap::new();
    for _ in 0..n_families {
        let family = r.str()?;
        layer_families.insert(family, r.u64()?);
    }
    Some(ModelAnalysis {
        name,
        trace,
        classification,
        optim,
        layers,
        layer_families,
    })
}

/// Validate and decode one entry file. `None` on any anomaly.
fn decode_entry(raw: &[u8]) -> Option<ModelOutcome> {
    if raw.len() < 20 || &raw[0..4] != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(raw[4..8].try_into().ok()?);
    if version != VERSION {
        return None;
    }
    let want_crc = u32::from_le_bytes(raw[8..12].try_into().ok()?);
    let len = usize::try_from(u64::from_le_bytes(raw[12..20].try_into().ok()?)).ok()?;
    let payload = raw.get(20..)?;
    if payload.len() != len || crc32(payload) != want_crc {
        return None;
    }
    let mut r = Reader::new(payload);
    let outcome = match r.u8()? {
        0 => Err(AnalyzeFailure::Undecodable),
        1 => Ok(Arc::new(decode_analysis(&mut r)?)),
        _ => return None,
    };
    r.done().then_some(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_analysis() -> ModelAnalysis {
        ModelAnalysis {
            name: "mobilenet_v2_quant".into(),
            trace: TraceReport {
                layers: vec![LayerTrace {
                    node: 3,
                    name: "conv_0".into(),
                    family: "conv",
                    out_shape: Shape(vec![1, 112, 112, 32]),
                    macs: 10_838_016,
                    flops: 21_676_032,
                    params: 864,
                    bytes_read: 650_000,
                    bytes_written: 1_605_632,
                    weight_bytes: 3_456,
                }],
                total_macs: 300_000_000,
                total_flops: 600_000_000,
                total_params: 3_500_000,
                peak_activation_elems: 401_408,
            },
            classification: Some(Classification {
                task: Task::ImageClassification,
                evidence: Evidence::NameHint,
            }),
            optim: ModelOptim {
                clustered: false,
                prune_marked: true,
                has_dequantize: true,
                int8_weights: true,
                int8_activations: false,
                total_weights: 3_500_000,
                near_zero_weights: 420,
            },
            layers: vec![("conv_0".into(), 0xDEADBEEF), ("dense_1".into(), 0x1234)],
            layer_families: [("conv".to_string(), 30u64), ("dense".to_string(), 1)]
                .into_iter()
                .collect(),
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gaugenn-cachestore-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn assert_same_analysis(a: &ModelAnalysis, b: &ModelAnalysis) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.classification, b.classification);
        assert_eq!(a.optim, b.optim);
        assert_eq!(a.layers, b.layers);
        assert_eq!(a.layer_families, b.layer_families);
    }

    const SUM: &str = "0123456789abcdef0123456789abcdef";
    const SUM2: &str = "ffffffffffffffffffffffffffffffff";

    #[test]
    fn roundtrips_analysis_and_undecodable() {
        let dir = tmp_dir("roundtrip");
        let store = CacheStore::open(&dir);
        store.save(SUM, &Ok(Arc::new(sample_analysis())));
        store.save(SUM2, &Err(AnalyzeFailure::Undecodable));

        let loaded = store.load(SUM).expect("hit");
        assert_same_analysis(&loaded.unwrap(), &sample_analysis());
        assert!(matches!(
            store.load(SUM2),
            Some(Err(AnalyzeFailure::Undecodable))
        ));

        // A second open (the "next repro invocation") sees both entries.
        let reopened = CacheStore::open(&dir);
        assert_eq!(reopened.len(), 2);
        assert!(reopened.load(SUM).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_failures_are_not_persisted() {
        let dir = tmp_dir("trace");
        let store = CacheStore::open(&dir);
        store.save(SUM, &Err(AnalyzeFailure::Trace("cycle".into())));
        assert!(store.load(SUM).is_none());
        assert!(store.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flipped_entry_is_a_miss() {
        let dir = tmp_dir("bitflip");
        let store = CacheStore::open(&dir);
        store.save(SUM, &Ok(Arc::new(sample_analysis())));
        let path = dir.join(format!("{SUM}.gnce"));
        let mut raw = fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x40;
        fs::write(&path, &raw).unwrap();
        assert!(store.load(SUM).is_none(), "crc must catch the flip");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entry_is_a_miss() {
        let dir = tmp_dir("trunc-entry");
        let store = CacheStore::open(&dir);
        store.save(SUM, &Ok(Arc::new(sample_analysis())));
        let path = dir.join(format!("{SUM}.gnce"));
        let raw = fs::read(&path).unwrap();
        for keep in [0usize, 3, 19, raw.len() - 1] {
            fs::write(&path, &raw[..keep]).unwrap();
            assert!(store.load(SUM).is_none(), "kept {keep} bytes");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_is_a_miss() {
        let dir = tmp_dir("version");
        let store = CacheStore::open(&dir);
        store.save(SUM, &Ok(Arc::new(sample_analysis())));
        let path = dir.join(format!("{SUM}.gnce"));
        let mut raw = fs::read(&path).unwrap();
        raw[4..8].copy_from_slice(&(VERSION + 1).to_le_bytes());
        fs::write(&path, &raw).unwrap();
        assert!(store.load(SUM).is_none(), "future version must miss");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_index_degrades_to_misses() {
        let dir = tmp_dir("trunc-index");
        {
            let store = CacheStore::open(&dir);
            store.save(SUM, &Ok(Arc::new(sample_analysis())));
            store.save(SUM2, &Err(AnalyzeFailure::Undecodable));
        }
        let idx = dir.join(INDEX_FILE);
        let full = fs::read_to_string(&idx).unwrap();
        // Tear the file mid-way through the second entry's line: the torn
        // line fails validation, the intact first entry survives.
        fs::write(&idx, &full[..full.len() - 10]).unwrap();
        let store = CacheStore::open(&dir);
        assert_eq!(store.len(), 1);
        assert!(store.load(SUM).is_some());
        assert!(store.load(SUM2).is_none());
        // Tear it inside the header: the whole index is disabled.
        fs::write(&idx, &full[..3]).unwrap();
        let store = CacheStore::open(&dir);
        assert!(store.is_empty());
        assert!(store.load(SUM).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unlisted_entry_file_is_a_miss() {
        // An entry file without its index line (torn index append) is
        // never trusted.
        let dir = tmp_dir("unlisted");
        {
            let store = CacheStore::open(&dir);
            store.save(SUM, &Ok(Arc::new(sample_analysis())));
        }
        fs::remove_file(dir.join(INDEX_FILE)).unwrap();
        let store = CacheStore::open(&dir);
        assert!(store.load(SUM).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    /// Distinct valid checksums: 32 hex digits ending in `i`.
    fn sum_n(i: u8) -> String {
        format!("{:032x}", 0xabc0 + i as u64)
    }

    #[test]
    fn compaction_evicts_lru_first_and_bounds_the_directory() {
        let dir = tmp_dir("compact-lru");
        let store = CacheStore::open_with_limit(&dir, None);
        for i in 0..6 {
            store.save(&sum_n(i), &Ok(Arc::new(sample_analysis())));
        }
        // Touch the two *oldest* saves so recency order differs from
        // save order: victims must leave by last-use clock, not insert
        // order.
        assert!(store.load(&sum_n(0)).is_some());
        assert!(store.load(&sum_n(1)).is_some());
        let entry_len = fs::metadata(dir.join(format!("{}.gnce", sum_n(0))))
            .unwrap()
            .len();
        // Budget for roughly three entries plus the rewritten index.
        let max = entry_len * 3 + 200;
        store.compact_to(max);
        assert!(store.total_bytes() <= max, "{} > {max}", store.total_bytes());
        assert_eq!(store.generation(), 1);
        // Survivors are the most recently used: the touched 0 and 1 plus
        // the last save (5); the untouched middle saves were evicted.
        for kept in [0u8, 1, 5] {
            assert!(store.load(&sum_n(kept)).is_some(), "entry {kept} kept");
        }
        for gone in [2u8, 3, 4] {
            assert!(store.load(&sum_n(gone)).is_none(), "entry {gone} evicted");
            assert!(!dir.join(format!("{}.gnce", sum_n(gone))).exists());
        }
        // Recency survives a reopen. The touch lines appended by the
        // loads above may push the index itself over the slim budget, in
        // which case the open runs one more compaction — which dedupes
        // the index without losing any of the three survivors.
        let reopened = CacheStore::open_with_limit(&dir, Some(max));
        assert!(reopened.generation() >= 1);
        assert_eq!(reopened.len(), 3);
        assert!(reopened.total_bytes() <= max);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn over_budget_store_compacts_at_open() {
        let dir = tmp_dir("compact-open");
        {
            let store = CacheStore::open_with_limit(&dir, None);
            for i in 0..5 {
                store.save(&sum_n(i), &Ok(Arc::new(sample_analysis())));
            }
        }
        let entry_len = fs::metadata(dir.join(format!("{}.gnce", sum_n(0))))
            .unwrap()
            .len();
        let max = entry_len * 2 + 200;
        let store = CacheStore::open_with_limit(&dir, Some(max));
        assert!(store.total_bytes() <= max);
        assert!(store.generation() >= 1);
        // The most recent saves survive; repeat opens stay stable (no
        // further eviction once under budget).
        assert!(store.load(&sum_n(4)).is_some());
        let before = store.len();
        let again = CacheStore::open_with_limit(&dir, Some(max));
        assert_eq!(again.len(), before);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_sweeps_orphan_entry_files() {
        let dir = tmp_dir("compact-orphan");
        let store = CacheStore::open_with_limit(&dir, None);
        store.save(SUM, &Ok(Arc::new(sample_analysis())));
        // An orphan: entry bytes under a valid name the index never
        // vouched for (the torn-append window).
        let orphan = dir.join(format!("{SUM2}.gnce"));
        fs::write(&orphan, b"torn").unwrap();
        store.compact_to(0);
        assert!(!orphan.exists(), "orphans leave with the sweep");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_before_index_rename_degrades_to_old_generation() {
        let dir = tmp_dir("compact-crash");
        {
            let store = CacheStore::open_with_limit(&dir, None);
            store.save(SUM, &Ok(Arc::new(sample_analysis())));
            store.save(SUM2, &Err(AnalyzeFailure::Undecodable));
        }
        // Simulate dying mid-compaction: the new index was written to
        // its temp name but never renamed. The old index still vouches
        // for everything.
        fs::write(dir.join(format!("{INDEX_FILE}.tmp")), b"gnca v2 gen 9\n").unwrap();
        let store = CacheStore::open_with_limit(&dir, None);
        assert_eq!(store.generation(), 0);
        assert_eq!(store.len(), 2);
        assert!(store.load(SUM).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_index_reads_as_cold_and_self_heals() {
        let dir = tmp_dir("v1-cold");
        {
            let store = CacheStore::open_with_limit(&dir, None);
            store.save(SUM, &Ok(Arc::new(sample_analysis())));
        }
        fs::write(dir.join(INDEX_FILE), format!("gnca v1\n{SUM}\n")).unwrap();
        let store = CacheStore::open_with_limit(&dir, None);
        assert!(store.is_empty(), "old format is cold, not an error");
        assert!(store.load(SUM).is_none());
        // Re-saving starts a clean v2 index.
        store.save(SUM, &Ok(Arc::new(sample_analysis())));
        let reopened = CacheStore::open_with_limit(&dir, None);
        assert!(reopened.load(SUM).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_checksums_are_rejected_outright() {
        let dir = tmp_dir("badsum");
        let store = CacheStore::open(&dir);
        for bad in ["", "short", "ABCDEF0123456789ABCDEF0123456789", "../../etc/passwd"] {
            store.save(bad, &Err(AnalyzeFailure::Undecodable));
            assert!(store.load(bad).is_none());
        }
        assert!(store.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
