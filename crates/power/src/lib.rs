//! # gaugenn-power — energy measurement substrate
//!
//! The paper measures energy with a Monsoon AAA10F power monitor cabled to
//! open-deck boards, a YKUSH USB switch to cut charge current during runs,
//! and a black-screen app to pin display power (§3.3). None of that
//! hardware exists here, so this crate substitutes:
//!
//! * [`monsoon`] — a sampling power monitor over an analytic power
//!   waveform, with deterministic measurement noise; energy is integrated
//!   from samples exactly as the real workflow integrates the Monsoon
//!   capture.
//! * [`usb`] — the USB power/data switch state machine; a measurement is
//!   only valid when the power channel is off (charging would corrupt it —
//!   the paper's stated reason for the switch board).
//! * [`battery`] — mAh bookkeeping for the Table 4 scenario analysis.
//! * [`energy`] — per-inference energy/power/efficiency reports combining
//!   the SoC latency model with engine power draw (Fig. 10), and sustained
//!   scenario runs that step the thermal model (Table 4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod energy;
pub mod monsoon;
pub mod usb;

pub use battery::Battery;
pub use energy::{measure_inference, sustained_run, EnergyReport, SustainedReport};
pub use monsoon::{PowerMonitor, PowerTrace};
pub use usb::UsbSwitch;

/// Errors from the energy substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum PowerError {
    /// Measurement attempted while USB power was still connected.
    UsbPowerOn,
    /// Underlying SoC model error.
    Soc(String),
    /// Invalid measurement parameters.
    BadConfig(String),
}

impl std::fmt::Display for PowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PowerError::UsbPowerOn => {
                write!(f, "usb power channel is on; measurement would include charge current")
            }
            PowerError::Soc(e) => write!(f, "soc model error: {e}"),
            PowerError::BadConfig(r) => write!(f, "bad measurement config: {r}"),
        }
    }
}

impl std::error::Error for PowerError {}

impl From<gaugenn_soc::SocError> for PowerError {
    fn from(e: gaugenn_soc::SocError) -> Self {
        PowerError::Soc(e.to_string())
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, PowerError>;
