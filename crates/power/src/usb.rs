//! USB power/data switch (YKUSH YKUSH3 substitute, §3.3).
//!
//! "Connecting the device over USB charges it, interfering with the energy
//! measurements" — so the workflow programmatically cuts the power channel
//! before each benchmark and restores it to collect results over adb. The
//! harness drives this state machine and refuses to record while power is
//! on, mirroring the physical constraint.

use crate::{PowerError, Result};

/// Channel state of a YKUSH-style controllable hub port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UsbSwitch {
    /// Whether VBUS is supplied to the device.
    pub power_on: bool,
    /// Whether the data pair is connected (adb reachability).
    pub data_on: bool,
}

impl Default for UsbSwitch {
    fn default() -> Self {
        Self::new()
    }
}

impl UsbSwitch {
    /// Initial state: fully connected (device charging, adb up).
    pub fn new() -> Self {
        UsbSwitch {
            power_on: true,
            data_on: true,
        }
    }

    /// Cut VBUS (and with it, on a phone, the data pair) for a measurement.
    pub fn power_off(&mut self) {
        self.power_on = false;
        self.data_on = false;
    }

    /// Restore VBUS and data to collect results.
    pub fn power_restore(&mut self) {
        self.power_on = true;
        self.data_on = true;
    }

    /// Guard: measurements are only valid with power off.
    pub fn assert_measurable(&self) -> Result<()> {
        if self.power_on {
            Err(PowerError::UsbPowerOn)
        } else {
            Ok(())
        }
    }

    /// Guard: adb operations need the data channel.
    pub fn adb_reachable(&self) -> bool {
        self.data_on
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_gated_on_power_state() {
        let mut sw = UsbSwitch::new();
        assert!(sw.assert_measurable().is_err());
        assert!(sw.adb_reachable());
        sw.power_off();
        assert!(sw.assert_measurable().is_ok());
        assert!(!sw.adb_reachable());
        sw.power_restore();
        assert!(sw.assert_measurable().is_err());
        assert!(sw.adb_reachable());
    }
}
