//! Battery discharge bookkeeping for the scenario analysis (Table 4, §5.2.2).
//!
//! The paper reports scenario costs as "battery discharge (mAh)" against
//! nominal capacities — e.g. an hour of segmentation consuming 26.6–30.5 %
//! of a common 4000 mAh battery. Conversion uses the nominal cell voltage.

/// Nominal Li-ion cell voltage used for J → mAh conversion.
pub const NOMINAL_VOLTAGE_V: f64 = 3.85;

/// A battery with nominal capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    /// Nominal capacity in mAh.
    pub capacity_mah: f64,
    /// Remaining charge in mAh.
    pub remaining_mah: f64,
}

impl Battery {
    /// A full battery of `capacity_mah`.
    pub fn new(capacity_mah: f64) -> Self {
        Battery {
            capacity_mah,
            remaining_mah: capacity_mah,
        }
    }

    /// Convert joules to mAh at nominal voltage.
    pub fn joules_to_mah(energy_j: f64) -> f64 {
        // mAh = J / V / 3600 * 1000
        energy_j / NOMINAL_VOLTAGE_V / 3600.0 * 1000.0
    }

    /// Drain `energy_j` joules; returns the mAh actually drained (clamped
    /// at empty).
    pub fn drain_joules(&mut self, energy_j: f64) -> f64 {
        let want = Self::joules_to_mah(energy_j);
        let got = want.min(self.remaining_mah);
        self.remaining_mah -= got;
        got
    }

    /// State of charge in `[0, 1]`.
    pub fn state_of_charge(&self) -> f64 {
        if self.capacity_mah <= 0.0 {
            0.0
        } else {
            self.remaining_mah / self.capacity_mah
        }
    }

    /// Percentage of nominal capacity that `energy_j` joules represents.
    pub fn fraction_of_capacity(&self, energy_j: f64) -> f64 {
        Self::joules_to_mah(energy_j) / self.capacity_mah
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joule_conversion_known_value() {
        // 1 Wh = 3600 J = 1000/3.85 mAh ≈ 259.7 mAh.
        let mah = Battery::joules_to_mah(3600.0);
        assert!((mah - 259.74).abs() < 0.1, "{mah}");
    }

    #[test]
    fn drain_and_soc() {
        let mut b = Battery::new(4000.0);
        assert_eq!(b.state_of_charge(), 1.0);
        // Half the battery: 2000 mAh = 2000/1000*3.85*3600 J.
        let half_j = 2000.0 / 1000.0 * NOMINAL_VOLTAGE_V * 3600.0;
        let drained = b.drain_joules(half_j);
        assert!((drained - 2000.0).abs() < 1e-6);
        assert!((b.state_of_charge() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn drain_clamps_at_empty() {
        let mut b = Battery::new(10.0);
        let drained = b.drain_joules(1e9);
        assert!((drained - 10.0).abs() < 1e-9);
        assert_eq!(b.state_of_charge(), 0.0);
        // Further drain yields nothing.
        assert_eq!(b.drain_joules(100.0), 0.0);
    }

    #[test]
    fn capacity_fraction() {
        let b = Battery::new(4000.0);
        let one_hour_4w = 4.0 * 3600.0;
        let frac = b.fraction_of_capacity(one_hour_4w);
        // 4 W for 1 h ≈ 1039 mAh ≈ 26 % of 4000 mAh — the paper's
        // segmentation ballpark.
        assert!(frac > 0.2 && frac < 0.3, "{frac}");
    }
}
