//! Sampling power monitor (Monsoon AAA10F substitute).
//!
//! The real instrument samples the device's main rail at 5 kHz; energy is
//! the integral of those samples. Here the waveform is an analytic function
//! of time supplied by the caller, plus small deterministic "measurement
//! noise" so downstream statistics see realistic sample scatter.

/// Default sampling rate of the AAA10F, in hertz.
pub const DEFAULT_SAMPLE_HZ: u32 = 5000;

/// A captured power trace.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerTrace {
    /// Sampling rate in hertz.
    pub sample_hz: u32,
    /// Power samples in watts.
    pub samples: Vec<f32>,
}

impl PowerTrace {
    /// Total energy in joules (rectangle-rule integral).
    pub fn energy_j(&self) -> f64 {
        let dt = 1.0 / self.sample_hz as f64;
        self.samples.iter().map(|&p| p as f64 * dt).sum()
    }

    /// Mean power in watts.
    pub fn avg_power_w(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().map(|&p| p as f64).sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Peak sample in watts.
    pub fn peak_power_w(&self) -> f64 {
        self.samples.iter().fold(0.0f64, |m, &p| m.max(p as f64))
    }

    /// Capture duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.samples.len() as f64 / self.sample_hz as f64
    }
}

/// The monitor itself.
#[derive(Debug, Clone)]
pub struct PowerMonitor {
    sample_hz: u32,
    noise_fraction: f64,
    seed: u64,
}

impl PowerMonitor {
    /// A monitor at the default 5 kHz with 1 % sample noise.
    pub fn new(seed: u64) -> Self {
        PowerMonitor {
            sample_hz: DEFAULT_SAMPLE_HZ,
            noise_fraction: 0.01,
            seed,
        }
    }

    /// Override the sampling rate (testing shorter captures).
    pub fn with_sample_hz(mut self, hz: u32) -> Self {
        self.sample_hz = hz.max(1);
        self
    }

    /// Ideal noiseless monitor.
    pub fn noiseless(seed: u64) -> Self {
        PowerMonitor {
            sample_hz: DEFAULT_SAMPLE_HZ,
            noise_fraction: 0.0,
            seed,
        }
    }

    /// Capture `duration_s` seconds of `power_at(t_seconds) -> watts`.
    pub fn record(&self, duration_s: f64, power_at: impl Fn(f64) -> f64) -> PowerTrace {
        let n = (duration_s * self.sample_hz as f64).round().max(1.0) as usize;
        let dt = 1.0 / self.sample_hz as f64;
        let mut state = self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut samples = Vec::with_capacity(n);
        for i in 0..n {
            let t = i as f64 * dt;
            let ideal = power_at(t).max(0.0);
            // xorshift64* measurement noise, zero-mean uniform.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let r = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            let unit = (r >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
            let noisy = ideal * (1.0 + self.noise_fraction * (unit * 2.0 - 1.0));
            samples.push(noisy as f32);
        }
        PowerTrace {
            sample_hz: self.sample_hz,
            samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_power_integrates_exactly() {
        let m = PowerMonitor::noiseless(1);
        let trace = m.record(2.0, |_| 3.0);
        assert!((trace.energy_j() - 6.0).abs() < 1e-6);
        assert!((trace.avg_power_w() - 3.0).abs() < 1e-6);
        assert!((trace.duration_s() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn noise_is_small_and_deterministic() {
        let m = PowerMonitor::new(7);
        let a = m.record(0.5, |_| 2.0);
        let b = m.record(0.5, |_| 2.0);
        assert_eq!(a, b, "same seed, same trace");
        assert!((a.avg_power_w() - 2.0).abs() < 0.01);
        assert!(a.samples.iter().any(|&s| s != 2.0), "noise present");
        let c = PowerMonitor::new(8).record(0.5, |_| 2.0);
        assert_ne!(a, c, "different seed, different noise");
    }

    #[test]
    fn time_varying_waveform() {
        let m = PowerMonitor::noiseless(1).with_sample_hz(1000);
        // 1 W for the first half, 3 W for the second: 2 J over 1 s.
        let trace = m.record(1.0, |t| if t < 0.5 { 1.0 } else { 3.0 });
        assert!((trace.energy_j() - 2.0).abs() < 0.01);
        assert!((trace.peak_power_w() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn negative_power_clamped() {
        let m = PowerMonitor::noiseless(1).with_sample_hz(100);
        let trace = m.record(0.1, |_| -5.0);
        assert_eq!(trace.energy_j(), 0.0);
    }

    #[test]
    fn tiny_duration_still_samples() {
        let m = PowerMonitor::noiseless(1);
        let trace = m.record(1e-6, |_| 1.0);
        assert!(!trace.samples.is_empty());
    }
}
