//! Per-inference and sustained energy accounting.
//!
//! [`measure_inference`] reproduces the Fig. 10 pipeline: resolve the
//! engine, estimate latency, synthesise the power waveform (idle floor +
//! screen + engine draw), "capture" it with the Monsoon substitute and
//! integrate. Efficiency is FLOPs per second per watt, the paper's
//! MFLOP/s/W metric (footnote 8: "effectively the same as FLOPs per
//! Joule").
//!
//! [`sustained_run`] reproduces the Table 4 scenarios: many inferences at a
//! duty cycle, stepping the thermal model so phones throttle while
//! open-deck boards stay cool.

use crate::battery::Battery;
use crate::monsoon::PowerMonitor;
use crate::{PowerError, Result};
use gaugenn_dnn::trace::TraceReport;
use gaugenn_soc::latency::{engine_for, estimate_latency};
use gaugenn_soc::thermal::ThermalState;
use gaugenn_soc::{Backend, DeviceSpec};

/// Energy report for a single inference.
#[derive(Debug, Clone)]
pub struct EnergyReport {
    /// Inference latency, milliseconds.
    pub latency_ms: f64,
    /// Energy for the inference, millijoules (screen and idle included, as
    /// in the paper's accounting where screen power "is measured and
    /// accounted for").
    pub energy_mj: f64,
    /// Mean power during the inference, watts.
    pub avg_power_w: f64,
    /// Efficiency in MFLOP/s/W.
    pub efficiency_mflops_per_sw: f64,
}

/// Measure one inference of `trace` on `device`/`backend` at the given
/// thermal state.
pub fn measure_inference(
    device: &DeviceSpec,
    backend: Backend,
    trace: &TraceReport,
    thermal: &ThermalState,
    monitor: &PowerMonitor,
) -> Result<EnergyReport> {
    let lat = estimate_latency(device, backend, trace, thermal)?;
    let engine = engine_for(device, backend)?;
    // Screen power is captured separately and subtracted (§3.3: "this is
    // measured and accounted for"), so the per-inference figure is the
    // SoC-active power: engine draw plus the awake-SoC floor.
    let active = device.soc.idle_power_w + engine.active_power_w;
    let duration_s = lat.total_ms / 1e3;
    let capture = monitor.record(duration_s.max(2e-4), |_| active);
    let energy_j = capture.avg_power_w() * duration_s;
    let avg_power_w = capture.avg_power_w();
    let eff = if energy_j > 0.0 {
        trace.total_flops as f64 / 1e6 / energy_j
    } else {
        0.0
    };
    Ok(EnergyReport {
        latency_ms: lat.total_ms,
        energy_mj: energy_j * 1e3,
        avg_power_w,
        efficiency_mflops_per_sw: eff,
    })
}

/// Report for a sustained, duty-cycled scenario run (Table 4).
#[derive(Debug, Clone)]
pub struct SustainedReport {
    /// Number of inferences executed.
    pub inferences: u64,
    /// Wall-clock duration of the scenario, seconds.
    pub duration_s: f64,
    /// Energy attributed to the DNN workload, joules: engine + SoC-active
    /// power during inference time only. Idle gaps and screen are the
    /// baseline the paper measures separately and subtracts.
    pub total_energy_j: f64,
    /// Battery discharge in mAh.
    pub battery_mah: f64,
    /// Final die temperature, °C.
    pub final_temp_c: f64,
    /// Mean per-inference latency over the run (throttling raises it).
    pub mean_latency_ms: f64,
}

/// Run `inferences` inferences spread evenly over `duration_s` seconds
/// (the scenario duty cycle), stepping the thermal model.
///
/// When the demanded rate exceeds what the device can sustain, the run
/// drops work instead of stretching the clock — a video call that cannot
/// hold 15 FPS skips frames; the hour is still an hour. The report's
/// `inferences` records what actually ran.
pub fn sustained_run(
    device: &DeviceSpec,
    backend: Backend,
    trace: &TraceReport,
    inferences: u64,
    duration_s: f64,
) -> Result<SustainedReport> {
    if inferences == 0 || duration_s <= 0.0 {
        return Err(PowerError::BadConfig(
            "need at least one inference and a positive duration".into(),
        ));
    }
    let engine = engine_for(device, backend)?;
    // Physical power (drives heating) vs attributed power (the scenario's
    // marginal DNN cost — screen and deep-idle floor excluded).
    let idle_w = device.soc.idle_power_w * 0.35 + device.screen_power_w;
    let active_w = device.soc.idle_power_w + device.screen_power_w + engine.active_power_w;
    let attributed_w = device.soc.idle_power_w + engine.active_power_w;

    let period_s = duration_s / inferences as f64;
    let mut thermal = ThermalState::cool();
    let mut total_energy = 0.0f64;
    let mut total_latency_ms = 0.0f64;
    let mut elapsed = 0.0f64;

    // Chunked simulation: latency is re-estimated as the device heats, so
    // throttling feeds back into both energy and duration.
    let chunk = (inferences / 64).max(1);
    let mut done = 0u64;
    while done < inferences && elapsed < duration_s {
        let lat = estimate_latency(device, backend, trace, &thermal)?;
        let infer_s = lat.total_ms / 1e3;
        // Frame dropping: within this chunk's wall-clock window, only as
        // many inferences run as fit back-to-back.
        let want = chunk.min(inferences - done);
        let window_s = (period_s * want as f64).min(duration_s - elapsed);
        let fit = ((window_s / infer_s).floor() as u64).min(want).max(
            // Always make at least one attempt per window if time remains.
            u64::from(window_s >= infer_s),
        );
        if fit == 0 {
            // The model cannot complete even one inference in the window:
            // it runs continuously, completing what it can.
            let n = (window_s / infer_s).max(0.0) as u64;
            let ran = n.max(1).min(inferences - done);
            let active = (infer_s * ran as f64).min(window_s.max(infer_s));
            total_energy += attributed_w * active;
            total_latency_ms += lat.total_ms * ran as f64;
            thermal.step(device, active_w, window_s.max(infer_s));
            elapsed += window_s.max(infer_s);
            done += ran;
            continue;
        }
        let chunk_active_s = infer_s * fit as f64;
        let chunk_idle_s = (window_s - chunk_active_s).max(0.0);
        total_energy += attributed_w * chunk_active_s;
        total_latency_ms += lat.total_ms * fit as f64;
        let span = chunk_active_s + chunk_idle_s;
        let avg_w = if span > 0.0 {
            (active_w * chunk_active_s + idle_w * chunk_idle_s) / span
        } else {
            idle_w
        };
        thermal.step(device, avg_w, span);
        elapsed += span;
        done += want; // the window's share of the schedule has passed
    }
    Ok(SustainedReport {
        inferences: done,
        duration_s: elapsed,
        total_energy_j: total_energy,
        battery_mah: Battery::joules_to_mah(total_energy),
        final_temp_c: thermal.temp_c,
        mean_latency_ms: total_latency_ms / done.max(1) as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugenn_dnn::task::Task;
    use gaugenn_dnn::trace::trace_graph;
    use gaugenn_dnn::zoo::{build_for_task, SizeClass};
    use gaugenn_soc::sched::ThreadConfig;
    use gaugenn_soc::spec::device;
    use gaugenn_soc::SnpeTarget;

    fn cpu4() -> Backend {
        Backend::Cpu(ThreadConfig::unpinned(4))
    }

    fn tr(task: Task, seed: u64) -> TraceReport {
        trace_graph(&build_for_task(task, seed, SizeClass::Small, true).graph).unwrap()
    }

    fn mon() -> PowerMonitor {
        PowerMonitor::noiseless(1)
    }

    #[test]
    fn energy_similar_across_generations_power_rises() {
        // Fig. 10a/10b: newer devices draw more power but need similar
        // energy because they finish faster.
        let t = tr(Task::ObjectDetection, 1);
        let cool = ThermalState::cool();
        let q845 = measure_inference(&device("Q845").unwrap(), cpu4(), &t, &cool, &mon()).unwrap();
        let q888 = measure_inference(&device("Q888").unwrap(), cpu4(), &t, &cool, &mon()).unwrap();
        assert!(q888.avg_power_w > q845.avg_power_w, "newer gen draws more power");
        let ratio = q888.energy_mj / q845.energy_mj;
        assert!(
            (0.4..=1.4).contains(&ratio),
            "energy should be in the same ballpark, ratio {ratio}"
        );
        assert!(q888.latency_ms < q845.latency_ms);
    }

    #[test]
    fn efficiency_improves_with_generation() {
        // Fig. 10c: median efficiency 730 / 765 / 873 MFLOP/s/W. The gain
        // shows on compute-bound models; tiny overhead-dominated models can
        // invert it (part of the spread in the paper's distributions).
        let t = tr(Task::SemanticSegmentation, 2);
        let cool = ThermalState::cool();
        let e845 = measure_inference(&device("Q845").unwrap(), cpu4(), &t, &cool, &mon())
            .unwrap()
            .efficiency_mflops_per_sw;
        let e888 = measure_inference(&device("Q888").unwrap(), cpu4(), &t, &cool, &mon())
            .unwrap()
            .efficiency_mflops_per_sw;
        assert!(e888 > e845, "Q888 {e888} should beat Q845 {e845}");
    }

    #[test]
    fn dsp_vastly_more_efficient() {
        // §6.3: SNPE DSP 20.3× more efficient than CPU on average.
        let t = tr(Task::ImageClassification, 3);
        let cool = ThermalState::cool();
        let dev = device("Q845").unwrap();
        let cpu = measure_inference(&dev, cpu4(), &t, &cool, &mon()).unwrap();
        let dsp =
            measure_inference(&dev, Backend::Snpe(SnpeTarget::Dsp), &t, &cool, &mon()).unwrap();
        let gain = dsp.efficiency_mflops_per_sw / cpu.efficiency_mflops_per_sw;
        assert!(gain > 4.0, "dsp efficiency gain {gain}");
    }

    #[test]
    fn sustained_segmentation_drains_battery_hard() {
        // Table 4: one hour of 15 FPS segmentation averages ~1.2 Ah on
        // Q845 — a substantial chunk of a 4000 mAh battery. Use a
        // mid-sized segmenter (the corpus spans 272–3835 mAh).
        let t = trace_graph(
            &build_for_task(Task::SemanticSegmentation, 4, SizeClass::Medium, true).graph,
        )
        .unwrap();
        let dev = device("Q845").unwrap();
        let rep = sustained_run(&dev, cpu4(), &t, 15 * 3600, 3600.0).unwrap();
        let frac = rep.battery_mah / 4000.0;
        assert!(frac > 0.15, "segmentation should cost >15% of a 4 Ah pack, got {frac}");
        assert!(rep.final_temp_c > 40.0, "sustained load should heat the die");
    }

    #[test]
    fn sustained_typing_is_cheap() {
        // Table 4: a day's typing (275 words) costs well under 1 mAh.
        let t = tr(Task::AutoComplete, 5);
        let dev = device("Q845").unwrap();
        let rep = sustained_run(&dev, cpu4(), &t, 275, 3600.0).unwrap();
        assert!(rep.battery_mah < 5.0, "typing drained {} mAh", rep.battery_mah);
    }

    #[test]
    fn throttling_extends_mean_latency() {
        let t = tr(Task::SemanticSegmentation, 6);
        let dev = device("S21").unwrap(); // sealed phone throttles
        let cool_lat = estimate_latency(&dev, cpu4(), &t, &ThermalState::cool())
            .unwrap()
            .total_ms;
        let rep = sustained_run(&dev, cpu4(), &t, 15 * 600, 600.0).unwrap();
        assert!(
            rep.mean_latency_ms >= cool_lat,
            "sustained mean {} should be >= cool {}",
            rep.mean_latency_ms,
            cool_lat
        );
    }

    #[test]
    fn bad_configs_rejected() {
        let t = tr(Task::AutoComplete, 7);
        let dev = device("Q845").unwrap();
        assert!(sustained_run(&dev, cpu4(), &t, 0, 10.0).is_err());
        assert!(sustained_run(&dev, cpu4(), &t, 10, 0.0).is_err());
    }
}
