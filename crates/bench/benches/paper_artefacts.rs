//! One Criterion benchmark per paper table/figure.
//!
//! Each bench times the experiment computation over the shared Small-scale
//! corpus and prints the regenerated rows once, so `cargo bench` both
//! measures and reproduces. Absolute numbers come from the calibrated
//! simulator — the *shapes* (who wins, by what factor) are the deliverable.

use criterion::{criterion_group, criterion_main, Criterion};
use gaugenn_bench::shared_reports;
use gaugenn_core::experiments::{backends, offline, runtime};
use gaugenn_soc::spec::all_devices;
use std::hint::black_box;
use std::sync::Once;

fn print_once(once: &'static Once, text: String) {
    once.call_once(|| eprintln!("\n{text}"));
}

fn bench_tab1(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    print_once(&ONCE, runtime::tab1());
    c.bench_function("tab1_device_specs", |b| b.iter(|| black_box(runtime::tab1())));
}

fn bench_tab2(c: &mut Criterion) {
    let (r20, r21) = shared_reports();
    static ONCE: Once = Once::new();
    print_once(&ONCE, offline::tab2(r20, r21).render());
    c.bench_function("tab2_dataset_snapshots", |b| {
        b.iter(|| black_box(offline::tab2(r20, r21)))
    });
}

fn bench_tab3(c: &mut Criterion) {
    let (_, r21) = shared_reports();
    static ONCE: Once = Once::new();
    print_once(&ONCE, offline::tab3(r21).render());
    c.bench_function("tab3_task_classification", |b| {
        b.iter(|| black_box(offline::tab3(r21)))
    });
}

fn bench_tab4(c: &mut Criterion) {
    let (_, r21) = shared_reports();
    static ONCE: Once = Once::new();
    print_once(&ONCE, runtime::tab4(r21).expect("tab4").render());
    c.bench_function("tab4_scenario_energy", |b| {
        b.iter(|| black_box(runtime::tab4(r21).expect("tab4")))
    });
}

fn bench_fig4(c: &mut Criterion) {
    let (_, r21) = shared_reports();
    static ONCE: Once = Once::new();
    print_once(&ONCE, offline::fig4(r21).render());
    c.bench_function("fig4_models_per_framework_category", |b| {
        b.iter(|| black_box(offline::fig4(r21)))
    });
}

fn bench_fig5(c: &mut Criterion) {
    let (r20, r21) = shared_reports();
    static ONCE: Once = Once::new();
    print_once(&ONCE, offline::fig5(r20, r21).render());
    c.bench_function("fig5_temporal_diff", |b| {
        b.iter(|| black_box(offline::fig5(r20, r21)))
    });
}

fn bench_fig6(c: &mut Criterion) {
    let (_, r21) = shared_reports();
    static ONCE: Once = Once::new();
    print_once(&ONCE, offline::fig6(r21).render());
    c.bench_function("fig6_layer_composition", |b| {
        b.iter(|| black_box(offline::fig6(r21)))
    });
}

fn bench_fig7(c: &mut Criterion) {
    let (_, r21) = shared_reports();
    static ONCE: Once = Once::new();
    print_once(&ONCE, offline::fig7(r21).render());
    c.bench_function("fig7_flops_params_per_task", |b| {
        b.iter(|| black_box(offline::fig7(r21)))
    });
}

fn bench_fig8_fig9(c: &mut Criterion) {
    let (_, r21) = shared_reports();
    let devices = all_devices();
    let sweep = runtime::latency_sweep(r21, &devices);
    static ONCE8: Once = Once::new();
    print_once(&ONCE8, runtime::fig8(&sweep).render());
    static ONCE9: Once = Once::new();
    print_once(&ONCE9, runtime::fig9(&sweep).render());
    c.bench_function("fig8_latency_vs_flops_sweep", |b| {
        b.iter(|| black_box(runtime::latency_sweep(r21, &devices)))
    });
    c.bench_function("fig9_latency_ecdf", |b| b.iter(|| black_box(runtime::fig9(&sweep))));
}

fn bench_fig10(c: &mut Criterion) {
    let (_, r21) = shared_reports();
    static ONCE: Once = Once::new();
    print_once(&ONCE, runtime::fig10(r21).expect("fig10").render());
    c.bench_function("fig10_energy_power_efficiency", |b| {
        b.iter(|| black_box(runtime::fig10(r21).expect("fig10")))
    });
}

fn bench_fig11(c: &mut Criterion) {
    let (_, r21) = shared_reports();
    static ONCE: Once = Once::new();
    print_once(&ONCE, backends::fig11(r21).render());
    c.bench_function("fig11_batch_throughput", |b| {
        b.iter(|| black_box(backends::fig11(r21)))
    });
}

fn bench_fig12(c: &mut Criterion) {
    let (_, r21) = shared_reports();
    static ONCE: Once = Once::new();
    print_once(&ONCE, backends::fig12(r21).render());
    c.bench_function("fig12_threads_affinity", |b| {
        b.iter(|| black_box(backends::fig12(r21)))
    });
}

fn bench_fig13(c: &mut Criterion) {
    let (_, r21) = shared_reports();
    static ONCE: Once = Once::new();
    print_once(
        &ONCE,
        backends::fig13(r21).expect("fig13").render("Fig 13: CPU runtimes"),
    );
    c.bench_function("fig13_cpu_runtimes", |b| {
        b.iter(|| black_box(backends::fig13(r21).expect("fig13")))
    });
}

fn bench_fig14(c: &mut Criterion) {
    let (_, r21) = shared_reports();
    static ONCE: Once = Once::new();
    print_once(
        &ONCE,
        backends::fig14(r21).expect("fig14").render("Fig 14: SNPE targets"),
    );
    c.bench_function("fig14_snpe_targets", |b| {
        b.iter(|| black_box(backends::fig14(r21).expect("fig14")))
    });
}

fn bench_fig15(c: &mut Criterion) {
    let (_, r21) = shared_reports();
    static ONCE: Once = Once::new();
    print_once(&ONCE, offline::fig15(r21).render());
    c.bench_function("fig15_cloud_apis", |b| b.iter(|| black_box(offline::fig15(r21))));
}

fn bench_sec45(c: &mut Criterion) {
    let (_, r21) = shared_reports();
    static ONCE: Once = Once::new();
    print_once(&ONCE, offline::render_sec45(&offline::sec45(r21)));
    c.bench_function("sec45_uniqueness_dedup", |b| {
        b.iter(|| black_box(offline::sec45(r21)))
    });
}

fn bench_whatif(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    print_once(&ONCE, backends_whatif().render());
    c.bench_function("sec61_whatif_optimisations", |b| {
        b.iter(|| black_box(backends_whatif()))
    });
}

fn backends_whatif() -> gaugenn_core::experiments::whatif::WhatIf {
    gaugenn_core::experiments::whatif::whatif().expect("whatif")
}

fn bench_cohab(c: &mut Criterion) {
    let (_, r21) = shared_reports();
    static ONCE: Once = Once::new();
    print_once(
        &ONCE,
        gaugenn_core::experiments::cohab::cohab_study(r21, 4)
            .expect("cohab")
            .render(),
    );
    c.bench_function("sec81_cohabitation_study", |b| {
        b.iter(|| black_box(gaugenn_core::experiments::cohab::cohab_study(r21, 4).expect("cohab")))
    });
}

fn bench_ablations(c: &mut Criterion) {
    let (_, r21) = shared_reports();
    static ONCE: Once = Once::new();
    print_once(
        &ONCE,
        gaugenn_core::experiments::ablations::ablation_study(r21).render(),
    );
    c.bench_function("ablations_model_mechanisms", |b| {
        b.iter(|| black_box(gaugenn_core::experiments::ablations::ablation_study(r21)))
    });
}

fn bench_offload(c: &mut Criterion) {
    let (_, r21) = shared_reports();
    static ONCE: Once = Once::new();
    print_once(
        &ONCE,
        gaugenn_core::experiments::offload::offload_study(r21)
            .expect("offload")
            .render(),
    );
    c.bench_function("sec64_offload_study", |b| {
        b.iter(|| black_box(gaugenn_core::experiments::offload::offload_study(r21).expect("offload")))
    });
}

fn bench_sec61(c: &mut Criterion) {
    let (_, r21) = shared_reports();
    static ONCE: Once = Once::new();
    print_once(&ONCE, offline::render_sec61(&offline::sec61(r21)));
    c.bench_function("sec61_optimisation_census", |b| {
        b.iter(|| black_box(offline::sec61(r21)))
    });
}

criterion_group! {
    name = artefacts;
    config = Criterion::default().sample_size(10);
    targets =
        bench_tab1, bench_tab2, bench_tab3, bench_tab4,
        bench_fig4, bench_fig5, bench_fig6, bench_fig7,
        bench_fig8_fig9, bench_fig10, bench_fig11, bench_fig12,
        bench_fig13, bench_fig14, bench_fig15,
        bench_sec45, bench_sec61, bench_whatif, bench_cohab, bench_ablations,
        bench_offload
}
criterion_main!(artefacts);
