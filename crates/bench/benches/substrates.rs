//! Microbenchmarks of the substrate crates' hot paths: checksums,
//! containers, wire codecs, the reference executor, the latency model and
//! the end-to-end tiny pipeline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gaugenn_analysis::md5::md5;
use gaugenn_apk::crc32::crc32;
use gaugenn_apk::zip::{ZipArchive, ZipWriter};
use gaugenn_core::pipeline::{Pipeline, PipelineConfig};
use gaugenn_dnn::exec::Executor;
use gaugenn_dnn::task::Task;
use gaugenn_dnn::trace::trace_graph;
use gaugenn_dnn::zoo::{build_for_task, SizeClass};
use gaugenn_modelfmt::graphcodec::{decode_graph, encode_graph};
use gaugenn_modelfmt::Framework;
use gaugenn_playstore::corpus::Snapshot;
use gaugenn_soc::sched::ThreadConfig;
use gaugenn_soc::spec::device;
use gaugenn_soc::thermal::ThermalState;
use gaugenn_soc::Backend;
use std::hint::black_box;

fn bench_checksums(c: &mut Criterion) {
    let data = vec![0xA5u8; 1 << 20];
    let mut g = c.benchmark_group("checksums");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("md5_1mib", |b| b.iter(|| black_box(md5(&data))));
    g.bench_function("crc32_1mib", |b| b.iter(|| black_box(crc32(&data))));
    g.finish();
}

fn bench_zip(c: &mut Criterion) {
    let mut w = ZipWriter::new();
    for i in 0..32 {
        w.add(format!("assets/file{i}.bin"), vec![i as u8; 8 * 1024])
            .expect("unique names");
    }
    let bytes = w.finish();
    let mut g = c.benchmark_group("zip");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("parse_32x8k", |b| {
        b.iter(|| black_box(ZipArchive::parse(&bytes).expect("valid")))
    });
    g.finish();
}

fn bench_graph_codec(c: &mut Criterion) {
    let graph = build_for_task(Task::ImageClassification, 7, SizeClass::Small, true).graph;
    let encoded = encode_graph(&graph);
    let mut g = c.benchmark_group("graph_codec");
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode_mobilenet", |b| b.iter(|| black_box(encode_graph(&graph))));
    g.bench_function("decode_mobilenet", |b| {
        b.iter(|| black_box(decode_graph(&encoded).expect("valid")))
    });
    g.finish();
}

fn bench_container_encode(c: &mut Criterion) {
    let graph = build_for_task(Task::KeywordDetection, 7, SizeClass::Small, true).graph;
    let mut g = c.benchmark_group("containers");
    for fw in Framework::BENCHMARKED {
        g.bench_function(format!("encode_{}", fw.name()), |b| {
            b.iter(|| black_box(gaugenn_modelfmt::encode(&graph, fw).expect("encoder")))
        });
    }
    g.finish();
}

fn bench_executor(c: &mut Criterion) {
    let graph = build_for_task(Task::KeywordDetection, 7, SizeClass::Small, true).graph;
    let ex = Executor::new(&graph).expect("valid graph");
    c.bench_function("exec_keyword_spotter_fwd", |b| {
        b.iter(|| black_box(ex.run_random(1, 3).expect("runs")))
    });
}

fn bench_latency_model(c: &mut Criterion) {
    let graph = build_for_task(Task::ObjectDetection, 7, SizeClass::Small, true).graph;
    let trace = trace_graph(&graph).expect("traces");
    let dev = device("Q845").expect("device");
    let cool = ThermalState::cool();
    c.bench_function("soc_latency_estimate_fssd", |b| {
        b.iter(|| {
            black_box(
                gaugenn_soc::estimate_latency(
                    &dev,
                    Backend::Cpu(ThreadConfig::unpinned(4)),
                    &trace,
                    &cool,
                )
                .expect("compatible"),
            )
        })
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("tiny_end_to_end", |b| {
        b.iter(|| {
            black_box(
                Pipeline::new(PipelineConfig::tiny(Snapshot::Y2021, 7))
                    .run()
                    .expect("pipeline"),
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = substrates;
    config = Criterion::default().sample_size(20);
    targets =
        bench_checksums, bench_zip, bench_graph_codec, bench_container_encode,
        bench_executor, bench_latency_model, bench_pipeline
}
criterion_main!(substrates);
