//! # gaugenn-bench — benchmark harness
//!
//! Two Criterion bench suites plus the `repro` binary:
//!
//! * `benches/paper_artefacts.rs` — one benchmark per paper table/figure;
//!   each bench times the experiment's computation and prints the
//!   regenerated rows once, so `cargo bench` doubles as a results run.
//! * `benches/substrates.rs` — hot-path microbenchmarks of the substrate
//!   crates (checksums, containers, codecs, the reference executor, the
//!   latency model).
//! * `src/bin/repro.rs` — regenerates every table and figure at a chosen
//!   corpus scale (`tiny` / `small` / `paper`); `EXPERIMENTS.md` is its
//!   output.

use gaugenn_core::pipeline::{Pipeline, PipelineConfig, PipelineReport};
use gaugenn_playstore::corpus::{CorpusScale, Snapshot};
use std::sync::OnceLock;

pub mod cli;
pub mod stats;

/// Shared Small-scale reports for the artefact benches (built once per
/// bench binary).
pub fn shared_reports() -> &'static (PipelineReport, PipelineReport) {
    static CELL: OnceLock<(PipelineReport, PipelineReport)> = OnceLock::new();
    CELL.get_or_init(|| {
        let seed = 1402;
        let r20 = Pipeline::new(PipelineConfig::with_scale(
            CorpusScale::Small,
            Snapshot::Y2020,
            seed,
        ))
        .run()
        .expect("2020 pipeline");
        let r21 = Pipeline::new(PipelineConfig::with_scale(
            CorpusScale::Small,
            Snapshot::Y2021,
            seed,
        ))
        .run()
        .expect("2021 pipeline");
        (r20, r21)
    })
}
