//! Latency statistics shared by the bench binaries.
//!
//! The bench clients each collect their own latency samples; percentiles
//! are only meaningful over the *merged* corpus of samples. Computing a
//! p99 per client and averaging (or taking percentiles over a
//! partially-sorted concatenation) understates the tail whenever load is
//! uneven across clients — the slowest client's samples dominate the
//! true p99 but are diluted by per-client aggregation. [`merge_samples`]
//! makes the merge explicit and [`percentile`] demands sorted input, so
//! the corpus-wide tail is computed exactly once, from every sample.

/// The bench crate's single audited wall-clock read. Every bench bin
/// times through a `Stopwatch` instead of ad-hoc `Instant::now()` pairs,
/// so the workspace taint pass (DESIGN.md §15) sees exactly one clock
/// sink in the bench crate — annotated here, at the one place a human
/// has verified the reading never feeds deterministic output.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(std::time::Instant);

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        // gaugelint: deterministic-via(clock) — bench wall timing IS the measurement; it is reported, never merged into deterministic output
        Stopwatch(std::time::Instant::now())
    }

    /// Time since [`Stopwatch::start`].
    pub fn elapsed(&self) -> std::time::Duration {
        self.0.elapsed()
    }

    /// Elapsed milliseconds as `f64` (the bins' reporting unit).
    pub fn ms(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e3
    }
}

/// Merge per-client latency sample vectors into one ascending-sorted
/// corpus. NaNs are dropped (a NaN latency is a harness bug, not a
/// measurement) so the sort is total.
pub fn merge_samples(per_client: Vec<Vec<f64>>) -> Vec<f64> {
    let mut all: Vec<f64> = per_client
        .into_iter()
        .flatten()
        .filter(|v| !v.is_nan())
        .collect();
    all.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered above"));
    all
}

/// Nearest-rank percentile over an ascending-sorted slice: index
/// `round((len - 1) * p / 100)`. Empty input yields 0.0.
///
/// # Panics
///
/// Debug-asserts that the input is sorted — callers must go through
/// [`merge_samples`] (or sort themselves) first; percentiles over an
/// unsorted merge are the bug this module exists to prevent.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "percentile() input must be ascending-sorted"
    );
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pin_a_known_distribution() {
        // 0,1,...,999: nearest-rank lands exactly on round(999 * p/100).
        let sorted: Vec<f64> = (0..1000).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 0.0), 0.0);
        assert_eq!(percentile(&sorted, 50.0), 500.0);
        assert_eq!(percentile(&sorted, 99.0), 989.0);
        assert_eq!(percentile(&sorted, 100.0), 999.0);
    }

    #[test]
    fn merged_tail_differs_from_any_per_client_tail() {
        // A fast client (0..900, all under 900) and a slow client whose
        // 100 samples are all >= 9000. The corpus p99 must surface the
        // slow client's samples; the fast client's own p99 misses them
        // entirely — the exact failure mode of per-client percentiles.
        let fast: Vec<f64> = (0..900).map(f64::from).collect();
        let slow: Vec<f64> = (0..100).map(|i| 9000.0 + f64::from(i)).collect();
        let fast_p99 = percentile(&fast, 99.0);
        let merged = merge_samples(vec![fast, slow]);
        assert_eq!(merged.len(), 1000);
        assert_eq!(percentile(&merged, 99.0), 9089.0);
        assert!(fast_p99 < 900.0);
    }

    #[test]
    fn merge_sorts_interleaved_client_streams() {
        let merged = merge_samples(vec![vec![5.0, 1.0], vec![4.0, 2.0], vec![3.0]]);
        assert_eq!(merged, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(merge_samples(vec![]).is_empty());
        assert_eq!(percentile(&[], 99.0), 0.0);
    }

    #[test]
    fn nans_are_dropped_not_sorted() {
        let merged = merge_samples(vec![vec![2.0, f64::NAN, 1.0]]);
        assert_eq!(merged, vec![1.0, 2.0]);
    }

    #[test]
    fn singleton_and_small_sets_are_stable() {
        assert_eq!(percentile(&[42.0], 50.0), 42.0);
        assert_eq!(percentile(&[42.0], 99.0), 42.0);
        let two = [1.0, 2.0];
        assert_eq!(percentile(&two, 0.0), 1.0);
        assert_eq!(percentile(&two, 100.0), 2.0);
    }
}
