//! Shared flag parser for the bench binaries.
//!
//! Every bin (`repro`, `poolbench`, `analyzebench`, `crashbench`,
//! `querybench`) historically grew its own positional-argument
//! convention (`repro small 1402 8 4`, `crashbench --json tiny`). This
//! module replaces them with one flag grammar:
//!
//! ```text
//! --scale tiny|small|paper   corpus scale
//! --seed N                   corpus seed
//! --workers N                crawl / client workers        (where supported)
//! --analysis-workers N       analysis pool workers         (where supported)
//! --resume                   resume from the journal       (where supported)
//! --json                     machine-readable JSON output  (where supported)
//! --help                     usage
//! ```
//!
//! Both `--flag value` and `--flag=value` spellings are accepted. The
//! old positional forms still parse — routed through the deprecated
//! [`legacy_positional`] helper so gaugelint's `deprecated-api` rule
//! flags any *new* caller — but print a deprecation warning on stderr.
//! Warnings go to stderr only: stdout of every bin stays byte-identical
//! whichever spelling invoked it.

use gaugenn_playstore::corpus::CorpusScale;
use gaugenn_playstore::reactor::ReactorMode;

/// Per-binary parsing contract: name, defaults, and which optional
/// flags the bin actually supports (unsupported flags are errors, not
/// silently ignored).
#[derive(Debug, Clone, Copy)]
pub struct ArgSpec {
    /// Binary name, used in help and error output.
    pub bin: &'static str,
    /// One-line description printed at the top of `--help`.
    pub about: &'static str,
    /// Default corpus scale (`crashbench` defaults to Tiny, the rest to
    /// Small).
    pub default_scale: CorpusScale,
    /// Default corpus seed.
    pub default_seed: u64,
    /// Default worker count, when the bin takes `--workers`.
    pub default_workers: usize,
    /// Whether the bin accepts `--workers` / `--analysis-workers`.
    pub takes_workers: bool,
    /// Whether the bin accepts `--resume`.
    pub takes_resume: bool,
    /// Whether the bin accepts `--json`.
    pub takes_json: bool,
    /// Whether the bin accepts `--reactor`.
    pub takes_reactor: bool,
    /// Whether the bin accepts `--connections` (per-worker connection
    /// multiplexing for the event-driven client).
    pub takes_connections: bool,
    /// Default connection count, when the bin takes `--connections`.
    pub default_connections: usize,
}

impl ArgSpec {
    /// Baseline spec: Small scale, seed 1402, no optional flags.
    pub const fn new(bin: &'static str, about: &'static str) -> Self {
        ArgSpec {
            bin,
            about,
            default_scale: CorpusScale::Small,
            default_seed: 1402,
            default_workers: 4,
            takes_workers: false,
            takes_resume: false,
            takes_json: false,
            takes_reactor: false,
            takes_connections: false,
            default_connections: 1,
        }
    }
}

/// Parsed arguments, with defaults filled in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// Corpus scale.
    pub scale: CorpusScale,
    /// Corpus seed.
    pub seed: u64,
    /// Worker count (defaulted even for bins that ignore it).
    pub workers: usize,
    /// Analysis-pool workers; defaults to `workers` when not given.
    pub analysis_workers: usize,
    /// Resume from the journal directory.
    pub resume: bool,
    /// Emit machine-readable JSON.
    pub json: bool,
    /// Pin the store's serving loop; `None` defers to `GAUGENN_REACTOR`
    /// and the platform default.
    pub reactor: Option<ReactorMode>,
    /// Connections per worker for the event-driven client (defaulted
    /// even for bins that ignore it).
    pub connections: usize,
}

/// Outcome of [`parse`]: the arguments plus how they were spelled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parsed {
    /// The resolved arguments.
    pub args: BenchArgs,
    /// `--help` was requested; the caller should print [`help`] and exit 0.
    pub help: bool,
    /// At least one positional (deprecated-form) argument was used.
    pub positional_used: bool,
}

/// Parse `argv` (program name already stripped) against `spec`.
///
/// Flags win over positionals when both are given. Errors are
/// human-readable one-liners; callers print them with [`help`] and exit 2.
pub fn parse(spec: &ArgSpec, argv: &[String]) -> Result<Parsed, String> {
    let mut flag_scale: Option<CorpusScale> = None;
    let mut flag_seed: Option<u64> = None;
    let mut flag_workers: Option<usize> = None;
    let mut flag_analysis: Option<usize> = None;
    let mut flag_reactor: Option<ReactorMode> = None;
    let mut flag_connections: Option<usize> = None;
    let mut resume = false;
    let mut json = false;
    let mut help = false;
    let mut positionals: Vec<String> = Vec::new();

    let mut i = 0usize;
    while i < argv.len() {
        let tok = argv[i].as_str();
        let (name, inline) = match tok.split_once('=') {
            Some((n, v)) if n.starts_with("--") => (n, Some(v.to_string())),
            _ => (tok, None),
        };
        let value = |i: &mut usize| -> Result<String, String> {
            if let Some(v) = &inline {
                return Ok(v.clone());
            }
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match name {
            "--help" | "-h" => help = true,
            "--scale" => flag_scale = Some(parse_scale(&value(&mut i)?)?),
            "--seed" => flag_seed = Some(parse_num(name, &value(&mut i)?)?),
            "--workers" if spec.takes_workers => {
                flag_workers = Some(parse_num(name, &value(&mut i)?)?)
            }
            "--analysis-workers" if spec.takes_workers => {
                flag_analysis = Some(parse_num(name, &value(&mut i)?)?)
            }
            "--resume" if spec.takes_resume => resume = true,
            "--json" if spec.takes_json => json = true,
            "--connections" if spec.takes_connections => {
                flag_connections = Some(parse_num(name, &value(&mut i)?)?)
            }
            "--reactor" if spec.takes_reactor => {
                let v = value(&mut i)?;
                flag_reactor = Some(ReactorMode::parse(&v).ok_or_else(|| {
                    format!("unknown reactor '{v}' (expected threaded|epoll|sim)")
                })?);
            }
            _ if name.starts_with("--") => {
                return Err(format!("unknown flag '{name}'"));
            }
            _ => positionals.push(tok.to_string()),
        }
        i += 1;
    }

    let mut args = BenchArgs {
        scale: spec.default_scale,
        seed: spec.default_seed,
        workers: spec.default_workers,
        analysis_workers: 0,
        resume,
        json,
        reactor: flag_reactor,
        connections: flag_connections.unwrap_or(spec.default_connections),
    };
    let mut pos_analysis: Option<usize> = None;
    if !positionals.is_empty() {
        #[allow(deprecated)]
        // gaugelint: allow(deprecated-api) — the one sanctioned caller: flag parsing still honours the old spelling
        legacy_positional(spec, &positionals, &mut args, &mut pos_analysis)?;
    }
    if let Some(s) = flag_scale {
        args.scale = s;
    }
    if let Some(s) = flag_seed {
        args.seed = s;
    }
    if let Some(w) = flag_workers {
        args.workers = w;
    }
    args.analysis_workers = flag_analysis.or(pos_analysis).unwrap_or(args.workers);

    Ok(Parsed {
        args,
        help,
        positional_used: !positionals.is_empty(),
    })
}

/// Parse the pre-flag positional spelling `scale [seed [workers
/// [analysis_workers]]]` into `args`.
#[deprecated(note = "positional bench arguments are superseded by --scale/--seed/--workers flags")]
pub fn legacy_positional(
    spec: &ArgSpec,
    positionals: &[String],
    args: &mut BenchArgs,
    analysis_workers: &mut Option<usize>,
) -> Result<(), String> {
    let max = if spec.takes_workers { 4 } else { 2 };
    if positionals.len() > max {
        return Err(format!(
            "too many positional arguments ({} given, at most {max} accepted)",
            positionals.len()
        ));
    }
    args.scale = parse_scale(&positionals[0])?;
    if let Some(s) = positionals.get(1) {
        args.seed = parse_num("seed", s)?;
    }
    if let Some(w) = positionals.get(2) {
        args.workers = parse_num("workers", w)?;
    }
    if let Some(a) = positionals.get(3) {
        *analysis_workers = Some(parse_num("analysis_workers", a)?);
    }
    Ok(())
}

/// Parse a scale name, preserving the historic error message.
fn parse_scale(s: &str) -> Result<CorpusScale, String> {
    match s {
        "tiny" => Ok(CorpusScale::Tiny),
        "small" => Ok(CorpusScale::Small),
        "paper" => Ok(CorpusScale::Paper),
        other => Err(format!("unknown scale '{other}' (expected tiny|small|paper)")),
    }
}

fn parse_num<T: std::str::FromStr>(name: &str, s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("{name} expects a number, got '{s}'"))
}

/// Render the `--help` text for `spec`.
pub fn help(spec: &ArgSpec) -> String {
    let mut out = String::new();
    out.push_str(&format!("{} — {}\n\n", spec.bin, spec.about));
    out.push_str(&format!("usage: {} [flags]\n\n", spec.bin));
    out.push_str(&format!(
        "  --scale tiny|small|paper  corpus scale (default {})\n",
        match spec.default_scale {
            CorpusScale::Tiny => "tiny",
            CorpusScale::Small => "small",
            CorpusScale::Paper => "paper",
        }
    ));
    out.push_str(&format!(
        "  --seed N                  corpus seed (default {})\n",
        spec.default_seed
    ));
    if spec.takes_workers {
        out.push_str(&format!(
            "  --workers N               worker count (default {})\n",
            spec.default_workers
        ));
        out.push_str("  --analysis-workers N      analysis pool workers (default: --workers)\n");
    }
    if spec.takes_resume {
        out.push_str("  --resume                  resume from GAUGENN_JOURNAL_DIR\n");
    }
    if spec.takes_json {
        out.push_str("  --json                    machine-readable JSON on stdout\n");
    }
    if spec.takes_reactor {
        out.push_str(
            "  --reactor threaded|epoll|sim  store serving loop (default: GAUGENN_REACTOR)\n",
        );
    }
    if spec.takes_connections {
        out.push_str(&format!(
            "  --connections N           connections multiplexed per worker (default {})\n",
            spec.default_connections
        ));
    }
    out.push_str("  --help                    this text\n");
    out.push_str("\nPositional forms (`scale [seed [workers [analysis_workers]]]`) are\ndeprecated but still accepted, with a warning on stderr.\n");
    out
}

/// Parse `std::env::args()`, printing help / errors and exiting as
/// appropriate. The deprecation warning for positional spellings goes to
/// stderr so stdout stays byte-identical.
pub fn parse_or_exit(spec: &ArgSpec) -> BenchArgs {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse(spec, &argv) {
        Ok(parsed) => {
            if parsed.help {
                print!("{}", help(spec));
                std::process::exit(0);
            }
            if parsed.positional_used {
                eprintln!(
                    "warning: positional arguments are deprecated; \
                     use --scale/--seed/--workers (see {} --help)",
                    spec.bin
                );
            }
            parsed.args
        }
        Err(e) => {
            eprintln!("{}: {e}", spec.bin);
            eprint!("{}", help(spec));
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ArgSpec {
        ArgSpec {
            takes_workers: true,
            takes_resume: true,
            takes_json: true,
            takes_reactor: true,
            takes_connections: true,
            default_connections: 64,
            ..ArgSpec::new("testbench", "test spec")
        }
    }

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_apply_with_no_arguments() {
        let p = parse(&spec(), &[]).unwrap();
        assert!(!p.help && !p.positional_used);
        assert_eq!(p.args.scale, CorpusScale::Small);
        assert_eq!(p.args.seed, 1402);
        assert_eq!(p.args.workers, 4);
        assert_eq!(p.args.analysis_workers, 4, "defaults to --workers");
        assert!(!p.args.resume && !p.args.json);
    }

    #[test]
    fn flag_forms_parse_in_both_spellings() {
        let p = parse(
            &spec(),
            &argv(&["--scale", "tiny", "--seed=7", "--workers", "8", "--resume", "--json"]),
        )
        .unwrap();
        assert_eq!(p.args.scale, CorpusScale::Tiny);
        assert_eq!(p.args.seed, 7);
        assert_eq!(p.args.workers, 8);
        assert_eq!(p.args.analysis_workers, 8);
        assert!(p.args.resume && p.args.json);
        assert!(!p.positional_used);
    }

    #[test]
    fn positional_form_still_parses_and_is_marked_deprecated() {
        let p = parse(&spec(), &argv(&["tiny", "7", "8", "2"])).unwrap();
        assert!(p.positional_used);
        assert_eq!(p.args.scale, CorpusScale::Tiny);
        assert_eq!(p.args.seed, 7);
        assert_eq!(p.args.workers, 8);
        assert_eq!(p.args.analysis_workers, 2);
    }

    #[test]
    fn flags_win_over_positionals() {
        let p = parse(&spec(), &argv(&["tiny", "7", "--scale", "paper", "--seed=9"])).unwrap();
        assert!(p.positional_used);
        assert_eq!(p.args.scale, CorpusScale::Paper);
        assert_eq!(p.args.seed, 9);
    }

    #[test]
    fn errors_are_typed_one_liners() {
        let bad_scale = parse(&spec(), &argv(&["--scale", "huge"])).unwrap_err();
        assert_eq!(bad_scale, "unknown scale 'huge' (expected tiny|small|paper)");
        let bad_seed = parse(&spec(), &argv(&["--seed", "x"])).unwrap_err();
        assert!(bad_seed.contains("expects a number"), "{bad_seed}");
        let unknown = parse(&spec(), &argv(&["--frobnicate"])).unwrap_err();
        assert!(unknown.contains("unknown flag"), "{unknown}");
        let missing = parse(&spec(), &argv(&["--seed"])).unwrap_err();
        assert!(missing.contains("needs a value"), "{missing}");
    }

    #[test]
    fn reactor_flag_parses_every_mode_and_rejects_junk() {
        assert_eq!(parse(&spec(), &argv(&[])).unwrap().args.reactor, None);
        for (spelling, want) in [
            ("threaded", ReactorMode::Threaded),
            ("legacy", ReactorMode::Threaded),
            ("epoll", ReactorMode::Epoll),
            ("sim", ReactorMode::Sim),
        ] {
            let p = parse(&spec(), &argv(&["--reactor", spelling])).unwrap();
            assert_eq!(p.args.reactor, Some(want), "{spelling}");
        }
        let err = parse(&spec(), &argv(&["--reactor", "uring"])).unwrap_err();
        assert!(err.contains("unknown reactor"), "{err}");
    }

    #[test]
    fn connections_flag_parses_and_defaults_per_spec() {
        let p = parse(&spec(), &[]).unwrap();
        assert_eq!(p.args.connections, 64, "spec default applies");
        let p = parse(&spec(), &argv(&["--connections", "256"])).unwrap();
        assert_eq!(p.args.connections, 256);
        let p = parse(&spec(), &argv(&["--connections=8"])).unwrap();
        assert_eq!(p.args.connections, 8);
        let err = parse(&spec(), &argv(&["--connections", "many"])).unwrap_err();
        assert!(err.contains("expects a number"), "{err}");
    }

    #[test]
    fn unsupported_flags_are_rejected_per_spec() {
        let plain = ArgSpec::new("plainbench", "no optional flags");
        for flags in [
            &["--workers", "3"][..],
            &["--resume"],
            &["--json"],
            &["--reactor", "sim"],
            &["--connections", "8"],
        ] {
            let err = parse(&plain, &argv(flags)).unwrap_err();
            assert!(err.contains("unknown flag"), "{flags:?}: {err}");
        }
        // …but the core pair always works.
        let p = parse(&plain, &argv(&["--scale", "paper", "--seed", "3"])).unwrap();
        assert_eq!(p.args.scale, CorpusScale::Paper);
        assert_eq!(p.args.seed, 3);
    }

    #[test]
    fn positional_arity_is_bounded_by_spec() {
        let plain = ArgSpec::new("plainbench", "no optional flags");
        assert!(parse(&plain, &argv(&["tiny", "7"])).is_ok());
        let err = parse(&plain, &argv(&["tiny", "7", "8"])).unwrap_err();
        assert!(err.contains("too many positional"), "{err}");
        let err = parse(&spec(), &argv(&["tiny", "7", "8", "2", "9"])).unwrap_err();
        assert!(err.contains("too many positional"), "{err}");
    }

    #[test]
    fn help_flag_is_reported_not_fatal() {
        let p = parse(&spec(), &argv(&["--help"])).unwrap();
        assert!(p.help);
        let text = help(&spec());
        for needle in ["--scale", "--seed", "--workers", "--resume", "--json", "deprecated"] {
            assert!(text.contains(needle), "help lacks {needle}");
        }
        let plain_text = help(&ArgSpec::new("plainbench", "no optional flags"));
        assert!(!plain_text.contains("--workers"));
        assert!(!plain_text.contains("--json"));
    }
}
