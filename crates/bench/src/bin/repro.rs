//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p gaugenn-bench --bin repro                       # Small, seed 1402
//! cargo run --release -p gaugenn-bench --bin repro -- --scale paper      # full 16.6k-app corpus
//! cargo run --release -p gaugenn-bench --bin repro -- --scale tiny --seed 7
//! cargo run --release -p gaugenn-bench --bin repro -- --workers 8 --analysis-workers 4
//! cargo run --release -p gaugenn-bench --bin repro -- --reactor sim --connections 64
//! ```
//!
//! `--reactor` pins the store's serving loop *and* the pool's client
//! transport (sim runs also print their schedule digest on stderr);
//! `--connections` sets connections-per-worker for pooled crawls. Both
//! are stdout-invariant — tables never change, only wall time.
//!
//! (The pre-flag positional spelling `repro small 1402 8 4` still works
//! behind a stderr deprecation warning — see `gaugenn_bench::cli`.)
//!
//! Output is the text form of Tables 1–4, Figs. 4–15 and the §4.2/§4.5/
//! §6.1 statistics; `EXPERIMENTS.md` records a captured run.
//!
//! Set `GAUGENN_CACHE_DIR=<dir>` to point both snapshots' analysis at a
//! persistent on-disk model cache: the Apr 2021 snapshot then attaches to
//! the Feb 2020 snapshot's analyses (models shared across snapshots are
//! loaded, not re-traced), and a repeated run is warm end to end. The
//! persistent counters print on stderr only — stdout stays byte-identical
//! with or without the cache. `GAUGENN_SCHED=static|lpt|stealing` picks
//! the pool scheduling mode (also stdout-invariant).
//!
//! Set `GAUGENN_JOURNAL_DIR=<dir>` to journal completed work units
//! (crawled apps, the end-of-crawl marker, the probe verdict) as they
//! finish; after a crash — induced or real — re-run with `--resume` to
//! skip the journaled work and still print byte-identical stdout
//! (DESIGN.md §12). `GAUGENN_CRASH=<point>[:n]` arms a deterministic
//! kill point for the crash-recovery matrix in `verify.sh`.
//!
//! Set `GAUGENN_INDEX_DIR=<dir>` to accumulate both snapshots into the
//! persistent corpus index (`corpus.gnix`) that `StoreServer` answers
//! `/query/*` routes from (DESIGN.md §13).

use gaugenn_bench::cli::{self, ArgSpec};
use gaugenn_core::experiments::{backends, offline, runtime};
use gaugenn_core::pipeline::{Pipeline, PipelineConfig};
use gaugenn_playstore::corpus::Snapshot;
use gaugenn_soc::spec::all_devices;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ArgSpec {
        takes_workers: true,
        takes_resume: true,
        takes_reactor: true,
        takes_connections: true,
        default_connections: 1,
        ..ArgSpec::new("repro", "regenerate every table and figure of the paper")
    };
    let args = cli::parse_or_exit(&spec);
    let (scale, seed) = (args.scale, args.seed);
    // Both pools merge deterministically, so neither worker count ever
    // changes a table — only wall time.
    let (workers, analysis_workers) = (args.workers, args.analysis_workers);
    let resume = args.resume;

    println!(
        "gaugeNN reproduction — scale {scale:?}, seed {seed}, \
         {workers} crawl worker(s), {analysis_workers} analysis worker(s)"
    );
    println!("=================================================================");
    println!();
    println!("{}", runtime::tab1());

    let cache_dir = std::env::var_os("GAUGENN_CACHE_DIR").map(std::path::PathBuf::from);
    let journal_dir = std::env::var_os("GAUGENN_JOURNAL_DIR").map(std::path::PathBuf::from);
    let index_dir = std::env::var_os("GAUGENN_INDEX_DIR").map(std::path::PathBuf::from);
    if resume && journal_dir.is_none() {
        eprintln!("--resume needs GAUGENN_JOURNAL_DIR to point at the journal directory");
        std::process::exit(2);
    }
    let config = |snapshot| {
        let mut builder = PipelineConfig::builder(scale, snapshot, seed)
            .workers(workers)
            .analysis_workers(analysis_workers)
            .connections_per_worker(args.connections)
            .resume(resume);
        if let Some(mode) = args.reactor {
            builder = builder.reactor(mode);
        }
        if let Some(dir) = &cache_dir {
            builder = builder.analysis_cache_dir(dir.clone());
        }
        if let Some(dir) = &journal_dir {
            builder = builder.journal_dir(dir.clone());
        }
        if let Some(dir) = &index_dir {
            builder = builder.index_dir(dir.clone());
        }
        builder.build()
    };
    eprintln!("[1/5] crawling + analysing the Feb 2020 snapshot...");
    let r2020 = Pipeline::new(config(Snapshot::Y2020)).run()?;
    eprintln!("  {}", r2020.crawl_summary());
    eprintln!("  {}", r2020.analysis_summary());
    if let Some(digest) = r2020.reactor_digest {
        // Which readiness schedule the sim store took — stderr only, and
        // free to vary run to run while stdout stays byte-identical.
        eprintln!("  reactor digest {digest:016x}");
    }
    eprintln!("[2/5] crawling + analysing the Apr 2021 snapshot...");
    let r2021 = Pipeline::new(config(Snapshot::Y2021)).run()?;
    eprintln!("  {}", r2021.crawl_summary());
    eprintln!("  {}", r2021.analysis_summary());
    if let Some(digest) = r2021.reactor_digest {
        eprintln!("  reactor digest {digest:016x}");
    }

    println!("{}", offline::tab2(&r2020, &r2021).render());
    println!("Crawl drop-out breakdown (Apr 2021 snapshot):");
    println!("{}", r2021.dropout_breakdown().render());
    println!("{}\n", r2021.crawl_summary());
    println!(
        "Offline analysis (Apr 2021 snapshot): {} instances, {} cache hits / {} misses, {} unique analysed\n",
        r2021.analysis.instances,
        r2021.analysis.cache_hits,
        r2021.analysis.cache_misses,
        r2021.analysis.unique_analysed
    );
    // Wall-clock content goes to stderr with the rest of the progress
    // output so stdout stays byte-identical across runs.
    eprintln!("offline-analysis stage breakdown (Apr 2021 snapshot):");
    eprintln!("{}", r2021.analysis_breakdown().render());
    println!(
        "Sec 4.2: device-profile invariance probe: {:?} (paper: no device-specific distribution)\n",
        r2021.dataset.device_profile_invariant
    );
    println!("{}", offline::tab3(&r2021).render());
    println!("{}", offline::fig4(&r2021).render());
    println!("{}", offline::fig5(&r2020, &r2021).render());
    println!("{}", offline::render_sec45(&offline::sec45(&r2021)));
    println!("{}", offline::fig6(&r2021).render());
    println!("{}", offline::fig7(&r2021).render());

    eprintln!("[3/5] runtime analysis across the Table 1 devices...");
    let sweep = runtime::latency_sweep(&r2021, &all_devices());
    println!("{}", runtime::fig8(&sweep).render());
    println!("{}", runtime::fig9(&sweep).render());
    println!("{}", runtime::fig10(&r2021)?.render());
    println!("{}", runtime::tab4(&r2021)?.render());

    eprintln!("[4/5] optimisation experiments...");
    println!("{}", offline::render_sec61(&offline::sec61(&r2021)));
    println!("{}", backends::fig11(&r2021).render());
    println!("{}", backends::fig12(&r2021).render());
    println!(
        "{}",
        backends::fig13(&r2021)?.render("Fig 13: TFLite CPU runtimes (CPU vs XNNPACK vs NNAPI)")
    );
    println!(
        "{}",
        backends::fig14(&r2021)?.render("Fig 14: SNPE hardware targets (TFLite + caffe)")
    );
    println!("{}", offline::fig15(&r2021).render());

    eprintln!("[5/5] extension experiments (§6.1 what-if, §8.1 co-habitation, ablations)...");
    println!("{}", gaugenn_core::experiments::whatif::whatif()?.render());
    println!(
        "{}",
        gaugenn_core::experiments::cohab::cohab_study(&r2021, 6)?.render()
    );
    println!(
        "{}",
        gaugenn_core::experiments::ablations::ablation_study(&r2021).render()
    );
    println!(
        "{}",
        gaugenn_core::experiments::offload::offload_study(&r2021)?.render()
    );
    eprintln!("done.");
    Ok(())
}
