//! `analyzebench` — worker-count, scheduling-mode and cache scaling for
//! the offline analysis pool.
//!
//! ```sh
//! cargo run --release -p gaugenn-bench --bin analyzebench            # small corpus
//! cargo run --release -p gaugenn-bench --bin analyzebench -- --scale tiny
//! ```
//!
//! Crawls one snapshot once, then analyses it several ways: sequentially
//! with the content-addressed cache disabled (every instance pays the
//! full decode + trace — the pre-cache behaviour for duplicated and
//! undecodable models), through [`AnalysisPool`]s of 1/2/4/8 workers
//! with the cache on, across the three scheduling modes (static shards,
//! deterministic LPT, planned stealing) at a fixed worker count, and
//! finally cold vs warm against a persistent on-disk [`CacheStore`].
//! Every run must produce the identical model list; wall time, speedup
//! over the uncached baseline, cache hit rate, planned byte imbalance
//! and persistent hit rate are printed. EXPERIMENTS.md and
//! `results/BENCH_sched.json` record a captured run.
//!
//! [`CacheStore`]: gaugenn_core::cachestore::CacheStore

use gaugenn_bench::cli::{self, ArgSpec};
use gaugenn_core::analyze::{AnalysisConfig, AnalysisPool};
use gaugenn_playstore::corpus::{generate, Snapshot};
use gaugenn_playstore::crawler::Crawler;
use gaugenn_playstore::server::StoreServer;
use gaugenn_sched::{assign, imbalance, SchedMode, WorkUnit};
use gaugenn_bench::stats::Stopwatch;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = cli::parse_or_exit(&ArgSpec::new(
        "analyzebench",
        "worker-count, scheduling-mode and cache scaling for the analysis pool",
    ));
    let (scale, seed) = (args.scale, args.seed);

    let server = StoreServer::start(generate(scale, Snapshot::Y2021, seed))?;
    let mut crawler = Crawler::builder(server.addr()).build()?;
    let crawled = crawler.crawl_all()?.apps;

    println!(
        "analysis pool scaling — scale {scale:?}, seed {seed}, {} apps, host cores: {}",
        crawled.len(),
        cores()
    );

    let t0 = Stopwatch::start();
    let baseline = AnalysisPool::new(AnalysisConfig {
        workers: 1,
        dedup_cache: false,
        ..AnalysisConfig::default()
    })
    .analyse(&crawled)?;
    let t_base = t0.elapsed();
    let sums: Vec<&str> = baseline.models.iter().map(|m| m.checksum.as_str()).collect();
    println!(
        "  sequential, no cache: {:>8.1} ms  ({} instances, {} unique models)",
        t_base.as_secs_f64() * 1e3,
        baseline.instances.len(),
        baseline.models.len()
    );

    for workers in [1usize, 2, 4, 8] {
        let t = Stopwatch::start();
        let out = AnalysisPool::new(AnalysisConfig::with_workers(workers)).analyse(&crawled)?;
        let dt = t.elapsed();
        let got: Vec<&str> = out.models.iter().map(|m| m.checksum.as_str()).collect();
        assert_eq!(got, sums, "pool must merge to the sequential model list");
        println!(
            "  {workers} worker(s), cached:  {:>8.1} ms  (speedup {:.2}x, hit rate {:.1}%)",
            dt.as_secs_f64() * 1e3,
            t_base.as_secs_f64() / dt.as_secs_f64(),
            out.stats.cache_hit_rate() * 100.0
        );
    }

    // Scheduling-mode comparison at a fixed worker count. Wall time is
    // noisy on small/1-core hosts, so the planned byte imbalance over the
    // app containers (max shard bytes / mean shard bytes) is printed too
    // — that is the quantity LPT actually optimises.
    let sched_workers = 4usize;
    let app_units: Vec<WorkUnit> = crawled
        .iter()
        .enumerate()
        .map(|(i, a)| WorkUnit {
            index: i,
            size: a.apk.len() as u64
                + a.obbs.iter().map(|(_, b)| b.len() as u64).sum::<u64>()
                + a.bundle.as_ref().map_or(0, |b| b.len() as u64),
        })
        .collect();
    println!("  scheduling modes at {sched_workers} workers:");
    for mode in [SchedMode::Static, SchedMode::Lpt, SchedMode::Stealing] {
        let plan = assign(&app_units, sched_workers, mode, seed);
        let t = Stopwatch::start();
        let out = AnalysisPool::new(AnalysisConfig {
            workers: sched_workers,
            sched: mode,
            sched_seed: seed,
            ..AnalysisConfig::default()
        })
        .analyse(&crawled)?;
        let dt = t.elapsed();
        let got: Vec<&str> = out.models.iter().map(|m| m.checksum.as_str()).collect();
        assert_eq!(got, sums, "every mode must merge to the same model list");
        println!(
            "    {:<8}  {:>8.1} ms  (planned byte imbalance {:.2})",
            mode.name(),
            dt.as_secs_f64() * 1e3,
            imbalance(&app_units, &plan)
        );
    }

    // Cold vs warm persistent cache: the first run against an empty
    // directory persists every unique analysis; the second attaches to
    // them and skips the trace entirely.
    let dir = std::env::temp_dir().join(format!("gaugenn-analyzebench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    println!("  persistent cache at {sched_workers} workers:");
    for label in ["cold", "warm"] {
        let t = Stopwatch::start();
        let out = AnalysisPool::new(AnalysisConfig {
            workers: sched_workers,
            cache_dir: Some(dir.clone()),
            ..AnalysisConfig::default()
        })
        .analyse(&crawled)?;
        let dt = t.elapsed();
        let got: Vec<&str> = out.models.iter().map(|m| m.checksum.as_str()).collect();
        assert_eq!(got, sums, "cache state must never change the model list");
        println!(
            "    {label:<5}  {:>8.1} ms  ({} disk hits / {} stored, {:.1}% of uniques warm)",
            dt.as_secs_f64() * 1e3,
            out.stats.persistent_hits,
            out.stats.persistent_stores,
            out.stats.persistent_hit_rate() * 100.0
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
