//! `analyzebench` — worker-count and cache scaling for the offline
//! analysis pool.
//!
//! ```sh
//! cargo run --release -p gaugenn-bench --bin analyzebench            # small corpus
//! cargo run --release -p gaugenn-bench --bin analyzebench -- tiny
//! ```
//!
//! Crawls one snapshot once, then analyses it four ways: sequentially
//! with the content-addressed cache disabled (every instance pays the
//! full decode + trace — the pre-cache behaviour for duplicated and
//! undecodable models), then through [`AnalysisPool`]s of 1/2/4/8
//! workers with the cache on. Every run must produce the identical model
//! list; wall time, speedup over the uncached baseline, and cache hit
//! rate are printed. EXPERIMENTS.md records a captured run.

use gaugenn_core::analyze::{AnalysisConfig, AnalysisPool};
use gaugenn_playstore::corpus::{generate, CorpusScale, Snapshot};
use gaugenn_playstore::crawler::Crawler;
use gaugenn_playstore::server::StoreServer;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let scale = match args.get(1).map(String::as_str) {
        Some("tiny") => CorpusScale::Tiny,
        Some("paper") => CorpusScale::Paper,
        None | Some("small") => CorpusScale::Small,
        Some(other) => {
            eprintln!("unknown scale '{other}' (expected tiny|small|paper)");
            std::process::exit(2);
        }
    };
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1402);

    let server = StoreServer::start(generate(scale, Snapshot::Y2021, seed))?;
    let mut crawler = Crawler::builder(server.addr()).build()?;
    let crawled = crawler.crawl_all()?.apps;

    println!(
        "analysis pool scaling — scale {scale:?}, seed {seed}, {} apps, host cores: {}",
        crawled.len(),
        cores()
    );

    let t0 = Instant::now();
    let baseline = AnalysisPool::new(AnalysisConfig {
        workers: 1,
        dedup_cache: false,
    })
    .analyse(&crawled)?;
    let t_base = t0.elapsed();
    let sums: Vec<&str> = baseline.models.iter().map(|m| m.checksum.as_str()).collect();
    println!(
        "  sequential, no cache: {:>8.1} ms  ({} instances, {} unique models)",
        t_base.as_secs_f64() * 1e3,
        baseline.instances.len(),
        baseline.models.len()
    );

    for workers in [1usize, 2, 4, 8] {
        let t = Instant::now();
        let out = AnalysisPool::new(AnalysisConfig::with_workers(workers)).analyse(&crawled)?;
        let dt = t.elapsed();
        let got: Vec<&str> = out.models.iter().map(|m| m.checksum.as_str()).collect();
        assert_eq!(got, sums, "pool must merge to the sequential model list");
        println!(
            "  {workers} worker(s), cached:  {:>8.1} ms  (speedup {:.2}x, hit rate {:.1}%)",
            dt.as_secs_f64() * 1e3,
            t_base.as_secs_f64() / dt.as_secs_f64(),
            out.stats.cache_hit_rate() * 100.0
        );
    }
    Ok(())
}

fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
