//! `poolbench` — worker-count vs wall-time for the sharded crawl pool.
//!
//! ```sh
//! cargo run --release -p gaugenn-bench --bin poolbench            # small corpus
//! cargo run --release -p gaugenn-bench --bin poolbench -- tiny
//! ```
//!
//! Crawls one snapshot sequentially and then through [`CrawlPool`]s of
//! 2/4/8 workers, verifying every run merges to the identical corpus and
//! printing the wall time of each. EXPERIMENTS.md records a captured run.

use gaugenn_playstore::corpus::{generate, CorpusScale, Snapshot};
use gaugenn_playstore::crawler::Crawler;
use gaugenn_playstore::pool::{CrawlPool, CrawlPoolConfig};
use gaugenn_playstore::server::StoreServer;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let scale = match args.get(1).map(String::as_str) {
        Some("tiny") => CorpusScale::Tiny,
        Some("paper") => CorpusScale::Paper,
        None | Some("small") => CorpusScale::Small,
        Some(other) => {
            eprintln!("unknown scale '{other}' (expected tiny|small|paper)");
            std::process::exit(2);
        }
    };
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1402);

    let server = StoreServer::start(generate(scale, Snapshot::Y2021, seed))?;
    let addr = server.addr();

    println!("crawl pool scaling — scale {scale:?}, seed {seed}, host cores: {}", cores());
    let t0 = Instant::now();
    let mut seq = Crawler::builder(addr).build()?;
    let baseline = seq.crawl_all()?;
    let t_seq = t0.elapsed();
    println!(
        "  sequential: {:>8.1} ms  ({} apps, {} requests)",
        t_seq.as_secs_f64() * 1e3,
        baseline.apps.len(),
        baseline.stats.requests
    );

    for workers in [2usize, 4, 8] {
        let t = Instant::now();
        let pooled = CrawlPool::new(CrawlPoolConfig {
            workers,
            ..CrawlPoolConfig::default()
        })
        .crawl(addr)?;
        let dt = t.elapsed();
        assert_eq!(
            pooled.outcome.apps, baseline.apps,
            "pool must merge to the sequential corpus"
        );
        println!(
            "  {workers} workers:  {:>8.1} ms  (speedup {:.2}x)",
            dt.as_secs_f64() * 1e3,
            t_seq.as_secs_f64() / dt.as_secs_f64()
        );
    }
    Ok(())
}

fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
