//! `poolbench` — worker-count and scheduling-mode scaling for the
//! sharded crawl pool.
//!
//! ```sh
//! cargo run --release -p gaugenn-bench --bin poolbench            # small corpus
//! cargo run --release -p gaugenn-bench --bin poolbench -- --scale tiny
//! cargo run --release -p gaugenn-bench --bin poolbench -- --workers 1024 --reactor epoll --json
//! ```
//!
//! Crawls one snapshot sequentially, then through [`CrawlPool`]s at
//! several worker counts under each scheduling mode (static shards,
//! deterministic LPT, planned stealing), verifying every run merges to
//! the identical corpus. The sweep runs 2/4/8 workers by default and
//! extends through 32/128/512 up to `--workers` when a larger fleet is
//! requested — every worker holds one store connection, so the high end
//! is a fan-in test of the serving loop selected with `--reactor`
//! (default: `GAUGENN_REACTOR`, then the platform default).
//!
//! Besides wall time, each pooled run prints its per-worker byte
//! imbalance (max worker bytes / mean worker bytes, 1.00 = perfectly
//! balanced) — on a single-core host that planning metric, not wall
//! time, is the honest scheduling comparison. EXPERIMENTS.md and
//! `results/BENCH_sched.json` record a captured run; `--json` emits the
//! machine-readable rows (with their `reactor` column) that
//! `results/BENCH_net.json` aggregates.
//!
//! A second stage sweeps connections-per-worker (1 … `--connections`,
//! default 256) on a fixed two-worker pool, once with the sequential
//! blocking client and once with the non-blocking reactor client — the
//! row pair that shows one worker thread multiplexing hundreds of
//! in-flight connections (`peak_in_flight`) while still merging the
//! byte-identical corpus.

use gaugenn_bench::cli::{self, ArgSpec};
use gaugenn_playstore::corpus::{generate, Snapshot};
use gaugenn_playstore::crawler::Crawler;
use gaugenn_playstore::pool::{CrawlPool, CrawlPoolConfig};
use gaugenn_playstore::reactor::ReactorMode;
use gaugenn_playstore::server::{ServerOptions, StoreServer};
use gaugenn_sched::SchedMode;
use gaugenn_bench::stats::Stopwatch;

/// One pooled crawl at a fixed (mode, workers) point.
struct PoolRun {
    mode: &'static str,
    workers: usize,
    wall_ms: f64,
    speedup: f64,
    imbalance: f64,
}

/// One pooled crawl at a fixed (client, connections-per-worker) point.
struct ConnRun {
    client: &'static str,
    connections: usize,
    wall_ms: f64,
    speedup: f64,
    peak_in_flight: usize,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ArgSpec {
        takes_workers: true,
        takes_json: true,
        takes_reactor: true,
        takes_connections: true,
        default_workers: 8,
        default_connections: 256,
        ..ArgSpec::new(
            "poolbench",
            "worker-count and scheduling-mode scaling for the sharded crawl pool",
        )
    };
    let args = cli::parse_or_exit(&spec);
    let (scale, seed) = (args.scale, args.seed);

    let server = StoreServer::start_with(
        generate(scale, Snapshot::Y2021, seed),
        ServerOptions {
            reactor: args.reactor,
            ..ServerOptions::default()
        },
    )?;
    let endpoint = server.endpoint();
    let reactor = server.mode().name();
    let counts = worker_counts(args.workers);

    eprintln!(
        "crawl pool scaling — scale {scale:?}, seed {seed}, reactor {reactor}, host cores: {}",
        cores()
    );
    let t0 = Stopwatch::start();
    let mut seq = Crawler::builder_at(endpoint.clone()).build()?;
    let baseline = seq.crawl_all()?;
    let t_seq = t0.elapsed();
    eprintln!(
        "  sequential: {:>8.1} ms  ({} apps, {} requests)",
        t_seq.as_secs_f64() * 1e3,
        baseline.apps.len(),
        baseline.stats.requests
    );

    let mut runs: Vec<PoolRun> = Vec::new();
    for mode in [SchedMode::Static, SchedMode::Lpt, SchedMode::Stealing] {
        eprintln!("  mode {}:", mode.name());
        for &workers in &counts {
            let t = Stopwatch::start();
            let pooled = CrawlPool::new(CrawlPoolConfig {
                workers,
                sched: mode,
                sched_seed: seed,
                ..CrawlPoolConfig::default()
            })
            .crawl_at(&endpoint)?;
            let dt = t.elapsed();
            assert_eq!(
                pooled.outcome.apps, baseline.apps,
                "pool must merge to the sequential corpus in every mode"
            );
            let run = PoolRun {
                mode: mode.name(),
                workers,
                wall_ms: dt.as_secs_f64() * 1e3,
                speedup: t_seq.as_secs_f64() / dt.as_secs_f64(),
                imbalance: byte_imbalance(
                    &pooled.per_worker.iter().map(|w| w.bytes).collect::<Vec<_>>(),
                ),
            };
            eprintln!(
                "    {workers} workers:  {:>8.1} ms  (speedup {:.2}x, byte imbalance {:.2})",
                run.wall_ms, run.speedup, run.imbalance
            );
            runs.push(run);
        }
    }

    // Connection-scaling stage: a fixed two-worker pool, fanning each
    // worker out over 1 … `--connections` multiplexed connections, first
    // with the sequential blocking client (the baseline) and then with
    // the non-blocking reactor client driving every lane from the one
    // worker thread. The corpus must merge identically at every point.
    const CONN_WORKERS: usize = 2;
    let mut conn_runs: Vec<ConnRun> = Vec::new();
    eprintln!("  connections per worker ({CONN_WORKERS} workers):");
    for client in [ReactorMode::Threaded, ReactorMode::Epoll] {
        for &connections in &conn_counts(args.connections) {
            let t = Stopwatch::start();
            let pooled = CrawlPool::new(CrawlPoolConfig {
                workers: CONN_WORKERS,
                sched: SchedMode::Lpt,
                sched_seed: seed,
                connections_per_worker: connections,
                reactor: Some(client),
                ..CrawlPoolConfig::default()
            })
            .crawl_at(&endpoint)?;
            let dt = t.elapsed();
            assert_eq!(
                pooled.outcome.apps, baseline.apps,
                "pool must merge to the sequential corpus at every connection count"
            );
            let run = ConnRun {
                client: pooled.reactor.name(),
                connections,
                wall_ms: dt.as_secs_f64() * 1e3,
                speedup: t_seq.as_secs_f64() / dt.as_secs_f64(),
                peak_in_flight: pooled.peak_in_flight,
            };
            eprintln!(
                "    {:<8} x{connections:<4}: {:>8.1} ms  (speedup {:.2}x, peak in-flight {})",
                run.client, run.wall_ms, run.speedup, run.peak_in_flight
            );
            conn_runs.push(run);
        }
    }

    if args.json {
        println!("{{");
        println!("  \"bench\": \"crawl-pool\",");
        println!("  \"scale\": \"{scale:?}\",");
        println!("  \"seed\": {seed},");
        println!("  \"reactor\": \"{reactor}\",");
        println!("  \"sequential_ms\": {:.1},", t_seq.as_secs_f64() * 1e3);
        println!("  \"runs\": [");
        for (i, r) in runs.iter().enumerate() {
            let comma = if i + 1 == runs.len() { "" } else { "," };
            println!(
                "    {{\"mode\": \"{}\", \"workers\": {}, \"reactor\": \"{reactor}\", \
                 \"wall_ms\": {:.1}, \"speedup\": {:.2}, \"byte_imbalance\": {:.2}}}{comma}",
                r.mode, r.workers, r.wall_ms, r.speedup, r.imbalance
            );
        }
        println!("  ],");
        println!("  \"connection_runs\": [");
        for (i, r) in conn_runs.iter().enumerate() {
            let comma = if i + 1 == conn_runs.len() { "" } else { "," };
            println!(
                "    {{\"client\": \"{}\", \"workers\": 2, \"connections_per_worker\": {}, \
                 \"reactor\": \"{reactor}\", \"wall_ms\": {:.1}, \"speedup\": {:.2}, \
                 \"peak_in_flight\": {}}}{comma}",
                r.client, r.connections, r.wall_ms, r.speedup, r.peak_in_flight
            );
        }
        println!("  ]");
        println!("}}");
    } else {
        println!(
            "crawl pool scaling — scale {scale:?}, seed {seed}, reactor {reactor}: \
             sequential {:.1} ms, all {} pooled runs merged byte-identically",
            t_seq.as_secs_f64() * 1e3,
            runs.len()
        );
        println!("mode      workers   wall ms  speedup  imbalance");
        for r in &runs {
            println!(
                "{:<9} {:>7}  {:>8.1}  {:>6.2}x  {:>8.2}",
                r.mode, r.workers, r.wall_ms, r.speedup, r.imbalance
            );
        }
        println!("client    conns/worker   wall ms  speedup  peak in-flight");
        for r in &conn_runs {
            println!(
                "{:<9} {:>12}  {:>8.1}  {:>6.2}x  {:>14}",
                r.client, r.connections, r.wall_ms, r.speedup, r.peak_in_flight
            );
        }
    }
    Ok(())
}

/// Connections-per-worker counts to sweep: 1, 8, 64 below `max`, ending
/// at `max` itself — the default sweep is 1, 8, 64, 256.
fn conn_counts(max: usize) -> Vec<usize> {
    let max = max.max(1);
    let mut counts: Vec<usize> = [1usize, 8, 64].into_iter().filter(|&c| c < max).collect();
    counts.push(max);
    counts
}

/// Worker counts to sweep: always 2/4/8, extended through the fan-in
/// range (32, 128, 512) below `max`, ending at `max` when it is larger
/// than the base sweep.
fn worker_counts(max: usize) -> Vec<usize> {
    let mut counts: Vec<usize> = [2usize, 4, 8].into_iter().filter(|&c| c <= max.max(8)).collect();
    for c in [32usize, 128, 512] {
        if c < max {
            counts.push(c);
        }
    }
    if max > 8 {
        counts.push(max);
    }
    counts
}

/// Max worker bytes over mean worker bytes; 1.00 is a perfect balance.
fn byte_imbalance(bytes: &[u64]) -> f64 {
    if bytes.is_empty() {
        return 1.0;
    }
    let total: u64 = bytes.iter().sum();
    let max = bytes.iter().copied().max().unwrap_or(0);
    if total == 0 {
        1.0
    } else {
        max as f64 * bytes.len() as f64 / total as f64
    }
}

fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
