//! `poolbench` — worker-count and scheduling-mode scaling for the
//! sharded crawl pool.
//!
//! ```sh
//! cargo run --release -p gaugenn-bench --bin poolbench            # small corpus
//! cargo run --release -p gaugenn-bench --bin poolbench -- --scale tiny
//! ```
//!
//! Crawls one snapshot sequentially, then through [`CrawlPool`]s at
//! several worker counts under each scheduling mode (static shards,
//! deterministic LPT, planned stealing), verifying every run merges to
//! the identical corpus. Besides wall time, each pooled run prints its
//! per-worker byte imbalance (max worker bytes / mean worker bytes, 1.00
//! = perfectly balanced) — on a single-core host that planning metric,
//! not wall time, is the honest scheduling comparison. EXPERIMENTS.md
//! and `results/BENCH_sched.json` record a captured run.

use gaugenn_bench::cli::{self, ArgSpec};
use gaugenn_playstore::corpus::{generate, Snapshot};
use gaugenn_playstore::crawler::Crawler;
use gaugenn_playstore::pool::{CrawlPool, CrawlPoolConfig};
use gaugenn_playstore::server::StoreServer;
use gaugenn_sched::SchedMode;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = cli::parse_or_exit(&ArgSpec::new(
        "poolbench",
        "worker-count and scheduling-mode scaling for the sharded crawl pool",
    ));
    let (scale, seed) = (args.scale, args.seed);

    let server = StoreServer::start(generate(scale, Snapshot::Y2021, seed))?;
    let addr = server.addr();

    println!("crawl pool scaling — scale {scale:?}, seed {seed}, host cores: {}", cores());
    let t0 = Instant::now();
    let mut seq = Crawler::builder(addr).build()?;
    let baseline = seq.crawl_all()?;
    let t_seq = t0.elapsed();
    println!(
        "  sequential: {:>8.1} ms  ({} apps, {} requests)",
        t_seq.as_secs_f64() * 1e3,
        baseline.apps.len(),
        baseline.stats.requests
    );

    for mode in [SchedMode::Static, SchedMode::Lpt, SchedMode::Stealing] {
        println!("  mode {}:", mode.name());
        for workers in [2usize, 4, 8] {
            let t = Instant::now();
            let pooled = CrawlPool::new(CrawlPoolConfig {
                workers,
                sched: mode,
                sched_seed: seed,
                ..CrawlPoolConfig::default()
            })
            .crawl(addr)?;
            let dt = t.elapsed();
            assert_eq!(
                pooled.outcome.apps, baseline.apps,
                "pool must merge to the sequential corpus in every mode"
            );
            println!(
                "    {workers} workers:  {:>8.1} ms  (speedup {:.2}x, byte imbalance {:.2})",
                dt.as_secs_f64() * 1e3,
                t_seq.as_secs_f64() / dt.as_secs_f64(),
                byte_imbalance(&pooled.per_worker.iter().map(|w| w.bytes).collect::<Vec<_>>())
            );
        }
    }
    Ok(())
}

/// Max worker bytes over mean worker bytes; 1.00 is a perfect balance.
fn byte_imbalance(bytes: &[u64]) -> f64 {
    if bytes.is_empty() {
        return 1.0;
    }
    let total: u64 = bytes.iter().sum();
    let max = bytes.iter().copied().max().unwrap_or(0);
    if total == 0 {
        1.0
    } else {
        max as f64 * bytes.len() as f64 / total as f64
    }
}

fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
