//! `querybench` — QPS and tail latency of the `/query/*` route family.
//!
//! ```sh
//! cargo run --release -p gaugenn-bench --bin querybench                 # small corpus
//! cargo run --release -p gaugenn-bench --bin querybench -- --scale tiny --workers 64
//! cargo run --release -p gaugenn-bench --bin querybench -- --reactor sim
//! cargo run --release -p gaugenn-bench --bin querybench -- --json > results/BENCH_query.json
//! ```
//!
//! Crawls and analyses one snapshot, folds it into the [`CorpusIndex`],
//! attaches the index to a [`StoreServer`], then replays one seeded
//! query stream (model filters, range scans, app filters, stats) at
//! increasing connection counts — 1 up to `--workers` (default 1024)
//! concurrent connections, driven as non-blocking client state machines
//! by a handful of reactor threads (hosts without epoll fall back to a
//! blocking [`QueryClient`] driver pool with the identical request
//! schedule). The store's serving loop is pinned with `--reactor
//! threaded|epoll|sim` (default: `GAUGENN_REACTOR`, then the platform
//! default); the resolved loop and the client path are recorded in the
//! output so the threaded baseline and the event-driven sweeps are
//! comparable rows of `results/BENCH_net.json`.
//!
//! Each run reports QPS and p50/p99 latency — percentiles computed over
//! the *merged* sample set of every client (see [`gaugenn_bench::stats`])
//! so the tail is a corpus property, not a per-client average — plus a
//! crc32 digest over every response byte in stream order: the digest
//! must be identical at every connection count — the ranking-determinism
//! contract of DESIGN.md §13 — and the run aborts if it is not. A final
//! chaos section replays the stream against a server injecting
//! connection resets and 429/503 statuses, asserting the stream still
//! completes byte-identically (typed retries, no panics).
//!
//! `--json` prints a machine-readable record for
//! `results/BENCH_query.json` / `results/BENCH_net.json`.
//!
//! [`CorpusIndex`]: gaugenn_index::CorpusIndex
//! [`QueryClient`]: gaugenn_playstore::QueryClient
//! [`StoreServer`]: gaugenn_playstore::StoreServer

use gaugenn_apk::crc32::crc32;
use gaugenn_bench::cli::{self, ArgSpec};
use gaugenn_bench::stats;
use gaugenn_core::pipeline::{Pipeline, PipelineConfig};
use gaugenn_dnn::task::Task;
use gaugenn_index::{AppQuery, ModelQuery};
use gaugenn_modelfmt::Framework;
use gaugenn_playstore::categories::CATEGORIES;
use gaugenn_playstore::chaos::{FaultKind, FaultPlan, FaultPlanConfig};
use gaugenn_playstore::corpus::{generate, CorpusScale, Snapshot};
use gaugenn_playstore::crawler::{CrawlStats, RetryPolicy};
use gaugenn_playstore::net::Endpoint;
use gaugenn_playstore::proto::Response;
use gaugenn_playstore::route::Route;
use gaugenn_playstore::server::{ServerOptions, StoreServer};
use gaugenn_playstore::{
    drive_lanes, nonblocking_tcp_available, LaneJob, LaneOpts, LaneSpec, QueryClient,
};
use gaugenn_bench::stats::Stopwatch;
use std::time::Duration;

/// One measured replay of the stream at a fixed connection count.
struct RunResult {
    clients: usize,
    wall_ms: f64,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    digest: u32,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ArgSpec {
        takes_workers: true,
        takes_json: true,
        takes_reactor: true,
        default_workers: 1024,
        ..ArgSpec::new("querybench", "QPS and tail latency of the /query/* routes")
    };
    let args = cli::parse_or_exit(&spec);
    let (scale, seed) = (args.scale, args.seed);

    // Stage 1: build the index the server will answer from — the same
    // crawl + analyse + ingest pipeline stage `repro` runs.
    eprintln!("querybench — scale {scale:?}, seed {seed}: building the corpus index...");
    let report = Pipeline::new(PipelineConfig::builder(scale, Snapshot::Y2021, seed).build()).run()?;
    let index = report.corpus_index.clone();
    eprintln!(
        "  index: {} models, {} apps, snapshots {:?}",
        index.model_count(),
        index.app_count(),
        index.snapshot_labels()
    );

    let queries = stream(seed, query_count(scale, args.workers));
    let counts = client_counts(args.workers);

    // Stage 2: the calm sweep. One server, one seeded stream, replayed
    // at every connection count; every digest must match the first.
    let server = StoreServer::start_with(
        generate(scale, Snapshot::Y2021, seed),
        ServerOptions {
            chaos: None,
            index: Some(index.clone()),
            reactor: args.reactor,
            ..ServerOptions::default()
        },
    )?;
    // The loop the server actually runs (epoll falls back to threaded on
    // hosts without epoll) — this is the `reactor` column of the output.
    let reactor = server.mode().name();
    // The load generator: non-blocking lane swarm wherever a substrate
    // exists, the blocking driver pool otherwise.
    let client = if swarm_capable(&server.endpoint()) {
        "swarm"
    } else {
        "threaded"
    };
    eprintln!("  reactor: {reactor}, client: {client}");
    let mut runs: Vec<RunResult> = Vec::new();
    for &clients in &counts {
        let run = replay(&server.endpoint(), &queries, clients, seed)?;
        eprintln!(
            "  {:>4} client(s): {:>8.1} ms, {:>8.0} qps, p50 {:>6.0} us, p99 {:>6.0} us, digest {:08x}",
            run.clients, run.wall_ms, run.qps, run.p50_us, run.p99_us, run.digest
        );
        runs.push(run);
    }
    let digest = runs[0].digest;
    for run in &runs {
        assert_eq!(
            run.digest, digest,
            "response stream must be byte-identical at every connection count \
             ({} clients diverged)",
            run.clients
        );
    }

    // Stage 3: the same stream under injected faults. Two faults per
    // route stays under the retry budget (4 attempts), so every query
    // still completes — with the same bytes — through typed retries.
    let chaos = FaultPlan::new(FaultPlanConfig {
        seed: seed ^ 0x5eed,
        fault_permille: 300,
        kinds: vec![FaultKind::Reset, FaultKind::TransientStatus],
        max_faults_per_route: 2,
        ..FaultPlanConfig::default()
    });
    let stormy_server = StoreServer::start_with(
        generate(scale, Snapshot::Y2021, seed),
        ServerOptions {
            chaos: Some(chaos),
            index: Some(index),
            reactor: args.reactor,
            ..ServerOptions::default()
        },
    )?;
    let chaos_clients = *counts.get(2).unwrap_or(counts.last().expect("counts non-empty"));
    let chaos_run = replay(&stormy_server.endpoint(), &queries, chaos_clients, seed)?;
    eprintln!(
        "  chaos ({} client(s), resets + 429/503): {:>8.1} ms, {:>8.0} qps, digest {:08x}",
        chaos_run.clients, chaos_run.wall_ms, chaos_run.qps, chaos_run.digest
    );
    assert_eq!(
        chaos_run.digest, digest,
        "chaos must only cost retries, never change response bytes"
    );

    if args.json {
        println!("{{");
        println!("  \"bench\": \"query-serving\",");
        println!("  \"scale\": \"{scale:?}\",");
        println!("  \"seed\": {seed},");
        println!("  \"reactor\": \"{reactor}\",");
        println!("  \"client\": \"{client}\",");
        println!("  \"queries\": {},", queries.len());
        println!("  \"digest\": \"{digest:08x}\",");
        println!("  \"runs\": [");
        for (i, r) in runs.iter().enumerate() {
            let comma = if i + 1 == runs.len() { "" } else { "," };
            println!(
                "    {{\"clients\": {}, \"reactor\": \"{reactor}\", \"wall_ms\": {:.1}, \
                 \"qps\": {:.0}, \"p50_us\": {:.0}, \"p99_us\": {:.0}}}{comma}",
                r.clients, r.wall_ms, r.qps, r.p50_us, r.p99_us
            );
        }
        println!("  ],");
        println!(
            "  \"chaos\": {{\"clients\": {}, \"reactor\": \"{reactor}\", \"wall_ms\": {:.1}, \
             \"qps\": {:.0}, \"byte_identical\": true}}",
            chaos_run.clients, chaos_run.wall_ms, chaos_run.qps
        );
        println!("}}");
    } else {
        println!(
            "query serving — scale {scale:?}, seed {seed}, reactor {reactor}, \
             client {client}, {} queries",
            queries.len()
        );
        println!("clients   wall ms       qps   p50 us   p99 us");
        for r in &runs {
            println!(
                "{:>7}  {:>8.1}  {:>8.0}  {:>7.0}  {:>7.0}",
                r.clients, r.wall_ms, r.qps, r.p50_us, r.p99_us
            );
        }
        println!(
            "all {} runs byte-identical (digest {digest:08x}); chaos run byte-identical too",
            runs.len() + 1
        );
    }
    Ok(())
}

/// Cap on load-generator OS threads for the *blocking* fallback path.
/// Connections above this count are multiplexed over the pool
/// (wrk-style): the point of the high-count rows is the *server's*
/// connection ceiling, and a thread per connection would measure the
/// generator thrashing the scheduler instead of the loop under test.
const MAX_DRIVERS: usize = 64;

/// Reactor driver threads for the swarm path — the whole point of the
/// non-blocking client is that a handful of threads holds every
/// connection in flight simultaneously.
const SWARM_DRIVERS: usize = 8;

/// One completed turn: (connection, stream index, response bytes, µs).
type Turn = (usize, usize, Vec<u8>, f64);

/// Whether this host can run the non-blocking swarm client against
/// `endpoint` (sim endpoints always can; TCP needs epoll).
fn swarm_capable(endpoint: &Endpoint) -> bool {
    match endpoint {
        Endpoint::Sim(_) => true,
        Endpoint::Tcp(_) => nonblocking_tcp_available(),
    }
}

/// Replay `queries` through `clients` concurrent connections. Query `i`
/// goes to connection `i % clients`; responses are digested in stream
/// order, so the digest is independent of completion order, and every
/// connection's latency samples are merged before percentiles are
/// taken.
///
/// The swarm path (the default wherever a non-blocking substrate
/// exists) runs every connection as a [`LaneJob`] state machine:
/// `SWARM_DRIVERS` reactor threads hold all `clients` connections in
/// flight at once. Hosts without epoll fall back to the blocking driver
/// pool, whose request-per-connection schedule — and therefore the
/// response stream — is identical.
fn replay(
    endpoint: &Endpoint,
    queries: &[Route],
    clients: usize,
    seed: u64,
) -> Result<RunResult, Box<dyn std::error::Error>> {
    if swarm_capable(endpoint) {
        swarm_replay(endpoint, queries, clients, seed)
    } else {
        blocking_replay(endpoint, queries, clients, seed)
    }
}

/// A swarm lane's route plan, stamping each turn with its stream index
/// and wall-clock latency (latency timing lives here in the bench, not
/// in the library, so the deterministic client stays clock-free).
struct TimedJob {
    plan: Vec<(usize, Route)>,
    next: usize,
    inflight: Option<(usize, Stopwatch)>,
    done: Vec<(usize, Vec<u8>, f64)>,
    failed: Option<String>,
}

impl LaneJob for TimedJob {
    fn next_request(&mut self, _stats: &mut CrawlStats) -> Option<(Route, bool)> {
        if self.failed.is_some() {
            return None;
        }
        let (i, route) = self.plan.get(self.next)?.clone();
        self.next += 1;
        self.inflight = Some((i, Stopwatch::start()));
        Some((route, false))
    }

    fn on_result(&mut self, result: gaugenn_playstore::Result<Response>) {
        let (i, t) = self.inflight.take().expect("lane result without a request");
        match result {
            Ok(resp) => {
                let mut bytes = resp.status.to_be_bytes().to_vec();
                bytes.extend_from_slice(&resp.body);
                self.done.push((i, bytes, t.elapsed().as_secs_f64() * 1e6));
            }
            Err(e) => self.failed = Some(format!("query {i}: {e}")),
        }
    }
}

/// The non-blocking replay: lanes over `SWARM_DRIVERS` reactor threads.
fn swarm_replay(
    endpoint: &Endpoint,
    queries: &[Route],
    clients: usize,
    seed: u64,
) -> Result<RunResult, Box<dyn std::error::Error>> {
    let n = queries.len();
    let drivers = clients.min(SWARM_DRIVERS);
    let mut responses: Vec<Option<Vec<u8>>> = vec![None; n];
    let mut per_conn: Vec<Vec<f64>> = vec![Vec::new(); clients];
    let t0 = Stopwatch::start();
    let harvested: Vec<Result<_, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..drivers)
            .map(|d| {
                let endpoint = endpoint.clone();
                scope.spawn(move || {
                    // Driver d owns connections d, d+D, …; connection c's
                    // t-th query is stream index t * clients + c — the
                    // same round-robin split the blocking pool walks.
                    let specs: Vec<LaneSpec<TimedJob>> = (d..clients)
                        .step_by(drivers)
                        .filter_map(|c| {
                            let plan: Vec<(usize, Route)> = (0..)
                                .map(|t| t * clients + c)
                                .take_while(|&i| i < n)
                                .map(|i| (i, queries[i].clone()))
                                .collect();
                            (!plan.is_empty()).then(|| LaneSpec {
                                connection_id: c as u64,
                                retry: RetryPolicy {
                                    jitter_seed: seed ^ c as u64,
                                    ..RetryPolicy::default()
                                },
                                job: TimedJob {
                                    plan,
                                    next: 0,
                                    inflight: None,
                                    done: Vec::new(),
                                    failed: None,
                                },
                            })
                        })
                        .collect();
                    let opts = LaneOpts {
                        connect_timeout: Duration::from_secs(30),
                        read_timeout: Duration::from_secs(30),
                        sim_seed: seed ^ d as u64,
                        ..LaneOpts::default()
                    };
                    drive_lanes(&endpoint, specs, &opts, None)
                        .map_err(|e| format!("swarm driver {d}: {e}"))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("swarm driver panicked"))
            .collect()
    });
    for res in harvested {
        let (outcomes, _report) = res?;
        for o in outcomes {
            let c = o.connection_id as usize;
            if let Some(reason) = o.job.failed {
                return Err(reason.into());
            }
            for (i, bytes, dt) in o.job.done {
                responses[i] = Some(bytes);
                per_conn[c].push(dt);
            }
        }
    }
    finish(clients, responses, per_conn, t0)
}

/// The blocking fallback: a bounded driver pool walking its connections
/// round-robin, one request/response turn each, so in-flight load is
/// `min(clients, MAX_DRIVERS)` while connection state scales with
/// `clients`.
fn blocking_replay(
    endpoint: &Endpoint,
    queries: &[Route],
    clients: usize,
    seed: u64,
) -> Result<RunResult, Box<dyn std::error::Error>> {
    let n = queries.len();
    let drivers = clients.min(MAX_DRIVERS);
    let mut responses: Vec<Option<Vec<u8>>> = vec![None; n];
    let mut per_conn: Vec<Vec<f64>> = vec![Vec::new(); clients];
    let t0 = Stopwatch::start();
    std::thread::scope(|scope| -> Result<(), String> {
        let mut handles = Vec::new();
        for d in 0..drivers {
            let endpoint = endpoint.clone();
            handles.push(scope.spawn(
                move || -> Result<Vec<Turn>, String> {
                    // Open every connection this driver owns up front —
                    // the server holds all of them simultaneously.
                    // Generous timeouts: with hundreds of peers
                    // time-sharing the box a turn can legitimately wait
                    // whole seconds — that's queueing (reported as
                    // latency), not failure.
                    let mut conns = Vec::new();
                    for c in (d..clients).step_by(drivers) {
                        let client = QueryClient::builder_at(endpoint.clone())
                            .connection_id(c as u64)
                            .jitter_seed(seed ^ c as u64)
                            .timeouts(Duration::from_secs(30), Duration::from_secs(30))
                            .build()
                            .map_err(|e| format!("client {c}: {e}"))?;
                        conns.push((c, client));
                    }
                    // Round-robin turns: connection c's t-th query is
                    // stream index t * clients + c.
                    let mut out = Vec::new();
                    let mut turn = 0usize;
                    loop {
                        let mut progressed = false;
                        for (c, client) in conns.iter_mut() {
                            let i = turn * clients + *c;
                            if i >= n {
                                continue;
                            }
                            progressed = true;
                            let route = &queries[i];
                            let t = Stopwatch::start();
                            let resp = client
                                .raw(route)
                                .map_err(|e| format!("query {i} ({}): {e}", route.wire_path()))?;
                            let dt = t.elapsed().as_secs_f64() * 1e6;
                            let mut bytes = resp.status.to_be_bytes().to_vec();
                            bytes.extend_from_slice(&resp.body);
                            out.push((*c, i, bytes, dt));
                        }
                        if !progressed {
                            break;
                        }
                        turn += 1;
                    }
                    Ok(out)
                },
            ));
        }
        for handle in handles {
            for (c, i, bytes, dt) in handle.join().expect("driver thread panicked")? {
                responses[i] = Some(bytes);
                per_conn[c].push(dt);
            }
        }
        Ok(())
    })?;
    finish(clients, responses, per_conn, t0)
}

/// Shared tail of both replay paths: stamp the wall clock, digest the
/// stream in order, merge every connection's samples into one
/// percentile base.
fn finish(
    clients: usize,
    responses: Vec<Option<Vec<u8>>>,
    per_conn: Vec<Vec<f64>>,
    t0: Stopwatch,
) -> Result<RunResult, Box<dyn std::error::Error>> {
    let wall = t0.elapsed();
    let n = responses.len();
    let mut all = Vec::new();
    for (i, r) in responses.into_iter().enumerate() {
        all.extend(r.unwrap_or_else(|| panic!("query {i} was never executed")));
    }
    let latencies_us = stats::merge_samples(per_conn);
    Ok(RunResult {
        clients,
        wall_ms: wall.as_secs_f64() * 1e3,
        qps: n as f64 / wall.as_secs_f64(),
        p50_us: stats::percentile(&latencies_us, 50.0),
        p99_us: stats::percentile(&latencies_us, 99.0),
        digest: crc32(&all),
    })
}

/// Seeded query stream: a deterministic mix of the route family's
/// shapes — full scans, dimension filters, range scans, app queries and
/// stats — so every replay issues byte-identical requests.
fn stream(seed: u64, n: usize) -> Vec<Route> {
    let mut state = seed;
    let mut next = move || splitmix64(&mut state);
    (0..n)
        .map(|_| {
            let r = next();
            match r % 8 {
                0 => Route::QueryModels(ModelQuery {
                    limit: Some(1 + next() % 64),
                    ..ModelQuery::default()
                }),
                1 => Route::QueryModels(ModelQuery {
                    frameworks: vec![
                        Framework::ALL[(next() % Framework::ALL.len() as u64) as usize]
                            .name()
                            .to_string(),
                    ],
                    ..ModelQuery::default()
                }),
                2 => Route::QueryModels(ModelQuery {
                    tasks: vec![Task::ALL[(next() % Task::ALL.len() as u64) as usize]
                        .name()
                        .to_string()],
                    snapshot: Some("Apr 2021".to_string()),
                    ..ModelQuery::default()
                }),
                3 => {
                    let lo = next() % 1_000_000_000;
                    Route::QueryModels(ModelQuery {
                        min_flops: Some(lo),
                        max_flops: Some(lo + next() % 10_000_000_000),
                        ..ModelQuery::default()
                    })
                }
                4 => Route::QueryModels(ModelQuery {
                    quantised: Some(next() % 2 == 0),
                    min_params: Some(next() % 1_000_000),
                    limit: Some(1 + next() % 32),
                    ..ModelQuery::default()
                }),
                5 => Route::QueryApps(AppQuery {
                    categories: vec![CATEGORIES
                        [(next() % CATEGORIES.len() as u64) as usize]
                        .name
                        .to_string()],
                    ..AppQuery::default()
                }),
                6 => Route::QueryApps(AppQuery {
                    ml_only: next() % 2 == 0,
                    cloud: Some(next() % 2 == 0),
                    limit: Some(1 + next() % 128),
                    ..AppQuery::default()
                }),
                _ => Route::QueryStats,
            }
        })
        .collect()
}

/// Stream length: enough that per-connection setup (connect, and a
/// thread spawn per client) amortises away even at the top connection
/// count — 16 queries per connection minimum — scaled down for the tiny
/// corpus.
fn query_count(scale: CorpusScale, max_clients: usize) -> usize {
    let base = match scale {
        CorpusScale::Tiny => 256,
        CorpusScale::Small => 1024,
        CorpusScale::Paper => 2048,
    };
    base.max(max_clients * 16)
}

/// Connection counts to sweep: 1, then powers of two through the C10k
/// range (8 … 512) below `max`, always ending at `max` itself — so the
/// default sweep is 1, 8, 32, 128, 256, 512, 1024.
fn client_counts(max: usize) -> Vec<usize> {
    let mut counts = vec![1usize];
    for c in [8usize, 32, 128, 256, 512] {
        if c < max {
            counts.push(c);
        }
    }
    if max > 1 {
        counts.push(max);
    }
    counts
}

/// SplitMix64 — the repo's standard seedable generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}
