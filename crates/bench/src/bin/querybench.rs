//! `querybench` — QPS and tail latency of the `/query/*` route family.
//!
//! ```sh
//! cargo run --release -p gaugenn-bench --bin querybench                 # small corpus
//! cargo run --release -p gaugenn-bench --bin querybench -- --scale tiny --workers 64
//! cargo run --release -p gaugenn-bench --bin querybench -- --json > results/BENCH_query.json
//! ```
//!
//! Crawls and analyses one snapshot, folds it into the [`CorpusIndex`],
//! attaches the index to a [`StoreServer`], then replays one seeded
//! query stream (model filters, range scans, app filters, stats) through
//! [`QueryClient`]s at increasing connection counts — 1 up to `--workers`
//! (default 256) concurrent clients. Each run reports QPS and p50/p99
//! latency, plus a crc32 digest over every response byte in stream
//! order: the digest must be identical at every connection count — the
//! ranking-determinism contract of DESIGN.md §13 — and the run aborts if
//! it is not. A final chaos section replays the stream against a server
//! injecting connection resets and 429/503 statuses, asserting the
//! stream still completes byte-identically (typed retries, no panics).
//!
//! `--json` prints a machine-readable record for
//! `results/BENCH_query.json`.
//!
//! [`CorpusIndex`]: gaugenn_index::CorpusIndex
//! [`QueryClient`]: gaugenn_playstore::QueryClient
//! [`StoreServer`]: gaugenn_playstore::StoreServer

use gaugenn_apk::crc32::crc32;
use gaugenn_bench::cli::{self, ArgSpec};
use gaugenn_core::pipeline::{Pipeline, PipelineConfig};
use gaugenn_dnn::task::Task;
use gaugenn_index::{AppQuery, ModelQuery};
use gaugenn_modelfmt::Framework;
use gaugenn_playstore::categories::CATEGORIES;
use gaugenn_playstore::chaos::{FaultKind, FaultPlan, FaultPlanConfig};
use gaugenn_playstore::corpus::{generate, CorpusScale, Snapshot};
use gaugenn_playstore::route::Route;
use gaugenn_playstore::server::{ServerOptions, StoreServer};
use gaugenn_playstore::QueryClient;
use std::net::SocketAddr;
use std::time::Instant;

/// One measured replay of the stream at a fixed connection count.
struct RunResult {
    clients: usize,
    wall_ms: f64,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    digest: u32,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ArgSpec {
        takes_workers: true,
        takes_json: true,
        default_workers: 256,
        ..ArgSpec::new("querybench", "QPS and tail latency of the /query/* routes")
    };
    let args = cli::parse_or_exit(&spec);
    let (scale, seed) = (args.scale, args.seed);

    // Stage 1: build the index the server will answer from — the same
    // crawl + analyse + ingest pipeline stage `repro` runs.
    eprintln!("querybench — scale {scale:?}, seed {seed}: building the corpus index...");
    let report = Pipeline::new(PipelineConfig::builder(scale, Snapshot::Y2021, seed).build()).run()?;
    let index = report.corpus_index.clone();
    eprintln!(
        "  index: {} models, {} apps, snapshots {:?}",
        index.model_count(),
        index.app_count(),
        index.snapshot_labels()
    );

    let queries = stream(seed, query_count(scale, args.workers));
    let counts = client_counts(args.workers);

    // Stage 2: the calm sweep. One server, one seeded stream, replayed
    // at every connection count; every digest must match the first.
    let server = StoreServer::start_with(
        generate(scale, Snapshot::Y2021, seed),
        ServerOptions {
            chaos: None,
            index: Some(index.clone()),
        },
    )?;
    let mut runs: Vec<RunResult> = Vec::new();
    for &clients in &counts {
        let run = replay(server.addr(), &queries, clients, seed)?;
        eprintln!(
            "  {:>4} client(s): {:>8.1} ms, {:>8.0} qps, p50 {:>6.0} us, p99 {:>6.0} us, digest {:08x}",
            run.clients, run.wall_ms, run.qps, run.p50_us, run.p99_us, run.digest
        );
        runs.push(run);
    }
    let digest = runs[0].digest;
    for run in &runs {
        assert_eq!(
            run.digest, digest,
            "response stream must be byte-identical at every connection count \
             ({} clients diverged)",
            run.clients
        );
    }

    // Stage 3: the same stream under injected faults. Two faults per
    // route stays under the retry budget (4 attempts), so every query
    // still completes — with the same bytes — through typed retries.
    let chaos = FaultPlan::new(FaultPlanConfig {
        seed: seed ^ 0x5eed,
        fault_permille: 300,
        kinds: vec![FaultKind::Reset, FaultKind::TransientStatus],
        max_faults_per_route: 2,
        ..FaultPlanConfig::default()
    });
    let stormy_server = StoreServer::start_with(
        generate(scale, Snapshot::Y2021, seed),
        ServerOptions {
            chaos: Some(chaos),
            index: Some(index),
        },
    )?;
    let chaos_clients = *counts.get(2).unwrap_or(counts.last().expect("counts non-empty"));
    let chaos_run = replay(stormy_server.addr(), &queries, chaos_clients, seed)?;
    eprintln!(
        "  chaos ({} client(s), resets + 429/503): {:>8.1} ms, {:>8.0} qps, digest {:08x}",
        chaos_run.clients, chaos_run.wall_ms, chaos_run.qps, chaos_run.digest
    );
    assert_eq!(
        chaos_run.digest, digest,
        "chaos must only cost retries, never change response bytes"
    );

    if args.json {
        println!("{{");
        println!("  \"bench\": \"query-serving\",");
        println!("  \"scale\": \"{scale:?}\",");
        println!("  \"seed\": {seed},");
        println!("  \"queries\": {},", queries.len());
        println!("  \"digest\": \"{digest:08x}\",");
        println!("  \"runs\": [");
        for (i, r) in runs.iter().enumerate() {
            let comma = if i + 1 == runs.len() { "" } else { "," };
            println!(
                "    {{\"clients\": {}, \"wall_ms\": {:.1}, \"qps\": {:.0}, \
                 \"p50_us\": {:.0}, \"p99_us\": {:.0}}}{comma}",
                r.clients, r.wall_ms, r.qps, r.p50_us, r.p99_us
            );
        }
        println!("  ],");
        println!(
            "  \"chaos\": {{\"clients\": {}, \"wall_ms\": {:.1}, \"qps\": {:.0}, \
             \"byte_identical\": true}}",
            chaos_run.clients, chaos_run.wall_ms, chaos_run.qps
        );
        println!("}}");
    } else {
        println!("query serving — scale {scale:?}, seed {seed}, {} queries", queries.len());
        println!("clients   wall ms       qps   p50 us   p99 us");
        for r in &runs {
            println!(
                "{:>7}  {:>8.1}  {:>8.0}  {:>7.0}  {:>7.0}",
                r.clients, r.wall_ms, r.qps, r.p50_us, r.p99_us
            );
        }
        println!(
            "all {} runs byte-identical (digest {digest:08x}); chaos run byte-identical too",
            runs.len() + 1
        );
    }
    Ok(())
}

/// Replay `queries` through `clients` concurrent connections. Query `i`
/// goes to client `i % clients`; responses are digested in stream
/// order, so the digest is independent of completion order.
fn replay(
    addr: SocketAddr,
    queries: &[Route],
    clients: usize,
    seed: u64,
) -> Result<RunResult, Box<dyn std::error::Error>> {
    let n = queries.len();
    let mut responses: Vec<Option<Vec<u8>>> = vec![None; n];
    let mut latencies_us: Vec<f64> = Vec::with_capacity(n);
    let t0 = Instant::now();
    std::thread::scope(|scope| -> Result<(), String> {
        let mut handles = Vec::new();
        for c in 0..clients {
            handles.push(scope.spawn(move || -> Result<Vec<(usize, Vec<u8>, f64)>, String> {
                let mut client = QueryClient::builder(addr)
                    .connection_id(c as u64)
                    .jitter_seed(seed ^ c as u64)
                    .build()
                    .map_err(|e| format!("client {c}: {e}"))?;
                let mut out = Vec::new();
                for (i, route) in queries.iter().enumerate() {
                    if i % clients != c {
                        continue;
                    }
                    let t = Instant::now();
                    let resp = client
                        .raw(route)
                        .map_err(|e| format!("query {i} ({}): {e}", route.wire_path()))?;
                    let dt = t.elapsed().as_secs_f64() * 1e6;
                    let mut bytes = resp.status.to_be_bytes().to_vec();
                    bytes.extend_from_slice(&resp.body);
                    out.push((i, bytes, dt));
                }
                Ok(out)
            }));
        }
        for handle in handles {
            for (i, bytes, dt) in handle.join().expect("client thread panicked")? {
                responses[i] = Some(bytes);
                latencies_us.push(dt);
            }
        }
        Ok(())
    })?;
    let wall = t0.elapsed();

    let mut all = Vec::new();
    for (i, r) in responses.into_iter().enumerate() {
        all.extend(r.unwrap_or_else(|| panic!("query {i} was never executed")));
    }
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    Ok(RunResult {
        clients,
        wall_ms: wall.as_secs_f64() * 1e3,
        qps: n as f64 / wall.as_secs_f64(),
        p50_us: percentile(&latencies_us, 50.0),
        p99_us: percentile(&latencies_us, 99.0),
        digest: crc32(&all),
    })
}

/// Seeded query stream: a deterministic mix of the route family's
/// shapes — full scans, dimension filters, range scans, app queries and
/// stats — so every replay issues byte-identical requests.
fn stream(seed: u64, n: usize) -> Vec<Route> {
    let mut state = seed;
    let mut next = move || splitmix64(&mut state);
    (0..n)
        .map(|_| {
            let r = next();
            match r % 8 {
                0 => Route::QueryModels(ModelQuery {
                    limit: Some(1 + next() % 64),
                    ..ModelQuery::default()
                }),
                1 => Route::QueryModels(ModelQuery {
                    frameworks: vec![
                        Framework::ALL[(next() % Framework::ALL.len() as u64) as usize]
                            .name()
                            .to_string(),
                    ],
                    ..ModelQuery::default()
                }),
                2 => Route::QueryModels(ModelQuery {
                    tasks: vec![Task::ALL[(next() % Task::ALL.len() as u64) as usize]
                        .name()
                        .to_string()],
                    snapshot: Some("Apr 2021".to_string()),
                    ..ModelQuery::default()
                }),
                3 => {
                    let lo = next() % 1_000_000_000;
                    Route::QueryModels(ModelQuery {
                        min_flops: Some(lo),
                        max_flops: Some(lo + next() % 10_000_000_000),
                        ..ModelQuery::default()
                    })
                }
                4 => Route::QueryModels(ModelQuery {
                    quantised: Some(next() % 2 == 0),
                    min_params: Some(next() % 1_000_000),
                    limit: Some(1 + next() % 32),
                    ..ModelQuery::default()
                }),
                5 => Route::QueryApps(AppQuery {
                    categories: vec![CATEGORIES
                        [(next() % CATEGORIES.len() as u64) as usize]
                        .name
                        .to_string()],
                    ..AppQuery::default()
                }),
                6 => Route::QueryApps(AppQuery {
                    ml_only: next() % 2 == 0,
                    cloud: Some(next() % 2 == 0),
                    limit: Some(1 + next() % 128),
                    ..AppQuery::default()
                }),
                _ => Route::QueryStats,
            }
        })
        .collect()
}

/// Stream length: enough that every client gets several queries even at
/// the top connection count, scaled down for the tiny corpus.
fn query_count(scale: CorpusScale, max_clients: usize) -> usize {
    let base = match scale {
        CorpusScale::Tiny => 256,
        CorpusScale::Small => 1024,
        CorpusScale::Paper => 2048,
    };
    base.max(max_clients * 4)
}

/// Connection counts to sweep: powers of four up to `max`, always
/// including 1, 8 (the determinism check pair) and `max` itself.
fn client_counts(max: usize) -> Vec<usize> {
    let mut counts = vec![1usize];
    for c in [8usize, 32, 128] {
        if c < max {
            counts.push(c);
        }
    }
    if max > 1 {
        counts.push(max);
    }
    counts
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx]
}

/// SplitMix64 — the repo's standard seedable generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}
