//! `crashbench` — recovery time and replayed work per crash point.
//!
//! ```sh
//! cargo run --release -p gaugenn-bench --bin crashbench             # tiny corpus
//! cargo run --release -p gaugenn-bench --bin crashbench -- --scale small
//! cargo run --release -p gaugenn-bench --bin crashbench -- --seed 7 --json
//! ```
//!
//! For each pipeline crash point (`post-crawl`, `app-extract`,
//! `model-analysis`, `cache-append`) this arms a deterministic
//! [`CrashPlan`] in panic mode, runs a journaled + persistently-cached
//! pipeline until the injected crash unwinds it, then times the
//! `--resume` run and verifies its rendered report is **byte-identical**
//! to an uninterrupted baseline. Replayed work is reported as the
//! journal's app restores (crawl skipped from disk) and the persistent
//! cache's hits vs re-traced models. The campaign-side `job-commit`
//! point is exercised by `tests/failure_injection.rs` instead — it needs
//! a harness, not a pipeline.
//!
//! `--json` prints a machine-readable record for
//! `results/BENCH_crash.json`.
//!
//! [`CrashPlan`]: gaugenn_core::crashpoint::CrashPlan

use gaugenn_bench::cli::{self, ArgSpec};
use gaugenn_core::crashpoint::{self, CrashMode, CrashPlan, CrashPoint};
use gaugenn_core::pipeline::{Pipeline, PipelineConfig};
use gaugenn_playstore::corpus::{CorpusScale, Snapshot};
use gaugenn_bench::stats::Stopwatch;

struct PointResult {
    point: &'static str,
    nth: u64,
    crash_ms: f64,
    recovery_ms: f64,
    journal_restores: u64,
    persistent_hits: u64,
    retraced: u64,
    byte_identical: bool,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ArgSpec {
        default_scale: CorpusScale::Tiny,
        takes_json: true,
        ..ArgSpec::new("crashbench", "recovery time and replayed work per crash point")
    };
    let args = cli::parse_or_exit(&spec);
    let (scale, seed, json) = (args.scale, args.seed, args.json);

    let scratch = std::env::temp_dir().join(format!("gaugenn-crashbench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    let config = |journal: Option<&std::path::Path>, resume: bool| {
        let builder = PipelineConfig::builder(scale, Snapshot::Y2021, seed);
        match journal {
            Some(dir) => builder
                .journal_dir(dir.to_path_buf())
                .analysis_cache_dir(dir.join("cache"))
                .resume(resume)
                .build(),
            None => builder.build(),
        }
    };

    eprintln!("crashbench — scale {scale:?}, seed {seed}");
    let t0 = Stopwatch::start();
    let baseline = Pipeline::new(config(None, false)).run()?;
    let baseline_ms = t0.elapsed().as_secs_f64() * 1e3;
    let reference = baseline.render_text();
    eprintln!(
        "  uninterrupted baseline: {baseline_ms:.1} ms, {} apps, {} unique models",
        baseline.dataset.total_apps, baseline.dataset.unique_models
    );

    // Hit counts chosen to land mid-stage, where recovery has real work
    // on both sides of the cut.
    let points: [(CrashPoint, u64); 4] = [
        (CrashPoint::PostCrawl, 1),
        (CrashPoint::AppExtract, 3),
        (CrashPoint::ModelAnalysis, 3),
        (CrashPoint::CacheAppend, 2),
    ];

    let mut results = Vec::new();
    for (i, (point, nth)) in points.into_iter().enumerate() {
        let dir = scratch.join(point.name());
        crashpoint::arm(CrashPlan::new(point, nth, CrashMode::Panic));
        // The induced unwind is expected noise: silence the panic hook
        // while it fires, restore it before the timed resume.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let t_crash = Stopwatch::start();
        let crashed = std::panic::catch_unwind(|| Pipeline::new(config(Some(&dir), false)).run());
        let crash_ms = t_crash.elapsed().as_secs_f64() * 1e3;
        std::panic::set_hook(hook);
        crashpoint::disarm();
        assert!(
            crashed.is_err(),
            "{}:{nth} must unwind the run",
            point.name()
        );

        let t_rec = Stopwatch::start();
        let resumed = Pipeline::new(config(Some(&dir), true)).run()?;
        let recovery_ms = t_rec.elapsed().as_secs_f64() * 1e3;
        let byte_identical = resumed.render_text() == reference;
        // After a post-crawl checkpoint the *whole* corpus comes off the
        // journal; mid-crawl kills restore app by app instead.
        let journal_restores = if resumed.crawl_replayed {
            resumed.dataset.total_apps as u64
        } else {
            resumed.crawl_stats.journal_restores
        };
        let r = PointResult {
            point: point.name(),
            nth,
            crash_ms,
            recovery_ms,
            journal_restores,
            persistent_hits: resumed.analysis.persistent_hits,
            retraced: resumed.analysis.unique_analysed - resumed.analysis.persistent_hits,
            byte_identical,
        };
        eprintln!(
            "  [{}/{}] {}:{nth} — crashed after {:.1} ms, recovered in {:.1} ms \
             ({} apps from journal, {} models warm, {} re-traced, identical: {})",
            i + 1,
            4,
            r.point,
            r.crash_ms,
            r.recovery_ms,
            r.journal_restores,
            r.persistent_hits,
            r.retraced,
            r.byte_identical
        );
        assert!(r.byte_identical, "{}: resumed stdout diverged", r.point);
        results.push(r);
    }
    let _ = std::fs::remove_dir_all(&scratch);

    if json {
        println!("{{");
        println!("  \"bench\": \"crash-recovery\",");
        println!("  \"scale\": \"{scale:?}\",");
        println!("  \"seed\": {seed},");
        println!("  \"baseline_ms\": {baseline_ms:.1},");
        println!("  \"points\": [");
        for (i, r) in results.iter().enumerate() {
            let comma = if i + 1 == results.len() { "" } else { "," };
            println!(
                "    {{\"point\": \"{}\", \"nth\": {}, \"crash_ms\": {:.1}, \
                 \"recovery_ms\": {:.1}, \"journal_restores\": {}, \
                 \"persistent_hits\": {}, \"retraced\": {}, \"byte_identical\": {}}}{comma}",
                r.point,
                r.nth,
                r.crash_ms,
                r.recovery_ms,
                r.journal_restores,
                r.persistent_hits,
                r.retraced,
                r.byte_identical
            );
        }
        println!("  ]");
        println!("}}");
    } else {
        println!("crash recovery — scale {scale:?}, seed {seed}, baseline {baseline_ms:.1} ms");
        println!("point            nth  crash ms  recover ms  journal apps  warm models  re-traced");
        for r in &results {
            println!(
                "{:<16} {:>3}  {:>8.1}  {:>10.1}  {:>12}  {:>11}  {:>9}",
                r.point, r.nth, r.crash_ms, r.recovery_ms, r.journal_restores, r.persistent_hits, r.retraced
            );
        }
    }
    Ok(())
}
