//! # gaugenn-apk — Android package container substrate
//!
//! The paper's model-extraction stage (§3.1) operates on real Android
//! artefacts: APKs (ZIP archives holding `classes.dex`, resources, assets
//! and native libraries), OBB expansion files, and Android App Bundles. This
//! crate implements those containers from scratch so the extraction pipeline
//! exercises genuine binary parsing:
//!
//! * [`crc32`] — CRC-32 (IEEE 802.3) checksums, required by the ZIP format.
//! * [`zip`] — a store-method ZIP writer/reader (local file headers,
//!   central directory, end-of-central-directory record).
//! * [`dex`] — a simplified Dalvik executable with a real string table;
//!   "decompiling to smali" (§3.2) becomes honest string extraction.
//! * [`nativelib`] — minimal ELF-flavoured `.so` images whose dynamic
//!   string tables carry framework symbols (native-lib detection follows
//!   Xu et al. \[70\], §3.1).
//! * [`apk`] — the `Apk` builder/parser tying it together, including the
//!   100 MB Play Store size limit.
//! * [`obb`] — APK expansion files (`main.<version>.<package>.obb`).
//! * [`bundle`] — Android App Bundles with on-demand asset packs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apk;
pub mod bundle;
pub mod crc32;
pub mod dex;
pub mod nativelib;
pub mod obb;
pub mod zip;

pub use apk::{Apk, ApkBuilder, APK_SIZE_LIMIT};
pub use zip::{ZipArchive, ZipEntry, ZipWriter};

/// Errors from container encoding/decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApkError {
    /// The byte stream is not a valid archive of the expected kind.
    Malformed(String),
    /// A CRC-32 mismatch was detected while reading an entry.
    CrcMismatch {
        /// Entry whose payload failed the check.
        entry: String,
    },
    /// The APK exceeds the Play Store's 100 MB limit (§3.1).
    TooLarge {
        /// Actual size in bytes.
        size: usize,
    },
    /// A requested entry does not exist.
    NotFound(String),
    /// Duplicate entry name in one archive.
    Duplicate(String),
}

impl std::fmt::Display for ApkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApkError::Malformed(r) => write!(f, "malformed archive: {r}"),
            ApkError::CrcMismatch { entry } => write!(f, "crc mismatch in entry '{entry}'"),
            ApkError::TooLarge { size } => {
                write!(f, "apk size {size} exceeds the 100MB Play Store limit")
            }
            ApkError::NotFound(e) => write!(f, "entry not found: {e}"),
            ApkError::Duplicate(e) => write!(f, "duplicate entry: {e}"),
        }
    }
}

impl std::error::Error for ApkError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ApkError>;
