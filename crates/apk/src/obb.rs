//! APK expansion files (OBBs).
//!
//! §3.1/§4.2: "Google Play allows additional content to be shared either
//! with expansion files (OBBs) or through Android App Bundles … gaugeNN
//! supports file extraction from … expansion files". An OBB is a ZIP hosted
//! by Google Play under a `main.<versionCode>.<package>.obb` name. The
//! paper's §4.2 finding — no models distributed outside the base APK — is a
//! *measurement*, so the crawler must genuinely download and scan these.

use crate::zip::{ZipArchive, ZipWriter};
use crate::{ApkError, Result};

/// An expansion file paired with its Play-conventional file name.
#[derive(Debug, Clone)]
pub struct Obb {
    /// `main` or `patch`.
    pub kind: ObbKind,
    /// App version code it expands.
    pub version_code: u32,
    /// Owning package.
    pub package: String,
    /// Contained files.
    pub archive: ZipArchive,
}

/// OBB flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObbKind {
    /// Primary expansion file.
    Main,
    /// Patch expansion file.
    Patch,
}

impl ObbKind {
    fn label(self) -> &'static str {
        match self {
            ObbKind::Main => "main",
            ObbKind::Patch => "patch",
        }
    }
}

impl Obb {
    /// Play-conventional filename, e.g. `main.42.com.example.game.obb`.
    pub fn filename(&self) -> String {
        format!(
            "{}.{}.{}.obb",
            self.kind.label(),
            self.version_code,
            self.package
        )
    }

    /// Parse an OBB from its filename and bytes.
    pub fn parse(filename: &str, bytes: &[u8]) -> Result<Self> {
        let rest = filename
            .strip_suffix(".obb")
            .ok_or_else(|| ApkError::Malformed("obb filename must end in .obb".into()))?;
        let mut parts = rest.splitn(3, '.');
        let kind = match parts.next() {
            Some("main") => ObbKind::Main,
            Some("patch") => ObbKind::Patch,
            _ => return Err(ApkError::Malformed("obb kind must be main|patch".into())),
        };
        let version_code: u32 = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| ApkError::Malformed("obb filename missing version code".into()))?;
        let package = parts
            .next()
            .ok_or_else(|| ApkError::Malformed("obb filename missing package".into()))?
            .to_string();
        Ok(Obb {
            kind,
            version_code,
            package,
            archive: ZipArchive::parse(bytes)?,
        })
    }
}

/// Build an OBB archive from `(path, data)` pairs.
pub fn build_obb(
    kind: ObbKind,
    version_code: u32,
    package: &str,
    files: &[(&str, Vec<u8>)],
) -> Result<(String, Vec<u8>)> {
    let mut w = ZipWriter::new();
    for (path, data) in files {
        w.add(*path, data.clone())?;
    }
    let name = format!("{}.{}.{}.obb", kind.label(), version_code, package);
    Ok((name, w.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let (name, bytes) = build_obb(
            ObbKind::Main,
            7,
            "com.example.game",
            &[("textures/big.bin", vec![1; 32])],
        )
        .unwrap();
        assert_eq!(name, "main.7.com.example.game.obb");
        let obb = Obb::parse(&name, &bytes).unwrap();
        assert_eq!(obb.kind, ObbKind::Main);
        assert_eq!(obb.version_code, 7);
        assert_eq!(obb.package, "com.example.game");
        assert_eq!(obb.archive.get("textures/big.bin").unwrap().len(), 32);
        assert_eq!(obb.filename(), name);
    }

    #[test]
    fn package_with_dots_parses() {
        let (name, bytes) =
            build_obb(ObbKind::Patch, 3, "com.a.b.c.d", &[("x", vec![])]).unwrap();
        let obb = Obb::parse(&name, &bytes).unwrap();
        assert_eq!(obb.package, "com.a.b.c.d");
        assert_eq!(obb.kind, ObbKind::Patch);
    }

    #[test]
    fn rejects_bad_names() {
        let bytes = ZipWriter::new().finish();
        assert!(Obb::parse("weird.obb", &bytes).is_err());
        assert!(Obb::parse("main.x.com.a.obb", &bytes).is_err());
        assert!(Obb::parse("main.1.com.a.zip", &bytes).is_err());
    }
}
