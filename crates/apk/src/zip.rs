//! A from-scratch ZIP archive implementation (store method only).
//!
//! APKs and OBBs are ZIP files; the extraction stage of gaugeNN must walk a
//! real central directory to find candidate model entries. This module
//! implements the subset of APPNOTE.TXT that Android packages rely on:
//!
//! * local file headers (`PK\x03\x04`),
//! * the central directory (`PK\x01\x02`),
//! * the end-of-central-directory record (`PK\x05\x06`),
//! * method 0 (stored) payloads with CRC-32 validation.
//!
//! Compression is deliberately omitted: model weights are high-entropy and
//! Android leaves `.tflite`/`.bin` assets stored for mmap-ability, so stored
//! entries are also the realistic case.

use crate::crc32::crc32;
use crate::{ApkError, Result};

const LOCAL_SIG: u32 = 0x0403_4B50; // PK\x03\x04
const CENTRAL_SIG: u32 = 0x0201_4B50; // PK\x01\x02
const EOCD_SIG: u32 = 0x0605_4B50; // PK\x05\x06
const VERSION: u16 = 20;

/// One file inside an archive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZipEntry {
    /// Entry path, `/`-separated.
    pub name: String,
    /// Uncompressed (== stored) payload.
    pub data: Vec<u8>,
}

/// Incremental archive writer.
#[derive(Debug, Default)]
pub struct ZipWriter {
    entries: Vec<ZipEntry>,
}

impl ZipWriter {
    /// Fresh empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an entry. Names must be unique within an archive.
    pub fn add(&mut self, name: impl Into<String>, data: Vec<u8>) -> Result<()> {
        let name = name.into();
        if self.entries.iter().any(|e| e.name == name) {
            return Err(ApkError::Duplicate(name));
        }
        self.entries.push(ZipEntry { name, data });
        Ok(())
    }

    /// Number of entries added so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries were added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialise to the ZIP wire format.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut central = Vec::new();
        let mut offsets = Vec::with_capacity(self.entries.len());
        for e in &self.entries {
            offsets.push(out.len() as u32);
            let crc = crc32(&e.data);
            // Local file header.
            put_u32(&mut out, LOCAL_SIG);
            put_u16(&mut out, VERSION); // version needed
            put_u16(&mut out, 0); // flags
            put_u16(&mut out, 0); // method: stored
            put_u16(&mut out, 0); // mod time
            put_u16(&mut out, 0); // mod date
            put_u32(&mut out, crc);
            put_u32(&mut out, e.data.len() as u32); // compressed
            put_u32(&mut out, e.data.len() as u32); // uncompressed
            put_u16(&mut out, e.name.len() as u16);
            put_u16(&mut out, 0); // extra len
            out.extend_from_slice(e.name.as_bytes());
            out.extend_from_slice(&e.data);
        }
        let central_start = out.len() as u32;
        for (e, &off) in self.entries.iter().zip(&offsets) {
            let crc = crc32(&e.data);
            put_u32(&mut central, CENTRAL_SIG);
            put_u16(&mut central, VERSION); // version made by
            put_u16(&mut central, VERSION); // version needed
            put_u16(&mut central, 0); // flags
            put_u16(&mut central, 0); // method
            put_u16(&mut central, 0); // time
            put_u16(&mut central, 0); // date
            put_u32(&mut central, crc);
            put_u32(&mut central, e.data.len() as u32);
            put_u32(&mut central, e.data.len() as u32);
            put_u16(&mut central, e.name.len() as u16);
            put_u16(&mut central, 0); // extra
            put_u16(&mut central, 0); // comment
            put_u16(&mut central, 0); // disk number
            put_u16(&mut central, 0); // internal attrs
            put_u32(&mut central, 0); // external attrs
            put_u32(&mut central, off);
            central.extend_from_slice(e.name.as_bytes());
        }
        let central_len = central.len() as u32;
        out.extend_from_slice(&central);
        // End of central directory.
        put_u32(&mut out, EOCD_SIG);
        put_u16(&mut out, 0); // disk
        put_u16(&mut out, 0); // cd disk
        put_u16(&mut out, self.entries.len() as u16);
        put_u16(&mut out, self.entries.len() as u16);
        put_u32(&mut out, central_len);
        put_u32(&mut out, central_start);
        put_u16(&mut out, 0); // comment len
        out
    }
}

/// Parsed archive with random-access entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZipArchive {
    entries: Vec<ZipEntry>,
}

impl ZipArchive {
    /// Parse a ZIP byte stream via its central directory, verifying CRCs.
    pub fn parse(bytes: &[u8]) -> Result<Self> {
        let eocd = find_eocd(bytes)?;
        let mut r = Reader::new(bytes, eocd + 4);
        let _disk = r.u16()?;
        let _cd_disk = r.u16()?;
        let _entries_disk = r.u16()?;
        let count = r.u16()? as usize;
        let _cd_len = r.u32()?;
        let cd_start = r.u32()? as usize;

        let mut entries = Vec::with_capacity(count);
        let mut c = Reader::new(bytes, cd_start);
        for _ in 0..count {
            if c.u32()? != CENTRAL_SIG {
                return Err(ApkError::Malformed("bad central directory signature".into()));
            }
            let _made = c.u16()?;
            let _need = c.u16()?;
            let _flags = c.u16()?;
            let method = c.u16()?;
            let _time = c.u16()?;
            let _date = c.u16()?;
            let crc = c.u32()?;
            let csize = c.u32()? as usize;
            let usize_ = c.u32()? as usize;
            let name_len = c.u16()? as usize;
            let extra_len = c.u16()? as usize;
            let comment_len = c.u16()? as usize;
            let _disk = c.u16()?;
            let _iattr = c.u16()?;
            let _eattr = c.u32()?;
            let local_off = c.u32()? as usize;
            let name = c.str(name_len)?;
            c.skip(extra_len + comment_len)?;
            if method != 0 {
                return Err(ApkError::Malformed(format!(
                    "entry '{name}' uses unsupported compression method {method}"
                )));
            }
            if csize != usize_ {
                return Err(ApkError::Malformed(format!(
                    "stored entry '{name}' has mismatched sizes"
                )));
            }
            let data = read_local(bytes, local_off, &name, usize_)?;
            if crc32(&data) != crc {
                return Err(ApkError::CrcMismatch { entry: name });
            }
            entries.push(ZipEntry { name, data });
        }
        Ok(ZipArchive { entries })
    }

    /// All entries in central-directory order.
    pub fn entries(&self) -> &[ZipEntry] {
        &self.entries
    }

    /// Look up an entry payload by exact name.
    pub fn get(&self, name: &str) -> Option<&[u8]> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.data.as_slice())
    }

    /// Entry names only.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|e| e.name.as_str())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the archive holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

fn read_local(bytes: &[u8], off: usize, name: &str, size: usize) -> Result<Vec<u8>> {
    let mut r = Reader::new(bytes, off);
    if r.u32()? != LOCAL_SIG {
        return Err(ApkError::Malformed(format!(
            "entry '{name}' has a bad local header signature"
        )));
    }
    r.skip(2 + 2 + 2 + 2 + 2 + 4 + 4 + 4)?; // through sizes
    let name_len = r.u16()? as usize;
    let extra_len = r.u16()? as usize;
    let stored_name = r.str(name_len)?;
    if stored_name != name {
        return Err(ApkError::Malformed(format!(
            "local header name '{stored_name}' != central name '{name}'"
        )));
    }
    r.skip(extra_len)?;
    r.bytes(size)
}

/// Scan backwards for the EOCD signature (the record has a variable-length
/// trailing comment, so the spec mandates a backwards search).
fn find_eocd(bytes: &[u8]) -> Result<usize> {
    if bytes.len() < 22 {
        return Err(ApkError::Malformed("too short for a zip".into()));
    }
    let min = bytes.len().saturating_sub(22 + u16::MAX as usize);
    let mut i = bytes.len() - 22;
    loop {
        if u32::from_le_bytes([bytes[i], bytes[i + 1], bytes[i + 2], bytes[i + 3]]) == EOCD_SIG {
            return Ok(i);
        }
        if i == min {
            return Err(ApkError::Malformed("missing end-of-central-directory".into()));
        }
        i -= 1;
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8], pos: usize) -> Self {
        Reader { bytes, pos }
    }
    fn need(&self, n: usize) -> Result<()> {
        if self.pos + n > self.bytes.len() {
            Err(ApkError::Malformed("truncated archive".into()))
        } else {
            Ok(())
        }
    }
    fn u16(&mut self) -> Result<u16> {
        self.need(2)?;
        let v = u16::from_le_bytes([self.bytes[self.pos], self.bytes[self.pos + 1]]);
        self.pos += 2;
        Ok(v)
    }
    fn u32(&mut self) -> Result<u32> {
        self.need(4)?;
        let v = u32::from_le_bytes([
            self.bytes[self.pos],
            self.bytes[self.pos + 1],
            self.bytes[self.pos + 2],
            self.bytes[self.pos + 3],
        ]);
        self.pos += 4;
        Ok(v)
    }
    fn skip(&mut self, n: usize) -> Result<()> {
        self.need(n)?;
        self.pos += n;
        Ok(())
    }
    fn bytes(&mut self, n: usize) -> Result<Vec<u8>> {
        self.need(n)?;
        let v = self.bytes[self.pos..self.pos + n].to_vec();
        self.pos += n;
        Ok(v)
    }
    fn str(&mut self, n: usize) -> Result<String> {
        let b = self.bytes(n)?;
        String::from_utf8(b).map_err(|_| ApkError::Malformed("non-utf8 entry name".into()))
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_multiple_entries() {
        let mut w = ZipWriter::new();
        w.add("classes.dex", vec![1, 2, 3]).unwrap();
        w.add("assets/model.tflite", vec![9; 100]).unwrap();
        w.add("lib/arm64-v8a/libtflite.so", vec![0x7F, b'E']).unwrap();
        let bytes = w.finish();
        let a = ZipArchive::parse(&bytes).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.get("classes.dex"), Some(&[1u8, 2, 3][..]));
        assert_eq!(a.get("assets/model.tflite").unwrap().len(), 100);
        assert!(a.get("missing").is_none());
        let names: Vec<&str> = a.names().collect();
        assert_eq!(names[0], "classes.dex");
    }

    #[test]
    fn empty_archive_roundtrips() {
        let bytes = ZipWriter::new().finish();
        let a = ZipArchive::parse(&bytes).unwrap();
        assert!(a.is_empty());
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut w = ZipWriter::new();
        w.add("a", vec![]).unwrap();
        assert_eq!(w.add("a", vec![]), Err(ApkError::Duplicate("a".into())));
    }

    #[test]
    fn detects_payload_corruption() {
        let mut w = ZipWriter::new();
        w.add("model.bin", vec![42; 64]).unwrap();
        let mut bytes = w.finish();
        // Flip a payload byte (after the 30-byte header + 9-byte name).
        bytes[40] ^= 0xFF;
        match ZipArchive::parse(&bytes) {
            Err(ApkError::CrcMismatch { entry }) => assert_eq!(entry, "model.bin"),
            other => panic!("expected crc mismatch, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(ZipArchive::parse(b"not a zip at all").is_err());
        assert!(ZipArchive::parse(&[]).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let mut w = ZipWriter::new();
        w.add("x", vec![0; 32]).unwrap();
        let bytes = w.finish();
        for cut in [bytes.len() - 1, bytes.len() / 2, 10] {
            assert!(ZipArchive::parse(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn large_entry_roundtrips() {
        let payload: Vec<u8> = (0..100_000).map(|i| (i % 251) as u8).collect();
        let mut w = ZipWriter::new();
        w.add("assets/big.bin", payload.clone()).unwrap();
        let a = ZipArchive::parse(&w.finish()).unwrap();
        assert_eq!(a.get("assets/big.bin"), Some(payload.as_slice()));
    }
}
