//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`), as required by
//! the ZIP format. Implemented from the public specification; used for
//! archive integrity only, never for security.

/// Lazily-computed 256-entry lookup table.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Streaming CRC-32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = TABLE[idx] ^ (self.state >> 8);
        }
    }

    /// Finish and return the checksum.
    pub fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a buffer.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value from the CRC catalogue.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"hello crc32 world";
        let mut c = Crc32::new();
        c.update(&data[..5]);
        c.update(&data[5..]);
        assert_eq!(c.finalize(), crc32(data));
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"\x00\x00\x00\x00");
        let b = crc32(b"\x00\x00\x00\x01");
        assert_ne!(a, b);
    }
}
