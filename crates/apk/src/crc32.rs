//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`), as required by
//! the ZIP format. Implemented from the public specification; used for
//! archive integrity only, never for security.
//!
//! The hot path is slice-by-8: eight 256-entry tables let the update loop
//! fold eight input bytes per iteration instead of one table lookup per
//! byte — the classic Intel/zlib technique. Every APK, OBB and bundle
//! response body is CRC-validated by the crawler, and the store server
//! checksums every payload it serves, so this kernel sits on both sides
//! of each transfer. The original byte-at-a-time loop is kept in
//! [`reference`] and pinned against the sliced kernel by property tests.

/// Eight lookup tables: `TABLES[0]` is the classic byte table; table `k`
/// advances a byte through `k` additional zero bytes, which is what lets
/// eight lookups replace eight dependent shift-and-lookup steps.
const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// Streaming CRC-32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes, folding eight at a time while they last.
    pub fn update(&mut self, mut data: &[u8]) {
        let mut state = self.state;
        while let [b0, b1, b2, b3, b4, b5, b6, b7, rest @ ..] = data {
            let lo = u32::from_le_bytes([*b0, *b1, *b2, *b3]) ^ state;
            let hi = u32::from_le_bytes([*b4, *b5, *b6, *b7]);
            state = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
            data = rest;
        }
        for &b in data {
            state = TABLES[0][((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
        }
        self.state = state;
    }

    /// Finish and return the checksum.
    pub fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a buffer.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

/// The original byte-at-a-time implementation, kept so property tests can
/// pin the slice-by-8 kernel against it on arbitrary inputs.
pub mod reference {
    use super::TABLES;

    /// One-shot scalar CRC-32 of `data`.
    pub fn crc32(data: &[u8]) -> u32 {
        let mut state = 0xFFFF_FFFFu32;
        for &b in data {
            let idx = ((state ^ b as u32) & 0xFF) as usize;
            state = TABLES[0][idx] ^ (state >> 8);
        }
        state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value from the CRC catalogue.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sliced_matches_reference_across_lengths() {
        // Cover the scalar tail (len < 8), the 8-byte boundary, and runs
        // long enough to exercise many folded iterations.
        let data: Vec<u8> = (0..1024u32).map(|i| (i.wrapping_mul(31) >> 3) as u8).collect();
        for n in 0..160 {
            assert_eq!(crc32(&data[..n]), reference::crc32(&data[..n]), "len {n}");
        }
        assert_eq!(crc32(&data), reference::crc32(&data));
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"hello crc32 world, long enough to fold eight bytes at a time";
        for split in 0..data.len() {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finalize(), crc32(data), "split {split}");
        }
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"\x00\x00\x00\x00");
        let b = crc32(b"\x00\x00\x00\x01");
        assert_ne!(a, b);
    }
}
