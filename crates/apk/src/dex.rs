//! A simplified Dalvik executable (`classes.dex`) with a genuine string
//! table.
//!
//! gaugeNN "decompiles these binaries and performs string matching on the
//! smali files to detect known cloud DNN framework calls" (§3.2). Our dex
//! carries the same observable: class/method reference strings laid out in a
//! real indexed string section, so decompilation is honest parsing rather
//! than a lookup in side-band metadata.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic     "dex\n035\0"            8 bytes
//! file_size u32
//! string_count u32
//! offsets   u32 * string_count      (absolute offsets of string data)
//! data      (u16 length ++ utf-8 bytes) * string_count
//! ```

use crate::{ApkError, Result};

/// The dex magic for format version 035 (the long-stable Android version).
pub const DEX_MAGIC: &[u8; 8] = b"dex\n035\0";

/// Builder for a dex image.
#[derive(Debug, Default)]
pub struct DexBuilder {
    strings: Vec<String>,
}

impl DexBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one string (class reference, method descriptor, constant…).
    pub fn add_string(&mut self, s: impl Into<String>) -> &mut Self {
        self.strings.push(s.into());
        self
    }

    /// Add a class reference in dex descriptor form, e.g.
    /// `Lcom/google/firebase/ml/vision/FirebaseVision;`.
    pub fn add_class_ref(&mut self, dotted: &str) -> &mut Self {
        self.add_string(format!("L{};", dotted.replace('.', "/")))
    }

    /// Serialise to bytes.
    pub fn finish(&self) -> Vec<u8> {
        let mut header = Vec::new();
        header.extend_from_slice(DEX_MAGIC);
        let count = self.strings.len() as u32;
        // Data section begins after header(8) + file_size(4) + count(4) +
        // offsets table.
        let table_start = 8 + 4 + 4;
        let data_start = table_start + 4 * self.strings.len();
        let mut offsets = Vec::with_capacity(self.strings.len());
        let mut data = Vec::new();
        for s in &self.strings {
            offsets.push((data_start + data.len()) as u32);
            let b = s.as_bytes();
            data.extend_from_slice(&(b.len() as u16).to_le_bytes());
            data.extend_from_slice(b);
        }
        let file_size = (data_start + data.len()) as u32;
        header.extend_from_slice(&file_size.to_le_bytes());
        header.extend_from_slice(&count.to_le_bytes());
        for off in offsets {
            header.extend_from_slice(&off.to_le_bytes());
        }
        header.extend_from_slice(&data);
        header
    }
}

/// Parsed dex image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dex {
    strings: Vec<String>,
}

impl Dex {
    /// Parse a dex byte stream, validating magic, size, and offsets.
    pub fn parse(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 16 {
            return Err(ApkError::Malformed("dex too short".into()));
        }
        if &bytes[..8] != DEX_MAGIC {
            return Err(ApkError::Malformed("bad dex magic".into()));
        }
        let file_size = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
        if file_size != bytes.len() {
            return Err(ApkError::Malformed(format!(
                "dex header claims {file_size} bytes, stream has {}",
                bytes.len()
            )));
        }
        let count = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize;
        let table_start = 16;
        if table_start + 4 * count > bytes.len() {
            return Err(ApkError::Malformed("dex string table truncated".into()));
        }
        let mut strings = Vec::with_capacity(count);
        for i in 0..count {
            let o = table_start + 4 * i;
            let off = u32::from_le_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]])
                as usize;
            if off + 2 > bytes.len() {
                return Err(ApkError::Malformed(format!("string {i} offset out of range")));
            }
            let len = u16::from_le_bytes([bytes[off], bytes[off + 1]]) as usize;
            if off + 2 + len > bytes.len() {
                return Err(ApkError::Malformed(format!("string {i} data out of range")));
            }
            let s = std::str::from_utf8(&bytes[off + 2..off + 2 + len])
                .map_err(|_| ApkError::Malformed(format!("string {i} is not utf-8")))?;
            strings.push(s.to_string());
        }
        Ok(Dex { strings })
    }

    /// All strings in table order.
    pub fn strings(&self) -> &[String] {
        &self.strings
    }

    /// "Decompile" to smali-flavoured text: one `const-string` line per
    /// string-table entry. String matching on this output is exactly what
    /// the paper's pipeline does with apktool output.
    pub fn to_smali(&self) -> String {
        let mut out = String::from(".class public Lgauge/Generated;\n.super Ljava/lang/Object;\n");
        for (i, s) in self.strings.iter().enumerate() {
            out.push_str(&format!("    const-string v{i}, \"{s}\"\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_strings() {
        let mut b = DexBuilder::new();
        b.add_string("hello")
            .add_class_ref("com.google.firebase.ml.vision.FirebaseVision")
            .add_string("org/tensorflow/lite/Interpreter");
        let bytes = b.finish();
        let d = Dex::parse(&bytes).unwrap();
        assert_eq!(d.strings().len(), 3);
        assert_eq!(
            d.strings()[1],
            "Lcom/google/firebase/ml/vision/FirebaseVision;"
        );
    }

    #[test]
    fn empty_dex_roundtrips() {
        let bytes = DexBuilder::new().finish();
        let d = Dex::parse(&bytes).unwrap();
        assert!(d.strings().is_empty());
    }

    #[test]
    fn smali_contains_const_strings() {
        let mut b = DexBuilder::new();
        b.add_string("com.amazonaws.services.rekognition");
        let smali = Dex::parse(&b.finish()).unwrap().to_smali();
        assert!(smali.contains("const-string v0, \"com.amazonaws.services.rekognition\""));
        assert!(smali.starts_with(".class"));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = DexBuilder::new().finish();
        bytes[0] = b'x';
        assert!(Dex::parse(&bytes).is_err());
    }

    #[test]
    fn rejects_size_mismatch() {
        let mut b = DexBuilder::new();
        b.add_string("abc");
        let mut bytes = b.finish();
        bytes.push(0);
        assert!(Dex::parse(&bytes).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let mut b = DexBuilder::new();
        b.add_string("abcdef");
        let bytes = b.finish();
        assert!(Dex::parse(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn unicode_strings_survive() {
        let mut b = DexBuilder::new();
        b.add_string("模型/クラッシュ検出");
        let d = Dex::parse(&b.finish()).unwrap();
        assert_eq!(d.strings()[0], "模型/クラッシュ検出");
    }
}
