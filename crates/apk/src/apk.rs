//! The APK container: a ZIP with Android-conventional entry layout plus the
//! Play Store's 100 MB size limit (§3.1).

use crate::dex::{Dex, DexBuilder};
use crate::zip::{ZipArchive, ZipWriter};
use crate::{ApkError, Result};

/// Play Store size limit for a base APK, in bytes (§3.1: "Apks have a size
/// limit of 100MB").
pub const APK_SIZE_LIMIT: usize = 100 * 1024 * 1024;

/// Builder for an APK image.
#[derive(Debug)]
pub struct ApkBuilder {
    package: String,
    version_code: u32,
    dex: DexBuilder,
    writer: ZipWriter,
}

impl ApkBuilder {
    /// Start an APK for `package` (e.g. `"com.example.camera"`).
    pub fn new(package: impl Into<String>, version_code: u32) -> Self {
        ApkBuilder {
            package: package.into(),
            version_code,
            dex: DexBuilder::new(),
            writer: ZipWriter::new(),
        }
    }

    /// Add a code string (API call site) to `classes.dex`.
    pub fn add_code_string(&mut self, s: impl Into<String>) -> &mut Self {
        self.dex.add_string(s);
        self
    }

    /// Add a class reference to `classes.dex` in dotted form.
    pub fn add_class_ref(&mut self, dotted: &str) -> &mut Self {
        self.dex.add_class_ref(dotted);
        self
    }

    /// Add an asset file (models usually live under `assets/`).
    pub fn add_asset(&mut self, path: &str, data: Vec<u8>) -> Result<&mut Self> {
        self.writer.add(format!("assets/{path}"), data)?;
        Ok(self)
    }

    /// Add a raw resource entry at an arbitrary path (e.g. `res/raw/x.bin`).
    pub fn add_entry(&mut self, path: &str, data: Vec<u8>) -> Result<&mut Self> {
        self.writer.add(path, data)?;
        Ok(self)
    }

    /// Add a native library under `lib/arm64-v8a/`.
    pub fn add_native_lib(&mut self, soname: &str, symbols: &[&str]) -> Result<&mut Self> {
        let so = crate::nativelib::build_so(soname, symbols);
        self.writer.add(format!("lib/arm64-v8a/{soname}"), so)?;
        Ok(self)
    }

    /// Serialise, enforcing the Play Store size limit.
    pub fn finish(mut self) -> Result<Vec<u8>> {
        let manifest = format!(
            "package: name='{}' versionCode='{}'\nsdkVersion:'29'\n",
            self.package, self.version_code
        );
        self.writer
            .add("AndroidManifest.xml", manifest.into_bytes())?;
        self.writer.add("classes.dex", self.dex.finish())?;
        let bytes = self.writer.finish();
        if bytes.len() > APK_SIZE_LIMIT {
            return Err(ApkError::TooLarge { size: bytes.len() });
        }
        Ok(bytes)
    }
}

/// A parsed APK.
#[derive(Debug, Clone)]
pub struct Apk {
    package: String,
    version_code: u32,
    archive: ZipArchive,
}

impl Apk {
    /// Parse an APK byte stream.
    pub fn parse(bytes: &[u8]) -> Result<Self> {
        let archive = ZipArchive::parse(bytes)?;
        let manifest = archive
            .get("AndroidManifest.xml")
            .ok_or_else(|| ApkError::Malformed("missing AndroidManifest.xml".into()))?;
        let text = String::from_utf8_lossy(manifest);
        let package = field(&text, "name='").unwrap_or_default();
        let version_code = field(&text, "versionCode='")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        if package.is_empty() {
            return Err(ApkError::Malformed("manifest has no package name".into()));
        }
        Ok(Apk {
            package,
            version_code,
            archive,
        })
    }

    /// Declared package name.
    pub fn package(&self) -> &str {
        &self.package
    }

    /// Declared version code.
    pub fn version_code(&self) -> u32 {
        self.version_code
    }

    /// The underlying ZIP archive.
    pub fn archive(&self) -> &ZipArchive {
        &self.archive
    }

    /// Parse and return the dex string table.
    pub fn dex(&self) -> Result<Dex> {
        let bytes = self
            .archive
            .get("classes.dex")
            .ok_or_else(|| ApkError::NotFound("classes.dex".into()))?;
        Dex::parse(bytes)
    }

    /// All asset entries `(path_within_assets, payload)`.
    pub fn assets(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.archive.entries().iter().filter_map(|e| {
            e.name
                .strip_prefix("assets/")
                .map(|p| (p, e.data.as_slice()))
        })
    }

    /// All native library entries `(soname, payload)`.
    pub fn native_libs(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.archive.entries().iter().filter_map(|e| {
            e.name
                .rsplit_once('/')
                .filter(|_| e.name.starts_with("lib/"))
                .map(|(_, so)| (so, e.data.as_slice()))
        })
    }

    /// Every entry that could plausibly hold a model: assets, raw resources
    /// and any other non-code entry. The extraction stage filters this by
    /// extension and signature.
    pub fn candidate_files(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.archive.entries().iter().filter_map(|e| {
            let is_code = e.name == "classes.dex" || e.name == "AndroidManifest.xml";
            if is_code || e.name.starts_with("lib/") {
                None
            } else {
                Some((e.name.as_str(), e.data.as_slice()))
            }
        })
    }
}

fn field(text: &str, key: &str) -> Option<String> {
    let start = text.find(key)? + key.len();
    let rest = &text[start..];
    let end = rest.find('\'')?;
    Some(rest[..end].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut b = ApkBuilder::new("com.example.beauty", 42);
        b.add_class_ref("org.tensorflow.lite.Interpreter");
        b.add_code_string("loadModel(assets/face_detector.tflite)");
        b.add_asset("face_detector.tflite", vec![0xAB; 256]).unwrap();
        b.add_entry("res/raw/extra.bin", vec![1, 2, 3]).unwrap();
        b.add_native_lib("libtensorflowlite_jni.so", &["TfLiteModelCreate"])
            .unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn roundtrip_metadata() {
        let apk = Apk::parse(&sample()).unwrap();
        assert_eq!(apk.package(), "com.example.beauty");
        assert_eq!(apk.version_code(), 42);
    }

    #[test]
    fn assets_and_libs_enumerate() {
        let apk = Apk::parse(&sample()).unwrap();
        let assets: Vec<&str> = apk.assets().map(|(p, _)| p).collect();
        assert_eq!(assets, vec!["face_detector.tflite"]);
        let libs: Vec<&str> = apk.native_libs().map(|(p, _)| p).collect();
        assert_eq!(libs, vec!["libtensorflowlite_jni.so"]);
    }

    #[test]
    fn candidates_exclude_code_and_libs() {
        let apk = Apk::parse(&sample()).unwrap();
        let cands: Vec<&str> = apk.candidate_files().map(|(p, _)| p).collect();
        assert!(cands.contains(&"assets/face_detector.tflite"));
        assert!(cands.contains(&"res/raw/extra.bin"));
        assert!(!cands.iter().any(|c| c.starts_with("lib/")));
        assert!(!cands.contains(&"classes.dex"));
    }

    #[test]
    fn dex_strings_visible() {
        let apk = Apk::parse(&sample()).unwrap();
        let dex = apk.dex().unwrap();
        assert!(dex
            .strings()
            .iter()
            .any(|s| s.contains("org/tensorflow/lite/Interpreter")));
    }

    #[test]
    fn size_limit_enforced() {
        let mut b = ApkBuilder::new("com.example.huge", 1);
        b.add_asset("blob.bin", vec![0; APK_SIZE_LIMIT + 1]).unwrap();
        match b.finish() {
            Err(ApkError::TooLarge { size }) => assert!(size > APK_SIZE_LIMIT),
            other => panic!("expected TooLarge, got {:?}", other.map(|v| v.len())),
        }
    }

    #[test]
    fn missing_manifest_rejected() {
        let mut w = ZipWriter::new();
        w.add("classes.dex", DexBuilder::new().finish()).unwrap();
        assert!(Apk::parse(&w.finish()).is_err());
    }
}
