//! Minimal ELF-flavoured native library (`lib/<abi>/*.so`) images.
//!
//! The paper tracks apps whose models are encrypted/obfuscated or downloaded
//! on demand "by means of library inclusion in the application code and
//! native libraries … following the methodology of Xu et al. \[70\]" (§3.1).
//! That methodology scans `.so` dynamic string tables for framework symbol
//! names. We emit a minimal image with a real ELF magic and an embedded
//! NUL-separated string table, so the scanner does honest byte scanning.

use crate::{ApkError, Result};

/// ELF magic bytes.
pub const ELF_MAGIC: [u8; 4] = [0x7F, b'E', b'L', b'F'];

/// Build a `.so` image whose string table holds `symbols`.
pub fn build_so(soname: &str, symbols: &[&str]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&ELF_MAGIC);
    // e_ident continuation: 64-bit, little-endian, current version.
    out.extend_from_slice(&[2, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
    // e_type = ET_DYN (shared object).
    out.extend_from_slice(&3u16.to_le_bytes());
    // e_machine = EM_AARCH64 (183): benchmarks are "compiled for aarch64
    // with Android NDK" (§3.3).
    out.extend_from_slice(&183u16.to_le_bytes());
    // String table, NUL separated, prefixed with its length.
    let mut strtab = Vec::new();
    strtab.extend_from_slice(soname.as_bytes());
    strtab.push(0);
    for s in symbols {
        strtab.extend_from_slice(s.as_bytes());
        strtab.push(0);
    }
    out.extend_from_slice(&(strtab.len() as u32).to_le_bytes());
    out.extend_from_slice(&strtab);
    out
}

/// Extract the NUL-separated strings from a `.so` image.
pub fn extract_strings(bytes: &[u8]) -> Result<Vec<String>> {
    if bytes.len() < 24 || bytes[..4] != ELF_MAGIC {
        return Err(ApkError::Malformed("not an ELF image".into()));
    }
    let len = u32::from_le_bytes([bytes[20], bytes[21], bytes[22], bytes[23]]) as usize;
    if 24 + len > bytes.len() {
        return Err(ApkError::Malformed("ELF string table truncated".into()));
    }
    let table = &bytes[24..24 + len];
    Ok(table
        .split(|&b| b == 0)
        .filter(|s| !s.is_empty())
        .map(|s| String::from_utf8_lossy(s).into_owned())
        .collect())
}

/// True if the image looks like an ELF shared object at all.
pub fn is_elf(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == ELF_MAGIC
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_symbols() {
        let so = build_so("libtensorflowlite_jni.so", &["TfLiteInterpreterCreate", "TfLiteModelCreate"]);
        assert!(is_elf(&so));
        let strings = extract_strings(&so).unwrap();
        assert_eq!(strings[0], "libtensorflowlite_jni.so");
        assert!(strings.contains(&"TfLiteModelCreate".to_string()));
    }

    #[test]
    fn rejects_non_elf() {
        assert!(extract_strings(b"MZ not an elf").is_err());
        assert!(!is_elf(b"PK"));
    }

    #[test]
    fn rejects_truncated_table() {
        let mut so = build_so("libncnn.so", &["ncnn_net_load_param"]);
        so.truncate(so.len() - 5);
        assert!(extract_strings(&so).is_err());
    }

    #[test]
    fn empty_symbol_list_ok() {
        let so = build_so("libplain.so", &[]);
        let strings = extract_strings(&so).unwrap();
        assert_eq!(strings, vec!["libplain.so".to_string()]);
    }
}
