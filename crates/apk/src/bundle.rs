//! Android App Bundles with Play Asset Delivery.
//!
//! §3.1: bundles "offer the possibility of downloading assets on demand, as
//! needed for a given device" — including, in principle, device-specific
//! models (e.g. an NPU variant). §4.2 measures that this capability is
//! unused for DNNs; to measure that honestly the crawler must fetch and scan
//! asset packs, including packs with device targeting conditions.
//!
//! A bundle is modelled as a ZIP whose top-level entries are module
//! archives: `base.apk` plus zero or more `<pack>.assetpack` ZIPs, each with
//! an optional device-targeting manifest line.

use crate::zip::{ZipArchive, ZipWriter};
use crate::{ApkError, Result};

/// Delivery mode of an asset pack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Delivered with the app install.
    InstallTime,
    /// Downloaded on first demand.
    OnDemand,
}

/// One asset pack inside a bundle.
#[derive(Debug, Clone)]
pub struct AssetPack {
    /// Pack name.
    pub name: String,
    /// Delivery mode.
    pub delivery: Delivery,
    /// Device targeting condition (e.g. `"sdk>=31"`, `"soc=qcom"`), empty
    /// for untargeted packs.
    pub targeting: String,
    /// Files in the pack.
    pub files: Vec<(String, Vec<u8>)>,
}

/// Builder for an app bundle.
#[derive(Debug)]
pub struct BundleBuilder {
    base_apk: Vec<u8>,
    packs: Vec<AssetPack>,
}

impl BundleBuilder {
    /// Start from a serialised base APK.
    pub fn new(base_apk: Vec<u8>) -> Self {
        BundleBuilder {
            base_apk,
            packs: Vec::new(),
        }
    }

    /// Add an asset pack.
    pub fn add_pack(&mut self, pack: AssetPack) -> &mut Self {
        self.packs.push(pack);
        self
    }

    /// Serialise the bundle.
    pub fn finish(self) -> Result<Vec<u8>> {
        let mut outer = ZipWriter::new();
        outer.add("base.apk", self.base_apk)?;
        for pack in &self.packs {
            let mut inner = ZipWriter::new();
            let manifest = format!(
                "name={}\ndelivery={}\ntargeting={}\n",
                pack.name,
                match pack.delivery {
                    Delivery::InstallTime => "install-time",
                    Delivery::OnDemand => "on-demand",
                },
                pack.targeting
            );
            inner.add("pack.manifest", manifest.into_bytes())?;
            for (path, data) in &pack.files {
                inner.add(format!("assets/{path}"), data.clone())?;
            }
            outer.add(format!("{}.assetpack", pack.name), inner.finish())?;
        }
        Ok(outer.finish())
    }
}

/// A parsed bundle.
#[derive(Debug, Clone)]
pub struct Bundle {
    /// The base APK bytes.
    pub base_apk: Vec<u8>,
    /// Parsed asset packs.
    pub packs: Vec<AssetPack>,
}

impl Bundle {
    /// Parse a bundle image.
    pub fn parse(bytes: &[u8]) -> Result<Self> {
        let outer = ZipArchive::parse(bytes)?;
        let base_apk = outer
            .get("base.apk")
            .ok_or_else(|| ApkError::Malformed("bundle missing base.apk".into()))?
            .to_vec();
        let mut packs = Vec::new();
        for entry in outer.entries() {
            let Some(name) = entry.name.strip_suffix(".assetpack") else {
                continue;
            };
            let inner = ZipArchive::parse(&entry.data)?;
            let manifest = inner
                .get("pack.manifest")
                .ok_or_else(|| ApkError::Malformed(format!("pack '{name}' missing manifest")))?;
            let text = String::from_utf8_lossy(manifest);
            let get = |key: &str| -> String {
                text.lines()
                    .find_map(|l| l.strip_prefix(key))
                    .unwrap_or("")
                    .to_string()
            };
            let delivery = match get("delivery=").as_str() {
                "on-demand" => Delivery::OnDemand,
                _ => Delivery::InstallTime,
            };
            let files = inner
                .entries()
                .iter()
                .filter_map(|e| {
                    e.name
                        .strip_prefix("assets/")
                        .map(|p| (p.to_string(), e.data.clone()))
                })
                .collect();
            packs.push(AssetPack {
                name: get("name="),
                delivery,
                targeting: get("targeting="),
                files,
            });
        }
        Ok(Bundle { base_apk, packs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apk::ApkBuilder;

    fn base() -> Vec<u8> {
        ApkBuilder::new("com.example.bundled", 9).finish().unwrap()
    }

    #[test]
    fn roundtrip_with_packs() {
        let mut b = BundleBuilder::new(base());
        b.add_pack(AssetPack {
            name: "ml_models".into(),
            delivery: Delivery::OnDemand,
            targeting: "soc=qcom".into(),
            files: vec![("detector.dlc".into(), vec![5; 64])],
        });
        b.add_pack(AssetPack {
            name: "textures".into(),
            delivery: Delivery::InstallTime,
            targeting: String::new(),
            files: vec![("t.bin".into(), vec![1])],
        });
        let bytes = b.finish().unwrap();
        let bundle = Bundle::parse(&bytes).unwrap();
        assert_eq!(bundle.packs.len(), 2);
        let ml = &bundle.packs[0];
        assert_eq!(ml.name, "ml_models");
        assert_eq!(ml.delivery, Delivery::OnDemand);
        assert_eq!(ml.targeting, "soc=qcom");
        assert_eq!(ml.files[0].0, "detector.dlc");
        // Base apk is itself parseable.
        let apk = crate::apk::Apk::parse(&bundle.base_apk).unwrap();
        assert_eq!(apk.package(), "com.example.bundled");
    }

    #[test]
    fn bundle_without_packs() {
        let bytes = BundleBuilder::new(base()).finish().unwrap();
        let bundle = Bundle::parse(&bytes).unwrap();
        assert!(bundle.packs.is_empty());
    }

    #[test]
    fn missing_base_rejected() {
        let mut w = ZipWriter::new();
        w.add("something.assetpack", ZipWriter::new().finish()).unwrap();
        assert!(Bundle::parse(&w.finish()).is_err());
    }
}
