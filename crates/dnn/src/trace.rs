//! Trace-based operation and parameter accounting.
//!
//! Mirrors §4.7 of the paper: "we generate a random input with the
//! DNN-specified input dimensions and perform a DNN inference. During the
//! forward propagation step, we measure analytically the amount of operations
//! being performed per layer … and the number of trainable parameters".
//!
//! FLOPs are counted as 2 × MACs for multiply-accumulate layers (footnote 3
//! of the paper). The trace also records per-layer memory traffic, which the
//! SoC roofline model uses to decide whether a layer is compute- or
//! memory-bound.

use crate::graph::{Graph, LayerKind};
use crate::shape::infer_shapes;
use crate::tensor::Shape;
use crate::Result;

/// Per-layer accounting record.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerTrace {
    /// Node id in the graph.
    pub node: usize,
    /// Layer name.
    pub name: String,
    /// Coarse family label (see [`LayerKind::family`]).
    pub family: &'static str,
    /// Output shape.
    pub out_shape: Shape,
    /// Multiply-accumulate count.
    pub macs: u64,
    /// Floating-point operation count (2 × MACs for MAC layers, element
    /// counts for pointwise ops).
    pub flops: u64,
    /// Trainable parameters attached to this layer.
    pub params: u64,
    /// Bytes of weights + input activations read.
    pub bytes_read: u64,
    /// Bytes of output activations written.
    pub bytes_written: u64,
    /// Of `bytes_read`, the weight portion (batch-invariant).
    pub weight_bytes: u64,
}

impl LayerTrace {
    /// Arithmetic intensity in FLOPs per byte of traffic; the roofline knee.
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = (self.bytes_read + self.bytes_written).max(1);
        self.flops as f64 / bytes as f64
    }
}

/// Whole-graph accounting summary.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Per-layer records in topological order (inputs excluded).
    pub layers: Vec<LayerTrace>,
    /// Total multiply-accumulates.
    pub total_macs: u64,
    /// Total FLOPs.
    pub total_flops: u64,
    /// Total trainable parameters.
    pub total_params: u64,
    /// Peak single-layer activation footprint in elements (proxy for runtime
    /// memory high-water mark).
    pub peak_activation_elems: u64,
}

impl TraceReport {
    /// Model size in bytes assuming f32 storage of all parameters.
    pub fn model_bytes_f32(&self) -> u64 {
        self.total_params * 4
    }

    /// Giga-FLOPs, for reporting.
    pub fn gflops(&self) -> f64 {
        self.total_flops as f64 / 1e9
    }
}

/// Rescale a batch-1 trace to `batch` samples without re-deriving it from
/// the graph. Exact for every layer kind in this IR: compute and
/// activation traffic scale linearly with batch while weight traffic does
/// not. The runtime experiments use this so unique-model records can drop
/// their (weight-heavy) graphs after offline analysis.
pub fn rebatch(trace: &TraceReport, batch: usize) -> TraceReport {
    let b = batch as u64;
    let layers: Vec<LayerTrace> = trace
        .layers
        .iter()
        .map(|l| LayerTrace {
            node: l.node,
            name: l.name.clone(),
            family: l.family,
            out_shape: l.out_shape.with_batch(batch),
            macs: l.macs * b,
            flops: l.flops * b,
            params: l.params,
            bytes_read: l.weight_bytes + (l.bytes_read - l.weight_bytes) * b,
            bytes_written: l.bytes_written * b,
            weight_bytes: l.weight_bytes,
        })
        .collect();
    TraceReport {
        total_macs: layers.iter().map(|l| l.macs).sum(),
        total_flops: layers.iter().map(|l| l.flops).sum(),
        total_params: trace.total_params,
        peak_activation_elems: trace.peak_activation_elems * b,
        layers,
    }
}

/// Run the trace for batch size 1.
pub fn trace_graph(graph: &Graph) -> Result<TraceReport> {
    trace_graph_batched(graph, 1)
}

/// Run the trace with every input rebatched to `batch` samples.
pub fn trace_graph_batched(graph: &Graph, batch: usize) -> Result<TraceReport> {
    let mut shapes = infer_shapes(graph)?;
    if batch != 1 {
        for s in &mut shapes {
            *s = s.with_batch(batch);
        }
    }
    let mut layers = Vec::with_capacity(graph.nodes.len());
    let mut peak = 0u64;
    // Scratch for the per-node input-shape views, reused across nodes so
    // the trace (which the analysis pool runs once per unique model) does
    // not allocate per layer.
    let mut in_shapes: Vec<&Shape> = Vec::new();
    for (id, node) in graph.nodes.iter().enumerate() {
        let out = &shapes[id];
        peak = peak.max(out.elems() as u64);
        if matches!(node.kind, LayerKind::Input { .. }) {
            continue;
        }
        in_shapes.clear();
        in_shapes.extend(node.inputs.iter().map(|&i| &shapes[i]));
        let (macs, flops) = layer_ops(&node.kind, &in_shapes, out);
        let params = node.weights.as_ref().map_or(0, |w| w.len() as u64)
            + node.bias.as_ref().map_or(0, |b| b.len() as u64);
        let weight_bytes: u64 = node
            .weights
            .as_ref()
            .map_or(0, |w| (w.len() * w.dtype().size_bytes()) as u64)
            + node.bias.as_ref().map_or(0, |b| (b.len() * 4) as u64);
        let in_bytes: u64 = in_shapes.iter().map(|s| s.elems() as u64 * 4).sum();
        let out_bytes = out.elems() as u64 * 4;
        layers.push(LayerTrace {
            node: id,
            name: node.name.clone(),
            family: node.kind.family(),
            out_shape: out.clone(),
            macs,
            flops,
            params,
            bytes_read: weight_bytes + in_bytes,
            bytes_written: out_bytes,
            weight_bytes,
        });
    }
    let total_macs = layers.iter().map(|l| l.macs).sum();
    let total_flops = layers.iter().map(|l| l.flops).sum();
    let total_params = layers.iter().map(|l| l.params).sum();
    Ok(TraceReport {
        layers,
        total_macs,
        total_flops,
        total_params,
        peak_activation_elems: peak,
    })
}

/// (MACs, FLOPs) for one layer application.
fn layer_ops(kind: &LayerKind, ins: &[&Shape], out: &Shape) -> (u64, u64) {
    let out_elems = out.elems() as u64;
    match kind {
        LayerKind::Input { .. } => (0, 0),
        LayerKind::Conv2d { kernel, .. } => {
            let cin = ins[0].channels() as u64;
            let macs = out_elems * cin * (*kernel as u64) * (*kernel as u64);
            (macs, 2 * macs)
        }
        LayerKind::DepthwiseConv2d { kernel, .. } => {
            let macs = out_elems * (*kernel as u64) * (*kernel as u64);
            (macs, 2 * macs)
        }
        LayerKind::TransposeConv2d { kernel, .. } => {
            let cin = ins[0].channels() as u64;
            // Each output element accumulates k*k*cin contributions on
            // average divided by stride^2 overlap; we use the dense bound.
            let macs = out_elems * cin * (*kernel as u64) * (*kernel as u64);
            (macs, 2 * macs)
        }
        LayerKind::Dense { units } => {
            let cin = ins[0].channels() as u64;
            let rows = out_elems / (*units as u64).max(1);
            let macs = rows * cin * *units as u64;
            (macs, 2 * macs)
        }
        LayerKind::Activation(_) => (0, out_elems),
        LayerKind::Softmax => (0, 5 * out_elems),
        LayerKind::BatchNorm => (0, 2 * out_elems),
        LayerKind::L2Norm => (0, 3 * out_elems),
        LayerKind::Pool { kernel, .. } => {
            (0, out_elems * (*kernel as u64) * (*kernel as u64))
        }
        LayerKind::GlobalPool(_) => (0, ins[0].elems() as u64),
        LayerKind::Binary(_) => (0, out_elems),
        LayerKind::Concat | LayerKind::Reshape { .. } | LayerKind::Slice { .. } => (0, 0),
        LayerKind::Resize { mode, .. } => {
            let per = match mode {
                crate::graph::ResizeMode::Nearest => 1,
                crate::graph::ResizeMode::Bilinear => 7,
            };
            (0, per * out_elems)
        }
        LayerKind::Pad { .. } => (0, 0),
        LayerKind::Quantize(_) | LayerKind::Dequantize(_) => (0, 2 * out_elems),
        LayerKind::Embedding { .. } => (0, 0),
        LayerKind::Lstm { units } => {
            let s = ins[0];
            let (t, cin) = (s.dim(1) as u64, s.channels() as u64);
            let n = s.batch() as u64;
            let u = *units as u64;
            // 4 gates, each a dense over [input ++ hidden].
            let macs = n * t * 4 * (cin + u) * u;
            (macs, 2 * macs + n * t * 9 * u)
        }
        LayerKind::Gru { units } => {
            let s = ins[0];
            let (t, cin) = (s.dim(1) as u64, s.channels() as u64);
            let n = s.batch() as u64;
            let u = *units as u64;
            let macs = n * t * 3 * (cin + u) * u;
            (macs, 2 * macs + n * t * 7 * u)
        }
        LayerKind::MeanTime => (0, ins[0].elems() as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphBuilder, Padding};
    use crate::tensor::{DType, WeightData};

    fn w(n: usize) -> Option<WeightData> {
        Some(WeightData::F32(vec![0.5; n]))
    }

    #[test]
    fn conv_flops_match_closed_form() {
        let mut b = GraphBuilder::new("t");
        let i = b.input("in", Shape::nhwc(1, 16, 16, 3), DType::F32);
        let c = b.layer(
            "c",
            LayerKind::Conv2d {
                out_channels: 8,
                kernel: 3,
                stride: 1,
                padding: Padding::Same,
            },
            &[i],
            w(3 * 3 * 3 * 8),
            w(8),
        );
        let g = b.finish(vec![c]).unwrap();
        let r = trace_graph(&g).unwrap();
        let macs = 16 * 16 * 8 * 3 * 3 * 3;
        assert_eq!(r.total_macs, macs);
        assert_eq!(r.total_flops, 2 * macs);
        assert_eq!(r.total_params, 3 * 3 * 3 * 8 + 8);
    }

    #[test]
    fn depthwise_cheaper_than_full_conv() {
        let make = |depthwise: bool| {
            let mut b = GraphBuilder::new("t");
            let i = b.input("in", Shape::nhwc(1, 32, 32, 16), DType::F32);
            let c = if depthwise {
                b.layer(
                    "dw",
                    LayerKind::DepthwiseConv2d {
                        kernel: 3,
                        stride: 1,
                        padding: Padding::Same,
                    },
                    &[i],
                    w(3 * 3 * 16),
                    None,
                )
            } else {
                b.layer(
                    "c",
                    LayerKind::Conv2d {
                        out_channels: 16,
                        kernel: 3,
                        stride: 1,
                        padding: Padding::Same,
                    },
                    &[i],
                    w(3 * 3 * 16 * 16),
                    None,
                )
            };
            trace_graph(&b.finish(vec![c]).unwrap()).unwrap()
        };
        let dw = make(true);
        let full = make(false);
        assert_eq!(full.total_macs, 16 * dw.total_macs);
    }

    #[test]
    fn dense_flops() {
        let mut b = GraphBuilder::new("t");
        let i = b.input("in", Shape::vec2(1, 128), DType::F32);
        let d = b.layer(
            "fc",
            LayerKind::Dense { units: 10 },
            &[i],
            w(128 * 10),
            w(10),
        );
        let g = b.finish(vec![d]).unwrap();
        let r = trace_graph(&g).unwrap();
        assert_eq!(r.total_macs, 1280);
        assert_eq!(r.total_flops, 2560);
    }

    #[test]
    fn batch_scales_flops_not_params() {
        let mut b = GraphBuilder::new("t");
        let i = b.input("in", Shape::nhwc(1, 8, 8, 3), DType::F32);
        let c = b.layer(
            "c",
            LayerKind::Conv2d {
                out_channels: 4,
                kernel: 3,
                stride: 1,
                padding: Padding::Same,
            },
            &[i],
            w(3 * 3 * 3 * 4),
            None,
        );
        let g = b.finish(vec![c]).unwrap();
        let r1 = trace_graph_batched(&g, 1).unwrap();
        let r4 = trace_graph_batched(&g, 4).unwrap();
        assert_eq!(r4.total_flops, 4 * r1.total_flops);
        assert_eq!(r4.total_params, r1.total_params);
        assert_eq!(r4.peak_activation_elems, 4 * r1.peak_activation_elems);
    }

    #[test]
    fn rebatch_matches_direct_batched_trace() {
        use crate::task::Task;
        use crate::zoo::{build_for_task, SizeClass};
        for task in [Task::ImageClassification, Task::AutoComplete, Task::KeywordDetection] {
            let g = build_for_task(task, 77, SizeClass::Small, true).graph;
            let t1 = trace_graph(&g).unwrap();
            for batch in [2usize, 5, 25] {
                let direct = trace_graph_batched(&g, batch).unwrap();
                let scaled = rebatch(&t1, batch);
                assert_eq!(scaled, direct, "{task:?} batch {batch}");
            }
        }
    }

    #[test]
    fn lstm_ops_scale_with_sequence() {
        let build = |t: usize| {
            let mut b = GraphBuilder::new("t");
            let i = b.input("in", Shape(vec![1, t, 32]), DType::F32);
            let l = b.layer(
                "lstm",
                LayerKind::Lstm { units: 64 },
                &[i],
                w(4 * (32 + 64 + 1) * 64),
                None,
            );
            trace_graph(&b.finish(vec![l]).unwrap()).unwrap()
        };
        let r8 = build(8);
        let r16 = build(16);
        assert_eq!(r16.total_macs, 2 * r8.total_macs);
    }

    #[test]
    fn arithmetic_intensity_separates_conv_from_activation() {
        let mut b = GraphBuilder::new("t");
        let i = b.input("in", Shape::nhwc(1, 32, 32, 16), DType::F32);
        let c = b.layer(
            "c",
            LayerKind::Conv2d {
                out_channels: 16,
                kernel: 3,
                stride: 1,
                padding: Padding::Same,
            },
            &[i],
            w(3 * 3 * 16 * 16),
            None,
        );
        let a = b.op(
            "relu",
            LayerKind::Activation(crate::graph::ActKind::Relu),
            &[c],
        );
        let g = b.finish(vec![a]).unwrap();
        let r = trace_graph(&g).unwrap();
        let conv = &r.layers[0];
        let relu = &r.layers[1];
        assert!(conv.arithmetic_intensity() > 10.0 * relu.arithmetic_intensity());
    }

    #[test]
    fn report_helpers() {
        let mut b = GraphBuilder::new("t");
        let i = b.input("in", Shape::vec2(1, 4), DType::F32);
        let d = b.layer("fc", LayerKind::Dense { units: 2 }, &[i], w(8), w(2));
        let g = b.finish(vec![d]).unwrap();
        let r = trace_graph(&g).unwrap();
        assert_eq!(r.model_bytes_f32(), 40);
        assert!(r.gflops() > 0.0);
    }
}
