//! # gaugenn-dnn — DNN graph substrate
//!
//! The paper analyses Deep Neural Networks as directed acyclic graphs (DAGs):
//! layers are vertices, data flows are edges (§3.2). This crate provides that
//! substrate from scratch:
//!
//! * [`graph`] — the graph IR (`Graph`, `Node`, `LayerKind`) and a builder.
//! * [`tensor`] — shapes, dtypes and weight storage (f32 and int8-quantised).
//! * [`shape`] — static shape inference for every layer kind.
//! * [`trace`] — trace-based FLOPs / MACs / parameter accounting, mirroring
//!   the paper's "generate a random input … and measure analytically the
//!   amount of operations being performed per layer" (§4.7).
//! * [`exec`] — a correct (if unoptimised) reference executor, used by the
//!   benchmark harness to actually run inferences.
//! * [`quant`] — int8 affine quantisation of weights and activations (§6.1).
//! * [`zoo`] — parameterised generators for the model families the paper
//!   found in the wild (MobileNets, FSSD, BlazeFace, segmenters, CRNNs,
//!   autocomplete LSTMs, audio CNNs, sensor MLPs, …).
//! * [`task`] — the task/modality taxonomy of Table 3.
//!
//! All randomness is seeded; a given seed always produces bit-identical
//! weights and therefore bit-identical serialised models and checksums.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod graph;
pub mod quant;
pub mod shape;
pub mod task;
pub mod tensor;
pub mod trace;
pub mod zoo;

pub use graph::{Graph, GraphBuilder, LayerKind, Node, NodeId};
pub use tensor::{DType, Shape, Tensor, WeightData};
pub use trace::{trace_graph, TraceReport};

/// Errors produced by graph construction, shape inference and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum DnnError {
    /// A node referenced an input id that does not exist (or appears later in
    /// topological order).
    DanglingInput {
        /// The node holding the bad reference.
        node: usize,
        /// The missing input id.
        input: usize,
    },
    /// The graph contains a cycle or nodes are not topologically ordered.
    NotTopological(usize),
    /// Shape inference failed for a node.
    Shape {
        /// Index of the offending node.
        node: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// The executor was given an input tensor of the wrong shape or dtype.
    BadInput(String),
    /// The executor hit a layer configuration it cannot run.
    Unsupported(String),
    /// Weights attached to a node do not match what the layer requires.
    BadWeights {
        /// Index of the offending node.
        node: usize,
        /// Human-readable reason.
        reason: String,
    },
}

impl std::fmt::Display for DnnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DnnError::DanglingInput { node, input } => {
                write!(f, "node {node} references missing input {input}")
            }
            DnnError::NotTopological(n) => write!(f, "node {n} breaks topological order"),
            DnnError::Shape { node, reason } => {
                write!(f, "shape inference failed at node {node}: {reason}")
            }
            DnnError::BadInput(r) => write!(f, "bad executor input: {r}"),
            DnnError::Unsupported(r) => write!(f, "unsupported operation: {r}"),
            DnnError::BadWeights { node, reason } => {
                write!(f, "bad weights at node {node}: {reason}")
            }
        }
    }
}

impl std::error::Error for DnnError {}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, DnnError>;
