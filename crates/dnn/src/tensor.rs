//! Shapes, data types, runtime tensors and weight storage.
//!
//! Vision tensors use `NHWC` layout (the TFLite convention, which dominates
//! the paper's corpus at 86 % of models); sequence tensors are `[N, T]` or
//! `[N, T, C]`; plain feature vectors are `[N, C]`.

use crate::DnnError;

/// Element type of a tensor.
///
/// The paper's §6.1 quantisation analysis distinguishes float32 weights and
/// activations from int8 ones; `I32` appears as bias accumulator / index type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 32-bit IEEE float (default for CPU/GPU execution in the paper).
    F32,
    /// 8-bit signed integer, affine-quantised.
    I8,
    /// 8-bit unsigned integer, affine-quantised (TFLite legacy quantisation).
    U8,
    /// 32-bit signed integer (token ids, bias accumulators).
    I32,
}

impl DType {
    /// Storage size of one element in bytes.
    pub const fn size_bytes(self) -> usize {
        match self {
            DType::F32 | DType::I32 => 4,
            DType::I8 | DType::U8 => 1,
        }
    }

    /// Short lower-case name used by the format codecs and reports.
    pub const fn name(self) -> &'static str {
        match self {
            DType::F32 => "float32",
            DType::I8 => "int8",
            DType::U8 => "uint8",
            DType::I32 => "int32",
        }
    }
}

/// A tensor shape: a list of dimension extents.
///
/// The leading dimension is always the batch dimension `N`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Build a shape from a slice of extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// `[n, h, w, c]` NHWC image shape.
    pub fn nhwc(n: usize, h: usize, w: usize, c: usize) -> Self {
        Shape(vec![n, h, w, c])
    }

    /// `[n, features]` vector shape.
    pub fn vec2(n: usize, features: usize) -> Self {
        Shape(vec![n, features])
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total element count (product of all extents).
    pub fn elems(&self) -> usize {
        self.0.iter().product()
    }

    /// Element count excluding the batch dimension.
    pub fn elems_per_sample(&self) -> usize {
        if self.0.is_empty() {
            0
        } else {
            self.0[1..].iter().product()
        }
    }

    /// The batch extent (dimension 0), or 1 for rank-0 shapes.
    pub fn batch(&self) -> usize {
        self.0.first().copied().unwrap_or(1)
    }

    /// Returns a copy with the batch dimension replaced.
    pub fn with_batch(&self, n: usize) -> Shape {
        let mut d = self.0.clone();
        if d.is_empty() {
            d.push(n);
        } else {
            d[0] = n;
        }
        Shape(d)
    }

    /// Extent of dimension `i`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// For an NHWC shape, the `(h, w, c)` triple.
    pub fn hwc(&self) -> Option<(usize, usize, usize)> {
        if self.rank() == 4 {
            Some((self.0[1], self.0[2], self.0[3]))
        } else {
            None
        }
    }

    /// Last-dimension extent (channel count for NHWC, feature count for NC).
    pub fn channels(&self) -> usize {
        self.0.last().copied().unwrap_or(0)
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

/// Affine quantisation parameters: `real = scale * (q - zero_point)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Scale factor.
    pub scale: f32,
    /// Zero point in the quantised domain.
    pub zero_point: i32,
}

impl QuantParams {
    /// Identity-ish default used when a layer has no calibrated range.
    pub const UNIT: QuantParams = QuantParams {
        scale: 1.0,
        zero_point: 0,
    };

    /// Quantise a real value to i8 with saturation.
    pub fn quantize(&self, x: f32) -> i8 {
        let q = (x / self.scale).round() as i32 + self.zero_point;
        q.clamp(i8::MIN as i32, i8::MAX as i32) as i8
    }

    /// Dequantise an i8 value back to f32.
    pub fn dequantize(&self, q: i8) -> f32 {
        self.scale * (q as i32 - self.zero_point) as f32
    }
}

/// Weight payload attached to a graph node.
///
/// Weights are what the paper md5-checksums for its uniqueness analysis
/// (§4.5), so the storage keeps the exact byte layout stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum WeightData {
    /// Full-precision weights.
    F32(Vec<f32>),
    /// int8 affine-quantised weights.
    I8 {
        /// Quantised values.
        data: Vec<i8>,
        /// Quantisation parameters shared by the whole tensor.
        params: QuantParams,
    },
}

impl WeightData {
    /// Number of scalar weights stored.
    pub fn len(&self) -> usize {
        match self {
            WeightData::F32(v) => v.len(),
            WeightData::I8 { data, .. } => data.len(),
        }
    }

    /// True when no weights are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The storage dtype of the payload.
    pub fn dtype(&self) -> DType {
        match self {
            WeightData::F32(_) => DType::F32,
            WeightData::I8 { .. } => DType::I8,
        }
    }

    /// Read weight `i` as f32 (dequantising if needed).
    pub fn get(&self, i: usize) -> f32 {
        match self {
            WeightData::F32(v) => v[i],
            WeightData::I8 { data, params } => params.dequantize(data[i]),
        }
    }

    /// Materialise all weights as a dense f32 vector.
    pub fn to_f32(&self) -> Vec<f32> {
        match self {
            WeightData::F32(v) => v.clone(),
            WeightData::I8 { data, params } => {
                data.iter().map(|&q| params.dequantize(q)).collect()
            }
        }
    }

    /// Stable little-endian byte serialisation, used for checksumming.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            WeightData::F32(v) => {
                let mut out = Vec::with_capacity(v.len() * 4);
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
                out
            }
            WeightData::I8 { data, params } => {
                let mut out = Vec::with_capacity(data.len() + 8);
                out.extend_from_slice(&params.scale.to_le_bytes());
                out.extend_from_slice(&params.zero_point.to_le_bytes());
                out.extend(data.iter().map(|&b| b as u8));
                out
            }
        }
    }

    /// Fraction of weights with magnitude below `eps`.
    ///
    /// The paper reports 3.15 % of weights within ±1e-9 when probing for
    /// pruning headroom (§6.1).
    pub fn near_zero_fraction(&self, eps: f32) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let near = match self {
            WeightData::F32(v) => v.iter().filter(|x| x.abs() <= eps).count(),
            WeightData::I8 { data, params } => data
                .iter()
                .filter(|&&q| params.dequantize(q).abs() <= eps)
                .count(),
        };
        near as f64 / self.len() as f64
    }
}

/// A runtime activation tensor used by the reference executor.
///
/// Activations are always computed in f32; quantised execution dequantises on
/// load exactly like TFLite's reference kernels do.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    /// Shape of the tensor.
    pub shape: Shape,
    /// Row-major (C-order) element storage.
    pub data: Vec<f32>,
}

impl Tensor {
    /// Create a zero-filled tensor.
    pub fn zeros(shape: Shape) -> Self {
        let n = shape.elems();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Create a tensor from raw data, validating the element count.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self, DnnError> {
        if shape.elems() != data.len() {
            return Err(DnnError::BadInput(format!(
                "shape {shape} needs {} elems, got {}",
                shape.elems(),
                data.len()
            )));
        }
        Ok(Tensor { shape, data })
    }

    /// Fill with a deterministic pseudo-random pattern (for benchmark inputs;
    /// the paper feeds "a random input with the DNN-specified input
    /// dimensions", §4.7).
    pub fn random_like(shape: Shape, seed: u64) -> Self {
        let n = shape.elems();
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            // xorshift64* — cheap, deterministic, good enough for inputs.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let r = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            let unit = (r >> 11) as f64 / (1u64 << 53) as f64;
            data.push((unit * 2.0 - 1.0) as f32);
        }
        Tensor {
            shape: shape.clone(),
            data,
        }
    }

    /// Index into an NHWC tensor.
    #[inline]
    pub fn at4(&self, n: usize, h: usize, w: usize, c: usize) -> f32 {
        let (_, hh, ww, cc) = (
            self.shape.0[0],
            self.shape.0[1],
            self.shape.0[2],
            self.shape.0[3],
        );
        self.data[((n * hh + h) * ww + w) * cc + c]
    }

    /// Mutable index into an NHWC tensor.
    #[inline]
    pub fn at4_mut(&mut self, n: usize, h: usize, w: usize, c: usize) -> &mut f32 {
        let (hh, ww, cc) = (self.shape.0[1], self.shape.0[2], self.shape.0[3]);
        &mut self.data[((n * hh + h) * ww + w) * cc + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_basics() {
        let s = Shape::nhwc(2, 8, 8, 3);
        assert_eq!(s.rank(), 4);
        assert_eq!(s.elems(), 2 * 8 * 8 * 3);
        assert_eq!(s.elems_per_sample(), 8 * 8 * 3);
        assert_eq!(s.batch(), 2);
        assert_eq!(s.channels(), 3);
        assert_eq!(s.hwc(), Some((8, 8, 3)));
        assert_eq!(s.with_batch(5).batch(), 5);
        assert_eq!(format!("{s}"), "[2x8x8x3]");
    }

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::I8.size_bytes(), 1);
        assert_eq!(DType::U8.size_bytes(), 1);
        assert_eq!(DType::I32.size_bytes(), 4);
        assert_eq!(DType::I8.name(), "int8");
    }

    #[test]
    fn quant_roundtrip_within_scale() {
        let q = QuantParams {
            scale: 0.05,
            zero_point: 3,
        };
        for &x in &[-1.0f32, -0.33, 0.0, 0.17, 1.0] {
            let back = q.dequantize(q.quantize(x));
            assert!((back - x).abs() <= 0.05 / 2.0 + 1e-6, "{x} -> {back}");
        }
    }

    #[test]
    fn quant_saturates() {
        let q = QuantParams {
            scale: 0.01,
            zero_point: 0,
        };
        assert_eq!(q.quantize(100.0), i8::MAX);
        assert_eq!(q.quantize(-100.0), i8::MIN);
    }

    #[test]
    fn weight_bytes_stable_and_distinct() {
        let w = WeightData::F32(vec![1.0, -2.5]);
        assert_eq!(w.to_bytes(), w.to_bytes());
        let w2 = WeightData::F32(vec![1.0, -2.4]);
        assert_ne!(w.to_bytes(), w2.to_bytes());
        assert_eq!(w.to_bytes().len(), 8);
    }

    #[test]
    fn near_zero_fraction_counts() {
        let w = WeightData::F32(vec![0.0, 1.0, 0.0, -1.0]);
        assert!((w.near_zero_fraction(1e-9) - 0.5).abs() < 1e-12);
        let empty = WeightData::F32(vec![]);
        assert_eq!(empty.near_zero_fraction(1e-9), 0.0);
    }

    #[test]
    fn tensor_from_vec_validates() {
        assert!(Tensor::from_vec(Shape::vec2(1, 3), vec![1.0, 2.0]).is_err());
        let t = Tensor::from_vec(Shape::vec2(1, 2), vec![1.0, 2.0]).unwrap();
        assert_eq!(t.data.len(), 2);
    }

    #[test]
    fn random_like_deterministic() {
        let a = Tensor::random_like(Shape::nhwc(1, 4, 4, 3), 42);
        let b = Tensor::random_like(Shape::nhwc(1, 4, 4, 3), 42);
        let c = Tensor::random_like(Shape::nhwc(1, 4, 4, 3), 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.data.iter().all(|x| (-1.0..=1.0).contains(x)));
    }

    #[test]
    fn i8_weights_roundtrip_via_get() {
        let params = QuantParams {
            scale: 0.1,
            zero_point: 0,
        };
        let w = WeightData::I8 {
            data: vec![10, -20],
            params,
        };
        assert!((w.get(0) - 1.0).abs() < 1e-6);
        assert!((w.get(1) + 2.0).abs() < 1e-6);
        assert_eq!(w.dtype(), DType::I8);
        assert_eq!(w.to_f32().len(), 2);
    }
}
