//! Static shape inference.
//!
//! Given a validated [`Graph`], [`infer_shapes`] produces the output shape of
//! every node. Tracing, the executor and the SoC latency model all consume
//! these shapes.

use crate::graph::{Graph, LayerKind, Padding};
use crate::tensor::Shape;
use crate::{DnnError, Result};

/// Spatial output extent of a windowed op.
pub fn conv_out_dim(input: usize, kernel: usize, stride: usize, padding: Padding) -> usize {
    match padding {
        Padding::Same => input.div_ceil(stride),
        Padding::Valid => {
            if input < kernel {
                0
            } else {
                (input - kernel) / stride + 1
            }
        }
    }
}

fn err(node: usize, reason: impl Into<String>) -> DnnError {
    DnnError::Shape {
        node,
        reason: reason.into(),
    }
}

fn want_rank(node: usize, s: &Shape, rank: usize, what: &str) -> Result<()> {
    if s.rank() != rank {
        Err(err(
            node,
            format!("{what} expects rank-{rank} input, got {s}"),
        ))
    } else {
        Ok(())
    }
}

/// Infer the output shape of every node in topological order.
///
/// Returns one shape per node, indexed by [`crate::NodeId`].
pub fn infer_shapes(graph: &Graph) -> Result<Vec<Shape>> {
    let mut shapes: Vec<Shape> = Vec::with_capacity(graph.nodes.len());
    for (id, node) in graph.nodes.iter().enumerate() {
        let ins: Vec<&Shape> = node.inputs.iter().map(|&i| &shapes[i]).collect();
        let out = infer_node(id, &node.kind, &ins)?;
        shapes.push(out);
    }
    Ok(shapes)
}

fn infer_node(id: usize, kind: &LayerKind, ins: &[&Shape]) -> Result<Shape> {
    match kind {
        LayerKind::Input { shape, .. } => Ok(shape.clone()),
        LayerKind::Conv2d {
            out_channels,
            kernel,
            stride,
            padding,
        } => {
            let s = ins[0];
            want_rank(id, s, 4, "conv2d")?;
            let (h, w, _c) = s.hwc().expect("rank 4");
            let oh = conv_out_dim(h, *kernel, *stride, *padding);
            let ow = conv_out_dim(w, *kernel, *stride, *padding);
            if oh == 0 || ow == 0 {
                return Err(err(id, format!("conv2d collapses {s} to zero extent")));
            }
            Ok(Shape::nhwc(s.batch(), oh, ow, *out_channels))
        }
        LayerKind::DepthwiseConv2d {
            kernel,
            stride,
            padding,
        } => {
            let s = ins[0];
            want_rank(id, s, 4, "depthwise_conv2d")?;
            let (h, w, c) = s.hwc().expect("rank 4");
            let oh = conv_out_dim(h, *kernel, *stride, *padding);
            let ow = conv_out_dim(w, *kernel, *stride, *padding);
            if oh == 0 || ow == 0 {
                return Err(err(id, "depthwise conv collapses input to zero extent"));
            }
            Ok(Shape::nhwc(s.batch(), oh, ow, c))
        }
        LayerKind::TransposeConv2d {
            out_channels,
            stride,
            ..
        } => {
            let s = ins[0];
            want_rank(id, s, 4, "transpose_conv2d")?;
            let (h, w, _) = s.hwc().expect("rank 4");
            Ok(Shape::nhwc(s.batch(), h * stride, w * stride, *out_channels))
        }
        LayerKind::Dense { units } => {
            let s = ins[0];
            if s.rank() < 2 {
                return Err(err(id, format!("dense expects rank >= 2, got {s}")));
            }
            let mut d = s.0.clone();
            *d.last_mut().expect("rank >= 2") = *units;
            Ok(Shape(d))
        }
        LayerKind::Activation(_) | LayerKind::Softmax | LayerKind::BatchNorm | LayerKind::L2Norm => {
            Ok(ins[0].clone())
        }
        LayerKind::Pool {
            kernel,
            stride,
            padding,
            ..
        } => {
            let s = ins[0];
            want_rank(id, s, 4, "pool")?;
            let (h, w, c) = s.hwc().expect("rank 4");
            let oh = conv_out_dim(h, *kernel, *stride, *padding);
            let ow = conv_out_dim(w, *kernel, *stride, *padding);
            if oh == 0 || ow == 0 {
                return Err(err(id, "pool collapses input to zero extent"));
            }
            Ok(Shape::nhwc(s.batch(), oh, ow, c))
        }
        LayerKind::GlobalPool(_) => {
            let s = ins[0];
            want_rank(id, s, 4, "global_pool")?;
            Ok(Shape::nhwc(s.batch(), 1, 1, s.channels()))
        }
        LayerKind::Binary(_) => {
            let (a, b) = (ins[0], ins[1]);
            if a != b {
                return Err(err(id, format!("binary op shape mismatch: {a} vs {b}")));
            }
            Ok(a.clone())
        }
        LayerKind::Concat => {
            let first = ins[0];
            let mut channels = 0usize;
            for s in ins {
                if s.rank() != first.rank() || s.0[..s.rank() - 1] != first.0[..first.rank() - 1] {
                    return Err(err(
                        id,
                        format!("concat mismatch: {s} vs {first} (all dims but last must agree)"),
                    ));
                }
                channels += s.channels();
            }
            let mut d = first.0.clone();
            *d.last_mut().expect("non-empty") = channels;
            Ok(Shape(d))
        }
        LayerKind::Reshape { dims } => {
            let s = ins[0];
            let want: usize = dims.iter().product();
            if want != s.elems_per_sample() {
                return Err(err(
                    id,
                    format!(
                        "reshape target {want} elems != input {} elems",
                        s.elems_per_sample()
                    ),
                ));
            }
            let mut d = vec![s.batch()];
            d.extend_from_slice(dims);
            Ok(Shape(d))
        }
        LayerKind::Resize { out_h, out_w, .. } => {
            let s = ins[0];
            want_rank(id, s, 4, "resize")?;
            Ok(Shape::nhwc(s.batch(), *out_h, *out_w, s.channels()))
        }
        LayerKind::Slice { begin, len } => {
            let s = ins[0];
            if begin + len > s.channels() {
                return Err(err(
                    id,
                    format!(
                        "slice [{begin}, {}) out of range for {} channels",
                        begin + len,
                        s.channels()
                    ),
                ));
            }
            let mut d = s.0.clone();
            *d.last_mut().expect("non-empty") = *len;
            Ok(Shape(d))
        }
        LayerKind::Pad { pad } => {
            let s = ins[0];
            want_rank(id, s, 4, "pad")?;
            let (h, w, c) = s.hwc().expect("rank 4");
            Ok(Shape::nhwc(s.batch(), h + 2 * pad, w + 2 * pad, c))
        }
        LayerKind::Quantize(_) | LayerKind::Dequantize(_) => Ok(ins[0].clone()),
        LayerKind::Embedding { dim, .. } => {
            let s = ins[0];
            want_rank(id, s, 2, "embedding")?;
            Ok(Shape(vec![s.batch(), s.dim(1), *dim]))
        }
        LayerKind::Lstm { units } | LayerKind::Gru { units } => {
            let s = ins[0];
            want_rank(id, s, 3, "recurrent")?;
            Ok(Shape(vec![s.batch(), s.dim(1), *units]))
        }
        LayerKind::MeanTime => {
            let s = ins[0];
            want_rank(id, s, 3, "mean_time")?;
            Ok(Shape::vec2(s.batch(), s.channels()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ActKind, BinOp, GraphBuilder, PoolKind};
    use crate::tensor::{DType, WeightData};

    #[test]
    fn conv_out_dims() {
        assert_eq!(conv_out_dim(224, 3, 2, Padding::Same), 112);
        assert_eq!(conv_out_dim(224, 3, 1, Padding::Same), 224);
        assert_eq!(conv_out_dim(224, 3, 1, Padding::Valid), 222);
        assert_eq!(conv_out_dim(5, 3, 2, Padding::Valid), 2);
        assert_eq!(conv_out_dim(2, 3, 1, Padding::Valid), 0);
    }

    fn w(n: usize) -> Option<WeightData> {
        Some(WeightData::F32(vec![0.0; n]))
    }

    #[test]
    fn mobilenet_style_stack_shapes() {
        let mut b = GraphBuilder::new("t");
        let i = b.input("in", Shape::nhwc(1, 32, 32, 3), DType::F32);
        let c = b.layer(
            "c1",
            LayerKind::Conv2d {
                out_channels: 8,
                kernel: 3,
                stride: 2,
                padding: Padding::Same,
            },
            &[i],
            w(3 * 3 * 3 * 8),
            w(8),
        );
        let d = b.layer(
            "dw",
            LayerKind::DepthwiseConv2d {
                kernel: 3,
                stride: 1,
                padding: Padding::Same,
            },
            &[c],
            w(3 * 3 * 8),
            w(8),
        );
        let a = b.op("relu", LayerKind::Activation(ActKind::Relu6), &[d]);
        let g = b.op("gap", LayerKind::GlobalPool(PoolKind::Avg), &[a]);
        let r = b.op(
            "flat",
            LayerKind::Reshape { dims: vec![8] },
            &[g],
        );
        let f = b.layer("fc", LayerKind::Dense { units: 10 }, &[r], w(8 * 10), w(10));
        let s = b.op("sm", LayerKind::Softmax, &[f]);
        let graph = b.finish(vec![s]).unwrap();
        let shapes = infer_shapes(&graph).unwrap();
        assert_eq!(shapes[1], Shape::nhwc(1, 16, 16, 8));
        assert_eq!(shapes[2], Shape::nhwc(1, 16, 16, 8));
        assert_eq!(shapes[4], Shape::nhwc(1, 1, 1, 8));
        assert_eq!(shapes[5], Shape::vec2(1, 8));
        assert_eq!(shapes[7], Shape::vec2(1, 10));
    }

    #[test]
    fn binary_mismatch_rejected() {
        let mut b = GraphBuilder::new("t");
        let i1 = b.input("a", Shape::vec2(1, 4), DType::F32);
        let i2 = b.input("b", Shape::vec2(1, 5), DType::F32);
        let add = b.op("add", LayerKind::Binary(BinOp::Add), &[i1, i2]);
        let g = b.finish(vec![add]).unwrap();
        assert!(infer_shapes(&g).is_err());
    }

    #[test]
    fn concat_sums_channels() {
        let mut b = GraphBuilder::new("t");
        let i1 = b.input("a", Shape::nhwc(1, 4, 4, 3), DType::F32);
        let i2 = b.input("b", Shape::nhwc(1, 4, 4, 5), DType::F32);
        let c = b.op("cat", LayerKind::Concat, &[i1, i2]);
        let g = b.finish(vec![c]).unwrap();
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[2], Shape::nhwc(1, 4, 4, 8));
    }

    #[test]
    fn reshape_elem_mismatch_rejected() {
        let mut b = GraphBuilder::new("t");
        let i = b.input("a", Shape::nhwc(1, 2, 2, 3), DType::F32);
        let r = b.op("r", LayerKind::Reshape { dims: vec![11] }, &[i]);
        let g = b.finish(vec![r]).unwrap();
        assert!(infer_shapes(&g).is_err());
    }

    #[test]
    fn recurrent_pipeline_shapes() {
        let mut b = GraphBuilder::new("t");
        let i = b.input("tok", Shape::vec2(1, 16), DType::I32);
        let e = b.layer(
            "emb",
            LayerKind::Embedding {
                vocab: 100,
                dim: 32,
            },
            &[i],
            w(100 * 32),
            None,
        );
        let l = b.layer(
            "lstm",
            LayerKind::Lstm { units: 64 },
            &[e],
            w(4 * (32 + 64 + 1) * 64),
            None,
        );
        let m = b.op("mean", LayerKind::MeanTime, &[l]);
        let g = b.finish(vec![m]).unwrap();
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[1], Shape(vec![1, 16, 32]));
        assert_eq!(shapes[2], Shape(vec![1, 16, 64]));
        assert_eq!(shapes[3], Shape::vec2(1, 64));
    }

    #[test]
    fn slice_and_pad_shapes() {
        let mut b = GraphBuilder::new("t");
        let i = b.input("a", Shape::nhwc(1, 4, 4, 8), DType::F32);
        let s = b.op("s", LayerKind::Slice { begin: 2, len: 3 }, &[i]);
        let p = b.op("p", LayerKind::Pad { pad: 1 }, &[s]);
        let g = b.finish(vec![p]).unwrap();
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[1], Shape::nhwc(1, 4, 4, 3));
        assert_eq!(shapes[2], Shape::nhwc(1, 6, 6, 3));
    }

    #[test]
    fn slice_out_of_range_rejected() {
        let mut b = GraphBuilder::new("t");
        let i = b.input("a", Shape::nhwc(1, 4, 4, 4), DType::F32);
        let s = b.op("s", LayerKind::Slice { begin: 2, len: 3 }, &[i]);
        let g = b.finish(vec![s]).unwrap();
        assert!(infer_shapes(&g).is_err());
    }
}
