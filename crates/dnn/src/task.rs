//! Task and modality taxonomy (Table 3 of the paper).

/// Input modality of a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Modality {
    /// Image / video input.
    Vision,
    /// Text input.
    Nlp,
    /// Audio waveform / spectrogram input.
    Audio,
    /// IMU / accelerometer / gyroscope input.
    Sensor,
}

impl Modality {
    /// Display label.
    pub const fn name(self) -> &'static str {
        match self {
            Modality::Vision => "vision",
            Modality::Nlp => "nlp",
            Modality::Audio => "audio",
            Modality::Sensor => "sensor",
        }
    }

    /// All modalities in Table 3 order.
    pub const ALL: [Modality; 4] = [
        Modality::Vision,
        Modality::Nlp,
        Modality::Audio,
        Modality::Sensor,
    ];
}

/// Fine-grained tasks, exactly the label set of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Task {
    // Vision (1495 models in the paper's corpus)
    /// Generic object detection (largest class: 788 models, 52.7 %).
    ObjectDetection,
    /// Face detection (197, 13.2 %).
    FaceDetection,
    /// Contour / landmark detection (192, 12.8 %).
    ContourDetection,
    /// OCR / text recognition (185, 12.4 %).
    TextRecognition,
    /// Augmented reality (51, 3.4 %).
    AugmentedReality,
    /// Semantic segmentation (14, 0.9 %).
    SemanticSegmentation,
    /// Object recognition (14, 0.9 %).
    ObjectRecognition,
    /// Human pose estimation (8, 0.5 %).
    PoseEstimation,
    /// Photo beautification (8, 0.5 %).
    PhotoBeauty,
    /// Image classification (7, 0.4 %).
    ImageClassification,
    /// Nudity / NSFW detection (5, 0.3 %).
    NudityDetection,
    /// Hair reconstruction / recolouring (part of "other" but called out in
    /// Fig. 7's heaviest models).
    HairReconstruction,
    /// Remaining vision tasks (26, 1.7 %).
    OtherVision,
    // NLP (17 models)
    /// Next-word auto-completion (9, 52.9 %).
    AutoComplete,
    /// Sentiment prediction (4, 23.5 %).
    SentimentPrediction,
    /// Content filtering (2, 11.8 %).
    ContentFilter,
    /// Text classification (1, 5.9 %).
    TextClassification,
    /// Machine translation (1, 5.9 %).
    Translation,
    // Audio (15 models)
    /// Ambient sound recognition (12, 80 %).
    SoundRecognition,
    /// Speech recognition (2, 13.3 %).
    SpeechRecognition,
    /// Keyword spotting (1, 6.7 %).
    KeywordDetection,
    // Sensor (4 models)
    /// Movement tracking (3, 75 %).
    MovementTracking,
    /// Car-crash detection (1, 25 %).
    CrashDetection,
}

impl Task {
    /// The modality this task belongs to.
    pub const fn modality(self) -> Modality {
        use Task::*;
        match self {
            ObjectDetection | FaceDetection | ContourDetection | TextRecognition
            | AugmentedReality | SemanticSegmentation | ObjectRecognition | PoseEstimation
            | PhotoBeauty | ImageClassification | NudityDetection | HairReconstruction
            | OtherVision => Modality::Vision,
            AutoComplete | SentimentPrediction | ContentFilter | TextClassification
            | Translation => Modality::Nlp,
            SoundRecognition | SpeechRecognition | KeywordDetection => Modality::Audio,
            MovementTracking | CrashDetection => Modality::Sensor,
        }
    }

    /// Table 3 row label.
    pub const fn name(self) -> &'static str {
        use Task::*;
        match self {
            ObjectDetection => "object detection",
            FaceDetection => "face detection",
            ContourDetection => "contour detection",
            TextRecognition => "text recognition",
            AugmentedReality => "augmented reality",
            SemanticSegmentation => "semantic segmentation",
            ObjectRecognition => "object recognition",
            PoseEstimation => "pose estimation",
            PhotoBeauty => "photo beauty",
            ImageClassification => "image classification",
            NudityDetection => "nudity detection",
            HairReconstruction => "hair reconstruction",
            OtherVision => "other",
            AutoComplete => "auto-complete",
            SentimentPrediction => "sentiment prediction",
            ContentFilter => "content filter",
            TextClassification => "text classification",
            Translation => "translation",
            SoundRecognition => "sound recognition",
            SpeechRecognition => "speech recognition",
            KeywordDetection => "keyword detection",
            MovementTracking => "movement tracking",
            CrashDetection => "crash detection",
        }
    }

    /// All tasks in Table 3 order.
    pub const ALL: [Task; 23] = [
        Task::ObjectDetection,
        Task::FaceDetection,
        Task::ContourDetection,
        Task::TextRecognition,
        Task::AugmentedReality,
        Task::SemanticSegmentation,
        Task::ObjectRecognition,
        Task::PoseEstimation,
        Task::PhotoBeauty,
        Task::ImageClassification,
        Task::NudityDetection,
        Task::HairReconstruction,
        Task::OtherVision,
        Task::AutoComplete,
        Task::SentimentPrediction,
        Task::ContentFilter,
        Task::TextClassification,
        Task::Translation,
        Task::SoundRecognition,
        Task::SpeechRecognition,
        Task::KeywordDetection,
        Task::MovementTracking,
        Task::CrashDetection,
    ];

    /// Short token that model names in the wild tend to contain for this
    /// task (§4.4: "around 67 % having names which hint either the model,
    /// task at hand or both").
    pub const fn name_hint(self) -> &'static str {
        use Task::*;
        match self {
            ObjectDetection => "detect",
            FaceDetection => "face",
            ContourDetection => "contour",
            TextRecognition => "ocr",
            AugmentedReality => "ar",
            SemanticSegmentation => "segmentation",
            ObjectRecognition => "recognize",
            PoseEstimation => "pose",
            PhotoBeauty => "beauty",
            ImageClassification => "classifier",
            NudityDetection => "nsfw",
            HairReconstruction => "hair",
            OtherVision => "vision",
            AutoComplete => "autocomplete",
            SentimentPrediction => "sentiment",
            ContentFilter => "filter",
            TextClassification => "textclass",
            Translation => "translate",
            SoundRecognition => "sound",
            SpeechRecognition => "speech",
            KeywordDetection => "keyword",
            MovementTracking => "movement",
            CrashDetection => "crash",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_task_has_consistent_modality() {
        let vision = Task::ALL
            .iter()
            .filter(|t| t.modality() == Modality::Vision)
            .count();
        let nlp = Task::ALL
            .iter()
            .filter(|t| t.modality() == Modality::Nlp)
            .count();
        let audio = Task::ALL
            .iter()
            .filter(|t| t.modality() == Modality::Audio)
            .count();
        let sensor = Task::ALL
            .iter()
            .filter(|t| t.modality() == Modality::Sensor)
            .count();
        assert_eq!(vision, 13);
        assert_eq!(nlp, 5);
        assert_eq!(audio, 3);
        assert_eq!(sensor, 2);
        assert_eq!(vision + nlp + audio + sensor, Task::ALL.len());
    }

    #[test]
    fn names_and_hints_unique() {
        let mut names: Vec<&str> = Task::ALL.iter().map(|t| t.name_hint()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate name hints");
    }

    #[test]
    fn modality_names() {
        assert_eq!(Modality::Vision.name(), "vision");
        assert_eq!(Modality::ALL.len(), 4);
    }
}
