//! The DNN graph IR: layer kinds, nodes, graphs and a builder.
//!
//! A [`Graph`] is a DAG stored in topological order: every node's inputs must
//! have a smaller index than the node itself. This invariant is validated by
//! [`Graph::validate`] and relied upon by shape inference, tracing and the
//! executor.

use crate::tensor::{DType, QuantParams, Shape, WeightData};
use crate::{DnnError, Result};

/// Identifier of a node within a graph (its index in `Graph::nodes`).
pub type NodeId = usize;

/// Padding policy for convolution / pooling windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Padding {
    /// Output spatial size equals `ceil(in / stride)` (TFLite "SAME").
    Same,
    /// No implicit padding (TFLite "VALID").
    Valid,
}

/// Non-linearity kinds found in mobile models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActKind {
    /// Rectified linear unit.
    Relu,
    /// ReLU clipped at 6 (MobileNet's default).
    Relu6,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// x * relu6(x + 3) / 6 (MobileNetV3-style).
    HardSwish,
    /// Leaky ReLU with fixed 0.01 negative slope.
    LeakyRelu,
}

/// Pooling reduction kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Maximum over the window.
    Max,
    /// Arithmetic mean over the window.
    Avg,
}

/// Elementwise binary operations ("math" helper layers in Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Elementwise addition (residual connections).
    Add,
    /// Elementwise multiplication (attention gates, SE blocks).
    Mul,
    /// Elementwise subtraction.
    Sub,
}

/// Image resize interpolation modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResizeMode {
    /// Nearest-neighbour.
    Nearest,
    /// Bilinear interpolation.
    Bilinear,
}

/// The operation performed by a graph node.
///
/// This covers every layer family the paper's Fig. 6 histogram distinguishes:
/// convolutions, depthwise convolutions, dense layers, activations, pooling,
/// recurrent layers, and the "helper" bucket (math / quant / resize / slice /
/// reshape / concat / pad / normalisation).
#[derive(Debug, Clone, PartialEq)]
pub enum LayerKind {
    /// Graph input placeholder.
    Input {
        /// Static shape (batch dim is a default; executors may rebatch).
        shape: Shape,
        /// Element type the model expects.
        dtype: DType,
    },
    /// 2-D convolution over NHWC input.
    Conv2d {
        /// Number of output channels.
        out_channels: usize,
        /// Square kernel extent.
        kernel: usize,
        /// Stride (same in both spatial dims).
        stride: usize,
        /// Padding policy.
        padding: Padding,
    },
    /// Depthwise 2-D convolution (channel multiplier 1).
    DepthwiseConv2d {
        /// Square kernel extent.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Padding policy.
        padding: Padding,
    },
    /// Fully-connected layer over the last dimension.
    Dense {
        /// Output feature count.
        units: usize,
    },
    /// Elementwise activation.
    Activation(ActKind),
    /// Windowed pooling.
    Pool {
        /// Reduction kind.
        kind: PoolKind,
        /// Square window extent.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Padding policy.
        padding: Padding,
    },
    /// Global spatial pooling: NHWC -> N11C.
    GlobalPool(PoolKind),
    /// Elementwise binary op between two equal-shaped inputs.
    Binary(BinOp),
    /// Channel-axis concatenation of two or more inputs.
    Concat,
    /// Reshape to a fixed per-sample shape (batch preserved).
    Reshape {
        /// Target per-sample dims (excluding batch).
        dims: Vec<usize>,
    },
    /// Spatial resize of an NHWC tensor.
    Resize {
        /// Output height.
        out_h: usize,
        /// Output width.
        out_w: usize,
        /// Interpolation mode.
        mode: ResizeMode,
    },
    /// Channel slice `[begin, begin+len)` on the last axis.
    Slice {
        /// First channel kept.
        begin: usize,
        /// Number of channels kept.
        len: usize,
    },
    /// Softmax over the last axis.
    Softmax,
    /// Per-channel scale + shift (folded batch-norm).
    BatchNorm,
    /// Zero padding of `pad` pixels on each spatial border.
    Pad {
        /// Border width.
        pad: usize,
    },
    /// f32 -> int8 affine quantisation of activations.
    Quantize(QuantParams),
    /// int8 -> f32 dequantisation of activations.
    ///
    /// §6.1: "10.3 % of the models make use of the dequantize layer".
    Dequantize(QuantParams),
    /// Token embedding lookup: [N, T] ids -> [N, T, dim].
    Embedding {
        /// Vocabulary size.
        vocab: usize,
        /// Embedding dimension.
        dim: usize,
    },
    /// LSTM over a [N, T, C] sequence, returning the full output sequence.
    Lstm {
        /// Hidden state size.
        units: usize,
    },
    /// GRU over a [N, T, C] sequence, returning the full output sequence.
    Gru {
        /// Hidden state size.
        units: usize,
    },
    /// Mean over the time axis: [N, T, C] -> [N, C].
    MeanTime,
    /// 2x2 nearest-neighbour upsampling expressed as transposed conv
    /// (decoder stages of segmentation models).
    TransposeConv2d {
        /// Output channels.
        out_channels: usize,
        /// Square kernel extent.
        kernel: usize,
        /// Upsampling stride.
        stride: usize,
    },
    /// L2 normalisation over the last axis (embedding heads).
    L2Norm,
}

impl LayerKind {
    /// The coarse layer-family name used by the Fig. 6 composition analysis.
    pub fn family(&self) -> &'static str {
        match self {
            LayerKind::Input { .. } => "input",
            LayerKind::Conv2d { .. } | LayerKind::TransposeConv2d { .. } => "conv",
            LayerKind::DepthwiseConv2d { .. } => "depth_conv",
            LayerKind::Dense { .. } => "dense",
            LayerKind::Activation(_) | LayerKind::Softmax => "activation",
            LayerKind::Pool { .. } | LayerKind::GlobalPool(_) => "pool",
            LayerKind::Binary(_) | LayerKind::L2Norm | LayerKind::MeanTime => "math",
            LayerKind::Concat => "concat",
            LayerKind::Reshape { .. } => "reshape",
            LayerKind::Resize { .. } => "resize",
            LayerKind::Slice { .. } => "slice",
            LayerKind::BatchNorm => "norm",
            LayerKind::Pad { .. } => "pad",
            LayerKind::Quantize(_) | LayerKind::Dequantize(_) => "quant",
            LayerKind::Embedding { .. } => "embedding",
            LayerKind::Lstm { .. } | LayerKind::Gru { .. } => "recurrent",
        }
    }

    /// Whether this kind carries trainable weights.
    pub fn has_weights(&self) -> bool {
        matches!(
            self,
            LayerKind::Conv2d { .. }
                | LayerKind::DepthwiseConv2d { .. }
                | LayerKind::Dense { .. }
                | LayerKind::BatchNorm
                | LayerKind::Embedding { .. }
                | LayerKind::Lstm { .. }
                | LayerKind::Gru { .. }
                | LayerKind::TransposeConv2d { .. }
        )
    }

    /// Minimum number of inputs this layer requires.
    pub fn min_inputs(&self) -> usize {
        match self {
            LayerKind::Input { .. } => 0,
            LayerKind::Binary(_) => 2,
            LayerKind::Concat => 2,
            _ => 1,
        }
    }
}

/// One vertex of the DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Human-readable layer name (models in the wild often leak task hints
    /// through names, which the classifier exploits — §4.4).
    pub name: String,
    /// The operation.
    pub kind: LayerKind,
    /// Producer nodes, in argument order.
    pub inputs: Vec<NodeId>,
    /// Kernel/gamma weights, when `kind.has_weights()`.
    pub weights: Option<WeightData>,
    /// Bias/beta weights, when applicable.
    pub bias: Option<WeightData>,
}

/// A whole model: nodes in topological order plus designated outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    /// Model name (e.g. `"hair_segmentation_mobilenet"`).
    pub name: String,
    /// All nodes, topologically ordered.
    pub nodes: Vec<Node>,
    /// Indices of output nodes.
    pub outputs: Vec<NodeId>,
}

impl Graph {
    /// Validate the structural invariants:
    /// inputs exist and precede their consumers, arity matches the layer
    /// kind, outputs are valid ids, and weighted layers carry weights.
    pub fn validate(&self) -> Result<()> {
        for (id, node) in self.nodes.iter().enumerate() {
            if node.inputs.len() < node.kind.min_inputs() {
                return Err(DnnError::Shape {
                    node: id,
                    reason: format!(
                        "{} needs >= {} inputs, has {}",
                        node.kind.family(),
                        node.kind.min_inputs(),
                        node.inputs.len()
                    ),
                });
            }
            for &inp in &node.inputs {
                if inp >= self.nodes.len() {
                    return Err(DnnError::DanglingInput {
                        node: id,
                        input: inp,
                    });
                }
                if inp >= id {
                    return Err(DnnError::NotTopological(id));
                }
            }
            if node.kind.has_weights() && node.weights.is_none() {
                return Err(DnnError::BadWeights {
                    node: id,
                    reason: "weighted layer is missing its weight tensor".into(),
                });
            }
        }
        for &out in &self.outputs {
            if out >= self.nodes.len() {
                return Err(DnnError::DanglingInput {
                    node: usize::MAX,
                    input: out,
                });
            }
        }
        Ok(())
    }

    /// Ids of all `Input` nodes, in order.
    pub fn input_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.kind, LayerKind::Input { .. }))
            .map(|(i, _)| i)
            .collect()
    }

    /// Shape of the first input node, if any.
    pub fn primary_input_shape(&self) -> Option<&Shape> {
        self.nodes.iter().find_map(|n| match &n.kind {
            LayerKind::Input { shape, .. } => Some(shape),
            _ => None,
        })
    }

    /// Number of layers excluding inputs.
    pub fn layer_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| !matches!(n.kind, LayerKind::Input { .. }))
            .count()
    }

    /// Total trainable parameter count (sum of weight + bias lengths).
    pub fn param_count(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| {
                n.weights.as_ref().map_or(0, |w| w.len() as u64)
                    + n.bias.as_ref().map_or(0, |b| b.len() as u64)
            })
            .sum()
    }

    /// True if any node stores int8 weights (§6.1 quantisation census).
    pub fn has_int8_weights(&self) -> bool {
        self.nodes.iter().any(|n| {
            n.weights
                .as_ref()
                .is_some_and(|w| w.dtype() == DType::I8)
        })
    }

    /// True if the graph contains quantize/dequantize activation layers.
    pub fn has_quant_layers(&self) -> bool {
        self.nodes
            .iter()
            .any(|n| matches!(n.kind, LayerKind::Quantize(_) | LayerKind::Dequantize(_)))
    }
}

/// Incremental, panic-free graph construction.
///
/// ```
/// use gaugenn_dnn::graph::{GraphBuilder, LayerKind, Padding};
/// use gaugenn_dnn::tensor::{DType, Shape, WeightData};
///
/// let mut b = GraphBuilder::new("tiny");
/// let input = b.input("image", Shape::nhwc(1, 8, 8, 3), DType::F32);
/// let conv = b.layer(
///     "conv1",
///     LayerKind::Conv2d { out_channels: 4, kernel: 3, stride: 1, padding: Padding::Same },
///     &[input],
///     Some(WeightData::F32(vec![0.0; 3 * 3 * 3 * 4])),
///     Some(WeightData::F32(vec![0.0; 4])),
/// );
/// let g = b.finish(vec![conv]).unwrap();
/// assert_eq!(g.layer_count(), 1);
/// ```
#[derive(Debug)]
pub struct GraphBuilder {
    name: String,
    nodes: Vec<Node>,
}

impl GraphBuilder {
    /// Start building a graph with the given model name.
    pub fn new(name: impl Into<String>) -> Self {
        GraphBuilder {
            name: name.into(),
            nodes: Vec::new(),
        }
    }

    /// Add an input placeholder.
    pub fn input(&mut self, name: impl Into<String>, shape: Shape, dtype: DType) -> NodeId {
        self.push(Node {
            name: name.into(),
            kind: LayerKind::Input { shape, dtype },
            inputs: vec![],
            weights: None,
            bias: None,
        })
    }

    /// Add a layer with optional weights and bias.
    pub fn layer(
        &mut self,
        name: impl Into<String>,
        kind: LayerKind,
        inputs: &[NodeId],
        weights: Option<WeightData>,
        bias: Option<WeightData>,
    ) -> NodeId {
        self.push(Node {
            name: name.into(),
            kind,
            inputs: inputs.to_vec(),
            weights,
            bias,
        })
    }

    /// Add a weight-free layer.
    pub fn op(&mut self, name: impl Into<String>, kind: LayerKind, inputs: &[NodeId]) -> NodeId {
        self.layer(name, kind, inputs, None, None)
    }

    fn push(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no nodes have been added yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Finish and validate the graph.
    pub fn finish(self, outputs: Vec<NodeId>) -> Result<Graph> {
        let g = Graph {
            name: self.name,
            nodes: self.nodes,
            outputs,
        };
        g.validate()?;
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_weights(cin: usize, cout: usize, k: usize) -> WeightData {
        WeightData::F32(vec![0.1; k * k * cin * cout])
    }

    #[test]
    fn builder_produces_valid_graph() {
        let mut b = GraphBuilder::new("t");
        let i = b.input("in", Shape::nhwc(1, 4, 4, 3), DType::F32);
        let c = b.layer(
            "c",
            LayerKind::Conv2d {
                out_channels: 8,
                kernel: 3,
                stride: 1,
                padding: Padding::Same,
            },
            &[i],
            Some(conv_weights(3, 8, 3)),
            None,
        );
        let g = b.finish(vec![c]).unwrap();
        assert_eq!(g.nodes.len(), 2);
        assert_eq!(g.layer_count(), 1);
        assert_eq!(g.input_ids(), vec![0]);
        assert_eq!(g.param_count(), 3 * 3 * 3 * 8);
    }

    #[test]
    fn validate_rejects_dangling_input() {
        let g = Graph {
            name: "bad".into(),
            nodes: vec![Node {
                name: "x".into(),
                kind: LayerKind::Softmax,
                inputs: vec![5],
                weights: None,
                bias: None,
            }],
            outputs: vec![0],
        };
        assert!(matches!(
            g.validate(),
            Err(DnnError::DanglingInput { .. })
        ));
    }

    #[test]
    fn validate_rejects_forward_reference() {
        let g = Graph {
            name: "bad".into(),
            nodes: vec![
                Node {
                    name: "a".into(),
                    kind: LayerKind::Softmax,
                    inputs: vec![1],
                    weights: None,
                    bias: None,
                },
                Node {
                    name: "in".into(),
                    kind: LayerKind::Input {
                        shape: Shape::vec2(1, 4),
                        dtype: DType::F32,
                    },
                    inputs: vec![],
                    weights: None,
                    bias: None,
                },
            ],
            outputs: vec![0],
        };
        assert!(matches!(g.validate(), Err(DnnError::NotTopological(0))));
    }

    #[test]
    fn validate_rejects_missing_weights() {
        let mut b = GraphBuilder::new("t");
        let i = b.input("in", Shape::vec2(1, 4), DType::F32);
        let d = b.op("dense", LayerKind::Dense { units: 2 }, &[i]);
        assert!(matches!(
            b.finish(vec![d]),
            Err(DnnError::BadWeights { node: 1, .. })
        ));
    }

    #[test]
    fn validate_rejects_binary_arity() {
        let mut b = GraphBuilder::new("t");
        let i = b.input("in", Shape::vec2(1, 4), DType::F32);
        let a = b.op("add", LayerKind::Binary(BinOp::Add), &[i]);
        assert!(b.finish(vec![a]).is_err());
    }

    #[test]
    fn validate_rejects_bad_output_id() {
        let mut b = GraphBuilder::new("t");
        let _ = b.input("in", Shape::vec2(1, 4), DType::F32);
        assert!(b.finish(vec![9]).is_err());
    }

    #[test]
    fn family_labels_cover_helper_layers() {
        assert_eq!(
            LayerKind::Quantize(QuantParams::UNIT).family(),
            "quant"
        );
        assert_eq!(
            LayerKind::Resize {
                out_h: 2,
                out_w: 2,
                mode: ResizeMode::Nearest
            }
            .family(),
            "resize"
        );
        assert_eq!(LayerKind::Binary(BinOp::Add).family(), "math");
        assert_eq!(LayerKind::Lstm { units: 8 }.family(), "recurrent");
    }

    #[test]
    fn quant_census_flags() {
        let mut b = GraphBuilder::new("q");
        let i = b.input("in", Shape::vec2(1, 4), DType::F32);
        let q = b.op("q", LayerKind::Quantize(QuantParams::UNIT), &[i]);
        let g = b.finish(vec![q]).unwrap();
        assert!(g.has_quant_layers());
        assert!(!g.has_int8_weights());
    }
}
