//! Reference executor.
//!
//! A deliberately simple, allocation-per-layer interpreter that computes the
//! true forward pass of a [`Graph`]. The benchmark harness uses it so that a
//! "benchmark inference" really executes the model (the paper's harness runs
//! native TFLite/caffe/ncnn interpreters); latency and energy figures come
//! from the analytic SoC model, not from host wall-clock.
//!
//! Correctness over speed: kernels are straightforward loop nests that can be
//! checked against closed-form expectations in the unit tests.

use crate::graph::{ActKind, BinOp, Graph, LayerKind, Padding, PoolKind, ResizeMode};
use crate::shape::{conv_out_dim, infer_shapes};
use crate::tensor::{Shape, Tensor};
use crate::{DnnError, Result};

/// Executes graphs, reusing inferred shapes across calls.
#[derive(Debug)]
pub struct Executor<'g> {
    graph: &'g Graph,
    shapes: Vec<Shape>,
}

impl<'g> Executor<'g> {
    /// Prepare an executor for `graph`, validating it and inferring shapes.
    pub fn new(graph: &'g Graph) -> Result<Self> {
        graph.validate()?;
        let shapes = infer_shapes(graph)?;
        Ok(Executor { graph, shapes })
    }

    /// Shape of each node's output at batch 1.
    pub fn shapes(&self) -> &[Shape] {
        &self.shapes
    }

    /// Run one forward pass. `inputs` must provide one tensor per `Input`
    /// node, in graph order; all batch dims must agree.
    pub fn run(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        let input_ids = self.graph.input_ids();
        if inputs.len() != input_ids.len() {
            return Err(DnnError::BadInput(format!(
                "graph has {} inputs, got {}",
                input_ids.len(),
                inputs.len()
            )));
        }
        let batch = inputs.first().map_or(1, |t| t.shape.batch());
        let mut values: Vec<Option<Tensor>> = vec![None; self.graph.nodes.len()];
        let mut next_input = 0usize;
        for (id, node) in self.graph.nodes.iter().enumerate() {
            let out = match &node.kind {
                LayerKind::Input { shape, .. } => {
                    let given = &inputs[next_input];
                    next_input += 1;
                    let want = shape.with_batch(batch);
                    if given.shape != want {
                        return Err(DnnError::BadInput(format!(
                            "input {next_input} expects {want}, got {}",
                            given.shape
                        )));
                    }
                    given.clone()
                }
                kind => {
                    let ins: Vec<&Tensor> = node
                        .inputs
                        .iter()
                        .map(|&i| values[i].as_ref().expect("topological order"))
                        .collect();
                    let out_shape = self.shapes[id].with_batch(batch);
                    eval(kind, node, &ins, out_shape)?
                }
            };
            values[id] = Some(out);
        }
        Ok(self
            .graph
            .outputs
            .iter()
            .map(|&o| values[o].clone().expect("outputs computed"))
            .collect())
    }

    /// Convenience: run with deterministic random inputs of the declared
    /// shapes (what the paper's benchmark does) and return the outputs.
    pub fn run_random(&self, batch: usize, seed: u64) -> Result<Vec<Tensor>> {
        let inputs: Vec<Tensor> = self
            .graph
            .input_ids()
            .iter()
            .enumerate()
            .map(|(k, &id)| {
                let LayerKind::Input { shape, .. } = &self.graph.nodes[id].kind else {
                    unreachable!("input_ids only returns Input nodes")
                };
                Tensor::random_like(shape.with_batch(batch), seed.wrapping_add(k as u64))
            })
            .collect();
        self.run(&inputs)
    }
}

fn eval(kind: &LayerKind, node: &crate::graph::Node, ins: &[&Tensor], out_shape: Shape) -> Result<Tensor> {
    match kind {
        LayerKind::Input { .. } => unreachable!("handled by caller"),
        LayerKind::Conv2d {
            out_channels,
            kernel,
            stride,
            padding,
        } => conv2d(ins[0], node, *out_channels, *kernel, *stride, *padding),
        LayerKind::DepthwiseConv2d {
            kernel,
            stride,
            padding,
        } => depthwise(ins[0], node, *kernel, *stride, *padding),
        LayerKind::TransposeConv2d {
            out_channels,
            kernel,
            stride,
        } => transpose_conv(ins[0], node, *out_channels, *kernel, *stride),
        LayerKind::Dense { units } => dense(ins[0], node, *units),
        LayerKind::Activation(a) => Ok(map(ins[0], |x| activate(*a, x))),
        LayerKind::Softmax => Ok(softmax(ins[0])),
        LayerKind::BatchNorm => batchnorm(ins[0], node),
        LayerKind::L2Norm => Ok(l2norm(ins[0])),
        LayerKind::Pool {
            kind,
            kernel,
            stride,
            padding,
        } => pool(ins[0], *kind, *kernel, *stride, *padding),
        LayerKind::GlobalPool(kind) => Ok(global_pool(ins[0], *kind)),
        LayerKind::Binary(op) => binary(ins[0], ins[1], *op),
        LayerKind::Concat => Ok(concat(ins, out_shape)),
        LayerKind::Reshape { .. } => Ok(Tensor {
            shape: out_shape,
            data: ins[0].data.clone(),
        }),
        LayerKind::Resize { out_h, out_w, mode } => Ok(resize(ins[0], *out_h, *out_w, *mode)),
        LayerKind::Slice { begin, len } => Ok(slice_channels(ins[0], *begin, *len)),
        LayerKind::Pad { pad } => Ok(pad_spatial(ins[0], *pad)),
        LayerKind::Quantize(q) => Ok(map(ins[0], |x| q.dequantize(q.quantize(x)))),
        LayerKind::Dequantize(_) => Ok(ins[0].clone()),
        LayerKind::Embedding { vocab, dim } => embedding(ins[0], node, *vocab, *dim),
        LayerKind::Lstm { units } => lstm(ins[0], node, *units),
        LayerKind::Gru { units } => gru(ins[0], node, *units),
        LayerKind::MeanTime => Ok(mean_time(ins[0])),
    }
}

#[inline]
fn activate(a: ActKind, x: f32) -> f32 {
    match a {
        ActKind::Relu => x.max(0.0),
        ActKind::Relu6 => x.clamp(0.0, 6.0),
        ActKind::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        ActKind::Tanh => x.tanh(),
        ActKind::HardSwish => x * (x + 3.0).clamp(0.0, 6.0) / 6.0,
        ActKind::LeakyRelu => {
            if x >= 0.0 {
                x
            } else {
                0.01 * x
            }
        }
    }
}

fn map(t: &Tensor, f: impl Fn(f32) -> f32) -> Tensor {
    Tensor {
        shape: t.shape.clone(),
        data: t.data.iter().map(|&x| f(x)).collect(),
    }
}

/// SAME padding offset: how many pixels of the kernel hang off the top/left.
fn pad_before(input: usize, kernel: usize, stride: usize) -> isize {
    let out = input.div_ceil(stride);
    let total = ((out - 1) * stride + kernel).saturating_sub(input);
    (total / 2) as isize
}

fn conv2d(
    x: &Tensor,
    node: &crate::graph::Node,
    cout: usize,
    k: usize,
    stride: usize,
    padding: Padding,
) -> Result<Tensor> {
    let (n, h, w, cin) = dims4(x)?;
    let oh = conv_out_dim(h, k, stride, padding);
    let ow = conv_out_dim(w, k, stride, padding);
    let weights = weights_f32(node, k * k * cin * cout)?;
    let bias = bias_f32(node, cout);
    let (ph, pw) = match padding {
        Padding::Same => (pad_before(h, k, stride), pad_before(w, k, stride)),
        Padding::Valid => (0, 0),
    };
    let mut out = Tensor::zeros(Shape::nhwc(n, oh, ow, cout));
    for b in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                for oc in 0..cout {
                    let mut acc = bias.get(oc).copied().unwrap_or(0.0);
                    for ky in 0..k {
                        let iy = oy as isize * stride as isize + ky as isize - ph;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = ox as isize * stride as isize + kx as isize - pw;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            for ic in 0..cin {
                                // Weight layout: [ky][kx][cin][cout].
                                let widx = ((ky * k + kx) * cin + ic) * cout + oc;
                                acc += x.at4(b, iy as usize, ix as usize, ic) * weights[widx];
                            }
                        }
                    }
                    *out.at4_mut(b, oy, ox, oc) = acc;
                }
            }
        }
    }
    Ok(out)
}

fn depthwise(
    x: &Tensor,
    node: &crate::graph::Node,
    k: usize,
    stride: usize,
    padding: Padding,
) -> Result<Tensor> {
    let (n, h, w, c) = dims4(x)?;
    let oh = conv_out_dim(h, k, stride, padding);
    let ow = conv_out_dim(w, k, stride, padding);
    let weights = weights_f32(node, k * k * c)?;
    let bias = bias_f32(node, c);
    let (ph, pw) = match padding {
        Padding::Same => (pad_before(h, k, stride), pad_before(w, k, stride)),
        Padding::Valid => (0, 0),
    };
    let mut out = Tensor::zeros(Shape::nhwc(n, oh, ow, c));
    for b in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                for ch in 0..c {
                    let mut acc = bias.get(ch).copied().unwrap_or(0.0);
                    for ky in 0..k {
                        let iy = oy as isize * stride as isize + ky as isize - ph;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = ox as isize * stride as isize + kx as isize - pw;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let widx = (ky * k + kx) * c + ch;
                            acc += x.at4(b, iy as usize, ix as usize, ch) * weights[widx];
                        }
                    }
                    *out.at4_mut(b, oy, ox, ch) = acc;
                }
            }
        }
    }
    Ok(out)
}

fn transpose_conv(
    x: &Tensor,
    node: &crate::graph::Node,
    cout: usize,
    k: usize,
    stride: usize,
) -> Result<Tensor> {
    let (n, h, w, cin) = dims4(x)?;
    let (oh, ow) = (h * stride, w * stride);
    let weights = weights_f32(node, k * k * cin * cout)?;
    let bias = bias_f32(node, cout);
    let mut out = Tensor::zeros(Shape::nhwc(n, oh, ow, cout));
    for b in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                for oc in 0..cout {
                    *out.at4_mut(b, oy, ox, oc) = bias.get(oc).copied().unwrap_or(0.0);
                }
            }
        }
        for iy in 0..h {
            for ix in 0..w {
                for ky in 0..k {
                    let oy = iy * stride + ky;
                    if oy >= oh {
                        continue;
                    }
                    for kx in 0..k {
                        let ox = ix * stride + kx;
                        if ox >= ow {
                            continue;
                        }
                        for ic in 0..cin {
                            let xv = x.at4(b, iy, ix, ic);
                            for oc in 0..cout {
                                let widx = ((ky * k + kx) * cin + ic) * cout + oc;
                                *out.at4_mut(b, oy, ox, oc) += xv * weights[widx];
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

fn dense(x: &Tensor, node: &crate::graph::Node, units: usize) -> Result<Tensor> {
    let cin = x.shape.channels();
    let rows = x.shape.elems() / cin;
    let weights = weights_f32(node, cin * units)?;
    let bias = bias_f32(node, units);
    let mut shape = x.shape.0.clone();
    *shape.last_mut().expect("rank >= 1") = units;
    let mut out = Tensor::zeros(Shape(shape));
    for r in 0..rows {
        for u in 0..units {
            let mut acc = bias.get(u).copied().unwrap_or(0.0);
            for i in 0..cin {
                // Weight layout: [cin][units].
                acc += x.data[r * cin + i] * weights[i * units + u];
            }
            out.data[r * units + u] = acc;
        }
    }
    Ok(out)
}

fn batchnorm(x: &Tensor, node: &crate::graph::Node) -> Result<Tensor> {
    let c = x.shape.channels();
    let gamma = weights_f32(node, c)?;
    let beta = bias_f32(node, c);
    let mut out = x.clone();
    for (i, v) in out.data.iter_mut().enumerate() {
        let ch = i % c;
        *v = *v * gamma[ch] + beta.get(ch).copied().unwrap_or(0.0);
    }
    Ok(out)
}

fn softmax(x: &Tensor) -> Tensor {
    let c = x.shape.channels().max(1);
    let rows = x.shape.elems() / c;
    let mut out = x.clone();
    for r in 0..rows {
        let row = &mut out.data[r * c..(r + 1) * c];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - m).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

fn l2norm(x: &Tensor) -> Tensor {
    let c = x.shape.channels().max(1);
    let rows = x.shape.elems() / c;
    let mut out = x.clone();
    for r in 0..rows {
        let row = &mut out.data[r * c..(r + 1) * c];
        let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-12);
        for v in row.iter_mut() {
            *v /= norm;
        }
    }
    out
}

fn pool(x: &Tensor, kind: PoolKind, k: usize, stride: usize, padding: Padding) -> Result<Tensor> {
    let (n, h, w, c) = dims4(x)?;
    let oh = conv_out_dim(h, k, stride, padding);
    let ow = conv_out_dim(w, k, stride, padding);
    let (ph, pw) = match padding {
        Padding::Same => (pad_before(h, k, stride), pad_before(w, k, stride)),
        Padding::Valid => (0, 0),
    };
    let mut out = Tensor::zeros(Shape::nhwc(n, oh, ow, c));
    for b in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                for ch in 0..c {
                    let mut acc = match kind {
                        PoolKind::Max => f32::NEG_INFINITY,
                        PoolKind::Avg => 0.0,
                    };
                    let mut count = 0usize;
                    for ky in 0..k {
                        let iy = oy as isize * stride as isize + ky as isize - ph;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = ox as isize * stride as isize + kx as isize - pw;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let v = x.at4(b, iy as usize, ix as usize, ch);
                            match kind {
                                PoolKind::Max => acc = acc.max(v),
                                PoolKind::Avg => acc += v,
                            }
                            count += 1;
                        }
                    }
                    *out.at4_mut(b, oy, ox, ch) = match kind {
                        PoolKind::Max => acc,
                        PoolKind::Avg => acc / count.max(1) as f32,
                    };
                }
            }
        }
    }
    Ok(out)
}

fn global_pool(x: &Tensor, kind: PoolKind) -> Tensor {
    let (n, h, w, c) = (
        x.shape.0[0],
        x.shape.0[1],
        x.shape.0[2],
        x.shape.0[3],
    );
    let mut out = Tensor::zeros(Shape::nhwc(n, 1, 1, c));
    for b in 0..n {
        for ch in 0..c {
            let mut acc = match kind {
                PoolKind::Max => f32::NEG_INFINITY,
                PoolKind::Avg => 0.0,
            };
            for y in 0..h {
                for xx in 0..w {
                    let v = x.at4(b, y, xx, ch);
                    match kind {
                        PoolKind::Max => acc = acc.max(v),
                        PoolKind::Avg => acc += v,
                    }
                }
            }
            *out.at4_mut(b, 0, 0, ch) = match kind {
                PoolKind::Max => acc,
                PoolKind::Avg => acc / (h * w) as f32,
            };
        }
    }
    out
}

fn binary(a: &Tensor, b: &Tensor, op: BinOp) -> Result<Tensor> {
    if a.shape != b.shape {
        return Err(DnnError::BadInput(format!(
            "binary shape mismatch {} vs {}",
            a.shape, b.shape
        )));
    }
    let data = a
        .data
        .iter()
        .zip(&b.data)
        .map(|(&x, &y)| match op {
            BinOp::Add => x + y,
            BinOp::Mul => x * y,
            BinOp::Sub => x - y,
        })
        .collect();
    Ok(Tensor {
        shape: a.shape.clone(),
        data,
    })
}

fn concat(ins: &[&Tensor], out_shape: Shape) -> Tensor {
    let rows = out_shape.elems() / out_shape.channels();
    let mut out = Tensor::zeros(out_shape);
    let c_out = out.shape.channels();
    for r in 0..rows {
        let mut offset = 0usize;
        for t in ins {
            let c = t.shape.channels();
            out.data[r * c_out + offset..r * c_out + offset + c]
                .copy_from_slice(&t.data[r * c..(r + 1) * c]);
            offset += c;
        }
    }
    out
}

fn resize(x: &Tensor, oh: usize, ow: usize, mode: ResizeMode) -> Tensor {
    let (n, h, w, c) = (
        x.shape.0[0],
        x.shape.0[1],
        x.shape.0[2],
        x.shape.0[3],
    );
    let mut out = Tensor::zeros(Shape::nhwc(n, oh, ow, c));
    let sy = h as f32 / oh as f32;
    let sx = w as f32 / ow as f32;
    for b in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                for ch in 0..c {
                    let v = match mode {
                        ResizeMode::Nearest => {
                            let iy = ((oy as f32 + 0.5) * sy - 0.5).round().clamp(0.0, (h - 1) as f32)
                                as usize;
                            let ix = ((ox as f32 + 0.5) * sx - 0.5).round().clamp(0.0, (w - 1) as f32)
                                as usize;
                            x.at4(b, iy, ix, ch)
                        }
                        ResizeMode::Bilinear => {
                            let fy = ((oy as f32 + 0.5) * sy - 0.5).clamp(0.0, (h - 1) as f32);
                            let fx = ((ox as f32 + 0.5) * sx - 0.5).clamp(0.0, (w - 1) as f32);
                            let (y0, x0) = (fy.floor() as usize, fx.floor() as usize);
                            let (y1, x1) = ((y0 + 1).min(h - 1), (x0 + 1).min(w - 1));
                            let (dy, dx) = (fy - y0 as f32, fx - x0 as f32);
                            let v00 = x.at4(b, y0, x0, ch);
                            let v01 = x.at4(b, y0, x1, ch);
                            let v10 = x.at4(b, y1, x0, ch);
                            let v11 = x.at4(b, y1, x1, ch);
                            v00 * (1.0 - dy) * (1.0 - dx)
                                + v01 * (1.0 - dy) * dx
                                + v10 * dy * (1.0 - dx)
                                + v11 * dy * dx
                        }
                    };
                    *out.at4_mut(b, oy, ox, ch) = v;
                }
            }
        }
    }
    out
}

fn slice_channels(x: &Tensor, begin: usize, len: usize) -> Tensor {
    let c = x.shape.channels();
    let rows = x.shape.elems() / c;
    let mut shape = x.shape.0.clone();
    *shape.last_mut().expect("non-empty") = len;
    let mut out = Tensor::zeros(Shape(shape));
    for r in 0..rows {
        out.data[r * len..(r + 1) * len]
            .copy_from_slice(&x.data[r * c + begin..r * c + begin + len]);
    }
    out
}

fn pad_spatial(x: &Tensor, pad: usize) -> Tensor {
    let (n, h, w, c) = (
        x.shape.0[0],
        x.shape.0[1],
        x.shape.0[2],
        x.shape.0[3],
    );
    let mut out = Tensor::zeros(Shape::nhwc(n, h + 2 * pad, w + 2 * pad, c));
    for b in 0..n {
        for y in 0..h {
            for xx in 0..w {
                for ch in 0..c {
                    *out.at4_mut(b, y + pad, xx + pad, ch) = x.at4(b, y, xx, ch);
                }
            }
        }
    }
    out
}

fn embedding(x: &Tensor, node: &crate::graph::Node, vocab: usize, dim: usize) -> Result<Tensor> {
    let weights = weights_f32(node, vocab * dim)?;
    let (n, t) = (x.shape.dim(0), x.shape.dim(1));
    let mut out = Tensor::zeros(Shape(vec![n, t, dim]));
    for i in 0..n * t {
        let id = (x.data[i].max(0.0) as usize).min(vocab - 1);
        out.data[i * dim..(i + 1) * dim].copy_from_slice(&weights[id * dim..(id + 1) * dim]);
    }
    Ok(out)
}

/// LSTM weight layout: 4 gates × [(cin + units + 1) × units], gate order
/// i, f, g, o; the `+1` row is the bias.
fn lstm(x: &Tensor, node: &crate::graph::Node, units: usize) -> Result<Tensor> {
    let (n, t, cin) = (x.shape.dim(0), x.shape.dim(1), x.shape.dim(2));
    let gate_len = (cin + units + 1) * units;
    let weights = weights_f32(node, 4 * gate_len)?;
    let mut out = Tensor::zeros(Shape(vec![n, t, units]));
    for b in 0..n {
        let mut h = vec![0.0f32; units];
        let mut c = vec![0.0f32; units];
        for step in 0..t {
            let xt = &x.data[(b * t + step) * cin..(b * t + step + 1) * cin];
            let mut gates = [vec![0.0f32; units], vec![0.0; units], vec![0.0; units], vec![0.0; units]];
            for (g, gate) in gates.iter_mut().enumerate() {
                let wg = &weights[g * gate_len..(g + 1) * gate_len];
                for u in 0..units {
                    let mut acc = wg[(cin + units) * units + u]; // bias row
                    for i in 0..cin {
                        acc += xt[i] * wg[i * units + u];
                    }
                    for j in 0..units {
                        acc += h[j] * wg[(cin + j) * units + u];
                    }
                    gate[u] = acc;
                }
            }
            for u in 0..units {
                let i_g = activate(ActKind::Sigmoid, gates[0][u]);
                let f_g = activate(ActKind::Sigmoid, gates[1][u]);
                let g_g = gates[2][u].tanh();
                let o_g = activate(ActKind::Sigmoid, gates[3][u]);
                c[u] = f_g * c[u] + i_g * g_g;
                h[u] = o_g * c[u].tanh();
            }
            out.data[(b * t + step) * units..(b * t + step + 1) * units].copy_from_slice(&h);
        }
    }
    Ok(out)
}

/// GRU weight layout: 3 gates × [(cin + units + 1) × units], gate order
/// z, r, n.
fn gru(x: &Tensor, node: &crate::graph::Node, units: usize) -> Result<Tensor> {
    let (n, t, cin) = (x.shape.dim(0), x.shape.dim(1), x.shape.dim(2));
    let gate_len = (cin + units + 1) * units;
    let weights = weights_f32(node, 3 * gate_len)?;
    let mut out = Tensor::zeros(Shape(vec![n, t, units]));
    for b in 0..n {
        let mut h = vec![0.0f32; units];
        for step in 0..t {
            let xt = &x.data[(b * t + step) * cin..(b * t + step + 1) * cin];
            let gate = |g: usize, u: usize, hvec: &[f32]| -> f32 {
                let wg = &weights[g * gate_len..(g + 1) * gate_len];
                let mut acc = wg[(cin + units) * units + u];
                for i in 0..cin {
                    acc += xt[i] * wg[i * units + u];
                }
                for j in 0..units {
                    acc += hvec[j] * wg[(cin + j) * units + u];
                }
                acc
            };
            let mut newh = vec![0.0f32; units];
            let r: Vec<f32> = (0..units)
                .map(|u| activate(ActKind::Sigmoid, gate(1, u, &h)))
                .collect();
            let rh: Vec<f32> = h.iter().zip(&r).map(|(&hv, &rv)| hv * rv).collect();
            for (u, nh) in newh.iter_mut().enumerate() {
                let z = activate(ActKind::Sigmoid, gate(0, u, &h));
                let cand = gate(2, u, &rh).tanh();
                *nh = (1.0 - z) * cand + z * h[u];
            }
            h = newh;
            out.data[(b * t + step) * units..(b * t + step + 1) * units].copy_from_slice(&h);
        }
    }
    Ok(out)
}

fn mean_time(x: &Tensor) -> Tensor {
    let (n, t, c) = (x.shape.dim(0), x.shape.dim(1), x.shape.dim(2));
    let mut out = Tensor::zeros(Shape::vec2(n, c));
    for b in 0..n {
        for step in 0..t {
            for ch in 0..c {
                out.data[b * c + ch] += x.data[(b * t + step) * c + ch];
            }
        }
        for ch in 0..c {
            out.data[b * c + ch] /= t as f32;
        }
    }
    out
}

fn dims4(x: &Tensor) -> Result<(usize, usize, usize, usize)> {
    if x.shape.rank() != 4 {
        return Err(DnnError::BadInput(format!(
            "expected rank-4 tensor, got {}",
            x.shape
        )));
    }
    Ok((x.shape.0[0], x.shape.0[1], x.shape.0[2], x.shape.0[3]))
}

fn weights_f32(node: &crate::graph::Node, want: usize) -> Result<Vec<f32>> {
    let w = node.weights.as_ref().ok_or(DnnError::BadWeights {
        node: usize::MAX,
        reason: format!("layer '{}' missing weights", node.name),
    })?;
    if w.len() != want {
        return Err(DnnError::BadWeights {
            node: usize::MAX,
            reason: format!("layer '{}' wants {want} weights, has {}", node.name, w.len()),
        });
    }
    Ok(w.to_f32())
}

fn bias_f32(node: &crate::graph::Node, _want: usize) -> Vec<f32> {
    node.bias.as_ref().map(|b| b.to_f32()).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::tensor::{DType, WeightData};

    fn wd(v: Vec<f32>) -> Option<WeightData> {
        Some(WeightData::F32(v))
    }

    #[test]
    fn identity_conv_passes_through() {
        // 1x1 conv with identity weights over 2 channels.
        let mut b = GraphBuilder::new("t");
        let i = b.input("in", Shape::nhwc(1, 2, 2, 2), DType::F32);
        // weight layout [ky][kx][cin][cout] = [1][1][2][2] identity.
        let c = b.layer(
            "c",
            LayerKind::Conv2d {
                out_channels: 2,
                kernel: 1,
                stride: 1,
                padding: Padding::Valid,
            },
            &[i],
            wd(vec![1.0, 0.0, 0.0, 1.0]),
            None,
        );
        let g = b.finish(vec![c]).unwrap();
        let ex = Executor::new(&g).unwrap();
        let input = Tensor::from_vec(
            Shape::nhwc(1, 2, 2, 2),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
        )
        .unwrap();
        let out = ex.run(std::slice::from_ref(&input)).unwrap();
        assert_eq!(out[0].data, input.data);
    }

    #[test]
    fn conv_known_value() {
        // 2x2 input, 2x2 kernel VALID, all-ones: output = sum of inputs.
        let mut b = GraphBuilder::new("t");
        let i = b.input("in", Shape::nhwc(1, 2, 2, 1), DType::F32);
        let c = b.layer(
            "c",
            LayerKind::Conv2d {
                out_channels: 1,
                kernel: 2,
                stride: 1,
                padding: Padding::Valid,
            },
            &[i],
            wd(vec![1.0; 4]),
            wd(vec![0.5]),
        );
        let g = b.finish(vec![c]).unwrap();
        let ex = Executor::new(&g).unwrap();
        let input =
            Tensor::from_vec(Shape::nhwc(1, 2, 2, 1), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let out = ex.run(&[input]).unwrap();
        assert_eq!(out[0].data, vec![10.5]);
    }

    #[test]
    fn depthwise_known_value() {
        let mut b = GraphBuilder::new("t");
        let i = b.input("in", Shape::nhwc(1, 2, 2, 2), DType::F32);
        let c = b.layer(
            "dw",
            LayerKind::DepthwiseConv2d {
                kernel: 2,
                stride: 1,
                padding: Padding::Valid,
            },
            &[i],
            // layout [ky][kx][c]: channel 0 gets weight 1, channel 1 weight 2.
            wd(vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0, 1.0, 2.0]),
            None,
        );
        let g = b.finish(vec![c]).unwrap();
        let ex = Executor::new(&g).unwrap();
        let input = Tensor::from_vec(
            Shape::nhwc(1, 2, 2, 2),
            vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
        )
        .unwrap();
        let out = ex.run(&[input]).unwrap();
        assert_eq!(out[0].data, vec![4.0, 8.0]);
    }

    #[test]
    fn dense_known_value() {
        let mut b = GraphBuilder::new("t");
        let i = b.input("in", Shape::vec2(1, 2), DType::F32);
        // W = [[1,2],[3,4]] (layout [cin][units]), bias [10, 20].
        let d = b.layer(
            "fc",
            LayerKind::Dense { units: 2 },
            &[i],
            wd(vec![1.0, 2.0, 3.0, 4.0]),
            wd(vec![10.0, 20.0]),
        );
        let g = b.finish(vec![d]).unwrap();
        let ex = Executor::new(&g).unwrap();
        let out = ex
            .run(&[Tensor::from_vec(Shape::vec2(1, 2), vec![1.0, 1.0]).unwrap()])
            .unwrap();
        assert_eq!(out[0].data, vec![14.0, 26.0]);
    }

    #[test]
    fn softmax_normalises() {
        let mut b = GraphBuilder::new("t");
        let i = b.input("in", Shape::vec2(2, 3), DType::F32);
        let s = b.op("sm", LayerKind::Softmax, &[i]);
        let g = b.finish(vec![s]).unwrap();
        let ex = Executor::new(&g).unwrap();
        let out = ex
            .run(&[
                Tensor::from_vec(Shape::vec2(2, 3), vec![1.0, 2.0, 3.0, 0.0, 0.0, 0.0]).unwrap()
            ])
            .unwrap();
        let row0: f32 = out[0].data[0..3].iter().sum();
        let row1: f32 = out[0].data[3..6].iter().sum();
        assert!((row0 - 1.0).abs() < 1e-6);
        assert!((row1 - 1.0).abs() < 1e-6);
        assert!((out[0].data[3] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn max_pool_known_value() {
        let mut b = GraphBuilder::new("t");
        let i = b.input("in", Shape::nhwc(1, 2, 2, 1), DType::F32);
        let p = b.op(
            "p",
            LayerKind::Pool {
                kind: PoolKind::Max,
                kernel: 2,
                stride: 2,
                padding: Padding::Valid,
            },
            &[i],
        );
        let g = b.finish(vec![p]).unwrap();
        let ex = Executor::new(&g).unwrap();
        let out = ex
            .run(&[Tensor::from_vec(Shape::nhwc(1, 2, 2, 1), vec![1.0, 7.0, 3.0, 4.0]).unwrap()])
            .unwrap();
        assert_eq!(out[0].data, vec![7.0]);
    }

    #[test]
    fn global_avg_pool_known_value() {
        let mut b = GraphBuilder::new("t");
        let i = b.input("in", Shape::nhwc(1, 2, 2, 1), DType::F32);
        let p = b.op("gap", LayerKind::GlobalPool(PoolKind::Avg), &[i]);
        let g = b.finish(vec![p]).unwrap();
        let ex = Executor::new(&g).unwrap();
        let out = ex
            .run(&[Tensor::from_vec(Shape::nhwc(1, 2, 2, 1), vec![1.0, 2.0, 3.0, 6.0]).unwrap()])
            .unwrap();
        assert_eq!(out[0].data, vec![3.0]);
    }

    #[test]
    fn residual_add_and_concat() {
        let mut b = GraphBuilder::new("t");
        let i = b.input("in", Shape::nhwc(1, 1, 1, 2), DType::F32);
        let a = b.op("add", LayerKind::Binary(BinOp::Add), &[i, i]);
        let cat = b.op("cat", LayerKind::Concat, &[i, a]);
        let g = b.finish(vec![cat]).unwrap();
        let ex = Executor::new(&g).unwrap();
        let out = ex
            .run(&[Tensor::from_vec(Shape::nhwc(1, 1, 1, 2), vec![1.0, 2.0]).unwrap()])
            .unwrap();
        assert_eq!(out[0].data, vec![1.0, 2.0, 2.0, 4.0]);
    }

    #[test]
    fn resize_nearest_doubles() {
        let mut b = GraphBuilder::new("t");
        let i = b.input("in", Shape::nhwc(1, 1, 2, 1), DType::F32);
        let r = b.op(
            "r",
            LayerKind::Resize {
                out_h: 1,
                out_w: 4,
                mode: ResizeMode::Nearest,
            },
            &[i],
        );
        let g = b.finish(vec![r]).unwrap();
        let ex = Executor::new(&g).unwrap();
        let out = ex
            .run(&[Tensor::from_vec(Shape::nhwc(1, 1, 2, 1), vec![1.0, 2.0]).unwrap()])
            .unwrap();
        assert_eq!(out[0].data, vec![1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn lstm_output_bounded_and_deterministic() {
        let mut b = GraphBuilder::new("t");
        let i = b.input("in", Shape(vec![1, 4, 3]), DType::F32);
        let units = 5;
        let gate = (3 + units + 1) * units;
        let l = b.layer(
            "lstm",
            LayerKind::Lstm { units },
            &[i],
            wd((0..4 * gate).map(|k| ((k % 7) as f32 - 3.0) * 0.1).collect()),
            None,
        );
        let g = b.finish(vec![l]).unwrap();
        let ex = Executor::new(&g).unwrap();
        let o1 = ex.run_random(1, 9).unwrap();
        let o2 = ex.run_random(1, 9).unwrap();
        assert_eq!(o1, o2);
        assert!(o1[0].data.iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn gru_runs_and_is_bounded() {
        let mut b = GraphBuilder::new("t");
        let i = b.input("in", Shape(vec![2, 3, 4]), DType::F32);
        let units = 6;
        let gate = (4 + units + 1) * units;
        let l = b.layer(
            "gru",
            LayerKind::Gru { units },
            &[i],
            wd((0..3 * gate).map(|k| ((k % 5) as f32 - 2.0) * 0.2).collect()),
            None,
        );
        let m = b.op("mean", LayerKind::MeanTime, &[l]);
        let g = b.finish(vec![m]).unwrap();
        let ex = Executor::new(&g).unwrap();
        let out = ex.run_random(2, 1).unwrap();
        assert_eq!(out[0].shape, Shape::vec2(2, 6));
        assert!(out[0].data.iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn batch_execution_matches_per_sample() {
        let mut b = GraphBuilder::new("t");
        let i = b.input("in", Shape::nhwc(1, 4, 4, 2), DType::F32);
        let c = b.layer(
            "c",
            LayerKind::Conv2d {
                out_channels: 3,
                kernel: 3,
                stride: 1,
                padding: Padding::Same,
            },
            &[i],
            wd((0..3 * 3 * 2 * 3).map(|k| (k as f32) * 0.01).collect()),
            wd(vec![0.1, 0.2, 0.3]),
        );
        let g = b.finish(vec![c]).unwrap();
        let ex = Executor::new(&g).unwrap();
        let s0 = Tensor::random_like(Shape::nhwc(1, 4, 4, 2), 5);
        let s1 = Tensor::random_like(Shape::nhwc(1, 4, 4, 2), 6);
        let mut both = s0.data.clone();
        both.extend_from_slice(&s1.data);
        let batched = Tensor::from_vec(Shape::nhwc(2, 4, 4, 2), both).unwrap();
        let o_b = ex.run(&[batched]).unwrap();
        let o0 = ex.run(std::slice::from_ref(&s0)).unwrap();
        let o1 = ex.run(std::slice::from_ref(&s1)).unwrap();
        let half = o_b[0].data.len() / 2;
        assert_eq!(&o_b[0].data[..half], &o0[0].data[..]);
        assert_eq!(&o_b[0].data[half..], &o1[0].data[..]);
    }

    #[test]
    fn wrong_input_shape_rejected() {
        let mut b = GraphBuilder::new("t");
        let i = b.input("in", Shape::vec2(1, 4), DType::F32);
        let s = b.op("sm", LayerKind::Softmax, &[i]);
        let g = b.finish(vec![s]).unwrap();
        let ex = Executor::new(&g).unwrap();
        let bad = Tensor::zeros(Shape::vec2(1, 5));
        assert!(ex.run(&[bad]).is_err());
        assert!(ex.run(&[]).is_err());
    }

    #[test]
    fn quantize_roundtrips_activations() {
        use crate::tensor::QuantParams;
        let mut b = GraphBuilder::new("t");
        let i = b.input("in", Shape::vec2(1, 4), DType::F32);
        let q = b.op(
            "q",
            LayerKind::Quantize(QuantParams {
                scale: 0.1,
                zero_point: 0,
            }),
            &[i],
        );
        let g = b.finish(vec![q]).unwrap();
        let ex = Executor::new(&g).unwrap();
        let out = ex
            .run(&[Tensor::from_vec(Shape::vec2(1, 4), vec![0.5, -0.52, 0.0, 1.0]).unwrap()])
            .unwrap();
        for (o, e) in out[0].data.iter().zip(&[0.5, -0.5, 0.0, 1.0]) {
            assert!((o - e).abs() < 0.051, "{o} vs {e}");
        }
    }
}
