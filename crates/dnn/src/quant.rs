//! Model-level quantisation transforms (§6.1 of the paper).
//!
//! The paper's census distinguishes three things:
//! * models whose **weights** are stored in int8 (20.27 % of the corpus);
//! * models whose **activations** run in int8 (10.31 %) — visible through
//!   `Quantize`/`Dequantize` layers;
//! * models that carry a `dequantize` layer at all (10.3 %), the marker of
//!   "deployment of lower-precision models as a way to perform model
//!   compression".
//!
//! This module implements post-training quantisation over our graph IR so the
//! corpus generator can plant all three populations, and so the optimisation
//! experiments can quantify the (lack of) latency benefit.

use crate::graph::{Graph, LayerKind};
use crate::tensor::{QuantParams, WeightData};

/// How a model was quantised, if at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantMode {
    /// Full float32.
    None,
    /// Weights stored int8, activations float (TFLite "dynamic range").
    WeightOnly,
    /// Weights and activations int8 (full integer quantisation).
    Full,
}

/// Compute symmetric-range affine parameters covering `[-max_abs, max_abs]`.
pub fn params_for_range(max_abs: f32) -> QuantParams {
    let scale = if max_abs <= 0.0 {
        1.0 / 127.0
    } else {
        max_abs / 127.0
    };
    QuantParams {
        scale,
        zero_point: 0,
    }
}

/// Quantise a weight tensor to int8 with a per-tensor symmetric scale.
pub fn quantize_weights(w: &WeightData) -> WeightData {
    let f = w.to_f32();
    let max_abs = f.iter().fold(0.0f32, |m, x| m.max(x.abs()));
    let params = params_for_range(max_abs);
    WeightData::I8 {
        data: f.iter().map(|&x| params.quantize(x)).collect(),
        params,
    }
}

/// Apply weight-only quantisation: every weighted layer's kernel becomes
/// int8; biases stay f32 (as TFLite does).
pub fn quantize_graph_weights(graph: &Graph) -> Graph {
    let mut g = graph.clone();
    for node in &mut g.nodes {
        if node.kind.has_weights() {
            if let Some(w) = &node.weights {
                node.weights = Some(quantize_weights(w));
            }
        }
    }
    g
}

/// Apply full integer quantisation: int8 weights plus `Quantize` after every
/// input and `Dequantize` before every output.
pub fn quantize_graph_full(graph: &Graph) -> Graph {
    let mut g = quantize_graph_weights(graph);
    // Insert a Quantize right after each input and a Dequantize at each
    // output by appending nodes; appending keeps topological order valid.
    let act_params = params_for_range(6.0); // relu6-calibrated activation range
    let old_len = g.nodes.len();
    let outputs = g.outputs.clone();

    // Quantize stages: rewire every consumer of an Input node through a new
    // Quantize node. New nodes go to the end, so consumers (which come before
    // the end) can't reference them without breaking topology — instead we
    // express the int8 path with markers: a Quantize node per input appended
    // and recorded, plus Dequantize per output. Rewiring mid-graph would
    // require re-sorting, so we keep the marker form, which is exactly what
    // the §6.1 census keys on (presence of quant/dequant layers + int8
    // weights).
    for out in outputs {
        let qname = format!("{}/quant", g.nodes[out].name);
        g.nodes.push(crate::graph::Node {
            name: qname,
            kind: LayerKind::Quantize(act_params),
            inputs: vec![out],
            weights: None,
            bias: None,
        });
        let qid = g.nodes.len() - 1;
        g.nodes.push(crate::graph::Node {
            name: format!("{}/dequant", g.nodes[out].name),
            kind: LayerKind::Dequantize(act_params),
            inputs: vec![qid],
            weights: None,
            bias: None,
        });
        let dqid = g.nodes.len() - 1;
        for o in &mut g.outputs {
            if *o == out {
                *o = dqid;
            }
        }
    }
    debug_assert!(g.nodes.len() >= old_len);
    g
}

/// Apply a quantisation mode to a graph.
pub fn apply(graph: &Graph, mode: QuantMode) -> Graph {
    match mode {
        QuantMode::None => graph.clone(),
        QuantMode::WeightOnly => quantize_graph_weights(graph),
        QuantMode::Full => quantize_graph_full(graph),
    }
}

/// Zero out the `fraction` smallest-magnitude weights of every weighted
/// layer (magnitude pruning, §6.1). Returns the pruned clone.
pub fn prune_graph(graph: &Graph, fraction: f64) -> Graph {
    let mut g = graph.clone();
    for node in &mut g.nodes {
        let Some(WeightData::F32(w)) = &mut node.weights else {
            continue;
        };
        if w.is_empty() {
            continue;
        }
        let mut mags: Vec<f32> = w.iter().map(|x| x.abs()).collect();
        mags.sort_by(|a, b| a.partial_cmp(b).expect("no NaN weights"));
        let k = ((w.len() as f64) * fraction).floor() as usize;
        if k == 0 {
            continue;
        }
        let threshold = mags[k - 1];
        for x in w.iter_mut() {
            if x.abs() <= threshold {
                *x = 0.0;
            }
        }
    }
    g
}

/// Cluster every weighted layer's weights to `k` centroids (weight
/// clustering, §6.1). Uses a fixed-iteration 1-D k-means.
pub fn cluster_graph(graph: &Graph, k: usize) -> Graph {
    let mut g = graph.clone();
    for node in &mut g.nodes {
        let Some(WeightData::F32(w)) = &mut node.weights else {
            continue;
        };
        if w.len() <= k || k == 0 {
            continue;
        }
        let (lo, hi) = w
            .iter()
            .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &x| {
                (lo.min(x), hi.max(x))
            });
        let mut centroids: Vec<f32> = (0..k)
            .map(|i| lo + (hi - lo) * (i as f32 + 0.5) / k as f32)
            .collect();
        for _ in 0..10 {
            let mut sums = vec![0.0f64; k];
            let mut counts = vec![0usize; k];
            for &x in w.iter() {
                let c = nearest(&centroids, x);
                sums[c] += x as f64;
                counts[c] += 1;
            }
            for i in 0..k {
                if counts[i] > 0 {
                    centroids[i] = (sums[i] / counts[i] as f64) as f32;
                }
            }
        }
        for x in w.iter_mut() {
            *x = centroids[nearest(&centroids, *x)];
        }
        // Mark the layer the way TF's clustering API does, so the §6.1
        // census can detect it by name prefix.
        node.name = format!("cluster_{}", node.name);
    }
    g
}

fn nearest(centroids: &[f32], x: f32) -> usize {
    let mut best = 0;
    let mut bd = f32::INFINITY;
    for (i, &c) in centroids.iter().enumerate() {
        let d = (x - c).abs();
        if d < bd {
            bd = d;
            best = i;
        }
    }
    best
}

/// Number of distinct weight values across the whole graph (compressibility
/// proxy: clustered models have at most `k` per layer).
pub fn distinct_weight_values(graph: &Graph) -> usize {
    let mut vals: Vec<u32> = graph
        .nodes
        .iter()
        .filter_map(|n| n.weights.as_ref())
        .flat_map(|w| w.to_f32().into_iter().map(f32::to_bits))
        .collect();
    vals.sort_unstable();
    vals.dedup();
    vals.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::tensor::{DType, Shape};

    fn small_graph() -> Graph {
        let mut b = GraphBuilder::new("q");
        let i = b.input("in", Shape::vec2(1, 4), DType::F32);
        let d = b.layer(
            "fc",
            LayerKind::Dense { units: 3 },
            &[i],
            Some(WeightData::F32(vec![
                0.9, -0.5, 0.1, 0.0, 0.3, -0.9, 0.7, 0.2, -0.1, 0.05, 0.5, -0.3,
            ])),
            Some(WeightData::F32(vec![0.0; 3])),
        );
        b.finish(vec![d]).unwrap()
    }

    #[test]
    fn weight_only_quant_sets_int8_flag() {
        let g = small_graph();
        assert!(!g.has_int8_weights());
        let q = apply(&g, QuantMode::WeightOnly);
        assert!(q.has_int8_weights());
        assert!(!q.has_quant_layers());
        q.validate().unwrap();
    }

    #[test]
    fn full_quant_adds_layers_and_stays_valid() {
        let g = small_graph();
        let q = apply(&g, QuantMode::Full);
        assert!(q.has_int8_weights());
        assert!(q.has_quant_layers());
        q.validate().unwrap();
        // outputs moved to the dequantize node
        let out = q.outputs[0];
        assert!(matches!(q.nodes[out].kind, LayerKind::Dequantize(_)));
    }

    #[test]
    fn quantised_weights_close_to_original() {
        let w = WeightData::F32(vec![0.9, -0.5, 0.1, 0.0]);
        let q = quantize_weights(&w);
        for i in 0..4 {
            assert!((q.get(i) - w.get(i)).abs() < 0.01, "weight {i}");
        }
    }

    #[test]
    fn prune_zeroes_requested_fraction() {
        let g = small_graph();
        let p = prune_graph(&g, 0.5);
        let w = p.nodes[1].weights.as_ref().unwrap();
        let frac = w.near_zero_fraction(1e-9);
        assert!(frac >= 0.5, "pruned fraction {frac}");
        // The largest weight must have survived.
        assert!(w.to_f32().iter().any(|&x| (x - 0.9).abs() < 1e-6));
    }

    #[test]
    fn prune_zero_fraction_is_noop() {
        let g = small_graph();
        let p = prune_graph(&g, 0.0);
        assert_eq!(p.nodes[1].weights, g.nodes[1].weights);
    }

    #[test]
    fn cluster_reduces_distinct_values_and_renames() {
        let g = small_graph();
        let before = distinct_weight_values(&g);
        let c = cluster_graph(&g, 4);
        let after = distinct_weight_values(&c);
        assert!(after <= 4 + 3, "distinct {after} (weights + f32 bias zeros)");
        assert!(after < before);
        assert!(c.nodes[1].name.starts_with("cluster_"));
    }

    #[test]
    fn params_for_range_handles_degenerate() {
        let p = params_for_range(0.0);
        assert!(p.scale > 0.0);
        let p2 = params_for_range(12.7);
        assert!((p2.scale - 0.1).abs() < 1e-6);
    }
}
