//! Vision architecture generators.
//!
//! These mirror the families the paper identified: MobileNetV1/V2 backbones
//! [31], FSSD detection heads [43], BlazeFace [8], U-Net-style
//! encoder–decoders for segmentation/hair/beauty, CRNNs for text
//! recognition, and heatmap heads for pose/contour.

use super::{conv_bn_relu, dw_separable, scale_ch, Init};
use crate::graph::{
    ActKind, BinOp, Graph, GraphBuilder, LayerKind, NodeId, Padding, PoolKind, ResizeMode,
};
use crate::tensor::{DType, Shape};
use rand::rngs::StdRng;

/// MobileNetV1 \[31\]: stem conv + 13 depthwise-separable blocks + classifier.
pub fn mobilenet_v1(rng: &mut StdRng, res: usize, alpha: f64, classes: usize) -> Graph {
    let mut b = GraphBuilder::new("mobilenet_v1");
    let mut init = Init::new(rng);
    let input = b.input("input", Shape::nhwc(1, res, res, 3), DType::F32);
    let c0 = scale_ch(32, alpha);
    let mut x = conv_bn_relu(&mut b, &mut init, "stem", input, 3, c0, 3, 2);
    // (cout_base, stride) per block, MobileNetV1 table.
    let blocks: [(usize, usize); 13] = [
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2),
        (1024, 1),
    ];
    let mut cin = c0;
    for (i, &(cout, stride)) in blocks.iter().enumerate() {
        let cout = scale_ch(cout, alpha);
        x = dw_separable(&mut b, &mut init, &format!("block{i}"), x, cin, cout, stride);
        cin = cout;
    }
    let gap = b.op("gap", LayerKind::GlobalPool(PoolKind::Avg), &[x]);
    let flat = b.op("flatten", LayerKind::Reshape { dims: vec![cin] }, &[gap]);
    let fc = b.layer(
        "logits",
        LayerKind::Dense { units: classes },
        &[flat],
        Some(init.weights(cin * classes, cin)),
        Some(init.bias(classes)),
    );
    let sm = b.op("prob", LayerKind::Softmax, &[fc]);
    b.finish(vec![sm]).expect("mobilenet_v1 is valid by construction")
}

/// One MobileNetV2 inverted-residual block.
#[allow(clippy::too_many_arguments)]
fn inverted_residual(
    b: &mut GraphBuilder,
    init: &mut Init,
    name: &str,
    input: NodeId,
    cin: usize,
    cout: usize,
    stride: usize,
    expand: usize,
) -> NodeId {
    let mid = cin * expand;
    let expanded = conv_bn_relu(b, init, &format!("{name}/expand"), input, cin, mid, 1, 1);
    let dw = b.layer(
        format!("{name}/dw"),
        LayerKind::DepthwiseConv2d {
            kernel: 3,
            stride,
            padding: Padding::Same,
        },
        &[expanded],
        Some(init.weights(3 * 3 * mid, 9)),
        Some(init.bias(mid)),
    );
    let dw_act = b.op(
        format!("{name}/dw_relu6"),
        LayerKind::Activation(ActKind::Relu6),
        &[dw],
    );
    // Linear bottleneck: projection conv without activation.
    let proj = b.layer(
        format!("{name}/project"),
        LayerKind::Conv2d {
            out_channels: cout,
            kernel: 1,
            stride: 1,
            padding: Padding::Same,
        },
        &[dw_act],
        Some(init.weights(mid * cout, mid)),
        Some(init.bias(cout)),
    );
    if stride == 1 && cin == cout {
        b.op(format!("{name}/add"), LayerKind::Binary(BinOp::Add), &[input, proj])
    } else {
        proj
    }
}

/// MobileNetV2: inverted residual bottlenecks with linear projections.
pub fn mobilenet_v2(rng: &mut StdRng, res: usize, alpha: f64, classes: usize) -> Graph {
    let mut b = GraphBuilder::new("mobilenet_v2");
    let mut init = Init::new(rng);
    let input = b.input("input", Shape::nhwc(1, res, res, 3), DType::F32);
    let c0 = scale_ch(32, alpha);
    let mut x = conv_bn_relu(&mut b, &mut init, "stem", input, 3, c0, 3, 2);
    // (expand, cout_base, repeats, stride)
    let cfg: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut cin = c0;
    for (bi, &(expand, cout, repeats, stride)) in cfg.iter().enumerate() {
        let cout = scale_ch(cout, alpha);
        for r in 0..repeats {
            let s = if r == 0 { stride } else { 1 };
            x = inverted_residual(
                &mut b,
                &mut init,
                &format!("ir{bi}_{r}"),
                x,
                cin,
                cout,
                s,
                expand,
            );
            cin = cout;
        }
    }
    let head_ch = scale_ch(1280, alpha);
    x = conv_bn_relu(&mut b, &mut init, "head", x, cin, head_ch, 1, 1);
    let gap = b.op("gap", LayerKind::GlobalPool(PoolKind::Avg), &[x]);
    let flat = b.op("flatten", LayerKind::Reshape { dims: vec![head_ch] }, &[gap]);
    let fc = b.layer(
        "logits",
        LayerKind::Dense { units: classes },
        &[flat],
        Some(init.weights(head_ch * classes, head_ch)),
        Some(init.bias(classes)),
    );
    let sm = b.op("prob", LayerKind::Softmax, &[fc]);
    b.finish(vec![sm]).expect("mobilenet_v2 is valid by construction")
}

/// FSSD \[43\]: MobileNetV1 backbone with multi-scale feature fusion and SSD
/// box/class heads — the most popular object-detection model in the corpus.
pub fn fssd(rng: &mut StdRng, res: usize, alpha: f64) -> Graph {
    let mut b = GraphBuilder::new("fssd");
    let mut init = Init::new(rng);
    let input = b.input("input", Shape::nhwc(1, res, res, 3), DType::F32);
    let c0 = scale_ch(32, alpha);
    let mut x = conv_bn_relu(&mut b, &mut init, "stem", input, 3, c0, 3, 2);
    let mut cin = c0;
    let mut taps: Vec<(NodeId, usize, usize)> = Vec::new(); // (node, channels, spatial)
    let mut spatial = res / 2;
    let blocks: [(usize, usize); 8] = [
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 2),
    ];
    for (i, &(cout, stride)) in blocks.iter().enumerate() {
        let cout = scale_ch(cout, alpha);
        x = dw_separable(&mut b, &mut init, &format!("block{i}"), x, cin, cout, stride);
        cin = cout;
        if stride == 2 {
            spatial = spatial.div_ceil(2);
        }
        if i == 4 || i == 6 || i == 7 {
            taps.push((x, cin, spatial));
        }
    }
    // Feature fusion: resize all taps to the first tap's scale and concat.
    let fuse_hw = taps[0].2;
    let mut fused_inputs = Vec::new();
    let mut fused_ch = 0;
    for (i, &(node, ch, hw)) in taps.iter().enumerate() {
        let r = if hw == fuse_hw {
            node
        } else {
            b.op(
                format!("fuse/resize{i}"),
                LayerKind::Resize {
                    out_h: fuse_hw,
                    out_w: fuse_hw,
                    mode: ResizeMode::Bilinear,
                },
                &[node],
            )
        };
        fused_inputs.push(r);
        fused_ch += ch;
    }
    let fused = b.op("fuse/concat", LayerKind::Concat, &fused_inputs);
    let ff = conv_bn_relu(
        &mut b,
        &mut init,
        "fuse/conv",
        fused,
        fused_ch,
        scale_ch(256, alpha),
        1,
        1,
    );
    let fch = scale_ch(256, alpha);
    // SSD heads: per-location class scores and box regressors.
    let anchors = 6;
    let classes = 21;
    let cls = b.layer(
        "head/cls",
        LayerKind::Conv2d {
            out_channels: anchors * classes,
            kernel: 3,
            stride: 1,
            padding: Padding::Same,
        },
        &[ff],
        Some(init.weights(3 * 3 * fch * anchors * classes, 9 * fch)),
        Some(init.bias(anchors * classes)),
    );
    let boxes = b.layer(
        "head/box",
        LayerKind::Conv2d {
            out_channels: anchors * 4,
            kernel: 3,
            stride: 1,
            padding: Padding::Same,
        },
        &[ff],
        Some(init.weights(3 * 3 * fch * anchors * 4, 9 * fch)),
        Some(init.bias(anchors * 4)),
    );
    b.finish(vec![cls, boxes]).expect("fssd is valid by construction")
}

/// BlazeFace \[8\]: sub-millisecond face detector with 5x5 depthwise "blaze"
/// blocks and a dual-branch anchor head.
pub fn blazeface(rng: &mut StdRng, res: usize) -> Graph {
    let mut b = GraphBuilder::new("blazeface");
    let mut init = Init::new(rng);
    let input = b.input("input", Shape::nhwc(1, res, res, 3), DType::F32);
    let mut x = conv_bn_relu(&mut b, &mut init, "stem", input, 3, 24, 5, 2);
    let mut cin = 24;
    // Single blaze blocks.
    for (i, &(cout, stride)) in [(24usize, 1usize), (28, 2), (32, 1), (36, 2), (42, 1)]
        .iter()
        .enumerate()
    {
        let dw = b.layer(
            format!("blaze{i}/dw"),
            LayerKind::DepthwiseConv2d {
                kernel: 5,
                stride,
                padding: Padding::Same,
            },
            &[x],
            Some(init.weights(5 * 5 * cin, 25)),
            Some(init.bias(cin)),
        );
        x = conv_bn_relu(&mut b, &mut init, &format!("blaze{i}/pw"), dw, cin, cout, 1, 1);
        cin = cout;
    }
    // Double blaze blocks with projection.
    for (i, &(cout, stride)) in [(48usize, 2usize), (56, 1), (64, 2)].iter().enumerate() {
        let dw = b.layer(
            format!("dblaze{i}/dw"),
            LayerKind::DepthwiseConv2d {
                kernel: 5,
                stride,
                padding: Padding::Same,
            },
            &[x],
            Some(init.weights(5 * 5 * cin, 25)),
            Some(init.bias(cin)),
        );
        let proj = conv_bn_relu(
            &mut b,
            &mut init,
            &format!("dblaze{i}/proj"),
            dw,
            cin,
            24,
            1,
            1,
        );
        x = conv_bn_relu(
            &mut b,
            &mut init,
            &format!("dblaze{i}/pw"),
            proj,
            24,
            cout,
            1,
            1,
        );
        cin = cout;
    }
    let anchors = 2;
    let score = b.layer(
        "head/score",
        LayerKind::Conv2d {
            out_channels: anchors,
            kernel: 3,
            stride: 1,
            padding: Padding::Same,
        },
        &[x],
        Some(init.weights(3 * 3 * cin * anchors, 9 * cin)),
        Some(init.bias(anchors)),
    );
    let sig = b.op("head/sigmoid", LayerKind::Activation(ActKind::Sigmoid), &[score]);
    let boxes = b.layer(
        "head/box",
        LayerKind::Conv2d {
            out_channels: anchors * 16,
            kernel: 3,
            stride: 1,
            padding: Padding::Same,
        },
        &[x],
        Some(init.weights(3 * 3 * cin * anchors * 16, 9 * cin)),
        Some(init.bias(anchors * 16)),
    );
    b.finish(vec![sig, boxes]).expect("blazeface is valid by construction")
}

/// U-Net-style encoder-decoder used for segmentation, hair reconstruction
/// and photo beauty — the heaviest family in Fig. 7.
pub fn unet_segmenter(rng: &mut StdRng, res: usize, base: usize) -> Graph {
    let mut b = GraphBuilder::new("unet");
    let mut init = Init::new(rng);
    let input = b.input("input", Shape::nhwc(1, res, res, 3), DType::F32);
    // Encoder.
    let e1 = conv_bn_relu(&mut b, &mut init, "enc1", input, 3, base, 3, 1);
    let d1 = b.op(
        "down1",
        LayerKind::Pool {
            kind: PoolKind::Max,
            kernel: 2,
            stride: 2,
            padding: Padding::Valid,
        },
        &[e1],
    );
    let e2 = conv_bn_relu(&mut b, &mut init, "enc2", d1, base, base * 2, 3, 1);
    let d2 = b.op(
        "down2",
        LayerKind::Pool {
            kind: PoolKind::Max,
            kernel: 2,
            stride: 2,
            padding: Padding::Valid,
        },
        &[e2],
    );
    let e3 = conv_bn_relu(&mut b, &mut init, "enc3", d2, base * 2, base * 4, 3, 1);
    let d3 = b.op(
        "down3",
        LayerKind::Pool {
            kind: PoolKind::Max,
            kernel: 2,
            stride: 2,
            padding: Padding::Valid,
        },
        &[e3],
    );
    // Bottleneck.
    let bn = conv_bn_relu(&mut b, &mut init, "bottleneck", d3, base * 4, base * 8, 3, 1);
    // Decoder with skip connections.
    let u3 = b.layer(
        "up3",
        LayerKind::TransposeConv2d {
            out_channels: base * 4,
            kernel: 2,
            stride: 2,
        },
        &[bn],
        Some(init.weights(2 * 2 * base * 8 * base * 4, 4 * base * 8)),
        Some(init.bias(base * 4)),
    );
    let s3 = b.op("skip3", LayerKind::Concat, &[u3, e3]);
    let c3 = conv_bn_relu(&mut b, &mut init, "dec3", s3, base * 8, base * 4, 3, 1);
    let u2 = b.layer(
        "up2",
        LayerKind::TransposeConv2d {
            out_channels: base * 2,
            kernel: 2,
            stride: 2,
        },
        &[c3],
        Some(init.weights(2 * 2 * base * 4 * base * 2, 4 * base * 4)),
        Some(init.bias(base * 2)),
    );
    let s2 = b.op("skip2", LayerKind::Concat, &[u2, e2]);
    let c2 = conv_bn_relu(&mut b, &mut init, "dec2", s2, base * 4, base * 2, 3, 1);
    let u1 = b.layer(
        "up1",
        LayerKind::TransposeConv2d {
            out_channels: base,
            kernel: 2,
            stride: 2,
        },
        &[c2],
        Some(init.weights(2 * 2 * base * 2 * base, 4 * base * 2)),
        Some(init.bias(base)),
    );
    let s1 = b.op("skip1", LayerKind::Concat, &[u1, e1]);
    let c1 = conv_bn_relu(&mut b, &mut init, "dec1", s1, base * 2, base, 3, 1);
    let mask = b.layer(
        "mask",
        LayerKind::Conv2d {
            out_channels: 2,
            kernel: 1,
            stride: 1,
            padding: Padding::Same,
        },
        &[c1],
        Some(init.weights(base * 2, base)),
        Some(init.bias(2)),
    );
    let sm = b.op("prob", LayerKind::Softmax, &[mask]);
    b.finish(vec![sm]).expect("unet is valid by construction")
}

/// CRNN text recogniser: conv feature extractor + recurrent decoder, the
/// standard OCR topology (credit-card and document scanners in §4.5).
pub fn crnn_text(rng: &mut StdRng, h: usize, w: usize, alpha: f64) -> Graph {
    let mut b = GraphBuilder::new("crnn");
    let mut init = Init::new(rng);
    let input = b.input("input", Shape::nhwc(1, h, w, 1), DType::F32);
    let c1 = scale_ch(64, alpha);
    let x1 = conv_bn_relu(&mut b, &mut init, "conv1", input, 1, c1, 3, 1);
    let p1 = b.op(
        "pool1",
        LayerKind::Pool {
            kind: PoolKind::Max,
            kernel: 2,
            stride: 2,
            padding: Padding::Valid,
        },
        &[x1],
    );
    let c2 = scale_ch(128, alpha);
    let x2 = conv_bn_relu(&mut b, &mut init, "conv2", p1, c1, c2, 3, 1);
    let p2 = b.op(
        "pool2",
        LayerKind::Pool {
            kind: PoolKind::Max,
            kernel: 2,
            stride: 2,
            padding: Padding::Valid,
        },
        &[x2],
    );
    let (fh, fw) = (h / 4, w / 4);
    // Collapse height into features: [1, fh, fw, c2] -> [1, fw, fh*c2].
    let seq = b.op(
        "to_seq",
        LayerKind::Reshape {
            dims: vec![fw, fh * c2],
        },
        &[p2],
    );
    let units = scale_ch(128, alpha);
    let gate = (fh * c2 + units + 1) * units;
    let lstm = b.layer(
        "lstm",
        LayerKind::Lstm { units },
        &[seq],
        Some(init.weights(4 * gate, fh * c2 + units)),
        None,
    );
    let charset = 96;
    let logits = b.layer(
        "logits",
        LayerKind::Dense { units: charset },
        &[lstm],
        Some(init.weights(units * charset, units)),
        Some(init.bias(charset)),
    );
    let sm = b.op("prob", LayerKind::Softmax, &[logits]);
    b.finish(vec![sm]).expect("crnn is valid by construction")
}

/// Contour / landmark detector: MobileNet-ish trunk regressing a fixed
/// landmark vector (face meshes, document corners).
pub fn contour_net(rng: &mut StdRng, res: usize, alpha: f64) -> Graph {
    let mut b = GraphBuilder::new("contournet");
    let mut init = Init::new(rng);
    let input = b.input("input", Shape::nhwc(1, res, res, 3), DType::F32);
    let c0 = scale_ch(16, alpha * 2.0);
    let mut x = conv_bn_relu(&mut b, &mut init, "stem", input, 3, c0, 3, 2);
    let mut cin = c0;
    for (i, &(cout, stride)) in [(32usize, 2usize), (64, 2), (128, 2), (128, 1)]
        .iter()
        .enumerate()
    {
        let cout = scale_ch(cout, alpha * 2.0);
        x = dw_separable(&mut b, &mut init, &format!("block{i}"), x, cin, cout, stride);
        cin = cout;
    }
    let gap = b.op("gap", LayerKind::GlobalPool(PoolKind::Avg), &[x]);
    let flat = b.op("flatten", LayerKind::Reshape { dims: vec![cin] }, &[gap]);
    let landmarks = 468 * 3; // dense face mesh
    let fc = b.layer(
        "landmarks",
        LayerKind::Dense { units: landmarks },
        &[flat],
        Some(init.weights(cin * landmarks, cin)),
        Some(init.bias(landmarks)),
    );
    b.finish(vec![fc]).expect("contour_net is valid by construction")
}

/// Pose estimation: trunk + transpose-conv heatmap head (PoseNet-style).
pub fn pose_net(rng: &mut StdRng, res: usize, alpha: f64) -> Graph {
    let mut b = GraphBuilder::new("posenet");
    let mut init = Init::new(rng);
    let input = b.input("input", Shape::nhwc(1, res, res, 3), DType::F32);
    let c0 = scale_ch(32, alpha);
    let mut x = conv_bn_relu(&mut b, &mut init, "stem", input, 3, c0, 3, 2);
    let mut cin = c0;
    for (i, &(cout, stride)) in [(64usize, 2usize), (128, 2), (256, 2)].iter().enumerate() {
        let cout = scale_ch(cout, alpha);
        x = dw_separable(&mut b, &mut init, &format!("block{i}"), x, cin, cout, stride);
        cin = cout;
    }
    let up_ch = scale_ch(64, alpha);
    let up = b.layer(
        "up",
        LayerKind::TransposeConv2d {
            out_channels: up_ch,
            kernel: 4,
            stride: 2,
        },
        &[x],
        Some(init.weights(4 * 4 * cin * up_ch, 16 * cin)),
        Some(init.bias(up_ch)),
    );
    let act = b.op("up/relu", LayerKind::Activation(ActKind::Relu), &[up]);
    let keypoints = 17;
    let heat = b.layer(
        "heatmaps",
        LayerKind::Conv2d {
            out_channels: keypoints,
            kernel: 1,
            stride: 1,
            padding: Padding::Same,
        },
        &[act],
        Some(init.weights(up_ch * keypoints, up_ch)),
        Some(init.bias(keypoints)),
    );
    let sig = b.op("sigmoid", LayerKind::Activation(ActKind::Sigmoid), &[heat]);
    b.finish(vec![sig]).expect("pose_net is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::infer_shapes;
    use crate::trace::trace_graph;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn mobilenet_v1_shapes_and_flops() {
        let g = mobilenet_v1(&mut rng(), 128, 0.25, 1000);
        g.validate().unwrap();
        let shapes = infer_shapes(&g).unwrap();
        let out = &shapes[g.outputs[0]];
        assert_eq!(out.channels(), 1000);
        let tr = trace_graph(&g).unwrap();
        // alpha 0.25 @128 is roughly 1/16 * (128/224)^2 of full MobileNet
        // (~569 MFLOPs) — sanity band, not exact.
        assert!(tr.total_flops > 5_000_000, "flops {}", tr.total_flops);
        assert!(tr.total_flops < 200_000_000, "flops {}", tr.total_flops);
    }

    #[test]
    fn mobilenet_v2_has_residuals() {
        let g = mobilenet_v2(&mut rng(), 96, 0.25, 100);
        g.validate().unwrap();
        let adds = g
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, LayerKind::Binary(BinOp::Add)))
            .count();
        assert!(adds >= 5, "expected residual adds, found {adds}");
    }

    #[test]
    fn fssd_has_two_output_heads_and_fusion() {
        let g = fssd(&mut rng(), 128, 0.25);
        g.validate().unwrap();
        assert_eq!(g.outputs.len(), 2);
        assert!(g
            .nodes
            .iter()
            .any(|n| matches!(n.kind, LayerKind::Resize { .. })));
        assert!(g.nodes.iter().any(|n| matches!(n.kind, LayerKind::Concat)));
    }

    #[test]
    fn blazeface_uses_5x5_depthwise() {
        let g = blazeface(&mut rng(), 128);
        g.validate().unwrap();
        assert!(g
            .nodes
            .iter()
            .any(|n| matches!(n.kind, LayerKind::DepthwiseConv2d { kernel: 5, .. })));
        assert_eq!(g.outputs.len(), 2);
    }

    #[test]
    fn unet_output_matches_input_resolution() {
        let g = unet_segmenter(&mut rng(), 64, 8);
        g.validate().unwrap();
        let shapes = infer_shapes(&g).unwrap();
        let out = &shapes[g.outputs[0]];
        assert_eq!(out.hwc(), Some((64, 64, 2)));
    }

    #[test]
    fn unet_is_heavy_relative_to_contour() {
        let u = trace_graph(&unet_segmenter(&mut rng(), 128, 12)).unwrap();
        let c = trace_graph(&contour_net(&mut rng(), 128, 0.25)).unwrap();
        assert!(u.total_flops > c.total_flops);
    }

    #[test]
    fn crnn_is_sequential_over_width() {
        let g = crnn_text(&mut rng(), 32, 96, 0.25);
        g.validate().unwrap();
        assert!(g
            .nodes
            .iter()
            .any(|n| matches!(n.kind, LayerKind::Lstm { .. })));
        let shapes = infer_shapes(&g).unwrap();
        let out = &shapes[g.outputs[0]];
        assert_eq!(out.dim(1), 96 / 4, "sequence length is width/4");
    }

    #[test]
    fn pose_net_emits_17_heatmaps() {
        let g = pose_net(&mut rng(), 128, 0.25);
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[g.outputs[0]].channels(), 17);
    }

    #[test]
    fn generators_differ_across_seeds() {
        let a = mobilenet_v1(&mut StdRng::seed_from_u64(1), 96, 0.25, 10);
        let b = mobilenet_v1(&mut StdRng::seed_from_u64(2), 96, 0.25, 10);
        assert_ne!(a, b);
    }
}

/// SqueezeNet-style fire module: a 1×1 squeeze conv followed by parallel
/// 1×1 and 3×3 expand convs, concatenated.
fn fire_module(
    b: &mut GraphBuilder,
    init: &mut Init,
    name: &str,
    input: NodeId,
    cin: usize,
    squeeze: usize,
    expand: usize,
) -> NodeId {
    let s = conv_bn_relu(b, init, &format!("{name}/squeeze"), input, cin, squeeze, 1, 1);
    let e1 = conv_bn_relu(b, init, &format!("{name}/expand1x1"), s, squeeze, expand, 1, 1);
    let e3 = conv_bn_relu(b, init, &format!("{name}/expand3x3"), s, squeeze, expand, 3, 1);
    b.op(format!("{name}/concat"), LayerKind::Concat, &[e1, e3])
}

/// SqueezeNet-flavoured classifier — an alternative compact family some
/// wild apps ship instead of MobileNets.
pub fn squeezenet(rng: &mut StdRng, res: usize, alpha: f64, classes: usize) -> Graph {
    let mut b = GraphBuilder::new("squeezenet");
    let mut init = Init::new(rng);
    let input = b.input("input", Shape::nhwc(1, res, res, 3), DType::F32);
    let c0 = scale_ch(64, alpha);
    let mut x = conv_bn_relu(&mut b, &mut init, "stem", input, 3, c0, 3, 2);
    let mut cin = c0;
    let cfg: [(usize, usize); 4] = [(16, 64), (16, 64), (32, 128), (32, 128)];
    for (i, &(sq, ex)) in cfg.iter().enumerate() {
        if i % 2 == 0 {
            x = b.op(
                format!("pool{i}"),
                LayerKind::Pool {
                    kind: PoolKind::Max,
                    kernel: 2,
                    stride: 2,
                    padding: Padding::Valid,
                },
                &[x],
            );
        }
        let sq = scale_ch(sq, alpha);
        let ex = scale_ch(ex, alpha);
        x = fire_module(&mut b, &mut init, &format!("fire{i}"), x, cin, sq, ex);
        cin = 2 * ex;
    }
    // SqueezeNet's classifier is a conv, not a dense layer.
    let logits = b.layer(
        "conv_classifier",
        LayerKind::Conv2d {
            out_channels: classes,
            kernel: 1,
            stride: 1,
            padding: Padding::Same,
        },
        &[x],
        Some(init.weights(cin * classes, cin)),
        Some(init.bias(classes)),
    );
    let gap = b.op("gap", LayerKind::GlobalPool(PoolKind::Avg), &[logits]);
    let flat = b.op("flatten", LayerKind::Reshape { dims: vec![classes] }, &[gap]);
    let sm = b.op("prob", LayerKind::Softmax, &[flat]);
    b.finish(vec![sm]).expect("squeezenet is valid by construction")
}

/// Fast-style-transfer-flavoured net: strided encoder, residual body,
/// transpose-conv decoder — the photo-beauty family that is *not* a U-Net.
pub fn style_transfer_net(rng: &mut StdRng, res: usize, base: usize) -> Graph {
    let mut b = GraphBuilder::new("styletransfer");
    let mut init = Init::new(rng);
    let input = b.input("input", Shape::nhwc(1, res, res, 3), DType::F32);
    let e1 = conv_bn_relu(&mut b, &mut init, "enc1", input, 3, base, 3, 1);
    let e2 = conv_bn_relu(&mut b, &mut init, "enc2", e1, base, base * 2, 3, 2);
    let mut x = conv_bn_relu(&mut b, &mut init, "enc3", e2, base * 2, base * 4, 3, 2);
    let c = base * 4;
    for i in 0..3 {
        let r1 = conv_bn_relu(&mut b, &mut init, &format!("res{i}/a"), x, c, c, 3, 1);
        let r2 = b.layer(
            format!("res{i}/b"),
            LayerKind::Conv2d {
                out_channels: c,
                kernel: 3,
                stride: 1,
                padding: Padding::Same,
            },
            &[r1],
            Some(init.weights(9 * c * c, 9 * c)),
            Some(init.bias(c)),
        );
        x = b.op(format!("res{i}/add"), LayerKind::Binary(BinOp::Add), &[x, r2]);
    }
    let d1 = b.layer(
        "dec1",
        LayerKind::TransposeConv2d {
            out_channels: base * 2,
            kernel: 2,
            stride: 2,
        },
        &[x],
        Some(init.weights(4 * c * base * 2, 4 * c)),
        Some(init.bias(base * 2)),
    );
    let a1 = b.op("dec1/relu", LayerKind::Activation(ActKind::Relu), &[d1]);
    let d2 = b.layer(
        "dec2",
        LayerKind::TransposeConv2d {
            out_channels: base,
            kernel: 2,
            stride: 2,
        },
        &[a1],
        Some(init.weights(4 * base * 2 * base, 4 * base * 2)),
        Some(init.bias(base)),
    );
    let a2 = b.op("dec2/relu", LayerKind::Activation(ActKind::Relu), &[d2]);
    let rgb = b.layer(
        "to_rgb",
        LayerKind::Conv2d {
            out_channels: 3,
            kernel: 3,
            stride: 1,
            padding: Padding::Same,
        },
        &[a2],
        Some(init.weights(9 * base * 3, 9 * base)),
        Some(init.bias(3)),
    );
    let out = b.op("tanh", LayerKind::Activation(ActKind::Tanh), &[rgb]);
    b.finish(vec![out]).expect("style_transfer_net is valid by construction")
}

#[cfg(test)]
mod extra_tests {
    use super::*;
    use crate::shape::infer_shapes;
    use crate::trace::trace_graph;
    use rand::SeedableRng;

    #[test]
    fn squeezenet_concat_structure_and_head() {
        let g = squeezenet(&mut StdRng::seed_from_u64(2), 96, 0.5, 100);
        g.validate().unwrap();
        let concats = g
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, LayerKind::Concat))
            .count();
        assert_eq!(concats, 4, "one concat per fire module");
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[g.outputs[0]].channels(), 100);
        assert!(
            !g.nodes.iter().any(|n| matches!(n.kind, LayerKind::Dense { .. })),
            "squeezenet uses a conv classifier, not dense"
        );
    }

    #[test]
    fn style_transfer_preserves_resolution() {
        let g = style_transfer_net(&mut StdRng::seed_from_u64(3), 64, 8);
        g.validate().unwrap();
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[g.outputs[0]].hwc(), Some((64, 64, 3)));
        let adds = g
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, LayerKind::Binary(BinOp::Add)))
            .count();
        assert_eq!(adds, 3, "three residual blocks");
        let tr = trace_graph(&g).unwrap();
        assert!(tr.total_flops > 0);
    }
}
