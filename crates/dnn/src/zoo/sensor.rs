//! Sensor-modality generators: IMU movement tracking (the paper's horse
//! movement tracker anecdote) and car-crash detection for insurance apps.

use super::Init;
use crate::graph::{ActKind, Graph, GraphBuilder, LayerKind};
use crate::tensor::{DType, Shape};
use rand::rngs::StdRng;

/// Movement-tracking MLP over a window of 6-axis IMU samples.
pub fn movement_mlp(rng: &mut StdRng, axes: usize, window: usize) -> Graph {
    let mut b = GraphBuilder::new("imu_mlp");
    let mut init = Init::new(rng);
    let feat = axes * window;
    let input = b.input("imu_window", Shape::vec2(1, feat), DType::F32);
    let h1 = b.layer(
        "dense1",
        LayerKind::Dense { units: 128 },
        &[input],
        Some(init.weights(feat * 128, feat)),
        Some(init.bias(128)),
    );
    let a1 = b.op("relu1", LayerKind::Activation(ActKind::Relu), &[h1]);
    let h2 = b.layer(
        "dense2",
        LayerKind::Dense { units: 64 },
        &[a1],
        Some(init.weights(128 * 64, 128)),
        Some(init.bias(64)),
    );
    let a2 = b.op("relu2", LayerKind::Activation(ActKind::Relu), &[h2]);
    let classes = 6; // walk / trot / canter / gallop / idle / other
    let logits = b.layer(
        "logits",
        LayerKind::Dense { units: classes },
        &[a2],
        Some(init.weights(64 * classes, 64)),
        Some(init.bias(classes)),
    );
    let sm = b.op("prob", LayerKind::Softmax, &[logits]);
    b.finish(vec![sm]).expect("imu_mlp is valid by construction")
}

/// Crash detector: LSTM over an IMU sequence with a binary head.
pub fn crash_lstm(rng: &mut StdRng, axes: usize, window: usize) -> Graph {
    let mut b = GraphBuilder::new("imu_lstm");
    let mut init = Init::new(rng);
    let input = b.input("imu_seq", Shape(vec![1, window, axes]), DType::F32);
    let hidden = 32;
    let gate = (axes + hidden + 1) * hidden;
    let lstm = b.layer(
        "lstm",
        LayerKind::Lstm { units: hidden },
        &[input],
        Some(init.weights(4 * gate, axes + hidden)),
        None,
    );
    let pooled = b.op("pool", LayerKind::MeanTime, &[lstm]);
    let logits = b.layer(
        "logits",
        LayerKind::Dense { units: 2 },
        &[pooled],
        Some(init.weights(hidden * 2, hidden)),
        Some(init.bias(2)),
    );
    let sm = b.op("prob", LayerKind::Softmax, &[logits]);
    b.finish(vec![sm]).expect("imu_lstm is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use crate::trace::trace_graph;
    use rand::SeedableRng;

    #[test]
    fn movement_mlp_runs_and_is_tiny() {
        let g = movement_mlp(&mut StdRng::seed_from_u64(9), 6, 128);
        let tr = trace_graph(&g).unwrap();
        assert!(tr.total_params < 200_000);
        let ex = Executor::new(&g).unwrap();
        let out = ex.run_random(1, 0).unwrap();
        let sum: f32 = out[0].data.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn crash_lstm_binary_output() {
        let g = crash_lstm(&mut StdRng::seed_from_u64(10), 6, 32);
        let ex = Executor::new(&g).unwrap();
        let out = ex.run_random(1, 0).unwrap();
        assert_eq!(out[0].shape.channels(), 2);
    }
}
