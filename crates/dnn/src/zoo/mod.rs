//! Model zoo: parameterised generators for the architecture families the
//! paper observed in the wild (§4.4–§4.5).
//!
//! The corpus analysis found MobileNet to be "the most popular architecture
//! with variants (e.g. FSSD) being used \[for\] other vision tasks including
//! semantic segmentation, pose estimation or classification", BlazeFace for
//! face detection, CRNNs for text recognition, LSTMs for auto-completion and
//! small CNNs for audio. Each generator here produces a *valid, runnable*
//! [`Graph`] with deterministic, seeded weights, so serialised bytes — and
//! therefore the md5-based uniqueness analysis — are reproducible.

mod audio;
mod nlp;
mod sensor;
mod vision;

pub use audio::{keyword_dscnn, sound_cnn, speech_crnn, wav2letter};
pub use nlp::{autocomplete_lstm, sentiment_gru, text_cnn, translation_gru};
pub use sensor::{crash_lstm, movement_mlp};
pub use vision::{
    blazeface, contour_net, crnn_text, fssd, mobilenet_v1, mobilenet_v2, pose_net,
    squeezenet, style_transfer_net, unet_segmenter,
};

use crate::graph::{ActKind, Graph, GraphBuilder, LayerKind, NodeId, Padding};
use crate::task::Task;
use crate::tensor::WeightData;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Coarse size classes; the paper's corpus spans four orders of magnitude in
/// FLOPs (§4.7), which these reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeClass {
    /// Smallest deployable variants (tiny keyword spotters, sensor MLPs).
    Small,
    /// Typical mobile models (MobileNet-class).
    Medium,
    /// Heavy models (segmentation, beauty GANs).
    Large,
}

/// Deterministic weight initialiser (Glorot-uniform-ish) over a seeded RNG.
pub struct Init<'r> {
    rng: &'r mut StdRng,
}

impl<'r> Init<'r> {
    /// Wrap an RNG.
    pub fn new(rng: &'r mut StdRng) -> Self {
        Init { rng }
    }

    /// A weight tensor of `n` values with scale `1/sqrt(fan_in)`.
    pub fn weights(&mut self, n: usize, fan_in: usize) -> WeightData {
        let limit = (1.0 / (fan_in.max(1) as f32)).sqrt();
        WeightData::F32(
            (0..n)
                .map(|_| self.rng.gen_range(-limit..=limit))
                .collect(),
        )
    }

    /// A bias tensor of `n` zeros-ish values.
    pub fn bias(&mut self, n: usize) -> WeightData {
        WeightData::F32((0..n).map(|_| self.rng.gen_range(-0.01..=0.01)).collect())
    }
}

/// Standard conv + (folded) batch-norm + ReLU6 block.
#[allow(clippy::too_many_arguments)]
pub(crate) fn conv_bn_relu(
    b: &mut GraphBuilder,
    init: &mut Init,
    name: &str,
    input: NodeId,
    cin: usize,
    cout: usize,
    kernel: usize,
    stride: usize,
) -> NodeId {
    let conv = b.layer(
        format!("{name}/conv"),
        LayerKind::Conv2d {
            out_channels: cout,
            kernel,
            stride,
            padding: Padding::Same,
        },
        &[input],
        Some(init.weights(kernel * kernel * cin * cout, kernel * kernel * cin)),
        Some(init.bias(cout)),
    );
    let bn = b.layer(
        format!("{name}/bn"),
        LayerKind::BatchNorm,
        &[conv],
        Some(init.weights(cout, 1)),
        Some(init.bias(cout)),
    );
    b.op(format!("{name}/relu6"), LayerKind::Activation(ActKind::Relu6), &[bn])
}

/// Depthwise-separable block: depthwise conv + pointwise conv, the
/// MobileNetV1 building block [Howard et al. 2017].
pub(crate) fn dw_separable(
    b: &mut GraphBuilder,
    init: &mut Init,
    name: &str,
    input: NodeId,
    cin: usize,
    cout: usize,
    stride: usize,
) -> NodeId {
    let dw = b.layer(
        format!("{name}/dw"),
        LayerKind::DepthwiseConv2d {
            kernel: 3,
            stride,
            padding: Padding::Same,
        },
        &[input],
        Some(init.weights(3 * 3 * cin, 9)),
        Some(init.bias(cin)),
    );
    let act = b.op(
        format!("{name}/dw_relu6"),
        LayerKind::Activation(ActKind::Relu6),
        &[dw],
    );
    conv_bn_relu(b, init, &format!("{name}/pw"), act, cin, cout, 1, 1)
}

/// Scale a channel count by a width multiplier, keeping at least 4 and
/// rounding to a multiple of 4 (the MobileNet convention, adapted).
pub(crate) fn scale_ch(base: usize, alpha: f64) -> usize {
    let c = ((base as f64 * alpha).round() as usize).max(4);
    c.div_ceil(4) * 4
}

/// A generated model together with its ground-truth task (kept *outside* the
/// serialised bytes: the analysis pipeline must re-derive the task).
#[derive(Debug, Clone)]
pub struct ZooModel {
    /// The graph.
    pub graph: Graph,
    /// Ground-truth task label (corpus bookkeeping only).
    pub task: Task,
    /// Architecture family name, e.g. `"mobilenet_v1"`.
    pub family: &'static str,
}

/// Build a model for `task`, with architecture and hyper-parameters chosen
/// deterministically from `seed`.
///
/// `hint_name` controls whether the model name leaks the task (the paper
/// found ~67 % of names carry hints; the rest get opaque names).
pub fn build_for_task(task: Task, seed: u64, size: SizeClass, hint_name: bool) -> ZooModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let (graph, family) = dispatch(task, &mut rng, size);
    let mut graph = graph;
    graph.name = if hint_name {
        format!("{}_{}_{:04x}", task.name_hint(), family, seed & 0xffff)
    } else {
        format!("model_{seed:08x}")
    };
    ZooModel {
        graph,
        task,
        family,
    }
}

fn dispatch(task: Task, rng: &mut StdRng, size: SizeClass) -> (Graph, &'static str) {
    use Task::*;
    let res_s = |lo: usize, hi: usize, rng: &mut StdRng| -> usize {
        // multiples of 32 keep stride chains clean
        let steps = (hi - lo) / 32;
        lo + 32 * rng.gen_range(0..=steps)
    };
    let alpha = match size {
        SizeClass::Small => 0.25,
        SizeClass::Medium => 0.35,
        SizeClass::Large => 0.5,
    };
    match task {
        ObjectDetection | NudityDetection | AugmentedReality => {
            let res = res_s(96, 192, rng);
            (vision::fssd(rng, res, alpha), "fssd")
        }
        FaceDetection => {
            let res = res_s(96, 128, rng);
            (vision::blazeface(rng, res), "blazeface")
        }
        ContourDetection => {
            let res = res_s(96, 160, rng);
            (vision::contour_net(rng, res, alpha), "contournet")
        }
        TextRecognition => {
            let h = 32;
            let w = 32 * rng.gen_range(2..=4);
            (vision::crnn_text(rng, h, w, alpha), "crnn")
        }
        SemanticSegmentation | HairReconstruction | PhotoBeauty => {
            let res = res_s(128, 224, rng);
            let base = match size {
                SizeClass::Small => 8,
                SizeClass::Medium => 12,
                SizeClass::Large => 16,
            };
            if task == PhotoBeauty && rng.gen_bool(0.4) {
                (vision::style_transfer_net(rng, res, base), "styletransfer")
            } else {
                (vision::unet_segmenter(rng, res, base), "unet")
            }
        }
        ObjectRecognition | ImageClassification | OtherVision => {
            let res = res_s(96, 224, rng);
            match rng.gen_range(0..10) {
                0..=4 => {
                    let classes = if rng.gen_bool(0.5) { 1000 } else { 128 };
                    (vision::mobilenet_v1(rng, res, alpha, classes), "mobilenet_v1")
                }
                5..=7 => (vision::mobilenet_v2(rng, res, alpha, 1000), "mobilenet_v2"),
                _ => (vision::squeezenet(rng, res, alpha, 1000), "squeezenet"),
            }
        }
        PoseEstimation => {
            let res = res_s(128, 192, rng);
            (vision::pose_net(rng, res, alpha), "posenet")
        }
        AutoComplete => {
            let vocab = 2000 * rng.gen_range(1..=4);
            let hidden = 64 * rng.gen_range(1..=3);
            (nlp::autocomplete_lstm(rng, vocab, 64, hidden, 8), "lstm_lm")
        }
        SentimentPrediction => (nlp::sentiment_gru(rng, 4000, 32, 64, 24), "gru_clf"),
        ContentFilter | TextClassification => (nlp::text_cnn(rng, 4000, 32, 24), "text_cnn"),
        Translation => (nlp::translation_gru(rng, 6000, 64, 96, 16), "seq2seq_gru"),
        SoundRecognition => {
            let mels = 40 + 8 * rng.gen_range(0..=3);
            (audio::sound_cnn(rng, mels, 96, alpha), "audio_cnn")
        }
        SpeechRecognition => {
            if rng.gen_bool(0.5) {
                (audio::speech_crnn(rng, 40, 128, alpha), "speech_crnn")
            } else {
                (audio::wav2letter(rng, 40, 128, alpha), "wav2letter")
            }
        }
        KeywordDetection => (audio::keyword_dscnn(rng, 40, 49), "ds_cnn"),
        MovementTracking => (sensor::movement_mlp(rng, 6, 128), "imu_mlp"),
        CrashDetection => (sensor::crash_lstm(rng, 6, 64), "imu_lstm"),
    }
}

/// Fine-tune `graph`: re-initialise the weights of the last
/// `layers_to_change` weighted layers with a new seed, leaving earlier
/// layers byte-identical (transfer learning as observed in §4.5, where 4.2 %
/// of models "only differ in up to three layers").
pub fn fine_tune(graph: &Graph, layers_to_change: usize, seed: u64) -> Graph {
    let mut g = graph.clone();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut init = Init::new(&mut rng);
    let weighted: Vec<usize> = g
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.weights.is_some())
        .map(|(i, _)| i)
        .collect();
    let start = weighted.len().saturating_sub(layers_to_change);
    for &idx in &weighted[start..] {
        let n = g.nodes[idx].weights.as_ref().map_or(0, |w| w.len());
        let fan = n.max(1);
        g.nodes[idx].weights = Some(init.weights(n, fan));
        if let Some(b) = &g.nodes[idx].bias {
            g.nodes[idx].bias = Some(init.bias(b.len()));
        }
    }
    g.name = format!("{}_ft{:x}", g.name, seed & 0xfff);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use crate::trace::trace_graph;

    #[test]
    fn every_task_builds_a_valid_traceable_graph() {
        for (i, &task) in Task::ALL.iter().enumerate() {
            let m = build_for_task(task, 100 + i as u64, SizeClass::Small, true);
            m.graph.validate().unwrap_or_else(|e| panic!("{task:?}: {e}"));
            let tr = trace_graph(&m.graph).unwrap_or_else(|e| panic!("{task:?}: {e}"));
            assert!(tr.total_flops > 0, "{task:?} has zero flops");
            assert!(tr.total_params > 0, "{task:?} has zero params");
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let a = build_for_task(Task::FaceDetection, 7, SizeClass::Small, true);
        let b = build_for_task(Task::FaceDetection, 7, SizeClass::Small, true);
        assert_eq!(a.graph, b.graph);
        let c = build_for_task(Task::FaceDetection, 8, SizeClass::Small, true);
        assert_ne!(a.graph, c.graph);
    }

    #[test]
    fn name_hints_follow_request() {
        let hinted = build_for_task(Task::SoundRecognition, 3, SizeClass::Small, true);
        assert!(hinted.graph.name.contains("sound"));
        let opaque = build_for_task(Task::SoundRecognition, 3, SizeClass::Small, false);
        assert!(opaque.graph.name.starts_with("model_"));
    }

    #[test]
    fn size_classes_order_flops() {
        let small = build_for_task(Task::ImageClassification, 11, SizeClass::Small, true);
        let large = build_for_task(Task::ImageClassification, 11, SizeClass::Large, true);
        let fs = trace_graph(&small.graph).unwrap().total_flops;
        let fl = trace_graph(&large.graph).unwrap().total_flops;
        assert!(fl > fs, "large {fl} <= small {fs}");
    }

    #[test]
    fn fine_tune_changes_only_tail_layers() {
        let base = build_for_task(Task::ImageClassification, 5, SizeClass::Small, true);
        let ft = fine_tune(&base.graph, 2, 99);
        let weighted: Vec<usize> = base
            .graph
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.weights.is_some())
            .map(|(i, _)| i)
            .collect();
        let changed: Vec<usize> = weighted
            .iter()
            .copied()
            .filter(|&i| base.graph.nodes[i].weights != ft.nodes[i].weights)
            .collect();
        assert_eq!(changed.len(), 2);
        assert_eq!(&changed[..], &weighted[weighted.len() - 2..]);
        ft.validate().unwrap();
    }

    #[test]
    fn small_models_execute() {
        // Keep to genuinely small families so the test stays fast.
        for task in [Task::MovementTracking, Task::KeywordDetection, Task::AutoComplete] {
            let m = build_for_task(task, 21, SizeClass::Small, true);
            let ex = Executor::new(&m.graph).unwrap();
            let out = ex.run_random(1, 3).unwrap();
            assert!(!out.is_empty(), "{task:?}");
            assert!(
                out[0].data.iter().all(|v| v.is_finite()),
                "{task:?} produced non-finite output"
            );
        }
    }
}
