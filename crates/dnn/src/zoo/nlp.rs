//! NLP architecture generators: auto-completion language models, sentiment
//! classifiers, text CNNs and a small seq2seq translator (Table 3's NLP
//! column).

use super::Init;
use crate::graph::{ActKind, Graph, GraphBuilder, LayerKind};
use crate::tensor::{DType, Shape};
use rand::rngs::StdRng;

/// Next-word auto-completion LM: embedding + LSTM + tied-size softmax.
/// The heaviest NLP family in Fig. 7 (the output projection dominates).
pub fn autocomplete_lstm(
    rng: &mut StdRng,
    vocab: usize,
    embed: usize,
    hidden: usize,
    seq: usize,
) -> Graph {
    let mut b = GraphBuilder::new("lstm_lm");
    let mut init = Init::new(rng);
    let input = b.input("tokens", Shape::vec2(1, seq), DType::I32);
    let emb = b.layer(
        "embedding",
        LayerKind::Embedding { vocab, dim: embed },
        &[input],
        Some(init.weights(vocab * embed, embed)),
        None,
    );
    let gate = (embed + hidden + 1) * hidden;
    let lstm = b.layer(
        "lstm",
        LayerKind::Lstm { units: hidden },
        &[emb],
        Some(init.weights(4 * gate, embed + hidden)),
        None,
    );
    let last = b.op("pool", LayerKind::MeanTime, &[lstm]);
    let logits = b.layer(
        "logits",
        LayerKind::Dense { units: vocab },
        &[last],
        Some(init.weights(hidden * vocab, hidden)),
        Some(init.bias(vocab)),
    );
    let sm = b.op("prob", LayerKind::Softmax, &[logits]);
    b.finish(vec![sm]).expect("lstm_lm is valid by construction")
}

/// Sentiment classifier: embedding + GRU + small dense head.
pub fn sentiment_gru(
    rng: &mut StdRng,
    vocab: usize,
    embed: usize,
    hidden: usize,
    seq: usize,
) -> Graph {
    let mut b = GraphBuilder::new("gru_clf");
    let mut init = Init::new(rng);
    let input = b.input("tokens", Shape::vec2(1, seq), DType::I32);
    let emb = b.layer(
        "embedding",
        LayerKind::Embedding { vocab, dim: embed },
        &[input],
        Some(init.weights(vocab * embed, embed)),
        None,
    );
    let gate = (embed + hidden + 1) * hidden;
    let gru = b.layer(
        "gru",
        LayerKind::Gru { units: hidden },
        &[emb],
        Some(init.weights(3 * gate, embed + hidden)),
        None,
    );
    let pooled = b.op("pool", LayerKind::MeanTime, &[gru]);
    let fc = b.layer(
        "dense",
        LayerKind::Dense { units: 32 },
        &[pooled],
        Some(init.weights(hidden * 32, hidden)),
        Some(init.bias(32)),
    );
    let act = b.op("relu", LayerKind::Activation(ActKind::Relu), &[fc]);
    let logits = b.layer(
        "logits",
        LayerKind::Dense { units: 3 },
        &[act],
        Some(init.weights(32 * 3, 32)),
        Some(init.bias(3)),
    );
    let sm = b.op("prob", LayerKind::Softmax, &[logits]);
    b.finish(vec![sm]).expect("gru_clf is valid by construction")
}

/// Text CNN for content filtering / text classification: embedding treated
/// as a 1-high image and swept by dense layers per window.
pub fn text_cnn(rng: &mut StdRng, vocab: usize, embed: usize, seq: usize) -> Graph {
    let mut b = GraphBuilder::new("text_cnn");
    let mut init = Init::new(rng);
    let input = b.input("tokens", Shape::vec2(1, seq), DType::I32);
    let emb = b.layer(
        "embedding",
        LayerKind::Embedding { vocab, dim: embed },
        &[input],
        Some(init.weights(vocab * embed, embed)),
        None,
    );
    // Per-position feature transform, then mean over time — a 1-D conv with
    // window 1 expressed as Dense over the feature axis.
    let feat = b.layer(
        "pointwise",
        LayerKind::Dense { units: 64 },
        &[emb],
        Some(init.weights(embed * 64, embed)),
        Some(init.bias(64)),
    );
    let act = b.op("relu", LayerKind::Activation(ActKind::Relu), &[feat]);
    let pooled = b.op("pool", LayerKind::MeanTime, &[act]);
    let logits = b.layer(
        "logits",
        LayerKind::Dense { units: 2 },
        &[pooled],
        Some(init.weights(64 * 2, 64)),
        Some(init.bias(2)),
    );
    let sm = b.op("prob", LayerKind::Softmax, &[logits]);
    b.finish(vec![sm]).expect("text_cnn is valid by construction")
}

/// Tiny seq2seq translator: encoder GRU + decoder GRU + vocab projection.
pub fn translation_gru(
    rng: &mut StdRng,
    vocab: usize,
    embed: usize,
    hidden: usize,
    seq: usize,
) -> Graph {
    let mut b = GraphBuilder::new("seq2seq_gru");
    let mut init = Init::new(rng);
    let input = b.input("tokens", Shape::vec2(1, seq), DType::I32);
    let emb = b.layer(
        "embedding",
        LayerKind::Embedding { vocab, dim: embed },
        &[input],
        Some(init.weights(vocab * embed, embed)),
        None,
    );
    let gate_e = (embed + hidden + 1) * hidden;
    let enc = b.layer(
        "encoder",
        LayerKind::Gru { units: hidden },
        &[emb],
        Some(init.weights(3 * gate_e, embed + hidden)),
        None,
    );
    let gate_d = (hidden + hidden + 1) * hidden;
    let dec = b.layer(
        "decoder",
        LayerKind::Gru { units: hidden },
        &[enc],
        Some(init.weights(3 * gate_d, hidden + hidden)),
        None,
    );
    let logits = b.layer(
        "logits",
        LayerKind::Dense { units: vocab },
        &[dec],
        Some(init.weights(hidden * vocab, hidden)),
        Some(init.bias(vocab)),
    );
    let sm = b.op("prob", LayerKind::Softmax, &[logits]);
    b.finish(vec![sm]).expect("seq2seq_gru is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use crate::shape::infer_shapes;
    use crate::trace::trace_graph;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn autocomplete_outputs_vocab_distribution() {
        let g = autocomplete_lstm(&mut rng(), 500, 16, 32, 8);
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[g.outputs[0]], Shape::vec2(1, 500));
        let ex = Executor::new(&g).unwrap();
        let out = ex.run_random(1, 1).unwrap();
        let sum: f32 = out[0].data.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "softmax sums to {sum}");
    }

    #[test]
    fn sentiment_has_three_classes() {
        let g = sentiment_gru(&mut rng(), 200, 8, 16, 12);
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[g.outputs[0]].channels(), 3);
    }

    #[test]
    fn text_cnn_runs() {
        let g = text_cnn(&mut rng(), 100, 8, 10);
        let ex = Executor::new(&g).unwrap();
        let out = ex.run_random(1, 2).unwrap();
        assert_eq!(out[0].shape.channels(), 2);
    }

    #[test]
    fn translation_is_heavier_than_sentiment() {
        let t = trace_graph(&translation_gru(&mut rng(), 1000, 32, 64, 12)).unwrap();
        let s = trace_graph(&sentiment_gru(&mut rng(), 1000, 32, 64, 12)).unwrap();
        assert!(t.total_flops > s.total_flops);
    }

    #[test]
    fn vocab_dominates_params_in_lm() {
        let g = autocomplete_lstm(&mut rng(), 4000, 32, 64, 8);
        let tr = trace_graph(&g).unwrap();
        // embedding (vocab*embed) + projection (hidden*vocab) dominate
        let vocab_params = (4000 * 32 + 64 * 4000) as u64;
        assert!(tr.total_params > vocab_params);
        assert!(tr.total_params < 2 * vocab_params);
    }
}
