//! Audio architecture generators: sound recognition CNNs over
//! log-mel-spectrogram "images", a conv+LSTM speech recogniser and a
//! depthwise-separable keyword spotter (Table 3's audio column).

use super::{conv_bn_relu, dw_separable, scale_ch, Init};
use crate::graph::{Graph, GraphBuilder, LayerKind, PoolKind};
use crate::tensor::{DType, Shape};
use rand::rngs::StdRng;

/// Ambient sound recognition CNN over a `[mels x frames]` spectrogram —
/// the heaviest deployed audio task in Fig. 7.
pub fn sound_cnn(rng: &mut StdRng, mels: usize, frames: usize, alpha: f64) -> Graph {
    let mut b = GraphBuilder::new("audio_cnn");
    let mut init = Init::new(rng);
    let input = b.input("spectrogram", Shape::nhwc(1, mels, frames, 1), DType::F32);
    let c1 = scale_ch(32, alpha * 2.0);
    let x1 = conv_bn_relu(&mut b, &mut init, "conv1", input, 1, c1, 3, 2);
    let c2 = scale_ch(64, alpha * 2.0);
    let x2 = conv_bn_relu(&mut b, &mut init, "conv2", x1, c1, c2, 3, 2);
    let c3 = scale_ch(128, alpha * 2.0);
    let x3 = conv_bn_relu(&mut b, &mut init, "conv3", x2, c2, c3, 3, 1);
    let c4 = scale_ch(256, alpha * 2.0);
    let x4 = conv_bn_relu(&mut b, &mut init, "conv4", x3, c3, c4, 3, 2);
    let gap = b.op("gap", LayerKind::GlobalPool(PoolKind::Avg), &[x4]);
    let flat = b.op("flatten", LayerKind::Reshape { dims: vec![c4] }, &[gap]);
    let classes = 521; // AudioSet-style label space
    let fc = b.layer(
        "logits",
        LayerKind::Dense { units: classes },
        &[flat],
        Some(init.weights(c4 * classes, c4)),
        Some(init.bias(classes)),
    );
    let sm = b.op("prob", LayerKind::Softmax, &[fc]);
    b.finish(vec![sm]).expect("sound_cnn is valid by construction")
}

/// Speech recogniser: conv front-end + LSTM over time + CTC-style charset
/// projection.
pub fn speech_crnn(rng: &mut StdRng, mels: usize, frames: usize, alpha: f64) -> Graph {
    let mut b = GraphBuilder::new("speech_crnn");
    let mut init = Init::new(rng);
    let input = b.input("spectrogram", Shape::nhwc(1, mels, frames, 1), DType::F32);
    let c1 = scale_ch(32, alpha * 2.0);
    let x1 = conv_bn_relu(&mut b, &mut init, "conv1", input, 1, c1, 3, 2);
    let (fh, fw) = (mels.div_ceil(2), frames.div_ceil(2));
    let seq = b.op(
        "to_seq",
        LayerKind::Reshape {
            dims: vec![fw, fh * c1],
        },
        &[x1],
    );
    let hidden = scale_ch(128, alpha * 2.0);
    let gate = (fh * c1 + hidden + 1) * hidden;
    let lstm = b.layer(
        "lstm",
        LayerKind::Lstm { units: hidden },
        &[seq],
        Some(init.weights(4 * gate, fh * c1 + hidden)),
        None,
    );
    let charset = 29; // a-z + space + apostrophe + blank
    let logits = b.layer(
        "logits",
        LayerKind::Dense { units: charset },
        &[lstm],
        Some(init.weights(hidden * charset, hidden)),
        Some(init.bias(charset)),
    );
    let sm = b.op("prob", LayerKind::Softmax, &[logits]);
    b.finish(vec![sm]).expect("speech_crnn is valid by construction")
}

/// DS-CNN keyword spotter: the classic tiny always-on topology.
pub fn keyword_dscnn(rng: &mut StdRng, mels: usize, frames: usize) -> Graph {
    let mut b = GraphBuilder::new("ds_cnn");
    let mut init = Init::new(rng);
    let input = b.input("spectrogram", Shape::nhwc(1, mels, frames, 1), DType::F32);
    let mut x = conv_bn_relu(&mut b, &mut init, "stem", input, 1, 64, 3, 2);
    let mut cin = 64;
    for i in 0..4 {
        x = dw_separable(&mut b, &mut init, &format!("ds{i}"), x, cin, 64, 1);
        cin = 64;
    }
    let gap = b.op("gap", LayerKind::GlobalPool(PoolKind::Avg), &[x]);
    let flat = b.op("flatten", LayerKind::Reshape { dims: vec![cin] }, &[gap]);
    let keywords = 12;
    let fc = b.layer(
        "logits",
        LayerKind::Dense { units: keywords },
        &[flat],
        Some(init.weights(cin * keywords, cin)),
        Some(init.bias(keywords)),
    );
    let sm = b.op("prob", LayerKind::Softmax, &[fc]);
    b.finish(vec![sm]).expect("ds_cnn is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use crate::shape::infer_shapes;
    use crate::trace::trace_graph;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(4)
    }

    #[test]
    fn sound_cnn_has_audioset_head() {
        let g = sound_cnn(&mut rng(), 40, 96, 0.25);
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[g.outputs[0]].channels(), 521);
    }

    #[test]
    fn keyword_spotter_is_tiny() {
        let g = keyword_dscnn(&mut rng(), 40, 49);
        let tr = trace_graph(&g).unwrap();
        assert!(tr.total_params < 200_000, "params {}", tr.total_params);
        let ex = Executor::new(&g).unwrap();
        let out = ex.run_random(1, 5).unwrap();
        assert_eq!(out[0].shape.channels(), 12);
    }

    #[test]
    fn speech_crnn_emits_charset_over_time() {
        let g = speech_crnn(&mut rng(), 40, 64, 0.25);
        let shapes = infer_shapes(&g).unwrap();
        let out = &shapes[g.outputs[0]];
        assert_eq!(out.rank(), 3);
        assert_eq!(out.channels(), 29);
    }

    #[test]
    fn sound_heavier_than_keyword() {
        let s = trace_graph(&sound_cnn(&mut rng(), 40, 96, 0.25)).unwrap();
        let k = trace_graph(&keyword_dscnn(&mut rng(), 40, 49)).unwrap();
        assert!(s.total_flops > k.total_flops);
    }
}

/// Wav2letter-flavoured pure-conv speech recogniser: stacked 1-D-style
/// convs over the time axis (expressed as Kx1 kernels would be; here the
/// spectrogram stays 2-D with stride-2 time reduction) and a CTC charset
/// head — the recurrent-free alternative to [`speech_crnn`].
pub fn wav2letter(rng: &mut StdRng, mels: usize, frames: usize, alpha: f64) -> Graph {
    let mut b = GraphBuilder::new("wav2letter");
    let mut init = Init::new(rng);
    let input = b.input("spectrogram", Shape::nhwc(1, mels, frames, 1), DType::F32);
    let c1 = scale_ch(48, alpha * 2.0);
    let mut x = conv_bn_relu(&mut b, &mut init, "conv0", input, 1, c1, 3, 2);
    let mut cin = c1;
    for i in 1..=4 {
        let cout = scale_ch(48 + 16 * i, alpha * 2.0);
        x = conv_bn_relu(&mut b, &mut init, &format!("conv{i}"), x, cin, cout, 3, 1);
        cin = cout;
    }
    let (fh, fw) = (mels.div_ceil(2), frames.div_ceil(2));
    let seq = b.op(
        "to_seq",
        LayerKind::Reshape {
            dims: vec![fw, fh * cin],
        },
        &[x],
    );
    let charset = 29;
    let logits = b.layer(
        "logits",
        LayerKind::Dense { units: charset },
        &[seq],
        Some(init.weights(fh * cin * charset, fh * cin)),
        Some(init.bias(charset)),
    );
    let sm = b.op("prob", LayerKind::Softmax, &[logits]);
    b.finish(vec![sm]).expect("wav2letter is valid by construction")
}

#[cfg(test)]
mod extra_tests {
    use super::*;
    use crate::shape::infer_shapes;
    use rand::SeedableRng;

    #[test]
    fn wav2letter_is_recurrent_free_with_ctc_head() {
        let g = wav2letter(&mut StdRng::seed_from_u64(5), 40, 64, 0.25);
        g.validate().unwrap();
        assert!(
            !g.nodes
                .iter()
                .any(|n| matches!(n.kind, LayerKind::Lstm { .. } | LayerKind::Gru { .. })),
            "pure-conv model"
        );
        let shapes = infer_shapes(&g).unwrap();
        let out = &shapes[g.outputs[0]];
        assert_eq!(out.rank(), 3);
        assert_eq!(out.channels(), 29);
    }
}
