//! Event-driven store serving: readiness loops and the per-connection
//! state machine.
//!
//! The thread-per-connection server caps out quickly — `BENCH_query.json`
//! shows QPS peaking at 8 clients and *collapsing* at 256 as the scheduler
//! drowns in runnable threads. This module is the C10k-shaped fix: one
//! loop thread multiplexes every connection over a readiness reactor
//! (vendored in `mio`), with each connection reduced to a small
//! non-blocking state machine ([`ConnSm`]):
//!
//! ```text
//!            accept                 frame parsed          frame queued
//! Accepting ───────▶ ReadingRequest ───────────▶ Serving ───────────▶ WritingResponse
//!                        ▲   │ chaos stall                                  │
//!                        │   ▼                                              │ drained
//!                        │ Stalled ──timer──▶ Closing ◀─ close-after-flush ─┤
//!                        └────────────────── keep-alive ◀──────────────────-┘
//! ```
//!
//! ("Serving" is instantaneous — [`Served`] frames are produced
//! synchronously by the route table — so the code models it as the parse
//! loop inside [`ConnSm::pump`] rather than a stored state.)
//!
//! Three loops implement the same serving contract:
//!
//! * **threaded** — the legacy blocking path, kept as the measurable
//!   baseline and the non-Linux fallback ([`ReactorMode::Threaded`]).
//! * **epoll** — [`run_epoll_loop`]: kernel readiness over non-blocking
//!   TCP, timer wheel on wall milliseconds for chaos stalls and idle
//!   keep-alive reaping.
//! * **sim** — [`run_sim_loop`]: the deterministic replay mode. Sources
//!   are in-process pipes ([`crate::net`]), delivery order within a poll
//!   round is a pure function of `(seed, round)`, and the wheel runs on a
//!   logical clock that advances only in observable steps (one tick per
//!   delivered round, jump-to-next-deadline when idle). Under a scripted
//!   client history the full event stream — captured by the reactor's
//!   running FNV digest — replays bit-for-bit.
//!
//! The determinism contract: response *bytes* for a given request depend
//! only on (corpus, index, chaos plan, request) — never on which loop or
//! delivery order served it. That is what keeps the byte-identical report
//! matrix intact across `GAUGENN_REACTOR` values; the sim digest
//! additionally pins the *schedule* itself for replay tests.

use crate::net::{SimConnHandle, SimNet};
use crate::proto::{parse_request, Request};
use mio::{EpollReactor, Events, Interest, Reactor, SimReactor, TimerWheel, Token};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Environment variable selecting the server's reactor:
/// `threaded` | `epoll` | `sim`.
pub const REACTOR_ENV: &str = "GAUGENN_REACTOR";

/// Idle keep-alive reap deadline (epoll loop only — matches the 10 s read
/// timeout the threaded path puts on each connection socket). The sim
/// loop deliberately has no idle reaper: logical time there advances with
/// traffic, so an idle timer would close connections after N *events*
/// rather than N seconds and make crawl reconnect counts
/// interleaving-dependent.
const IDLE_REAP_MS: u64 = 10_000;

/// Which serving loop a [`crate::StoreServer`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReactorMode {
    /// Legacy thread-per-connection over blocking sockets.
    Threaded,
    /// Single-threaded epoll readiness loop over non-blocking TCP
    /// (Linux; falls back to [`ReactorMode::Threaded`] elsewhere).
    Epoll,
    /// Deterministic in-process reactor over simulated pipes; the server
    /// is reachable via [`crate::StoreServer::endpoint`] only (no TCP).
    Sim,
}

impl ReactorMode {
    /// Parse a mode name (as used in `GAUGENN_REACTOR` and bench
    /// `--reactor` flags). Accepts `threaded`/`thread`/`legacy`,
    /// `epoll`, `sim`.
    pub fn parse(s: &str) -> Option<ReactorMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "threaded" | "thread" | "legacy" => Some(ReactorMode::Threaded),
            "epoll" => Some(ReactorMode::Epoll),
            "sim" => Some(ReactorMode::Sim),
            _ => None,
        }
    }

    /// The mode requested by [`REACTOR_ENV`], if set to a valid name.
    pub fn from_env() -> Option<ReactorMode> {
        std::env::var(REACTOR_ENV).ok().and_then(|v| ReactorMode::parse(&v))
    }

    /// Platform default: epoll where the kernel offers it, threaded
    /// elsewhere.
    pub fn default_mode() -> ReactorMode {
        if cfg!(target_os = "linux") {
            ReactorMode::Epoll
        } else {
            ReactorMode::Threaded
        }
    }

    /// Resolve the effective mode: an explicit option wins, then the
    /// environment, then the platform default.
    pub fn resolve(explicit: Option<ReactorMode>) -> ReactorMode {
        explicit
            .or_else(ReactorMode::from_env)
            .unwrap_or_else(ReactorMode::default_mode)
    }

    /// Stable lower-case name (bench JSON `reactor` column).
    pub fn name(self) -> &'static str {
        match self {
            ReactorMode::Threaded => "threaded",
            ReactorMode::Epoll => "epoll",
            ReactorMode::Sim => "sim",
        }
    }
}

/// How the server answers one request — produced synchronously by the
/// route table (plus the chaos plan) and consumed by whichever loop owns
/// the connection. Frames are fully serialized wire bytes so every loop
/// writes the identical stream.
pub enum Served {
    /// Write the frame, keep the connection alive.
    Frame(Vec<u8>),
    /// Write the (possibly deliberately truncated) frame, then close.
    FrameThenClose(Vec<u8>),
    /// Close without writing a byte of this response (chaos reset).
    /// Responses already queued for earlier pipelined requests still
    /// flush first — the blocking path had already written them.
    Reset,
    /// Go silent for `ms` (logical ms under sim), then close. The client
    /// sees a read timeout or EOF, whichever lands first.
    Stall {
        /// Silence duration in milliseconds before the close.
        ms: u64,
    },
}

/// Non-blocking byte I/O as the connection state machine consumes it.
/// `WouldBlock` is the routine "not now" answer; `Ok(0)` from a read is
/// peer EOF.
pub(crate) trait NonBlockingIo {
    fn try_read(&mut self, buf: &mut [u8]) -> io::Result<usize>;
    fn try_write(&mut self, buf: &[u8]) -> io::Result<usize>;
    /// Hang up both directions (sockets close on drop; sim pipes need an
    /// explicit close so blocked clients observe EOF).
    fn shutdown(&mut self) {}
}

impl NonBlockingIo for TcpStream {
    fn try_read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(self, buf)
    }
    fn try_write(&mut self, buf: &[u8]) -> io::Result<usize> {
        io::Write::write(self, buf)
    }
}

impl NonBlockingIo for SimConnHandle {
    fn try_read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        SimConnHandle::try_read(self, buf)
    }
    fn try_write(&mut self, buf: &[u8]) -> io::Result<usize> {
        SimConnHandle::try_write(self, buf)
    }
    fn shutdown(&mut self) {
        SimConnHandle::close(self);
    }
}

/// Connection lifecycle states (the diagram in the module docs). The
/// state decides the interest mask the loop registers for the token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Waiting for (more of) a request head.
    Reading,
    /// A queued response frame is partially written; waiting for the
    /// send buffer to drain.
    Writing,
    /// Chaos stall in progress: deaf and mute until the timer closes us.
    Stalled,
}

/// What a [`ConnSm::pump`] decided the loop should do next.
pub(crate) enum PumpOutcome {
    /// Still alive — re-register with [`ConnSm::interest`].
    Continue,
    /// Entered the stalled state: arm a close timer `ms` out, drop the
    /// interest mask to none.
    ArmStall {
        /// Stall duration (milliseconds on the loop's clock).
        ms: u64,
    },
    /// Connection is finished — deregister, shut down, drop.
    Close,
}

/// One connection as a non-blocking state machine: buffered reads on one
/// side, an incremental frame parser in the middle, buffered writes out.
/// Generic over the byte source so the epoll (TCP) and sim (pipe) loops
/// share every transition.
pub(crate) struct ConnSm<T: NonBlockingIo> {
    io: T,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    written: usize,
    state: ConnState,
    close_after_flush: bool,
    pending_stall: Option<u64>,
    /// Last activity on the loop clock (for the epoll idle reaper).
    last_activity: u64,
    /// Interest currently registered with the reactor — `settle` skips
    /// the (syscall-backed) `set_interest` when nothing changed, which is
    /// the common case for request/response traffic.
    registered: Interest,
}

impl<T: NonBlockingIo> ConnSm<T> {
    pub(crate) fn new(io: T, now: u64) -> ConnSm<T> {
        ConnSm {
            io,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            state: ConnState::Reading,
            close_after_flush: false,
            pending_stall: None,
            last_activity: now,
            registered: Interest::READABLE,
        }
    }

    fn stalled(&self) -> bool {
        self.state == ConnState::Stalled
    }

    /// Interest mask for the current state: reading wants readability,
    /// writing wants writability, stalled wants silence (the loop ignores
    /// anything the OS still reports, e.g. hangups).
    fn interest(&self) -> Interest {
        match self.state {
            ConnState::Reading => Interest::READABLE,
            ConnState::Writing => Interest::WRITABLE,
            ConnState::Stalled => Interest::NONE,
        }
    }

    fn shutdown(&mut self) {
        self.io.shutdown();
    }

    /// Drive the state machine as far as readiness allows: flush queued
    /// response bytes, serve every complete buffered request, read more.
    /// Returns when the I/O would block or the connection's fate is
    /// decided. `serve` is the synchronous route-table closure; it runs
    /// once per parsed request, in arrival order.
    pub(crate) fn pump<F>(&mut self, serve: &mut F) -> PumpOutcome
    where
        F: FnMut(&Request) -> Served,
    {
        loop {
            // Flush phase: responses already queued go out first, in
            // order — chaos close/stall decisions apply only after
            // earlier pipelined responses are on the wire, matching the
            // blocking path which wrote each frame before reading on.
            while self.written < self.write_buf.len() {
                match self.io.try_write(&self.write_buf[self.written..]) {
                    Ok(0) => return PumpOutcome::Close,
                    Ok(n) => self.written += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        self.state = ConnState::Writing;
                        return PumpOutcome::Continue;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return PumpOutcome::Close,
                }
            }
            self.write_buf.clear();
            self.written = 0;
            if let Some(ms) = self.pending_stall.take() {
                self.state = ConnState::Stalled;
                return PumpOutcome::ArmStall { ms };
            }
            if self.close_after_flush {
                return PumpOutcome::Close;
            }

            // Serve phase: consume every complete frame already buffered.
            let mut produced = false;
            loop {
                match parse_request(&self.read_buf) {
                    Ok(Some((req, consumed))) => {
                        self.read_buf.drain(..consumed);
                        match serve(&req) {
                            Served::Frame(f) => {
                                self.write_buf.extend_from_slice(&f);
                                produced = true;
                            }
                            Served::FrameThenClose(f) => {
                                self.write_buf.extend_from_slice(&f);
                                self.close_after_flush = true;
                                produced = true;
                                break;
                            }
                            Served::Reset => {
                                self.close_after_flush = true;
                                break;
                            }
                            Served::Stall { ms } => {
                                self.pending_stall = Some(ms);
                                break;
                            }
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        // Malformed head: the blocking path errors out of
                        // the connection; we close after flushing
                        // whatever was already queued.
                        self.close_after_flush = true;
                        break;
                    }
                }
            }
            if produced || self.close_after_flush || self.pending_stall.is_some() {
                continue; // flush (then maybe stall/close) before reading on
            }

            // Read phase.
            let mut chunk = [0u8; 16 * 1024];
            match self.io.try_read(&mut chunk) {
                // EOF: any complete frames were served in the phase
                // above, so leftover bytes are a torn head — done.
                Ok(0) => return PumpOutcome::Close,
                Ok(n) => self.read_buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.state = ConnState::Reading;
                    return PumpOutcome::Continue;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return PumpOutcome::Close,
            }
        }
    }
}

/// Token-indexed connection slab shared by both loops: token 0 is the
/// listener, connection `i` lives at token `i + 1`. Freed slots recycle.
struct Slab<T: NonBlockingIo> {
    conns: Vec<Option<ConnSm<T>>>,
    free: Vec<usize>,
}

impl<T: NonBlockingIo> Slab<T> {
    fn new() -> Slab<T> {
        Slab {
            conns: Vec::new(),
            free: Vec::new(),
        }
    }

    fn insert(&mut self, conn: ConnSm<T>) -> Token {
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.conns.push(None);
                self.conns.len() - 1
            }
        };
        self.conns[idx] = Some(conn);
        Token(idx + 1)
    }

    fn get_mut(&mut self, token: Token) -> Option<&mut ConnSm<T>> {
        self.conns.get_mut(token.0.wrapping_sub(1))?.as_mut()
    }

    fn remove(&mut self, token: Token) -> Option<ConnSm<T>> {
        let idx = token.0.wrapping_sub(1);
        let slot = self.conns.get_mut(idx)?;
        let conn = slot.take();
        if conn.is_some() {
            self.free.push(idx);
        }
        conn
    }

    fn drain(&mut self) -> Vec<ConnSm<T>> {
        self.conns.iter_mut().filter_map(Option::take).collect()
    }
}

const LISTENER: Token = Token(0);

/// Deregister + shut down + drop one connection (shared epilogue).
fn close_conn<T: NonBlockingIo>(
    reactor: &mut dyn Reactor,
    slab: &mut Slab<T>,
    wheel: &mut TimerWheel,
    token: Token,
) {
    let _ = reactor.deregister(token);
    wheel.cancel(token);
    if let Some(mut conn) = slab.remove(token) {
        conn.shutdown();
    }
}

/// Apply a pump outcome: retune interest, arm stall timers, or close.
///
/// Interest updates are diffed against the connection's cached
/// registration, so steady request/response traffic (always `READABLE`)
/// costs zero `epoll_ctl` calls. Idle reaping is equally lazy: the timer
/// armed at accept stays armed and [`on_timer`] re-arms from
/// `last_activity`, so the hot path never touches the wheel.
fn settle<T: NonBlockingIo>(
    outcome: PumpOutcome,
    reactor: &mut dyn Reactor,
    slab: &mut Slab<T>,
    wheel: &mut TimerWheel,
    token: Token,
    now: u64,
) {
    match outcome {
        PumpOutcome::Continue => {
            let interest = match slab.get_mut(token) {
                Some(conn) => {
                    conn.last_activity = now;
                    let i = conn.interest();
                    if i == conn.registered {
                        return;
                    }
                    conn.registered = i;
                    i
                }
                None => return,
            };
            if reactor.set_interest(token, interest).is_err() {
                close_conn(reactor, slab, wheel, token);
            }
        }
        PumpOutcome::ArmStall { ms } => {
            if let Some(conn) = slab.get_mut(token) {
                conn.registered = Interest::NONE;
            }
            if reactor.set_interest(token, Interest::NONE).is_err() {
                close_conn(reactor, slab, wheel, token);
                return;
            }
            wheel.arm(token, now.saturating_add(ms));
        }
        PumpOutcome::Close => close_conn(reactor, slab, wheel, token),
    }
}

/// A fired timer: stalled connections close (the stall has run its
/// course); otherwise it is an idle-reap check — close if genuinely idle,
/// re-arm for the remainder if traffic arrived since.
fn on_timer<T: NonBlockingIo>(
    reactor: &mut dyn Reactor,
    slab: &mut Slab<T>,
    wheel: &mut TimerWheel,
    token: Token,
    now: u64,
) {
    let (stalled, last) = match slab.get_mut(token) {
        Some(conn) => (conn.stalled(), conn.last_activity),
        None => return,
    };
    if stalled || now.saturating_sub(last) >= IDLE_REAP_MS {
        close_conn(reactor, slab, wheel, token);
    } else {
        wheel.arm(token, last + IDLE_REAP_MS);
    }
}

/// The epoll readiness loop: one thread, every connection. Returns when
/// `stop` is raised or the reactor fails fatally (callers fall back to
/// the threaded path on construction errors before spawning this).
#[cfg(target_os = "linux")]
pub(crate) fn run_epoll_loop<F>(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    mut serve: F,
) -> io::Result<()>
where
    F: FnMut(&Request) -> Served,
{
    use std::os::fd::AsRawFd;
    let mut reactor = EpollReactor::new()?;
    listener.set_nonblocking(true)?;
    reactor.register_fd(listener.as_raw_fd(), LISTENER, Interest::READABLE)?;
    let mut slab: Slab<TcpStream> = Slab::new();
    let mut wheel = TimerWheel::new();
    let mut events = Events::new();
    // The loop clock is wall milliseconds since startup: chaos stalls and
    // idle reaping are real-time contracts with real-socket clients (their
    // read timeouts tick in wall time), unlike the sim loop's logical clock.
    // gaugelint: deterministic-via(clock) — reactor deadline clock is inherently wall-time under epoll; the deterministic path (sim) uses a logical clock
    let t0 = std::time::Instant::now();
    while !stop.load(Ordering::Relaxed) {
        let now = t0.elapsed().as_millis() as u64;
        let timeout = wheel
            .next_deadline()
            .map(|d| d.saturating_sub(now))
            .unwrap_or(25)
            .min(25);
        reactor.poll(&mut events, Some(Duration::from_millis(timeout)))?;
        let now = t0.elapsed().as_millis() as u64;
        for token in wheel.expire(now) {
            on_timer(&mut reactor, &mut slab, &mut wheel, token, now);
        }
        for ev in &events {
            if ev.token == LISTENER {
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if stream.set_nonblocking(true).is_err()
                                || stream.set_nodelay(true).is_err()
                            {
                                continue;
                            }
                            let fd = stream.as_raw_fd();
                            let token = slab.insert(ConnSm::new(stream, now));
                            if reactor
                                .register_fd(fd, token, Interest::READABLE)
                                .is_err()
                            {
                                slab.remove(token);
                                continue;
                            }
                            wheel.arm(token, now + IDLE_REAP_MS);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => break,
                    }
                }
                continue;
            }
            let outcome = match slab.get_mut(ev.token) {
                // Stalled connections are deaf: level-triggered hangup
                // reports keep arriving but the stall contract is
                // silence until the timer closes us.
                Some(conn) if conn.stalled() => continue,
                Some(conn) => conn.pump(&mut serve),
                None => continue,
            };
            settle(outcome, &mut reactor, &mut slab, &mut wheel, ev.token, now);
        }
    }
    for mut conn in slab.drain() {
        conn.shutdown();
    }
    Ok(())
}

/// The deterministic sim serving loop as a *steppable* object. One
/// [`SimServerLoop::step`] is exactly one iteration of the old
/// `run_sim_loop` body — poll, advance the logical clock, fire timers,
/// dispatch readiness — so a single-threaded lockstep harness (the
/// non-blocking crawl client's replay mode) can interleave server steps
/// with client steps deterministically, while the threaded sim server
/// keeps its own loop thread by calling `step` until stopped.
pub(crate) struct SimServerLoop<F> {
    net: SimNet,
    reactor: SimReactor,
    serve: F,
    slab: Slab<SimConnHandle>,
    wheel: TimerWheel,
    events: Events,
    scratch: Vec<Token>,
    clock: u64,
}

impl<F> SimServerLoop<F>
where
    F: FnMut(&Request) -> Served,
{
    /// Register the listener and start the logical clock at zero.
    pub(crate) fn new(net: SimNet, mut reactor: SimReactor, serve: F) -> SimServerLoop<F> {
        reactor.register(LISTENER, net.listener_source(), Interest::READABLE);
        SimServerLoop {
            net,
            reactor,
            serve,
            slab: Slab::new(),
            wheel: TimerWheel::new(),
            events: Events::new(),
            scratch: Vec::new(),
            clock: 0,
        }
    }

    /// One poll-and-dispatch round. Returns a progress count (delivered
    /// events plus fired timers); zero means the server had nothing to do
    /// within `timeout`. Semantics match the original loop body exactly:
    /// an idle poll jumps the logical clock to the next timer deadline,
    /// a busy poll advances it by one tick.
    pub(crate) fn step(&mut self, timeout: Option<Duration>) -> usize {
        let n = self.reactor.poll(&mut self.events, timeout).unwrap_or(0);
        if n == 0 {
            // Idle: nothing is ready, so the only future the loop owes
            // anyone is timer expiry — jump the logical clock there.
            let mut fired = 0;
            if let Some(d) = self.wheel.next_deadline() {
                self.clock = self.clock.max(d);
                for token in self.wheel.expire(self.clock) {
                    on_timer(
                        &mut self.reactor,
                        &mut self.slab,
                        &mut self.wheel,
                        token,
                        self.clock,
                    );
                    fired += 1;
                }
            }
            return fired;
        }
        self.clock += 1;
        let mut progress = n;
        for token in self.wheel.expire(self.clock) {
            on_timer(
                &mut self.reactor,
                &mut self.slab,
                &mut self.wheel,
                token,
                self.clock,
            );
            progress += 1;
        }
        self.scratch.clear();
        self.scratch.extend(self.events.iter().map(|ev| ev.token));
        for i in 0..self.scratch.len() {
            let token = self.scratch[i];
            if token == LISTENER {
                while let Some(handle) = self.net.try_accept() {
                    let source: Arc<dyn mio::SimSource> = Arc::new(handle.clone());
                    let token = self.slab.insert(ConnSm::new(handle, self.clock));
                    self.reactor.register(token, source, Interest::READABLE);
                }
                continue;
            }
            let outcome = match self.slab.get_mut(token) {
                Some(conn) if conn.stalled() => continue,
                Some(conn) => conn.pump(&mut self.serve),
                None => continue,
            };
            settle(
                outcome,
                &mut self.reactor,
                &mut self.slab,
                &mut self.wheel,
                token,
                self.clock,
            );
        }
        progress
    }

    /// Shut every remaining connection down (loop exit epilogue).
    pub(crate) fn shutdown(&mut self) {
        for mut conn in self.slab.drain() {
            conn.shutdown();
        }
    }
}

/// The deterministic sim loop over an in-process [`SimNet`]. Identical
/// state machine to the epoll loop; differences are exactly the
/// determinism levers: seeded delivery rotation (inside [`SimReactor`]),
/// a logical clock (one tick per delivered round, jump-to-deadline when
/// idle), and no idle reaper. Thin driver over [`SimServerLoop`].
pub(crate) fn run_sim_loop<F>(net: SimNet, stop: Arc<AtomicBool>, reactor: SimReactor, serve: F)
where
    F: FnMut(&Request) -> Served,
{
    let mut sloop = SimServerLoop::new(net, reactor, serve);
    while !stop.load(Ordering::Relaxed) {
        sloop.step(Some(Duration::from_millis(2)));
    }
    sloop.shutdown();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{read_response, write_request, write_response, Response};
    use std::io::{BufReader, Cursor};

    /// Scripted in-memory byte source: reads drain a pre-loaded script
    /// in caller-chosen slice sizes; writes capture everything.
    struct ScriptIo {
        input: Vec<u8>,
        pos: usize,
        step: usize,
        eof_at_end: bool,
        output: Vec<u8>,
    }

    impl NonBlockingIo for ScriptIo {
        fn try_read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos >= self.input.len() {
                return if self.eof_at_end {
                    Ok(0)
                } else {
                    Err(io::Error::new(io::ErrorKind::WouldBlock, "drained"))
                };
            }
            let n = self.step.min(buf.len()).min(self.input.len() - self.pos);
            buf[..n].copy_from_slice(&self.input[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
        fn try_write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.output.extend_from_slice(buf);
            Ok(buf.len())
        }
    }

    fn echo_frame(req: &Request) -> Vec<u8> {
        let mut f = Vec::new();
        write_response(&mut f, &Response::ok(req.path.clone().into_bytes())).unwrap();
        f
    }

    fn two_request_stream() -> Vec<u8> {
        let mut s = Vec::new();
        write_request(&mut s, "/categories", &[("User-Agent", "t")]).unwrap();
        write_request(&mut s, "/app/com.x", &[("User-Agent", "t")]).unwrap();
        s
    }

    #[test]
    fn pump_output_is_invariant_to_read_granularity() {
        // The torn-write property at the state-machine level: byte-by-byte
        // delivery and single-shot delivery produce identical response
        // streams.
        let stream = two_request_stream();
        let mut outputs = Vec::new();
        for step in [1usize, 2, 3, 7, stream.len()] {
            let mut sm = ConnSm::new(
                ScriptIo {
                    input: stream.clone(),
                    pos: 0,
                    step,
                    eof_at_end: true,
                    output: Vec::new(),
                },
                0,
            );
            let outcome = sm.pump(&mut |req| Served::Frame(echo_frame(req)));
            assert!(matches!(outcome, PumpOutcome::Close), "EOF closes");
            outputs.push(sm.io.output);
        }
        for out in &outputs[1..] {
            assert_eq!(out, &outputs[0], "split size changed the byte stream");
        }
        // And the stream is two well-formed responses, in order.
        let mut r = BufReader::new(Cursor::new(outputs[0].clone()));
        assert_eq!(read_response(&mut r).unwrap().text(), "/categories");
        assert_eq!(read_response(&mut r).unwrap().text(), "/app/com.x");
    }

    #[test]
    fn pump_keeps_connection_open_between_requests() {
        let mut s = Vec::new();
        write_request(&mut s, "/categories", &[("User-Agent", "t")]).unwrap();
        let mut sm = ConnSm::new(
            ScriptIo {
                input: s,
                pos: 0,
                step: 4096,
                eof_at_end: false, // keep-alive: no EOF after the request
                output: Vec::new(),
            },
            0,
        );
        let outcome = sm.pump(&mut |req| Served::Frame(echo_frame(req)));
        assert!(matches!(outcome, PumpOutcome::Continue));
        assert_eq!(sm.interest(), Interest::READABLE, "back to reading");
        let mut r = BufReader::new(Cursor::new(sm.io.output.clone()));
        assert_eq!(read_response(&mut r).unwrap().text(), "/categories");
    }

    #[test]
    fn reset_flushes_earlier_responses_then_closes() {
        // Pipelined: first request answered, second hits a chaos reset.
        // The first response must still reach the wire (the blocking path
        // wrote it before reading the second request).
        let stream = two_request_stream();
        let mut calls = 0;
        let mut sm = ConnSm::new(
            ScriptIo {
                input: stream,
                pos: 0,
                step: 4096,
                eof_at_end: false,
                output: Vec::new(),
            },
            0,
        );
        let outcome = sm.pump(&mut |req| {
            calls += 1;
            if calls == 1 {
                Served::Frame(echo_frame(req))
            } else {
                Served::Reset
            }
        });
        assert!(matches!(outcome, PumpOutcome::Close));
        let mut r = BufReader::new(Cursor::new(sm.io.output.clone()));
        assert_eq!(read_response(&mut r).unwrap().text(), "/categories");
        let mut rest = Vec::new();
        io::Read::read_to_end(&mut r, &mut rest).unwrap();
        assert!(rest.is_empty(), "reset wrote no bytes of its own response");
    }

    #[test]
    fn stall_arms_a_timer_and_goes_deaf() {
        let mut s = Vec::new();
        write_request(&mut s, "/apk/com.x", &[("User-Agent", "t")]).unwrap();
        let mut sm = ConnSm::new(
            ScriptIo {
                input: s,
                pos: 0,
                step: 4096,
                eof_at_end: false,
                output: Vec::new(),
            },
            0,
        );
        let outcome = sm.pump(&mut |_| Served::Stall { ms: 150 });
        match outcome {
            PumpOutcome::ArmStall { ms } => assert_eq!(ms, 150),
            _ => panic!("expected a stall"),
        }
        assert!(sm.stalled());
        assert_eq!(sm.interest(), Interest::NONE);
        assert!(sm.io.output.is_empty(), "stall writes nothing");
    }

    #[test]
    fn malformed_head_closes_after_flushing_queued_frames() {
        let mut stream = Vec::new();
        write_request(&mut stream, "/categories", &[("User-Agent", "t")]).unwrap();
        stream.extend_from_slice(b"BOGUS / NOPE\r\n\r\n");
        let mut sm = ConnSm::new(
            ScriptIo {
                input: stream,
                pos: 0,
                step: 4096,
                eof_at_end: false,
                output: Vec::new(),
            },
            0,
        );
        let outcome = sm.pump(&mut |req| Served::Frame(echo_frame(req)));
        assert!(matches!(outcome, PumpOutcome::Close));
        let mut r = BufReader::new(Cursor::new(sm.io.output.clone()));
        assert_eq!(read_response(&mut r).unwrap().text(), "/categories");
    }

    #[test]
    fn mode_parsing_and_resolution() {
        assert_eq!(ReactorMode::parse("epoll"), Some(ReactorMode::Epoll));
        assert_eq!(ReactorMode::parse(" SIM \n"), Some(ReactorMode::Sim));
        assert_eq!(ReactorMode::parse("legacy"), Some(ReactorMode::Threaded));
        assert_eq!(ReactorMode::parse("uring"), None);
        assert_eq!(
            ReactorMode::resolve(Some(ReactorMode::Sim)),
            ReactorMode::Sim,
            "explicit mode beats env and default"
        );
        assert_eq!(ReactorMode::Epoll.name(), "epoll");
        if cfg!(target_os = "linux") {
            assert_eq!(ReactorMode::default_mode(), ReactorMode::Epoll);
        }
    }
}
