//! Wire protocol between the store server and the crawler.
//!
//! An HTTP/1.0-flavoured framing, built by hand (per the session's
//! networking idioms): request line + headers + blank line, response with a
//! status line and `Content-Length`-framed body. The crawler sets the
//! `User-Agent`, `X-Locale` and `X-Device-Profile` headers — "both the
//! user-agent and locale headers are defined, which determine the variant
//! of the store and apps retrieved" (§3.1).

use crate::{Result, StoreError};
use std::io::{BufRead, BufReader, Read, Write};

/// Protocol identifier on the wire.
pub const PROTO: &str = "GAUGE/1.0";
/// Hard cap on declared body sizes (matches the APK limit with headroom).
pub const MAX_BODY: usize = 256 * 1024 * 1024;
/// Body-integrity header: lower-case hex CRC32 of the body bytes. The
/// server sets it on every response; the crawler verifies it when present
/// so corrupted payloads surface as retriable errors, not wrong answers.
pub const CRC_HEADER: &str = "x-body-crc32";
/// Range-resume request header: byte offset the client already holds.
/// The server serves the body suffix from that offset and echoes the
/// header back so the client knows the range was honoured.
pub const RANGE_START_HEADER: &str = "x-range-start";
/// On a ranged response, the CRC32 of the *full* body (the served slice
/// is covered by [`CRC_HEADER`] as usual) — what the client validates the
/// stitched prefix + suffix against.
pub const FULL_CRC_HEADER: &str = "x-full-crc32";
/// Crawler-assigned connection id, sent on every request. The chaos
/// [`crate::chaos::FaultPlan`] keys its per-connection fault schedules on
/// it; ids are client-assigned because server accept order is not
/// deterministic.
pub const CONNECTION_ID_HEADER: &str = "x-connection-id";
/// Cap on the request head (request line + headers + blank line). The
/// event-driven server buffers the head incrementally; a client that
/// streams junk without ever sending the blank line would otherwise grow
/// the buffer without bound.
pub const MAX_REQUEST_HEAD: usize = 16 * 1024;

/// Percent-encode a path component (spaces, `&`, `?`, `%`, `/` and
/// non-ASCII become `%XX`); category names like `"health & fitness"` would
/// otherwise break the request line.
pub fn encode_component(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Decode a percent-encoded component. Invalid escapes pass through.
pub fn decode_component(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    // Byte-level hex parsing: slicing the &str could land mid-way through
    // a multi-byte character on hostile input and panic.
    let hex = |b: u8| -> Option<u8> {
        match b {
            b'0'..=b'9' => Some(b - b'0'),
            b'a'..=b'f' => Some(b - b'a' + 10),
            b'A'..=b'F' => Some(b - b'A' + 10),
            _ => None,
        }
    };
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            if let (Some(hi), Some(lo)) = (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                out.push(hi * 16 + lo);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Path, e.g. `/category/finance?start=0&count=100`.
    pub path: String,
    /// Headers as `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// Header lookup (case-insensitive name).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Path without the query string.
    pub fn path_only(&self) -> &str {
        self.path.split('?').next().unwrap_or(&self.path)
    }

    /// Query parameter lookup.
    pub fn query(&self, key: &str) -> Option<&str> {
        let q = self.path.split_once('?')?.1;
        q.split('&')
            .filter_map(|kv| kv.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }
}

/// A response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (200, 400, 404, …).
    pub status: u16,
    /// Extra headers.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A 200 response with a body.
    pub fn ok(body: Vec<u8>) -> Self {
        Response {
            status: 200,
            headers: vec![],
            body,
        }
    }

    /// A 404 with a reason body.
    pub fn not_found(what: &str) -> Self {
        Response {
            status: 404,
            headers: vec![],
            body: format!("not found: {what}").into_bytes(),
        }
    }

    /// A 400 with a reason body.
    pub fn bad_request(why: &str) -> Self {
        Response {
            status: 400,
            headers: vec![],
            body: format!("bad request: {why}").into_bytes(),
        }
    }

    /// Body as UTF-8 text.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Write a request.
pub fn write_request(
    w: &mut impl Write,
    path: &str,
    headers: &[(&str, &str)],
) -> Result<()> {
    write!(w, "GET {path} {PROTO}\r\n")?;
    for (k, v) in headers {
        write!(w, "{k}: {v}\r\n")?;
    }
    write!(w, "\r\n")?;
    w.flush()?;
    Ok(())
}

/// Read a request. Returns `None` on clean EOF (client closed keep-alive).
pub fn read_request(r: &mut BufReader<impl Read>) -> Result<Option<Request>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let line = line.trim_end();
    let mut parts = line.split(' ');
    let (method, path, proto) = (parts.next(), parts.next(), parts.next());
    if method != Some("GET") || proto != Some(PROTO) {
        return Err(StoreError::Protocol(format!("bad request line: {line}")));
    }
    let path = path
        .ok_or_else(|| StoreError::Protocol("missing path".into()))?
        .to_string();
    let headers = read_headers(r)?;
    Ok(Some(Request { path, headers }))
}

/// Incremental request parse over a byte buffer, for non-blocking
/// connection state machines that accumulate reads as they arrive.
///
/// Returns `Ok(None)` while the head (terminated by `\r\n\r\n`) is still
/// incomplete, `Ok(Some((request, consumed)))` once a full frame is
/// buffered — `consumed` is the byte count the caller must drain before
/// the next parse — and `Err` on a malformed head. Because requests carry
/// no body, `consumed` is exactly the head length. The parse is
/// insensitive to how the bytes were split across reads: any prefix short
/// of the terminator yields `None`, and the final result depends only on
/// the concatenated stream (the torn-write property the reactor tests
/// pin).
pub fn parse_request(buf: &[u8]) -> Result<Option<(Request, usize)>> {
    let head_end = match buf.windows(4).position(|w| w == b"\r\n\r\n") {
        Some(pos) => pos,
        None => {
            if buf.len() > MAX_REQUEST_HEAD {
                return Err(StoreError::Protocol(format!(
                    "request head exceeds {MAX_REQUEST_HEAD} bytes"
                )));
            }
            return Ok(None);
        }
    };
    let consumed = head_end + 4;
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| StoreError::Protocol("non-UTF-8 request head".into()))?;
    let mut lines = head.split("\r\n");
    let line = lines
        .next()
        .ok_or_else(|| StoreError::Protocol("empty request head".into()))?;
    let mut parts = line.split(' ');
    let (method, path, proto) = (parts.next(), parts.next(), parts.next());
    if method != Some("GET") || proto != Some(PROTO) {
        return Err(StoreError::Protocol(format!("bad request line: {line}")));
    }
    let path = path
        .ok_or_else(|| StoreError::Protocol("missing path".into()))?
        .to_string();
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (k, v) = line
            .split_once(':')
            .ok_or_else(|| StoreError::Protocol(format!("bad header: {line}")))?;
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }
    Ok(Some((Request { path, headers }, consumed)))
}

/// Write a response.
pub fn write_response(w: &mut impl Write, resp: &Response) -> Result<()> {
    let reason = match resp.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Error",
    };
    write!(w, "{PROTO} {} {reason}\r\n", resp.status)?;
    write!(w, "Content-Length: {}\r\n", resp.body.len())?;
    for (k, v) in &resp.headers {
        write!(w, "{k}: {v}\r\n")?;
    }
    write!(w, "\r\n")?;
    w.write_all(&resp.body)?;
    w.flush()?;
    Ok(())
}

/// Outcome of reading a response on a path where partial bodies are
/// recoverable (range-request resume).
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete, well-formed response.
    Complete(Response),
    /// The status line and headers arrived intact but the connection
    /// died mid-body: the received prefix is preserved so the caller can
    /// resume from `received.len()` with a [`RANGE_START_HEADER`] retry.
    Truncated {
        /// Status of the interrupted response.
        status: u16,
        /// Headers of the interrupted response.
        headers: Vec<(String, String)>,
        /// The body bytes that made it before the cut.
        received: Vec<u8>,
        /// The declared `Content-Length`.
        expected_len: usize,
    },
}

/// Read a response, failing on any truncation.
pub fn read_response(r: &mut BufReader<impl Read>) -> Result<Response> {
    match read_response_resumable(r)? {
        ReadOutcome::Complete(resp) => Ok(resp),
        ReadOutcome::Truncated {
            received,
            expected_len,
            ..
        } => Err(StoreError::Protocol(format!(
            "response truncated mid-body: {}/{} bytes",
            received.len(),
            expected_len
        ))),
    }
}

/// Read a response, preserving a truncated body prefix instead of
/// discarding it — the raw material for range-request resume.
pub fn read_response_resumable(r: &mut BufReader<impl Read>) -> Result<ReadOutcome> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(StoreError::Protocol("connection closed mid-response".into()));
    }
    let line_t = line.trim_end();
    let mut parts = line_t.split(' ');
    if parts.next() != Some(PROTO) {
        return Err(StoreError::Protocol(format!("bad status line: {line_t}")));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| StoreError::Protocol("missing status code".into()))?;
    let headers = read_headers(r)?;
    let len: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .ok_or_else(|| StoreError::Protocol("missing content-length".into()))?;
    if len > MAX_BODY {
        return Err(StoreError::Protocol(format!("body too large: {len}")));
    }
    let mut body = Vec::with_capacity(len.min(1 << 20));
    let mut chunk = [0u8; 8192];
    while body.len() < len {
        let want = (len - body.len()).min(chunk.len());
        match r.read(&mut chunk[..want]) {
            Ok(0) => {
                return Ok(ReadOutcome::Truncated {
                    status,
                    headers,
                    received: body,
                    expected_len: len,
                })
            }
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                // A timeout/reset mid-body: whatever arrived is still a
                // valid prefix worth resuming from.
                if body.is_empty() {
                    return Err(e.into());
                }
                return Ok(ReadOutcome::Truncated {
                    status,
                    headers,
                    received: body,
                    expected_len: len,
                });
            }
        }
    }
    Ok(ReadOutcome::Complete(Response {
        status,
        headers,
        body,
    }))
}

/// Incremental completeness probe for a client-side response buffer, the
/// response-direction counterpart of [`parse_request`] for non-blocking
/// connection state machines that accumulate reads as they arrive.
///
/// Returns `true` once the buffered bytes are *decidable*: either a full
/// `Content-Length`-framed response is present, or the head is malformed
/// in a way no further bytes can repair (bad status line, missing or
/// unparseable `Content-Length`, a declared body over [`MAX_BODY`]).
/// Returns `false` while more bytes could still change the answer. The
/// probe never parses authoritatively — when it says `true` (or the
/// stream ends), [`finish_response_frame`] replays the buffer through
/// [`read_response_resumable`] so outcomes and error strings are
/// byte-identical to the blocking path.
pub fn response_frame_complete(buf: &[u8]) -> bool {
    let head_end = match buf.windows(4).position(|w| w == b"\r\n\r\n") {
        Some(pos) => pos,
        None => return false,
    };
    // The head is fully buffered and every line terminated; any
    // malformation found now is final (the replay in finish surfaces the
    // exact blocking-path error), so report decidable immediately rather
    // than waiting for body bytes that may never come.
    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(h) => h,
        Err(_) => return true,
    };
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let mut parts = status_line.split(' ');
    if parts.next() != Some(PROTO) {
        return true;
    }
    if parts.next().and_then(|s| s.parse::<u16>().ok()).is_none() {
        return true;
    }
    for line in lines {
        let Some((k, v)) = line.split_once(':') else {
            return true;
        };
        if k.trim().eq_ignore_ascii_case("content-length") {
            return match v.trim().parse::<usize>() {
                Ok(len) if len <= MAX_BODY => buf.len() >= head_end + 4 + len,
                _ => true,
            };
        }
    }
    // Complete head without a content-length: the replay errors now.
    true
}

/// Resolve an accumulated response buffer to the outcome the blocking
/// reader would have produced on the same byte/error history.
///
/// Call when [`response_frame_complete`] returns `true`, or when the
/// stream ended (EOF or a read error) with the frame still incomplete.
/// `io_err` is the read error that ended the stream, if any (`None` for
/// clean EOF). The buffer is replayed through [`read_response_resumable`]
/// over a cursor — cursor EOF lands exactly where the socket would have
/// blocked, so truncation outcomes and every error string match the
/// blocking path byte-for-byte. A stored read error overrides replay
/// results the blocking reader could never have reached: an unterminated
/// head (the error hit `read_line` mid-accumulation) and an empty body
/// prefix (the blocking body loop propagates the error rather than
/// preserving zero bytes).
pub fn finish_response_frame(
    buf: &[u8],
    io_err: Option<std::io::Error>,
) -> Result<ReadOutcome> {
    match io_err {
        None => read_response_resumable(&mut BufReader::new(std::io::Cursor::new(buf))),
        Some(e) => {
            if !buf.windows(4).any(|w| w == b"\r\n\r\n") {
                return Err(e.into());
            }
            match read_response_resumable(&mut BufReader::new(std::io::Cursor::new(buf)))? {
                ReadOutcome::Truncated { received, .. } if received.is_empty() => Err(e.into()),
                out => Ok(out),
            }
        }
    }
}

fn read_headers(r: &mut BufReader<impl Read>) -> Result<Vec<(String, String)>> {
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if r.read_line(&mut line)? == 0 {
            return Err(StoreError::Protocol("eof in headers".into()));
        }
        let line = line.trim_end();
        if line.is_empty() {
            return Ok(headers);
        }
        let (k, v) = line
            .split_once(':')
            .ok_or_else(|| StoreError::Protocol(format!("bad header: {line}")))?;
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn request_roundtrip() {
        let mut buf = Vec::new();
        write_request(
            &mut buf,
            "/category/finance?start=0&count=100",
            &[("User-Agent", "gaugeNN/1.0"), ("X-Locale", "en_GB")],
        )
        .unwrap();
        let mut r = BufReader::new(Cursor::new(buf));
        let req = read_request(&mut r).unwrap().unwrap();
        assert_eq!(req.path_only(), "/category/finance");
        assert_eq!(req.query("start"), Some("0"));
        assert_eq!(req.query("count"), Some("100"));
        assert_eq!(req.header("user-agent"), Some("gaugeNN/1.0"));
        assert_eq!(req.header("X-LOCALE"), Some("en_GB"));
        assert_eq!(req.header("missing"), None);
    }

    #[test]
    fn response_roundtrip_binary_body() {
        let body: Vec<u8> = (0..=255u8).collect();
        let mut buf = Vec::new();
        let mut resp = Response::ok(body.clone());
        resp.headers.push(("x-obb-name".into(), "main.1.com.a.obb".into()));
        write_response(&mut buf, &resp).unwrap();
        let got = read_response(&mut BufReader::new(Cursor::new(buf))).unwrap();
        assert_eq!(got.status, 200);
        assert_eq!(got.body, body);
        assert!(got
            .headers
            .iter()
            .any(|(k, v)| k == "x-obb-name" && v == "main.1.com.a.obb"));
    }

    #[test]
    fn eof_is_clean_end_of_keepalive() {
        let mut r = BufReader::new(Cursor::new(Vec::<u8>::new()));
        assert!(read_request(&mut r).unwrap().is_none());
    }

    #[test]
    fn bad_frames_rejected() {
        let mut r = BufReader::new(Cursor::new(b"POST / GAUGE/1.0\r\n\r\n".to_vec()));
        assert!(read_request(&mut r).is_err());
        let mut r2 = BufReader::new(Cursor::new(b"HTTP/1.1 200 OK\r\n\r\n".to_vec()));
        assert!(read_response(&mut r2).is_err());
        let mut r3 = BufReader::new(Cursor::new(b"GAUGE/1.0 200 OK\r\nno-length: 1\r\n\r\n".to_vec()));
        assert!(read_response(&mut r3).is_err());
    }

    #[test]
    fn component_encoding_roundtrips_category_names() {
        for name in ["health & fitness", "video players", "maps & navigation", "plain"] {
            let enc = encode_component(name);
            assert!(!enc.contains(' ') && !enc.contains('&'), "{enc}");
            assert_eq!(decode_component(&enc), name);
        }
        // Invalid escapes pass through untouched.
        assert_eq!(decode_component("50%_off"), "50%_off");
        assert_eq!(decode_component("%"), "%");
        assert_eq!(decode_component("%2"), "%2");
    }

    #[test]
    fn truncated_body_preserves_the_prefix() {
        let body: Vec<u8> = (0..100u8).collect();
        let mut buf = Vec::new();
        write_response(&mut buf, &Response::ok(body.clone())).unwrap();
        // Cut 30 bytes into the body.
        let header_end = buf.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
        buf.truncate(header_end + 30);
        let outcome =
            read_response_resumable(&mut BufReader::new(Cursor::new(buf.clone()))).unwrap();
        match outcome {
            ReadOutcome::Truncated {
                status,
                received,
                expected_len,
                ..
            } => {
                assert_eq!(status, 200);
                assert_eq!(expected_len, 100);
                assert_eq!(received, body[..30].to_vec());
            }
            other => panic!("expected truncation, got {other:?}"),
        }
        // The strict reader refuses the same bytes with a typed error.
        let err = read_response(&mut BufReader::new(Cursor::new(buf))).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn complete_bodies_read_identically_on_both_paths() {
        let body: Vec<u8> = (0..=255u8).collect();
        let mut buf = Vec::new();
        write_response(&mut buf, &Response::ok(body.clone())).unwrap();
        match read_response_resumable(&mut BufReader::new(Cursor::new(buf))).unwrap() {
            ReadOutcome::Complete(resp) => assert_eq!(resp.body, body),
            other => panic!("expected complete, got {other:?}"),
        }
    }

    #[test]
    fn incremental_parse_matches_blocking_reader() {
        let mut buf = Vec::new();
        write_request(
            &mut buf,
            "/category/health%20%26%20fitness?start=0&count=100",
            &[("User-Agent", "gaugeNN/1.0"), ("X-Connection-Id", "7")],
        )
        .unwrap();
        let blocking = read_request(&mut BufReader::new(Cursor::new(buf.clone())))
            .unwrap()
            .unwrap();
        let (incremental, consumed) = parse_request(&buf).unwrap().unwrap();
        assert_eq!(incremental, blocking);
        assert_eq!(consumed, buf.len());
    }

    #[test]
    fn incremental_parse_is_split_invariant() {
        // The torn-write property: a head delivered in two reads split at
        // ANY byte boundary parses to `None` on the prefix and to the
        // identical request once the suffix lands.
        let mut buf = Vec::new();
        write_request(
            &mut buf,
            "/apk/com.example.app",
            &[("User-Agent", "ua"), ("X-Range-Start", "1024")],
        )
        .unwrap();
        let (whole, consumed) = parse_request(&buf).unwrap().unwrap();
        assert_eq!(consumed, buf.len());
        for cut in 0..buf.len() {
            assert!(
                parse_request(&buf[..cut]).unwrap().is_none(),
                "prefix of {cut} bytes must be incomplete"
            );
            let mut acc = buf[..cut].to_vec();
            acc.extend_from_slice(&buf[cut..]);
            let (req, n) = parse_request(&acc).unwrap().unwrap();
            assert_eq!(req, whole, "split at byte {cut} changed the parse");
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn incremental_parse_leaves_pipelined_tail() {
        let mut buf = Vec::new();
        write_request(&mut buf, "/categories", &[("User-Agent", "ua")]).unwrap();
        let first_len = buf.len();
        write_request(&mut buf, "/app/com.x", &[("User-Agent", "ua")]).unwrap();
        let (first, n) = parse_request(&buf).unwrap().unwrap();
        assert_eq!(first.path, "/categories");
        assert_eq!(n, first_len);
        let (second, m) = parse_request(&buf[n..]).unwrap().unwrap();
        assert_eq!(second.path, "/app/com.x");
        assert_eq!(n + m, buf.len());
    }

    #[test]
    fn incremental_parse_rejects_bad_heads_and_floods() {
        assert!(parse_request(b"POST / GAUGE/1.0\r\n\r\n").is_err());
        assert!(parse_request(b"GET / HTTP/1.1\r\n\r\n").is_err());
        assert!(parse_request(b"GET / GAUGE/1.0\r\nnocolon\r\n\r\n").is_err());
        // An unbounded junk stream with no terminator must error rather
        // than buffer forever.
        let flood = vec![b'a'; MAX_REQUEST_HEAD + 1];
        assert!(parse_request(&flood).is_err());
        // ...but a buffer still under the cap simply waits for more.
        assert!(parse_request(b"GET /ca").unwrap().is_none());
    }

    #[test]
    fn response_completeness_probe_is_split_invariant() {
        let body: Vec<u8> = (0..=255u8).collect();
        let mut buf = Vec::new();
        let mut resp = Response::ok(body.clone());
        resp.headers.push(("x-body-crc32".into(), "00000000".into()));
        write_response(&mut buf, &resp).unwrap();
        assert!(response_frame_complete(&buf));
        for cut in 0..buf.len() {
            assert!(
                !response_frame_complete(&buf[..cut]),
                "prefix of {cut} bytes must be undecidable"
            );
        }
        // The resolved frame matches the blocking reader byte-for-byte.
        match finish_response_frame(&buf, None).unwrap() {
            ReadOutcome::Complete(got) => {
                let want = read_response(&mut BufReader::new(Cursor::new(buf))).unwrap();
                assert_eq!(got, want);
            }
            other => panic!("expected complete, got {other:?}"),
        }
    }

    #[test]
    fn malformed_heads_are_decidable_without_body_bytes() {
        assert!(response_frame_complete(b"HTTP/1.1 200 OK\r\n\r\n"));
        assert!(response_frame_complete(b"GAUGE/1.0 abc OK\r\n\r\n"));
        assert!(response_frame_complete(b"GAUGE/1.0 200 OK\r\nno-length: 1\r\n\r\n"));
        assert!(response_frame_complete(b"GAUGE/1.0 200 OK\r\nnocolon\r\n\r\n"));
        assert!(response_frame_complete(
            b"GAUGE/1.0 200 OK\r\nContent-Length: 999999999999\r\n\r\n"
        ));
        // ...and the resolved errors match the blocking reader's strings.
        let err = finish_response_frame(b"HTTP/1.1 200 OK\r\n\r\n", None).unwrap_err();
        assert!(err.to_string().contains("bad status line"), "{err}");
        let err =
            finish_response_frame(b"GAUGE/1.0 200 OK\r\nno-length: 1\r\n\r\n", None).unwrap_err();
        assert!(err.to_string().contains("missing content-length"), "{err}");
    }

    #[test]
    fn finish_resolves_truncation_like_the_blocking_reader() {
        let body: Vec<u8> = (0..100u8).collect();
        let mut buf = Vec::new();
        write_response(&mut buf, &Response::ok(body.clone())).unwrap();
        let header_end = buf.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
        buf.truncate(header_end + 30);
        // Clean EOF mid-body: preserved prefix, exactly as blocking.
        match finish_response_frame(&buf, None).unwrap() {
            ReadOutcome::Truncated {
                status,
                received,
                expected_len,
                ..
            } => {
                assert_eq!((status, expected_len), (200, 100));
                assert_eq!(received, body[..30].to_vec());
            }
            other => panic!("expected truncation, got {other:?}"),
        }
        // A reset mid-body with a non-empty prefix: still Truncated (the
        // blocking body loop keeps what arrived).
        let reset = || std::io::Error::new(std::io::ErrorKind::ConnectionReset, "reset");
        match finish_response_frame(&buf, Some(reset())).unwrap() {
            ReadOutcome::Truncated { received, .. } => assert_eq!(received.len(), 30),
            other => panic!("expected truncation, got {other:?}"),
        }
        // A reset before any body byte: the blocking loop propagates the
        // io error instead of holding a zero-byte prefix.
        let head_only = buf[..header_end].to_vec();
        let err = finish_response_frame(&head_only, Some(reset())).unwrap_err();
        assert!(matches!(err, StoreError::Io(_)), "{err}");
        // A reset mid-head: blocking `read_line` would have surfaced it.
        let err = finish_response_frame(b"GAUGE/1.0 2", Some(reset())).unwrap_err();
        assert!(matches!(err, StoreError::Io(_)), "{err}");
        // Clean EOF at byte 0 keeps the blocking path's protocol error.
        let err = finish_response_frame(b"", None).unwrap_err();
        assert!(err.to_string().contains("connection closed mid-response"), "{err}");
    }

    #[test]
    fn status_helpers() {
        assert_eq!(Response::not_found("x").status, 404);
        assert_eq!(Response::bad_request("y").status, 400);
        assert!(Response::not_found("pkg").text().contains("pkg"));
    }
}
