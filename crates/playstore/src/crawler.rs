//! The gaugeNN crawler client (§3.1).
//!
//! Walks every category page by page (the store caps listings at 500 per
//! category), fetches metadata, the base APK, companion OBB files and the
//! bundle form when advertised — "gaugeNN supports file extraction from
//! i) the base apk, ii) expansion files (OBBs) and iii) Android App
//! Bundles".
//!
//! The crawler is built to survive a hostile store: every request runs
//! under a [`RetryPolicy`] (exponential backoff, deterministic jitter),
//! the keep-alive stream is invalidated and re-dialled after any IO or
//! framing error (a desynced `BufReader` must never feed stale bytes into
//! the next response), payloads are verified against the server's
//! integrity checksum, and a full [`Crawler::crawl_all`] sweep returns a
//! [`CrawlOutcome`] that records permanently-failing apps as structured
//! drop-outs — the paper's Table 2 accounting — instead of aborting the
//! sweep on the first bad app.
//!
//! Backoff delays run on a logical clock by default: they are *recorded*
//! in [`CrawlStats`] but not slept, preserving the repo's bit-for-bit
//! determinism guarantee (DESIGN.md §6) and keeping chaos tests fast.
//! Set [`RetryPolicy::real_sleep`] for wall-clock pacing against a real
//! endpoint.

use crate::chaos::{hash_str, splitmix64};
use crate::proto::{read_response, write_request, Response, CRC_HEADER};
use crate::{Result, StoreError};
use gaugenn_apk::crc32::crc32;
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Crawler identity headers (§3.1/§4.1: a UK account on a Galaxy S10).
#[derive(Debug, Clone)]
pub struct CrawlerConfig {
    /// User-agent string sent with every request.
    pub user_agent: String,
    /// Store locale.
    pub locale: String,
    /// Device profile the store sees.
    pub device_profile: String,
    /// Page size for category listings.
    pub page_size: usize,
}

impl Default for CrawlerConfig {
    fn default() -> Self {
        CrawlerConfig {
            user_agent: "gaugeNN/1.0 (Android 11; SM-G977B)".into(),
            locale: "en_GB".into(),
            device_profile: "SM-G977B".into(),
            page_size: 100,
        }
    }
}

/// Retry policy for store requests: bounded attempts with exponential
/// backoff and deterministic (seeded) jitter keyed on the request path.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per request (first try included). Must be ≥ 1.
    pub max_attempts: u32,
    /// Base backoff before the first retry, milliseconds.
    pub base_backoff_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub max_backoff_ms: u64,
    /// Seed for the jitter draws.
    pub jitter_seed: u64,
    /// Sleep the computed delays for real. Off by default: delays are
    /// accounted on the logical clock ([`CrawlStats::backoff_ms_total`])
    /// so chaos runs stay deterministic and fast.
    pub real_sleep: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 5,
            max_backoff_ms: 80,
            jitter_seed: 0x9A43E,
            real_sleep: false,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (1-based) of `path`:
    /// `min(max, base·2^(retry-1))`, half fixed and half jittered by a
    /// splitmix64 draw on `(seed, path, retry)`.
    pub fn backoff_ms(&self, path: &str, retry: u32) -> u64 {
        let exp = self
            .base_backoff_ms
            .saturating_mul(1u64 << (retry.saturating_sub(1)).min(10))
            .min(self.max_backoff_ms);
        let half = exp / 2;
        let h = splitmix64(self.jitter_seed ^ hash_str(path) ^ retry as u64);
        half + h % (half + 1)
    }
}

/// Counters the crawler keeps while surviving a hostile store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrawlStats {
    /// Requests attempted (including retries).
    pub requests: u64,
    /// Retries performed after transient failures.
    pub retries: u64,
    /// Times the keep-alive stream was re-dialled after an error.
    pub reconnects: u64,
    /// Total backoff accounted on the logical clock, milliseconds.
    pub backoff_ms_total: u64,
}

/// The crawl stage at which an app dropped out (paper Fig. 1 stages).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrawlStage {
    /// Category listing fetch.
    Listing,
    /// App metadata fetch/parse.
    Meta,
    /// Base APK download.
    Apk,
    /// OBB expansion download.
    Obb,
    /// App-bundle download.
    Bundle,
}

impl CrawlStage {
    /// Stable label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            CrawlStage::Listing => "listing",
            CrawlStage::Meta => "meta",
            CrawlStage::Apk => "apk",
            CrawlStage::Obb => "obb",
            CrawlStage::Bundle => "bundle",
        }
    }
}

/// One app (or category listing) that never made it into the corpus —
/// the paper tracks these as download failures in the Table 2 accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DropOut {
    /// Package name (or `category:<name>` for a listing failure).
    pub package: String,
    /// Stage that failed.
    pub stage: CrawlStage,
    /// Final error after every retry, stringified.
    pub error: String,
}

/// Everything a full store sweep produced: the corpus plus the drop-out
/// ledger and the resilience counters.
#[derive(Debug, Clone)]
pub struct CrawlOutcome {
    /// Successfully downloaded apps.
    pub apps: Vec<CrawledApp>,
    /// Apps/listings that failed permanently.
    pub dropouts: Vec<DropOut>,
    /// Retry/reconnect/backoff accounting.
    pub stats: CrawlStats,
}

/// App metadata as parsed from the store response.
#[derive(Debug, Clone, PartialEq)]
pub struct AppMeta {
    /// Package name.
    pub package: String,
    /// Store title.
    pub title: String,
    /// Category name.
    pub category: String,
    /// Download count.
    pub downloads: u64,
    /// Star rating.
    pub rating: f32,
    /// Version code.
    pub version_code: u32,
    /// Whether the store advertises OBB expansion files.
    pub has_obb: bool,
    /// Whether the app is distributed as a bundle.
    pub has_bundle: bool,
}

/// Everything downloaded for one app.
#[derive(Debug, Clone)]
pub struct CrawledApp {
    /// Parsed metadata.
    pub meta: AppMeta,
    /// Base APK bytes.
    pub apk: Vec<u8>,
    /// OBB expansion files `(filename, bytes)`.
    pub obbs: Vec<(String, Vec<u8>)>,
    /// Bundle bytes when distributed as a bundle.
    pub bundle: Option<Vec<u8>>,
}

/// One live keep-alive connection.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// The crawler: a keep-alive connection to the store that re-dials and
/// retries its way through transient failures.
pub struct Crawler {
    config: CrawlerConfig,
    retry: RetryPolicy,
    addr: SocketAddr,
    connect_timeout: Duration,
    read_timeout: Duration,
    conn: Option<Conn>,
    stats: CrawlStats,
}

impl Crawler {
    /// Connect to a store server with the default [`RetryPolicy`].
    pub fn connect(addr: SocketAddr, config: CrawlerConfig) -> Result<Crawler> {
        let mut c = Crawler {
            config,
            retry: RetryPolicy::default(),
            addr,
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(2),
            conn: None,
            stats: CrawlStats::default(),
        };
        c.dial()?;
        Ok(c)
    }

    /// Replace the retry policy (builder-style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Crawler {
        self.retry = retry;
        self
    }

    /// Replace the connect/read timeouts (builder-style).
    pub fn with_timeouts(mut self, connect: Duration, read: Duration) -> Crawler {
        self.connect_timeout = connect;
        self.read_timeout = read;
        if let Some(conn) = &self.conn {
            let _ = conn.writer.set_read_timeout(Some(read));
            let _ = conn.writer.set_write_timeout(Some(read));
        }
        self
    }

    /// Resilience counters so far.
    pub fn stats(&self) -> &CrawlStats {
        &self.stats
    }

    fn dial(&mut self) -> Result<()> {
        let stream = TcpStream::connect_timeout(&self.addr, self.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.read_timeout))?;
        stream.set_write_timeout(Some(self.read_timeout))?;
        let reader = BufReader::new(stream.try_clone()?);
        if self.conn.is_some() {
            self.stats.reconnects += 1;
        }
        self.conn = Some(Conn {
            reader,
            writer: stream,
        });
        Ok(())
    }

    /// Drop the keep-alive stream: after any mid-response error the old
    /// `BufReader` may hold stale bytes, and reading the next response
    /// from it would desync the protocol.
    fn invalidate(&mut self) {
        self.conn = None;
    }

    /// One raw request/response exchange on the current stream.
    fn exchange(&mut self, path: &str) -> Result<Response> {
        if self.conn.is_none() {
            self.dial()?;
            // A fresh dial replaces a previously-invalidated stream; the
            // reconnect counter is bumped in `dial` only when a stream
            // existed before, so count invalidated re-dials here.
            self.stats.reconnects += 1;
        }
        let headers = [
            ("User-Agent", self.config.user_agent.as_str()),
            ("X-Locale", self.config.locale.as_str()),
            ("X-Device-Profile", self.config.device_profile.as_str()),
        ];
        let conn = self.conn.as_mut().expect("dialled above");
        write_request(&mut conn.writer, path, &headers)?;
        let resp = read_response(&mut conn.reader)?;
        // Verify the integrity header when the server supplies one.
        if let Some(want) = resp
            .headers
            .iter()
            .find(|(k, _)| k == CRC_HEADER)
            .map(|(_, v)| v.clone())
        {
            let got = format!("{:08x}", crc32(&resp.body));
            if got != want {
                return Err(StoreError::Integrity { path: path.into() });
            }
        }
        Ok(resp)
    }

    /// Issue one request with retries; only a 200 comes back `Ok`.
    fn request(&mut self, path: &str) -> Result<Response> {
        let mut last: Option<StoreError> = None;
        for attempt in 1..=self.retry.max_attempts.max(1) {
            if attempt > 1 {
                self.stats.retries += 1;
                let delay = self.retry.backoff_ms(path, attempt - 1);
                self.stats.backoff_ms_total += delay;
                if self.retry.real_sleep {
                    std::thread::sleep(Duration::from_millis(delay));
                }
            }
            self.stats.requests += 1;
            let err = match self.exchange(path) {
                Ok(resp) if resp.status == 200 => return Ok(resp),
                Ok(resp) if resp.status == 429 || (500..=599).contains(&resp.status) => {
                    // The frame itself was well-formed, so the stream is
                    // still in sync: keep the connection for the retry.
                    StoreError::Transient {
                        status: resp.status,
                        path: path.into(),
                    }
                }
                Ok(resp) => {
                    // Permanent status (404/400/…): not retriable.
                    return Err(StoreError::NotFound(format!(
                        "{path} -> {} ({})",
                        resp.status,
                        resp.text()
                    )));
                }
                Err(e) => {
                    // IO, framing or integrity failure: the stream can no
                    // longer be trusted to be request-aligned.
                    self.invalidate();
                    e
                }
            };
            if !err.is_transient() {
                return Err(err);
            }
            last = Some(err);
        }
        Err(StoreError::RetriesExhausted {
            path: path.into(),
            attempts: self.retry.max_attempts.max(1),
            last: last.map_or_else(|| "no error recorded".into(), |e| e.to_string()),
        })
    }

    /// List all store categories.
    pub fn categories(&mut self) -> Result<Vec<String>> {
        let resp = self.request("/categories")?;
        Ok(resp
            .text()
            .lines()
            .filter(|l| !l.is_empty())
            .map(str::to_string)
            .collect())
    }

    /// List the top apps of a category (paged until the 500 cap or the
    /// category runs out).
    pub fn list_category(&mut self, category: &str) -> Result<Vec<String>> {
        let mut out = Vec::new();
        let mut start = 0usize;
        loop {
            let path = format!(
                "/category/{}?start={start}&count={}",
                crate::proto::encode_component(category),
                self.config.page_size
            );
            let resp = self.request(&path)?;
            let page: Vec<String> = resp
                .text()
                .lines()
                .filter(|l| !l.is_empty())
                .map(str::to_string)
                .collect();
            if page.is_empty() {
                break;
            }
            start += page.len();
            out.extend(page);
            if out.len() >= crate::server::MAX_PER_CATEGORY {
                out.truncate(crate::server::MAX_PER_CATEGORY);
                break;
            }
        }
        Ok(out)
    }

    /// Fetch and parse one app's metadata. Malformed numeric fields are a
    /// typed [`StoreError::Protocol`] — never silently coerced to zero.
    pub fn app_meta(&mut self, package: &str) -> Result<AppMeta> {
        let resp = self.request(&format!("/app/{package}"))?;
        let kv: BTreeMap<String, String> = resp
            .text()
            .lines()
            .filter_map(|l| l.split_once('='))
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let field = |k: &str| -> Result<String> {
            kv.get(k)
                .cloned()
                .ok_or_else(|| StoreError::Protocol(format!("metadata missing '{k}'")))
        };
        let bad = |k: &str, v: &str| {
            StoreError::Protocol(format!("malformed metadata field '{k}': '{v}'"))
        };
        let downloads_s = field("downloads")?;
        let rating_s = field("rating")?;
        let version_s = field("version")?;
        Ok(AppMeta {
            package: field("package")?,
            title: field("title")?,
            category: field("category")?,
            downloads: downloads_s
                .parse()
                .map_err(|_| bad("downloads", &downloads_s))?,
            rating: rating_s.parse().map_err(|_| bad("rating", &rating_s))?,
            version_code: version_s.parse().map_err(|_| bad("version", &version_s))?,
            has_obb: field("has_obb")? == "true",
            has_bundle: field("has_bundle")? == "true",
        })
    }

    /// Download the base APK.
    pub fn download_apk(&mut self, package: &str) -> Result<Vec<u8>> {
        Ok(self.request(&format!("/apk/{package}"))?.body)
    }

    /// Download everything for one app, honouring its OBB/bundle flags.
    pub fn crawl_app(&mut self, package: &str) -> Result<CrawledApp> {
        self.crawl_app_staged(package).map_err(|(_, e)| e)
    }

    /// Like [`Crawler::crawl_app`], but tagging the failing stage so
    /// drop-outs can be attributed (meta vs apk vs obb vs bundle).
    fn crawl_app_staged(
        &mut self,
        package: &str,
    ) -> std::result::Result<CrawledApp, (CrawlStage, StoreError)> {
        let meta = self
            .app_meta(package)
            .map_err(|e| (CrawlStage::Meta, e))?;
        let apk = self
            .download_apk(package)
            .map_err(|e| (CrawlStage::Apk, e))?;
        let mut obbs = Vec::new();
        if meta.has_obb {
            let resp = self
                .request(&format!("/obb/{package}"))
                .map_err(|e| (CrawlStage::Obb, e))?;
            let name = resp
                .headers
                .iter()
                .find(|(k, _)| k == "x-obb-name")
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| format!("main.{}.{package}.obb", meta.version_code));
            obbs.push((name, resp.body));
        }
        let bundle = if meta.has_bundle {
            Some(
                self.request(&format!("/bundle/{package}"))
                    .map_err(|e| (CrawlStage::Bundle, e))?
                    .body,
            )
        } else {
            None
        };
        Ok(CrawledApp {
            meta,
            apk,
            obbs,
            bundle,
        })
    }

    /// Full store sweep: every category, every listed app. Apps (and
    /// category listings) that keep failing after retries become
    /// [`DropOut`] records instead of aborting the sweep; only a failure
    /// to enumerate the categories themselves is fatal.
    pub fn crawl_all(&mut self) -> Result<CrawlOutcome> {
        let mut apps = Vec::new();
        let mut dropouts = Vec::new();
        for cat in self.categories()? {
            let pkgs = match self.list_category(&cat) {
                Ok(p) => p,
                Err(e) => {
                    dropouts.push(DropOut {
                        package: format!("category:{cat}"),
                        stage: CrawlStage::Listing,
                        error: e.to_string(),
                    });
                    continue;
                }
            };
            for pkg in pkgs {
                match self.crawl_app_staged(&pkg) {
                    Ok(app) => apps.push(app),
                    Err((stage, e)) => dropouts.push(DropOut {
                        package: pkg,
                        stage,
                        error: e.to_string(),
                    }),
                }
            }
        }
        Ok(CrawlOutcome {
            apps,
            dropouts,
            stats: self.stats.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{FaultPlan, FaultPlanConfig};
    use crate::corpus::{generate, CorpusScale, Snapshot};
    use crate::server::StoreServer;

    fn start_tiny() -> StoreServer {
        StoreServer::start(generate(CorpusScale::Tiny, Snapshot::Y2021, 7)).unwrap()
    }

    #[test]
    fn full_crawl_covers_corpus() {
        let server = start_tiny();
        let mut crawler = Crawler::connect(server.addr(), CrawlerConfig::default()).unwrap();
        let outcome = crawler.crawl_all().unwrap();
        assert_eq!(outcome.apps.len(), 52, "tiny 2021 corpus is 52 apps");
        assert!(outcome.dropouts.is_empty(), "{:?}", outcome.dropouts);
        assert_eq!(outcome.stats.retries, 0, "clean store needs no retries");
        // Every APK parses and matches its metadata.
        for app in &outcome.apps {
            let parsed = gaugenn_apk::Apk::parse(&app.apk).unwrap();
            assert_eq!(parsed.package(), app.meta.package);
        }
    }

    #[test]
    fn paging_collects_whole_categories() {
        let server = start_tiny();
        let cfg = CrawlerConfig {
            page_size: 2, // force multiple pages
            ..CrawlerConfig::default()
        };
        let mut crawler = Crawler::connect(server.addr(), cfg).unwrap();
        let cats = crawler.categories().unwrap();
        assert!(cats.len() >= 30);
        let all: usize = cats
            .iter()
            .map(|c| crawler.list_category(c).unwrap().len())
            .sum();
        assert_eq!(all, 52);
    }

    #[test]
    fn obbs_and_bundles_fetched_when_advertised() {
        let server = start_tiny();
        let mut crawler = Crawler::connect(server.addr(), CrawlerConfig::default()).unwrap();
        let outcome = crawler.crawl_all().unwrap();
        for app in &outcome.apps {
            if app.meta.has_obb {
                assert_eq!(app.obbs.len(), 1);
                let (name, bytes) = &app.obbs[0];
                let obb = gaugenn_apk::obb::Obb::parse(name, bytes).unwrap();
                assert_eq!(obb.package, app.meta.package);
            } else {
                assert!(app.obbs.is_empty());
            }
            if app.meta.has_bundle {
                let b = gaugenn_apk::bundle::Bundle::parse(app.bundle.as_ref().unwrap()).unwrap();
                assert!(!b.packs.is_empty());
            }
        }
    }

    #[test]
    fn missing_package_is_error() {
        let server = start_tiny();
        let mut crawler = Crawler::connect(server.addr(), CrawlerConfig::default()).unwrap();
        assert!(crawler.app_meta("com.not.there").is_err());
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for retry in 1..=6 {
            let a = p.backoff_ms("/apk/com.x", retry);
            let b = p.backoff_ms("/apk/com.x", retry);
            assert_eq!(a, b, "same (path, retry) draws the same jitter");
            assert!(a <= p.max_backoff_ms, "{a} > cap at retry {retry}");
        }
        // Different paths draw different jitter (with overwhelming odds).
        let spread: std::collections::BTreeSet<u64> = (0..32)
            .map(|i| p.backoff_ms(&format!("/apk/com.p{i}"), 3))
            .collect();
        assert!(spread.len() > 1, "jitter should vary by path");
    }

    #[test]
    fn transient_statuses_are_retried_to_success() {
        let corpus = generate(CorpusScale::Tiny, Snapshot::Y2021, 7);
        let server = StoreServer::start_with_chaos(
            corpus,
            FaultPlan::new(FaultPlanConfig {
                fault_permille: 1000,
                kinds: vec![crate::chaos::FaultKind::TransientStatus],
                max_faults_per_route: 2,
                ..FaultPlanConfig::default()
            }),
        )
        .unwrap();
        let mut crawler = Crawler::connect(server.addr(), CrawlerConfig::default()).unwrap();
        let cats = crawler.categories().unwrap();
        assert!(cats.len() >= 30);
        assert!(crawler.stats().retries >= 2, "{:?}", crawler.stats());
    }

    #[test]
    fn corrupted_payload_detected_and_refetched() {
        let corpus = generate(CorpusScale::Tiny, Snapshot::Y2021, 7);
        let server = StoreServer::start_with_chaos(
            corpus,
            FaultPlan::new(FaultPlanConfig {
                fault_permille: 1000,
                kinds: vec![crate::chaos::FaultKind::Corrupt],
                max_faults_per_route: 1,
                ..FaultPlanConfig::default()
            }),
        )
        .unwrap();
        let mut crawler = Crawler::connect(server.addr(), CrawlerConfig::default()).unwrap();
        // First attempt is corrupted (checksum catches it), retry is clean.
        let cats = crawler.categories().unwrap();
        assert!(cats.len() >= 30);
        assert!(crawler.stats().retries >= 1);
    }
}
