//! The gaugeNN crawler client (§3.1).
//!
//! Walks every category page by page (the store caps listings at 500 per
//! category), fetches metadata, the base APK, companion OBB files and the
//! bundle form when advertised — "gaugeNN supports file extraction from
//! i) the base apk, ii) expansion files (OBBs) and iii) Android App
//! Bundles".

use crate::proto::{read_response, write_request, Response};
use crate::{Result, StoreError};
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};

/// Crawler identity headers (§3.1/§4.1: a UK account on a Galaxy S10).
#[derive(Debug, Clone)]
pub struct CrawlerConfig {
    /// User-agent string sent with every request.
    pub user_agent: String,
    /// Store locale.
    pub locale: String,
    /// Device profile the store sees.
    pub device_profile: String,
    /// Page size for category listings.
    pub page_size: usize,
}

impl Default for CrawlerConfig {
    fn default() -> Self {
        CrawlerConfig {
            user_agent: "gaugeNN/1.0 (Android 11; SM-G977B)".into(),
            locale: "en_GB".into(),
            device_profile: "SM-G977B".into(),
            page_size: 100,
        }
    }
}

/// App metadata as parsed from the store response.
#[derive(Debug, Clone, PartialEq)]
pub struct AppMeta {
    /// Package name.
    pub package: String,
    /// Store title.
    pub title: String,
    /// Category name.
    pub category: String,
    /// Download count.
    pub downloads: u64,
    /// Star rating.
    pub rating: f32,
    /// Version code.
    pub version_code: u32,
    /// Whether the store advertises OBB expansion files.
    pub has_obb: bool,
    /// Whether the app is distributed as a bundle.
    pub has_bundle: bool,
}

/// Everything downloaded for one app.
#[derive(Debug, Clone)]
pub struct CrawledApp {
    /// Parsed metadata.
    pub meta: AppMeta,
    /// Base APK bytes.
    pub apk: Vec<u8>,
    /// OBB expansion files `(filename, bytes)`.
    pub obbs: Vec<(String, Vec<u8>)>,
    /// Bundle bytes when distributed as a bundle.
    pub bundle: Option<Vec<u8>>,
}

/// The crawler: one keep-alive connection to the store.
pub struct Crawler {
    config: CrawlerConfig,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Crawler {
    /// Connect to a store server.
    pub fn connect(addr: SocketAddr, config: CrawlerConfig) -> Result<Crawler> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Crawler {
            config,
            reader,
            writer: stream,
        })
    }

    fn get(&mut self, path: &str) -> Result<Response> {
        let headers = [
            ("User-Agent", self.config.user_agent.as_str()),
            ("X-Locale", self.config.locale.as_str()),
            ("X-Device-Profile", self.config.device_profile.as_str()),
        ];
        write_request(&mut self.writer, path, &headers)?;
        read_response(&mut self.reader)
    }

    fn get_ok(&mut self, path: &str) -> Result<Response> {
        let resp = self.get(path)?;
        if resp.status != 200 {
            return Err(StoreError::NotFound(format!(
                "{path} -> {} ({})",
                resp.status,
                resp.text()
            )));
        }
        Ok(resp)
    }

    /// List all store categories.
    pub fn categories(&mut self) -> Result<Vec<String>> {
        let resp = self.get_ok("/categories")?;
        Ok(resp
            .text()
            .lines()
            .filter(|l| !l.is_empty())
            .map(str::to_string)
            .collect())
    }

    /// List the top apps of a category (paged until the 500 cap or the
    /// category runs out).
    pub fn list_category(&mut self, category: &str) -> Result<Vec<String>> {
        let mut out = Vec::new();
        let mut start = 0usize;
        loop {
            let path = format!(
                "/category/{}?start={start}&count={}",
                crate::proto::encode_component(category),
                self.config.page_size
            );
            let resp = self.get_ok(&path)?;
            let page: Vec<String> = resp
                .text()
                .lines()
                .filter(|l| !l.is_empty())
                .map(str::to_string)
                .collect();
            if page.is_empty() {
                break;
            }
            start += page.len();
            out.extend(page);
            if out.len() >= crate::server::MAX_PER_CATEGORY {
                out.truncate(crate::server::MAX_PER_CATEGORY);
                break;
            }
        }
        Ok(out)
    }

    /// Fetch and parse one app's metadata.
    pub fn app_meta(&mut self, package: &str) -> Result<AppMeta> {
        let resp = self.get_ok(&format!("/app/{package}"))?;
        let kv: BTreeMap<String, String> = resp
            .text()
            .lines()
            .filter_map(|l| l.split_once('='))
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let field = |k: &str| -> Result<String> {
            kv.get(k)
                .cloned()
                .ok_or_else(|| StoreError::Protocol(format!("metadata missing '{k}'")))
        };
        Ok(AppMeta {
            package: field("package")?,
            title: field("title")?,
            category: field("category")?,
            downloads: field("downloads")?.parse().unwrap_or(0),
            rating: field("rating")?.parse().unwrap_or(0.0),
            version_code: field("version")?.parse().unwrap_or(0),
            has_obb: field("has_obb")? == "true",
            has_bundle: field("has_bundle")? == "true",
        })
    }

    /// Download the base APK.
    pub fn download_apk(&mut self, package: &str) -> Result<Vec<u8>> {
        Ok(self.get_ok(&format!("/apk/{package}"))?.body)
    }

    /// Download everything for one app, honouring its OBB/bundle flags.
    pub fn crawl_app(&mut self, package: &str) -> Result<CrawledApp> {
        let meta = self.app_meta(package)?;
        let apk = self.download_apk(package)?;
        let mut obbs = Vec::new();
        if meta.has_obb {
            let resp = self.get_ok(&format!("/obb/{package}"))?;
            let name = resp
                .headers
                .iter()
                .find(|(k, _)| k == "x-obb-name")
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| format!("main.{}.{package}.obb", meta.version_code));
            obbs.push((name, resp.body));
        }
        let bundle = if meta.has_bundle {
            Some(self.get_ok(&format!("/bundle/{package}"))?.body)
        } else {
            None
        };
        Ok(CrawledApp {
            meta,
            apk,
            obbs,
            bundle,
        })
    }

    /// Full store sweep: every category, every listed app.
    pub fn crawl_all(&mut self) -> Result<Vec<CrawledApp>> {
        let mut out = Vec::new();
        for cat in self.categories()? {
            for pkg in self.list_category(&cat)? {
                out.push(self.crawl_app(&pkg)?);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate, CorpusScale, Snapshot};
    use crate::server::StoreServer;

    fn start_tiny() -> StoreServer {
        StoreServer::start(generate(CorpusScale::Tiny, Snapshot::Y2021, 7)).unwrap()
    }

    #[test]
    fn full_crawl_covers_corpus() {
        let server = start_tiny();
        let mut crawler = Crawler::connect(server.addr(), CrawlerConfig::default()).unwrap();
        let apps = crawler.crawl_all().unwrap();
        assert_eq!(apps.len(), 52, "tiny 2021 corpus is 52 apps");
        // Every APK parses and matches its metadata.
        for app in &apps {
            let parsed = gaugenn_apk::Apk::parse(&app.apk).unwrap();
            assert_eq!(parsed.package(), app.meta.package);
        }
    }

    #[test]
    fn paging_collects_whole_categories() {
        let server = start_tiny();
        let cfg = CrawlerConfig {
            page_size: 2, // force multiple pages
            ..CrawlerConfig::default()
        };
        let mut crawler = Crawler::connect(server.addr(), cfg).unwrap();
        let cats = crawler.categories().unwrap();
        assert!(cats.len() >= 30);
        let all: usize = cats
            .iter()
            .map(|c| crawler.list_category(c).unwrap().len())
            .sum();
        assert_eq!(all, 52);
    }

    #[test]
    fn obbs_and_bundles_fetched_when_advertised() {
        let server = start_tiny();
        let mut crawler = Crawler::connect(server.addr(), CrawlerConfig::default()).unwrap();
        let apps = crawler.crawl_all().unwrap();
        for app in &apps {
            if app.meta.has_obb {
                assert_eq!(app.obbs.len(), 1);
                let (name, bytes) = &app.obbs[0];
                let obb = gaugenn_apk::obb::Obb::parse(name, bytes).unwrap();
                assert_eq!(obb.package, app.meta.package);
            } else {
                assert!(app.obbs.is_empty());
            }
            if app.meta.has_bundle {
                let b = gaugenn_apk::bundle::Bundle::parse(app.bundle.as_ref().unwrap()).unwrap();
                assert!(!b.packs.is_empty());
            }
        }
    }

    #[test]
    fn missing_package_is_error() {
        let server = start_tiny();
        let mut crawler = Crawler::connect(server.addr(), CrawlerConfig::default()).unwrap();
        assert!(crawler.app_meta("com.not.there").is_err());
    }
}
