//! The gaugeNN crawler client (§3.1).
//!
//! Walks every category page by page (the store caps listings at 500 per
//! category), fetches metadata, the base APK, companion OBB files and the
//! bundle form when advertised — "gaugeNN supports file extraction from
//! i) the base apk, ii) expansion files (OBBs) and iii) Android App
//! Bundles".
//!
//! The crawler is built to survive a hostile store: every request runs
//! under a [`RetryPolicy`] (exponential backoff, deterministic jitter
//! keyed on `(connection, route, retry)`), the keep-alive stream is
//! invalidated and re-dialled after any IO or framing error (a desynced
//! `BufReader` must never feed stale bytes into the next response),
//! payloads are verified against the server's integrity checksum, and a
//! full [`Crawler::crawl_all`] sweep returns a [`CrawlOutcome`] that
//! records permanently-failing apps as structured drop-outs — the
//! paper's Table 2 accounting — instead of aborting the sweep on the
//! first bad app.
//!
//! Large downloads survive truncation without starting over: a cut
//! mid-body keeps the received prefix and the retry asks for the
//! remainder with a range header, validating the stitched result against
//! the server's full-body checksum (see [`crate::proto`]).
//!
//! Crawlers are constructed through [`Crawler::builder`]; when several
//! crawl the same store concurrently (see [`crate::pool::CrawlPool`]),
//! give each a distinct [`CrawlerBuilder::connection_id`] and a clone of
//! one shared [`AdmissionController`] so the fleet respects one
//! store-wide rate limit and circuit breaker.
//!
//! Backoff delays run on a logical clock by default: they are *recorded*
//! in [`CrawlStats`] but not slept, preserving the repo's bit-for-bit
//! determinism guarantee (DESIGN.md §6) and keeping chaos tests fast.
//! Set [`RetryPolicy::real_sleep`] for wall-clock pacing against a real
//! endpoint.

use crate::admission::{Admission, AdmissionController};
use crate::chaos::{hash_str, splitmix64};
use crate::net::{Endpoint, Transport};
use crate::proto::{
    read_response_resumable, write_request, ReadOutcome, Response, CONNECTION_ID_HEADER,
    CRC_HEADER, FULL_CRC_HEADER, RANGE_START_HEADER,
};
use crate::route::Route;
use crate::{Result, StoreError};
use gaugenn_apk::crc32::crc32;
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Crawler identity headers (§3.1/§4.1: a UK account on a Galaxy S10).
#[derive(Debug, Clone)]
pub struct CrawlerConfig {
    /// User-agent string sent with every request.
    pub user_agent: String,
    /// Store locale.
    pub locale: String,
    /// Device profile the store sees.
    pub device_profile: String,
    /// Page size for category listings.
    pub page_size: usize,
}

impl Default for CrawlerConfig {
    fn default() -> Self {
        CrawlerConfig {
            user_agent: "gaugeNN/1.0 (Android 11; SM-G977B)".into(),
            locale: "en_GB".into(),
            device_profile: "SM-G977B".into(),
            page_size: 100,
        }
    }
}

/// Retry policy for store requests: bounded attempts with exponential
/// backoff and deterministic (seeded) jitter keyed on the connection id
/// and the request route.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per request (first try included). Must be ≥ 1.
    pub max_attempts: u32,
    /// Base backoff before the first retry, milliseconds.
    pub base_backoff_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub max_backoff_ms: u64,
    /// Seed for the jitter draws.
    pub jitter_seed: u64,
    /// Sleep the computed delays for real. Off by default: delays are
    /// accounted on the logical clock ([`CrawlStats::backoff_ms_total`])
    /// so chaos runs stay deterministic and fast.
    pub real_sleep: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 5,
            max_backoff_ms: 80,
            jitter_seed: 0x9A43E,
            real_sleep: false,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (1-based) of `route_key` on
    /// connection `connection_id`: `min(max, base·2^(retry-1))`, half
    /// fixed and half jittered by a splitmix64 draw on
    /// `(seed, connection, route, retry)`. Folding the connection id in
    /// keeps two workers that retry the same package from colliding on
    /// identical backoff sequences.
    pub fn backoff_ms(&self, connection_id: u64, route_key: &str, retry: u32) -> u64 {
        let exp = self
            .base_backoff_ms
            .saturating_mul(1u64 << (retry.saturating_sub(1)).min(10))
            .min(self.max_backoff_ms);
        let half = exp / 2;
        let h = splitmix64(
            self.jitter_seed ^ splitmix64(connection_id) ^ hash_str(route_key) ^ retry as u64,
        );
        half + h % (half + 1)
    }
}

/// Counters the crawler keeps while surviving a hostile store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrawlStats {
    /// Requests attempted (including retries).
    pub requests: u64,
    /// Retries performed after transient failures.
    pub retries: u64,
    /// Times the keep-alive stream was re-dialled after an error.
    pub reconnects: u64,
    /// Total backoff accounted on the logical clock, milliseconds.
    pub backoff_ms_total: u64,
    /// Truncated downloads completed by a range-request resume instead
    /// of a from-scratch refetch.
    pub range_resumes: u64,
    /// Requests that paid an admission-controller pacing charge.
    pub throttled: u64,
    /// Total pacing charge accounted on the logical clock, milliseconds.
    pub throttle_ms_total: u64,
    /// Attempts rejected outright by an open circuit breaker.
    pub breaker_rejections: u64,
    /// Apps served from a resume cache (a replayed crash journal)
    /// instead of the network — unit-level resume, the journal analogue
    /// of `range_resumes`.
    pub journal_restores: u64,
}

impl CrawlStats {
    /// Fold another counter set into this one (pool merging).
    pub fn merge(&mut self, other: &CrawlStats) {
        self.requests += other.requests;
        self.retries += other.retries;
        self.reconnects += other.reconnects;
        self.backoff_ms_total += other.backoff_ms_total;
        self.range_resumes += other.range_resumes;
        self.throttled += other.throttled;
        self.throttle_ms_total += other.throttle_ms_total;
        self.breaker_rejections += other.breaker_rejections;
        self.journal_restores += other.journal_restores;
    }
}

/// The crawl stage at which an app dropped out (paper Fig. 1 stages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CrawlStage {
    /// Category listing fetch.
    Listing,
    /// App metadata fetch/parse.
    Meta,
    /// Base APK download.
    Apk,
    /// OBB expansion download.
    Obb,
    /// App-bundle download.
    Bundle,
}

impl CrawlStage {
    /// Every stage, in pipeline order (for breakdown tables).
    pub const ALL: [CrawlStage; 5] = [
        CrawlStage::Listing,
        CrawlStage::Meta,
        CrawlStage::Apk,
        CrawlStage::Obb,
        CrawlStage::Bundle,
    ];

    /// Stable label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            CrawlStage::Listing => "listing",
            CrawlStage::Meta => "meta",
            CrawlStage::Apk => "apk",
            CrawlStage::Obb => "obb",
            CrawlStage::Bundle => "bundle",
        }
    }
}

/// One app (or category listing) that never made it into the corpus —
/// the paper tracks these as download failures in the Table 2 accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DropOut {
    /// Package name (or `category:<name>` for a listing failure).
    pub package: String,
    /// Stage that failed.
    pub stage: CrawlStage,
    /// Final error after every retry, stringified.
    pub error: String,
}

/// Everything a full store sweep produced: the corpus plus the drop-out
/// ledger and the resilience counters.
#[derive(Debug, Clone, PartialEq)]
pub struct CrawlOutcome {
    /// Successfully downloaded apps.
    pub apps: Vec<CrawledApp>,
    /// Apps/listings that failed permanently.
    pub dropouts: Vec<DropOut>,
    /// Retry/reconnect/backoff accounting.
    pub stats: CrawlStats,
}

/// App metadata as parsed from the store response.
#[derive(Debug, Clone, PartialEq)]
pub struct AppMeta {
    /// Package name.
    pub package: String,
    /// Store title.
    pub title: String,
    /// Category name.
    pub category: String,
    /// Download count.
    pub downloads: u64,
    /// Star rating.
    pub rating: f32,
    /// Version code.
    pub version_code: u32,
    /// Whether the store advertises OBB expansion files.
    pub has_obb: bool,
    /// Whether the app is distributed as a bundle.
    pub has_bundle: bool,
}

/// Everything downloaded for one app.
#[derive(Debug, Clone, PartialEq)]
pub struct CrawledApp {
    /// Parsed metadata.
    pub meta: AppMeta,
    /// Base APK bytes.
    pub apk: Vec<u8>,
    /// OBB expansion files `(filename, bytes)`.
    pub obbs: Vec<(String, Vec<u8>)>,
    /// Bundle bytes when distributed as a bundle.
    pub bundle: Option<Vec<u8>>,
}

/// One live keep-alive connection — a pair of cloned [`Transport`]
/// handles over TCP or a sim pipe, depending on the dialled
/// [`Endpoint`].
struct Conn {
    reader: BufReader<Box<dyn Transport>>,
    writer: Box<dyn Transport>,
}

/// The identity/range header set every store request carries, shared by
/// the blocking crawler and the non-blocking client lanes so both
/// transports put byte-identical requests on the wire.
pub(crate) fn request_headers<'a>(
    config: &'a CrawlerConfig,
    conn_id: &'a str,
    range: Option<&'a str>,
) -> Vec<(&'a str, &'a str)> {
    let mut headers: Vec<(&str, &str)> = vec![
        ("User-Agent", config.user_agent.as_str()),
        ("X-Locale", config.locale.as_str()),
        ("X-Device-Profile", config.device_profile.as_str()),
        (CONNECTION_ID_HEADER, conn_id),
    ];
    if let Some(r) = range {
        headers.push((RANGE_START_HEADER, r));
    }
    headers
}

/// Verify the integrity header when the server supplies one (it covers
/// exactly the bytes served, a range suffix included).
pub(crate) fn verify_body_crc(resp: &Response, wire_path: &str) -> Result<()> {
    if let Some(want) = resp
        .headers
        .iter()
        .find(|(k, _)| k == CRC_HEADER)
        .map(|(_, v)| v.as_str())
    {
        let got = format!("{:08x}", crc32(&resp.body));
        if got != want {
            return Err(StoreError::Integrity {
                path: wire_path.into(),
            });
        }
    }
    Ok(())
}

/// Complete a 200 response: when a resume prefix is outstanding, stitch
/// it to the served suffix and validate the whole body against the
/// server's full-body checksum.
pub(crate) fn finish_body(
    stats: &mut CrawlStats,
    mut resp: Response,
    prefix: &mut Vec<u8>,
    wire: &str,
    range_start: Option<usize>,
) -> Result<Response> {
    if prefix.is_empty() {
        return Ok(resp);
    }
    let echoed = resp
        .headers
        .iter()
        .find(|(k, _)| k == RANGE_START_HEADER)
        .and_then(|(_, v)| v.parse::<usize>().ok());
    if echoed != range_start {
        // The server served the whole body; the prefix is superseded.
        prefix.clear();
        return Ok(resp);
    }
    let want = resp
        .headers
        .iter()
        .find(|(k, _)| k == FULL_CRC_HEADER)
        .map(|(_, v)| v.clone())
        .ok_or_else(|| {
            StoreError::Protocol(format!("{wire}: ranged response missing {FULL_CRC_HEADER}"))
        })?;
    let mut stitched = std::mem::take(prefix);
    stitched.extend_from_slice(&resp.body);
    if format!("{:08x}", crc32(&stitched)) != want {
        return Err(StoreError::Integrity { path: wire.into() });
    }
    stats.range_resumes += 1;
    resp.body = stitched;
    Ok(resp)
}

/// The non-empty lines of a listing response (categories or one category
/// page).
pub(crate) fn parse_listing(text: &str) -> Vec<String> {
    text.lines()
        .filter(|l| !l.is_empty())
        .map(str::to_string)
        .collect()
}

/// Parse an app-metadata response body. Malformed numeric fields are a
/// typed [`StoreError::Protocol`] — never silently coerced to zero.
pub(crate) fn parse_app_meta(text: &str) -> Result<AppMeta> {
    let kv: BTreeMap<String, String> = text
        .lines()
        .filter_map(|l| l.split_once('='))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    let field = |k: &str| -> Result<String> {
        kv.get(k)
            .cloned()
            .ok_or_else(|| StoreError::Protocol(format!("metadata missing '{k}'")))
    };
    let bad =
        |k: &str, v: &str| StoreError::Protocol(format!("malformed metadata field '{k}': '{v}'"));
    let downloads_s = field("downloads")?;
    let rating_s = field("rating")?;
    let version_s = field("version")?;
    Ok(AppMeta {
        package: field("package")?,
        title: field("title")?,
        category: field("category")?,
        downloads: downloads_s
            .parse()
            .map_err(|_| bad("downloads", &downloads_s))?,
        rating: rating_s.parse().map_err(|_| bad("rating", &rating_s))?,
        version_code: version_s.parse().map_err(|_| bad("version", &version_s))?,
        has_obb: field("has_obb")? == "true",
        has_bundle: field("has_bundle")? == "true",
    })
}

/// Name + bytes of an OBB response (server-advertised filename, or the
/// conventional `main.<version>.<package>.obb`).
pub(crate) fn obb_entry(resp: Response, package: &str, version_code: u32) -> (String, Vec<u8>) {
    let name = resp
        .headers
        .iter()
        .find(|(k, _)| k == "x-obb-name")
        .map(|(_, v)| v.clone())
        .unwrap_or_else(|| format!("main.{version_code}.{package}.obb"));
    (name, resp.body)
}

/// Per-request retry state machine shared by the blocking [`Crawler`]
/// and the non-blocking client lanes (see `crate::reactor_client`). One
/// instance covers one logical request from first attempt to success,
/// fatal error or retry exhaustion; every counter bump, backoff draw,
/// admission charge and error string lives here, which is what keeps the
/// two transports byte-identical on any (connection, route) history.
pub(crate) struct RequestSm {
    key: String,
    wire: String,
    resumable: bool,
    max: u32,
    attempt: u32,
    prefix: Vec<u8>,
    range_start: Option<usize>,
    last: Option<StoreError>,
}

/// What to do after [`RequestSm::begin_attempt`].
pub(crate) enum AttemptPrep {
    /// Attempt started; backoff accounted. `delay_ms` is what a
    /// real-sleep policy waits before proceeding to admission.
    Backoff {
        /// Backoff delay accounted for this retry (0 on attempt 1).
        delay_ms: u64,
    },
    /// Every attempt consumed: the typed exhaustion error.
    Exhausted(StoreError),
}

/// What to do after [`RequestSm::admit`].
pub(crate) enum AdmitVerdict {
    /// Admitted: issue the request. `throttle_ms` is the pacing charge a
    /// real-sleep policy waits out before sending.
    Proceed {
        /// Byte offset to resume from, when a truncated prefix is held.
        range_start: Option<usize>,
        /// Pacing charge already accounted in the stats.
        throttle_ms: u64,
    },
    /// Breaker open: the attempt is consumed without a request; wait and
    /// begin the next attempt.
    Rejected {
        /// Breaker-advertised wait before the next attempt.
        retry_after_ms: u64,
    },
}

/// What [`RequestSm::absorb`] decided about one attempt's outcome.
pub(crate) enum AttemptVerdict {
    /// The request succeeded (body stitched/verified); the response.
    Done(Response),
    /// Permanent failure: stop retrying. `invalidate` tells the caller
    /// whether the stream desynced on the way.
    Fatal {
        /// The permanent error.
        error: StoreError,
        /// Drop the keep-alive stream before surfacing the error.
        invalidate: bool,
    },
    /// Transient failure: begin the next attempt.
    Retry {
        /// Drop the keep-alive stream before retrying (mid-frame cuts
        /// and IO errors desync it; well-formed 429/503 frames do not).
        invalidate: bool,
    },
}

impl RequestSm {
    pub(crate) fn new(route: &Route, resumable: bool, max_attempts: u32) -> RequestSm {
        RequestSm {
            key: route.fault_key(),
            wire: route.wire_path(),
            resumable,
            max: max_attempts.max(1),
            attempt: 0,
            prefix: Vec::new(),
            range_start: None,
            last: None,
        }
    }

    /// The wire path this request targets.
    pub(crate) fn wire_path(&self) -> &str {
        &self.wire
    }

    /// Begin the next attempt: consume one attempt slot, bump the retry
    /// counter and account the backoff delay (attempt 2 onwards).
    pub(crate) fn begin_attempt(
        &mut self,
        retry: &RetryPolicy,
        connection_id: u64,
        stats: &mut CrawlStats,
    ) -> AttemptPrep {
        if self.attempt >= self.max {
            return AttemptPrep::Exhausted(StoreError::RetriesExhausted {
                path: self.wire.clone(),
                attempts: self.max,
                last: self
                    .last
                    .take()
                    .map_or_else(|| "no error recorded".into(), |e| e.to_string()),
            });
        }
        self.attempt += 1;
        let mut delay = 0;
        if self.attempt > 1 {
            stats.retries += 1;
            delay = retry.backoff_ms(connection_id, &self.key, self.attempt - 1);
            stats.backoff_ms_total += delay;
        }
        AttemptPrep::Backoff { delay_ms: delay }
    }

    /// Store-wide admission: pay the pacing charge, or fail fast
    /// (consuming this attempt) while the breaker is open. On admission
    /// the request counter is bumped and the resume offset fixed.
    pub(crate) fn admit(
        &mut self,
        admission: Option<&AdmissionController>,
        connection_id: u64,
        stats: &mut CrawlStats,
    ) -> AdmitVerdict {
        let mut throttle = 0;
        if let Some(ctrl) = admission {
            match ctrl.admit_for(connection_id) {
                Admission::Granted { throttle_ms } => {
                    if throttle_ms > 0 {
                        stats.throttled += 1;
                        stats.throttle_ms_total += throttle_ms;
                        throttle = throttle_ms;
                    }
                }
                Admission::Rejected { retry_after_ms } => {
                    stats.breaker_rejections += 1;
                    stats.backoff_ms_total += retry_after_ms;
                    self.last = Some(StoreError::CircuitOpen {
                        path: self.key.clone(),
                    });
                    return AdmitVerdict::Rejected { retry_after_ms };
                }
            }
        }
        stats.requests += 1;
        self.range_start = if self.prefix.is_empty() {
            None
        } else {
            Some(self.prefix.len())
        };
        AdmitVerdict::Proceed {
            range_start: self.range_start,
            throttle_ms: throttle,
        }
    }

    /// Digest one attempt's transport outcome (a CRC-verified frame, a
    /// truncation, or an error) into a verdict.
    pub(crate) fn absorb(
        &mut self,
        result: Result<ReadOutcome>,
        admission: Option<&AdmissionController>,
        stats: &mut CrawlStats,
    ) -> AttemptVerdict {
        let (err, invalidate) = match result {
            Ok(ReadOutcome::Complete(resp)) if resp.status == 200 => {
                if let Some(ctrl) = admission {
                    ctrl.report_success();
                }
                match finish_body(stats, resp, &mut self.prefix, &self.wire, self.range_start) {
                    Ok(resp) => return AttemptVerdict::Done(resp),
                    // Stitched-body checksum mismatch: the prefix was
                    // poisoned; retry from byte 0.
                    Err(e) => (e, false),
                }
            }
            Ok(ReadOutcome::Complete(resp))
                if resp.status == 429 || (500..=599).contains(&resp.status) =>
            {
                if let Some(ctrl) = admission {
                    ctrl.report_transient();
                }
                // The frame itself was well-formed, so the stream is
                // still in sync: keep the connection (and any resume
                // prefix) for the retry.
                (
                    StoreError::Transient {
                        status: resp.status,
                        path: self.wire.clone(),
                    },
                    false,
                )
            }
            Ok(ReadOutcome::Complete(resp)) => {
                // Permanent status (404/400/…): not retriable.
                return AttemptVerdict::Fatal {
                    error: StoreError::NotFound(format!(
                        "{} -> {} ({})",
                        self.wire,
                        resp.status,
                        resp.text()
                    )),
                    invalidate: false,
                };
            }
            Ok(ReadOutcome::Truncated {
                status,
                headers,
                received,
                expected_len,
            }) => {
                // Mid-body cut: the stream is desynced either way.
                if self.resumable && status == 200 && !received.is_empty() {
                    let echoed = headers.iter().any(|(k, v)| {
                        k == RANGE_START_HEADER && v.parse::<usize>().ok() == self.range_start
                    });
                    if self.range_start.is_some() && echoed {
                        // The suffix continues our prefix.
                        self.prefix.extend_from_slice(&received);
                    } else {
                        // A fresh body from byte 0 (first attempt, or
                        // the server declined the range).
                        self.prefix = received;
                    }
                }
                (
                    StoreError::Protocol(format!(
                        "response truncated mid-body ({} of {expected_len} bytes held)",
                        self.prefix.len()
                    )),
                    true,
                )
            }
            // IO, framing or integrity failure: the stream can no longer
            // be trusted to be request-aligned.
            Err(e) => (e, true),
        };
        if !err.is_transient() {
            return AttemptVerdict::Fatal {
                error: err,
                invalidate,
            };
        }
        self.last = Some(err);
        AttemptVerdict::Retry { invalidate }
    }
}

/// Configures and dials a [`Crawler`]. Obtained from
/// [`Crawler::builder`]; every knob has a sensible default.
///
/// ```no_run
/// # use gaugenn_playstore::crawler::{Crawler, RetryPolicy};
/// # fn demo(addr: std::net::SocketAddr) -> gaugenn_playstore::Result<()> {
/// let crawler = Crawler::builder(addr)
///     .retry(RetryPolicy { max_attempts: 6, ..RetryPolicy::default() })
///     .timeouts(std::time::Duration::from_secs(1), std::time::Duration::from_secs(3))
///     .connection_id(3)
///     .build()?;
/// # let _ = crawler; Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CrawlerBuilder {
    endpoint: Endpoint,
    config: CrawlerConfig,
    retry: RetryPolicy,
    connect_timeout: Duration,
    read_timeout: Duration,
    connection_id: u64,
    admission: Option<Arc<AdmissionController>>,
    resume: Option<Arc<BTreeMap<String, CrawledApp>>>,
}

impl CrawlerBuilder {
    fn new(endpoint: Endpoint) -> CrawlerBuilder {
        CrawlerBuilder {
            endpoint,
            config: CrawlerConfig::default(),
            retry: RetryPolicy::default(),
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(2),
            connection_id: 0,
            admission: None,
            resume: None,
        }
    }

    /// Identity headers and page size.
    pub fn config(mut self, config: CrawlerConfig) -> CrawlerBuilder {
        self.config = config;
        self
    }

    /// Retry/backoff policy for every store request.
    pub fn retry(mut self, retry: RetryPolicy) -> CrawlerBuilder {
        self.retry = retry;
        self
    }

    /// Connect and read timeouts.
    pub fn timeouts(mut self, connect: Duration, read: Duration) -> CrawlerBuilder {
        self.connect_timeout = connect;
        self.read_timeout = read;
        self
    }

    /// Connection id: announced to the server on every request, folded
    /// into the backoff jitter, and the key of this connection's chaos
    /// fault schedule. Pool workers get distinct ids; the default is 0.
    pub fn connection_id(mut self, id: u64) -> CrawlerBuilder {
        self.connection_id = id;
        self
    }

    /// Seed for the retry-jitter draws (shorthand for setting
    /// [`RetryPolicy::jitter_seed`]).
    pub fn jitter_seed(mut self, seed: u64) -> CrawlerBuilder {
        self.retry.jitter_seed = seed;
        self
    }

    /// Store-wide admission controller (rate limit + circuit breaker)
    /// shared with the other workers of a pool.
    pub fn admission(mut self, controller: Arc<AdmissionController>) -> CrawlerBuilder {
        self.admission = Some(controller);
        self
    }

    /// Resume cache: apps a replayed crash journal already holds, keyed
    /// by package. A listed package found here is served from the cache
    /// — no metadata, APK, OBB or bundle requests — and counted in
    /// [`CrawlStats::journal_restores`]. The corpus order is unchanged
    /// because the listing itself still drives iteration.
    pub fn resume_cache(mut self, cache: Arc<BTreeMap<String, CrawledApp>>) -> CrawlerBuilder {
        self.resume = Some(cache);
        self
    }

    /// Dial the store and hand back a ready crawler.
    pub fn build(self) -> Result<Crawler> {
        let mut c = Crawler {
            config: self.config,
            retry: self.retry,
            endpoint: self.endpoint,
            connect_timeout: self.connect_timeout,
            read_timeout: self.read_timeout,
            connection_id: self.connection_id,
            admission: self.admission,
            resume: self.resume,
            conn: None,
            stats: CrawlStats::default(),
        };
        c.dial()?;
        Ok(c)
    }
}

/// The crawler: a keep-alive connection to the store that re-dials and
/// retries its way through transient failures.
pub struct Crawler {
    config: CrawlerConfig,
    retry: RetryPolicy,
    endpoint: Endpoint,
    connect_timeout: Duration,
    read_timeout: Duration,
    connection_id: u64,
    admission: Option<Arc<AdmissionController>>,
    resume: Option<Arc<BTreeMap<String, CrawledApp>>>,
    conn: Option<Conn>,
    stats: CrawlStats,
}

impl Crawler {
    /// Start configuring a crawler for the TCP store at `addr`.
    pub fn builder(addr: SocketAddr) -> CrawlerBuilder {
        CrawlerBuilder::new(Endpoint::Tcp(addr))
    }

    /// Start configuring a crawler for any [`Endpoint`] — the way to
    /// point a crawler at a sim-reactor store
    /// ([`crate::StoreServer::endpoint`]).
    pub fn builder_at(endpoint: Endpoint) -> CrawlerBuilder {
        CrawlerBuilder::new(endpoint)
    }

    /// Resilience counters so far.
    pub fn stats(&self) -> &CrawlStats {
        &self.stats
    }

    /// This crawler's connection id.
    pub fn connection_id(&self) -> u64 {
        self.connection_id
    }

    fn dial(&mut self) -> Result<()> {
        let stream = self
            .endpoint
            .dial(self.connect_timeout, self.read_timeout)?;
        let reader = BufReader::new(stream.try_clone_box()?);
        if self.conn.is_some() {
            self.stats.reconnects += 1;
        }
        self.conn = Some(Conn {
            reader,
            writer: stream,
        });
        Ok(())
    }

    /// Drop the keep-alive stream: after any mid-response error the old
    /// `BufReader` may hold stale bytes, and reading the next response
    /// from it would desync the protocol.
    fn invalidate(&mut self) {
        self.conn = None;
    }

    /// One raw request/response exchange on the current stream. With
    /// `range_start`, asks the server to serve the body from that offset.
    fn exchange(&mut self, wire_path: &str, range_start: Option<usize>) -> Result<ReadOutcome> {
        if self.conn.is_none() {
            self.dial()?;
            // A fresh dial replaces a previously-invalidated stream; the
            // reconnect counter is bumped in `dial` only when a stream
            // existed before, so count invalidated re-dials here.
            self.stats.reconnects += 1;
        }
        let conn_id = self.connection_id.to_string();
        let range = range_start.map(|n| n.to_string());
        let headers = request_headers(&self.config, conn_id.as_str(), range.as_deref());
        // gaugelint: allow(unwrap-in-fault-path) — provably infallible: ensure_connected() above either filled self.conn or returned Err
        let conn = self.conn.as_mut().expect("dialled above");
        write_request(&mut conn.writer, wire_path, &headers)?;
        let outcome = read_response_resumable(&mut conn.reader)?;
        if let ReadOutcome::Complete(resp) = &outcome {
            verify_body_crc(resp, wire_path)?;
        }
        Ok(outcome)
    }

    /// Issue one request with retries; only a 200 comes back `Ok`.
    fn request(&mut self, route: &Route) -> Result<Response> {
        self.request_inner(route, false)
    }

    /// Issue one typed request and return the raw response. The public
    /// face of the request machinery for non-crawl clients (the query
    /// client builds on it): same retry/backoff, integrity checking and
    /// typed errors as the crawl loop.
    pub fn fetch(&mut self, route: &Route) -> Result<Response> {
        self.request(route)
    }

    /// Like [`Crawler::request`] but keeping truncated body prefixes and
    /// resuming them with range requests — for the large binary payloads
    /// (APKs, OBBs, bundles).
    fn request_resumable(&mut self, route: &Route) -> Result<Response> {
        self.request_inner(route, true)
    }

    fn request_inner(&mut self, route: &Route, resumable: bool) -> Result<Response> {
        let mut sm = RequestSm::new(route, resumable, self.retry.max_attempts);
        loop {
            match sm.begin_attempt(&self.retry, self.connection_id, &mut self.stats) {
                AttemptPrep::Exhausted(e) => return Err(e),
                AttemptPrep::Backoff { delay_ms } => {
                    if self.retry.real_sleep && delay_ms > 0 {
                        std::thread::sleep(Duration::from_millis(delay_ms));
                    }
                }
            }
            let range_start = match sm.admit(
                self.admission.as_deref(),
                self.connection_id,
                &mut self.stats,
            ) {
                AdmitVerdict::Rejected { retry_after_ms } => {
                    if self.retry.real_sleep {
                        std::thread::sleep(Duration::from_millis(retry_after_ms));
                    }
                    continue;
                }
                AdmitVerdict::Proceed {
                    range_start,
                    throttle_ms,
                } => {
                    if self.retry.real_sleep && throttle_ms > 0 {
                        std::thread::sleep(Duration::from_millis(throttle_ms));
                    }
                    range_start
                }
            };
            let result = self.exchange(sm.wire_path(), range_start);
            match sm.absorb(result, self.admission.as_deref(), &mut self.stats) {
                AttemptVerdict::Done(resp) => return Ok(resp),
                AttemptVerdict::Fatal { error, invalidate } => {
                    if invalidate {
                        self.invalidate();
                    }
                    return Err(error);
                }
                AttemptVerdict::Retry { invalidate } => {
                    if invalidate {
                        self.invalidate();
                    }
                }
            }
        }
    }

    /// List all store categories.
    pub fn categories(&mut self) -> Result<Vec<String>> {
        let resp = self.request(&Route::Categories)?;
        Ok(parse_listing(&resp.text()))
    }

    /// List the top apps of a category (paged until the 500 cap or the
    /// category runs out).
    pub fn list_category(&mut self, category: &str) -> Result<Vec<String>> {
        let mut out = Vec::new();
        let mut start = 0usize;
        loop {
            let route = Route::Category {
                name: category.to_string(),
                start,
                count: self.config.page_size,
            };
            let resp = self.request(&route)?;
            let page = parse_listing(&resp.text());
            if page.is_empty() {
                break;
            }
            start += page.len();
            out.extend(page);
            if out.len() >= crate::server::MAX_PER_CATEGORY {
                out.truncate(crate::server::MAX_PER_CATEGORY);
                break;
            }
        }
        Ok(out)
    }

    /// Fetch and parse one app's metadata. Malformed numeric fields are a
    /// typed [`StoreError::Protocol`] — never silently coerced to zero.
    pub fn app_meta(&mut self, package: &str) -> Result<AppMeta> {
        let resp = self.request(&Route::App {
            package: package.to_string(),
        })?;
        parse_app_meta(&resp.text())
    }

    /// Download the base APK (range-resuming truncated transfers).
    pub fn download_apk(&mut self, package: &str) -> Result<Vec<u8>> {
        Ok(self
            .request_resumable(&Route::Apk {
                package: package.to_string(),
            })?
            .body)
    }

    /// Download everything for one app, honouring its OBB/bundle flags.
    pub fn crawl_app(&mut self, package: &str) -> Result<CrawledApp> {
        self.crawl_app_staged(package).map_err(|(_, e)| e)
    }

    /// Like [`Crawler::crawl_app`], but tagging the failing stage so
    /// drop-outs can be attributed (meta vs apk vs obb vs bundle).
    fn crawl_app_staged(
        &mut self,
        package: &str,
    ) -> std::result::Result<CrawledApp, (CrawlStage, StoreError)> {
        if let Some(app) = self.resume.as_ref().and_then(|r| r.get(package)) {
            let app = app.clone();
            self.stats.journal_restores += 1;
            return Ok(app);
        }
        let meta = self
            .app_meta(package)
            .map_err(|e| (CrawlStage::Meta, e))?;
        let apk = self
            .download_apk(package)
            .map_err(|e| (CrawlStage::Apk, e))?;
        let mut obbs = Vec::new();
        if meta.has_obb {
            let resp = self
                .request_resumable(&Route::Obb {
                    package: package.to_string(),
                })
                .map_err(|e| (CrawlStage::Obb, e))?;
            obbs.push(obb_entry(resp, package, meta.version_code));
        }
        let bundle = if meta.has_bundle {
            Some(
                self.request_resumable(&Route::Bundle {
                    package: package.to_string(),
                })
                .map_err(|e| (CrawlStage::Bundle, e))?
                .body,
            )
        } else {
            None
        };
        Ok(CrawledApp {
            meta,
            apk,
            obbs,
            bundle,
        })
    }

    /// Crawl one category end to end: the listing plus every listed app.
    /// Failures become [`DropOut`] records, not errors — the building
    /// block of both [`Crawler::crawl_all`] and the pool's shards.
    pub fn crawl_category(&mut self, category: &str) -> (Vec<CrawledApp>, Vec<DropOut>) {
        let mut apps = Vec::new();
        let mut dropouts = Vec::new();
        let pkgs = match self.list_category(category) {
            Ok(p) => p,
            Err(e) => {
                dropouts.push(DropOut {
                    package: format!("category:{category}"),
                    stage: CrawlStage::Listing,
                    error: e.to_string(),
                });
                return (apps, dropouts);
            }
        };
        for pkg in pkgs {
            match self.crawl_app_staged(&pkg) {
                Ok(app) => apps.push(app),
                Err((stage, e)) => dropouts.push(DropOut {
                    package: pkg,
                    stage,
                    error: e.to_string(),
                }),
            }
        }
        (apps, dropouts)
    }

    /// Full store sweep: every category, every listed app. Apps (and
    /// category listings) that keep failing after retries become
    /// [`DropOut`] records instead of aborting the sweep; only a failure
    /// to enumerate the categories themselves is fatal.
    pub fn crawl_all(&mut self) -> Result<CrawlOutcome> {
        let mut apps = Vec::new();
        let mut dropouts = Vec::new();
        for cat in self.categories()? {
            let (a, d) = self.crawl_category(&cat);
            apps.extend(a);
            dropouts.extend(d);
        }
        Ok(CrawlOutcome {
            apps,
            dropouts,
            stats: self.stats.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{FaultPlan, FaultPlanConfig};
    use crate::corpus::{generate, CorpusScale, Snapshot};
    use crate::server::StoreServer;

    fn start_tiny() -> StoreServer {
        StoreServer::start(generate(CorpusScale::Tiny, Snapshot::Y2021, 7)).unwrap()
    }

    fn crawler(server: &StoreServer) -> Crawler {
        Crawler::builder(server.addr()).build().unwrap()
    }

    #[test]
    fn full_crawl_covers_corpus() {
        let server = start_tiny();
        let mut crawler = crawler(&server);
        let outcome = crawler.crawl_all().unwrap();
        assert_eq!(outcome.apps.len(), 52, "tiny 2021 corpus is 52 apps");
        assert!(outcome.dropouts.is_empty(), "{:?}", outcome.dropouts);
        assert_eq!(outcome.stats.retries, 0, "clean store needs no retries");
        // Every APK parses and matches its metadata.
        for app in &outcome.apps {
            let parsed = gaugenn_apk::Apk::parse(&app.apk).unwrap();
            assert_eq!(parsed.package(), app.meta.package);
        }
    }

    #[test]
    fn paging_collects_whole_categories() {
        let server = start_tiny();
        let cfg = CrawlerConfig {
            page_size: 2, // force multiple pages
            ..CrawlerConfig::default()
        };
        let mut crawler = Crawler::builder(server.addr()).config(cfg).build().unwrap();
        let cats = crawler.categories().unwrap();
        assert!(cats.len() >= 30);
        let all: usize = cats
            .iter()
            .map(|c| crawler.list_category(c).unwrap().len())
            .sum();
        assert_eq!(all, 52);
    }

    #[test]
    fn obbs_and_bundles_fetched_when_advertised() {
        let server = start_tiny();
        let mut crawler = crawler(&server);
        let outcome = crawler.crawl_all().unwrap();
        for app in &outcome.apps {
            if app.meta.has_obb {
                assert_eq!(app.obbs.len(), 1);
                let (name, bytes) = &app.obbs[0];
                let obb = gaugenn_apk::obb::Obb::parse(name, bytes).unwrap();
                assert_eq!(obb.package, app.meta.package);
            } else {
                assert!(app.obbs.is_empty());
            }
            if app.meta.has_bundle {
                let b = gaugenn_apk::bundle::Bundle::parse(app.bundle.as_ref().unwrap()).unwrap();
                assert!(!b.packs.is_empty());
            }
        }
    }

    #[test]
    fn missing_package_is_error() {
        let server = start_tiny();
        let mut crawler = crawler(&server);
        assert!(crawler.app_meta("com.not.there").is_err());
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for retry in 1..=6 {
            let a = p.backoff_ms(0, "/apk/com.x", retry);
            let b = p.backoff_ms(0, "/apk/com.x", retry);
            assert_eq!(a, b, "same (conn, path, retry) draws the same jitter");
            assert!(a <= p.max_backoff_ms, "{a} > cap at retry {retry}");
        }
        // Different paths draw different jitter (with overwhelming odds).
        let spread: std::collections::BTreeSet<u64> = (0..32)
            .map(|i| p.backoff_ms(0, &format!("/apk/com.p{i}"), 3))
            .collect();
        assert!(spread.len() > 1, "jitter should vary by path");
    }

    #[test]
    fn backoff_jitter_varies_by_connection() {
        // The PR 1 bug: jitter keyed only on the path made every worker
        // retry the same package on an identical schedule. With the
        // connection id folded in, the draws must decorrelate.
        let p = RetryPolicy::default();
        let spread: std::collections::BTreeSet<u64> = (0..32)
            .map(|conn| p.backoff_ms(conn, "/apk/com.x", 3))
            .collect();
        assert!(spread.len() > 1, "jitter must vary by connection id");
        // And stay reproducible per connection.
        assert_eq!(
            p.backoff_ms(7, "/apk/com.x", 3),
            p.backoff_ms(7, "/apk/com.x", 3)
        );
    }

    #[test]
    fn transient_statuses_are_retried_to_success() {
        let corpus = generate(CorpusScale::Tiny, Snapshot::Y2021, 7);
        let server = StoreServer::start_with_chaos(
            corpus,
            FaultPlan::new(FaultPlanConfig {
                fault_permille: 1000,
                kinds: vec![crate::chaos::FaultKind::TransientStatus],
                max_faults_per_route: 2,
                ..FaultPlanConfig::default()
            }),
        )
        .unwrap();
        let mut crawler = crawler(&server);
        let cats = crawler.categories().unwrap();
        assert!(cats.len() >= 30);
        assert!(crawler.stats().retries >= 2, "{:?}", crawler.stats());
    }

    #[test]
    fn corrupted_payload_detected_and_refetched() {
        let corpus = generate(CorpusScale::Tiny, Snapshot::Y2021, 7);
        let server = StoreServer::start_with_chaos(
            corpus,
            FaultPlan::new(FaultPlanConfig {
                fault_permille: 1000,
                kinds: vec![crate::chaos::FaultKind::Corrupt],
                max_faults_per_route: 1,
                ..FaultPlanConfig::default()
            }),
        )
        .unwrap();
        let mut crawler = crawler(&server);
        // First attempt is corrupted (checksum catches it), retry is clean.
        let cats = crawler.categories().unwrap();
        assert!(cats.len() >= 30);
        assert!(crawler.stats().retries >= 1);
    }

    #[test]
    fn truncated_apk_resumes_with_a_range_request() {
        // Truncate-only chaos: the first APK attempt is cut mid-body; the
        // retry must fetch only the remainder and stitch, not restart.
        let corpus = generate(CorpusScale::Tiny, Snapshot::Y2021, 7);
        let pkg = corpus.apps[0].package.clone();
        let clean_server = StoreServer::start(corpus.clone()).unwrap();
        let mut clean = Crawler::builder(clean_server.addr()).build().unwrap();
        let want = clean.download_apk(&pkg).unwrap();

        let server = StoreServer::start_with_chaos(
            corpus,
            FaultPlan::new(FaultPlanConfig {
                fault_permille: 1000,
                kinds: vec![crate::chaos::FaultKind::Truncate],
                max_faults_per_route: 1,
                ..FaultPlanConfig::default()
            }),
        )
        .unwrap();
        let mut c = Crawler::builder(server.addr()).build().unwrap();
        let got = c.download_apk(&pkg).unwrap();
        assert_eq!(got, want, "stitched body must be byte-identical");
        assert!(
            c.stats().range_resumes >= 1,
            "resume must go through the range path: {:?}",
            c.stats()
        );
    }

    #[test]
    fn admission_counters_flow_into_stats() {
        use crate::admission::{AdmissionConfig, AdmissionController};
        let server = start_tiny();
        let ctrl = Arc::new(AdmissionController::new(AdmissionConfig {
            burst: 3,
            throttle_ms: 5,
            ..AdmissionConfig::default()
        }));
        let mut c = Crawler::builder(server.addr())
            .admission(ctrl.clone())
            .build()
            .unwrap();
        let cats = crawler_categories_n(&mut c, 10);
        assert!(cats >= 10);
        let stats = c.stats();
        assert!(stats.throttled >= 7, "{stats:?}");
        assert_eq!(stats.throttle_ms_total, stats.throttled * 5);
        assert_eq!(ctrl.stats().throttled, stats.throttled);
    }

    fn crawler_categories_n(c: &mut Crawler, n: usize) -> usize {
        let mut total = 0;
        for _ in 0..n {
            total += usize::from(!c.categories().unwrap().is_empty());
        }
        total
    }
}
