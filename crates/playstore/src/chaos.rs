//! Deterministic fault injection for the store server.
//!
//! The paper's crawl is dominated by partial failures — downloads that
//! reset, throttle, stall or corrupt — and gaugeNN retries them rather
//! than aborting the sweep. To make that resilience *testable*, this
//! module gives [`crate::server::StoreServer`] a seeded [`FaultPlan`] it
//! consults once per request. The plan decides, purely from
//! `(seed, path, per-path attempt number)`, whether to serve the request
//! cleanly or to inject one of five fault kinds:
//!
//! * connection reset (close before any byte of the response),
//! * truncated response (a prefix of the frame, then close),
//! * stalled response (hold the socket silent, then close),
//! * transient `429`/`503` status,
//! * corrupted payload bytes (detected by the integrity checksum).
//!
//! Because the schedule is a pure function of the request sequence, two
//! crawls of the same store with the same seeds observe byte-identical
//! faults and produce byte-identical results — the repo's determinism
//! guarantee (DESIGN.md §6) extends to its failures.

use parking_lot::Mutex;
use std::collections::HashMap;

/// SplitMix64: the small deterministic mixer behind every chaos decision
/// and every retry-jitter draw. Public so the crawler's backoff jitter
/// shares the same primitive.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// FNV-1a over a string, for keying chaos/jitter decisions on a route.
pub fn hash_str(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The fault taxonomy (DESIGN.md §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Close the connection before writing any response byte.
    Reset,
    /// Write a strict prefix of the response frame, then close.
    Truncate,
    /// Hold the connection silent for `stall_ms`, then close.
    Stall,
    /// Serve a transient 429/503 status instead of the real response.
    TransientStatus,
    /// Flip payload bytes (Content-Length stays correct; only the
    /// integrity checksum exposes it).
    Corrupt,
}

impl FaultKind {
    /// Every kind, for "inject everything" plans.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Reset,
        FaultKind::Truncate,
        FaultKind::Stall,
        FaultKind::TransientStatus,
        FaultKind::Corrupt,
    ];
}

/// The concrete action the server takes for one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Serve cleanly.
    None,
    /// Drop the connection without a response.
    Reset,
    /// Keep `keep_permille`/1000 of the serialized frame, then close.
    Truncate {
        /// Fraction of the frame to write, in permille (always < 1000).
        keep_permille: u32,
    },
    /// Sleep this long without writing, then close.
    Stall {
        /// Stall duration in milliseconds.
        ms: u64,
    },
    /// Replace the response with this transient status.
    Status(u16),
    /// XOR every body byte with this non-zero mask after the checksum
    /// header is computed.
    Corrupt {
        /// XOR mask applied to the body.
        xor: u8,
    },
}

/// Configuration for a [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct FaultPlanConfig {
    /// Seed for the fault schedule.
    pub seed: u64,
    /// Per-request fault probability in permille (0..=1000).
    pub fault_permille: u32,
    /// Enabled fault kinds (empty disables injection entirely).
    pub kinds: Vec<FaultKind>,
    /// Ceiling on injected faults per route: after this many faulted
    /// attempts a route is served cleanly, so every fault is *transient*
    /// and a crawler with enough retry budget recovers 100 % of apps.
    pub max_faults_per_route: u32,
    /// Stall duration for [`FaultKind::Stall`].
    pub stall_ms: u64,
    /// Routes (substring match on the request path) that fail on *every*
    /// attempt — the permanent drop-outs of the Table 2 accounting.
    pub permanent_routes: Vec<String>,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig {
            seed: 0xC4A0_5,
            fault_permille: 250,
            kinds: FaultKind::ALL.to_vec(),
            max_faults_per_route: 2,
            stall_ms: 30,
            permanent_routes: Vec::new(),
        }
    }
}

/// A seeded, route-aware fault schedule.
///
/// Thread-safe: the per-route attempt counters live behind a mutex so a
/// chaos-wrapped server can still serve concurrent connections, but the
/// determinism guarantee only covers a *sequential* request stream (one
/// crawler), where the attempt numbering is reproducible.
#[derive(Debug)]
pub struct FaultPlan {
    cfg: FaultPlanConfig,
    state: Mutex<PlanState>,
}

#[derive(Debug, Default)]
struct PlanState {
    attempts: HashMap<String, u32>,
    requests: u64,
    injected: u64,
}

impl FaultPlan {
    /// Build a plan from a config.
    pub fn new(cfg: FaultPlanConfig) -> FaultPlan {
        FaultPlan {
            cfg,
            state: Mutex::new(PlanState::default()),
        }
    }

    /// The configuration this plan runs.
    pub fn config(&self) -> &FaultPlanConfig {
        &self.cfg
    }

    /// Total requests the plan has ruled on.
    pub fn requests_seen(&self) -> u64 {
        self.state.lock().requests
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.state.lock().injected
    }

    /// Decide the fate of one request. Deterministic in
    /// `(seed, path, attempt#)`, where the attempt number counts prior
    /// requests to the same path.
    pub fn decide(&self, path: &str) -> FaultAction {
        let mut st = self.state.lock();
        st.requests += 1;
        let attempt = {
            let a = st.attempts.entry(path.to_string()).or_insert(0);
            let n = *a;
            *a += 1;
            n
        };
        let h = splitmix64(self.cfg.seed ^ hash_str(path) ^ (attempt as u64).wrapping_mul(0xA5A5));
        if self
            .cfg
            .permanent_routes
            .iter()
            .any(|r| path.contains(r.as_str()))
        {
            st.injected += 1;
            return self.action_for(h);
        }
        if attempt >= self.cfg.max_faults_per_route {
            return FaultAction::None;
        }
        if (h % 1000) as u32 >= self.cfg.fault_permille {
            return FaultAction::None;
        }
        st.injected += 1;
        self.action_for(h >> 10)
    }

    fn action_for(&self, h: u64) -> FaultAction {
        if self.cfg.kinds.is_empty() {
            return FaultAction::None;
        }
        match self.cfg.kinds[(h as usize) % self.cfg.kinds.len()] {
            FaultKind::Reset => FaultAction::Reset,
            FaultKind::Truncate => FaultAction::Truncate {
                // Keep 10–90 % of the frame: always a strict prefix.
                keep_permille: 100 + ((h >> 8) % 800) as u32,
            },
            FaultKind::Stall => FaultAction::Stall {
                ms: self.cfg.stall_ms,
            },
            FaultKind::TransientStatus => {
                FaultAction::Status(if h & (1 << 9) == 0 { 429 } else { 503 })
            }
            FaultKind::Corrupt => FaultAction::Corrupt {
                xor: 0x01 | (h >> 16) as u8,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(cfg: FaultPlanConfig) -> FaultPlan {
        FaultPlan::new(cfg)
    }

    #[test]
    fn schedule_is_deterministic() {
        let cfg = FaultPlanConfig {
            fault_permille: 500,
            ..FaultPlanConfig::default()
        };
        let a = plan(cfg.clone());
        let b = plan(cfg);
        for path in ["/categories", "/app/com.x", "/apk/com.x", "/app/com.x"] {
            assert_eq!(a.decide(path), b.decide(path), "{path}");
        }
        assert_eq!(a.injected(), b.injected());
        assert_eq!(a.requests_seen(), 4);
    }

    #[test]
    fn faults_per_route_are_bounded() {
        let p = plan(FaultPlanConfig {
            fault_permille: 1000, // fault every eligible attempt
            max_faults_per_route: 2,
            ..FaultPlanConfig::default()
        });
        let first = p.decide("/apk/com.a");
        let second = p.decide("/apk/com.a");
        assert_ne!(first, FaultAction::None);
        assert_ne!(second, FaultAction::None);
        // Attempts beyond the ceiling are always served cleanly.
        for _ in 0..5 {
            assert_eq!(p.decide("/apk/com.a"), FaultAction::None);
        }
    }

    #[test]
    fn permanent_routes_never_recover() {
        let p = plan(FaultPlanConfig {
            fault_permille: 0,
            permanent_routes: vec!["/apk/com.doomed".into()],
            ..FaultPlanConfig::default()
        });
        for _ in 0..10 {
            assert_ne!(p.decide("/apk/com.doomed"), FaultAction::None);
        }
        assert_eq!(p.decide("/apk/com.fine"), FaultAction::None);
        assert_eq!(p.injected(), 10);
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let p = plan(FaultPlanConfig {
            fault_permille: 0,
            ..FaultPlanConfig::default()
        });
        for i in 0..100 {
            assert_eq!(p.decide(&format!("/app/com.pkg{i}")), FaultAction::None);
        }
        assert_eq!(p.injected(), 0);
    }

    #[test]
    fn rate_roughly_honoured_across_routes() {
        let p = plan(FaultPlanConfig {
            fault_permille: 300,
            max_faults_per_route: 1,
            ..FaultPlanConfig::default()
        });
        let mut faulted = 0;
        for i in 0..1000 {
            if p.decide(&format!("/app/com.pkg{i}")) != FaultAction::None {
                faulted += 1;
            }
        }
        assert!((200..400).contains(&faulted), "{faulted} faults at 30%");
    }

    #[test]
    fn truncation_keeps_a_strict_prefix() {
        let p = plan(FaultPlanConfig {
            fault_permille: 1000,
            kinds: vec![FaultKind::Truncate],
            ..FaultPlanConfig::default()
        });
        for i in 0..50 {
            match p.decide(&format!("/apk/com.t{i}")) {
                FaultAction::Truncate { keep_permille } => {
                    assert!((100..1000).contains(&keep_permille))
                }
                other => panic!("expected truncate, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_mask_is_nonzero() {
        let p = plan(FaultPlanConfig {
            fault_permille: 1000,
            kinds: vec![FaultKind::Corrupt],
            ..FaultPlanConfig::default()
        });
        for i in 0..50 {
            match p.decide(&format!("/apk/com.c{i}")) {
                FaultAction::Corrupt { xor } => assert_ne!(xor, 0),
                other => panic!("expected corrupt, got {other:?}"),
            }
        }
    }
}
