//! Deterministic fault injection for the store server.
//!
//! The paper's crawl is dominated by partial failures — downloads that
//! reset, throttle, stall or corrupt — and gaugeNN retries them rather
//! than aborting the sweep. To make that resilience *testable*, this
//! module gives [`crate::server::StoreServer`] a seeded [`FaultPlan`] it
//! consults once per request. The plan decides, purely from
//! `(seed ⊕ connection id, route, per-(connection, route) attempt
//! number)`, whether to serve the request cleanly or to inject one of
//! five fault kinds:
//!
//! * connection reset (close before any byte of the response),
//! * truncated response (a prefix of the frame, then close),
//! * stalled response (hold the socket silent, then close),
//! * transient `429`/`503` status,
//! * corrupted payload bytes (detected by the integrity checksum).
//!
//! Because schedules are keyed per connection (the crawler announces its
//! id in the `x-connection-id` header), each crawler's fault sequence is
//! a pure function of its own request order, not of how the kernel
//! happens to interleave threads: an 8-worker chaos crawl with a fixed
//! seed observes byte-identical faults on every run — the repo's
//! determinism guarantee (DESIGN.md §6) extends to its failures, even
//! concurrent ones. (PR 1 keyed attempts globally per route, so
//! concurrent crawlers stole each other's fault budget; see ROADMAP.)

use crate::route::Route;
use parking_lot::Mutex;
use std::collections::HashMap;

/// SplitMix64: the small deterministic mixer behind every chaos decision
/// and every retry-jitter draw. Public so the crawler's backoff jitter
/// shares the same primitive.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// FNV-1a over a string, for keying chaos/jitter decisions on a route.
pub fn hash_str(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The fault taxonomy (DESIGN.md §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Close the connection before writing any response byte.
    Reset,
    /// Write a strict prefix of the response frame, then close.
    Truncate,
    /// Hold the connection silent for `stall_ms`, then close.
    Stall,
    /// Serve a transient 429/503 status instead of the real response.
    TransientStatus,
    /// Flip payload bytes (Content-Length stays correct; only the
    /// integrity checksum exposes it).
    Corrupt,
}

impl FaultKind {
    /// Every kind, for "inject everything" plans.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Reset,
        FaultKind::Truncate,
        FaultKind::Stall,
        FaultKind::TransientStatus,
        FaultKind::Corrupt,
    ];
}

/// The concrete action the server takes for one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Serve cleanly.
    None,
    /// Drop the connection without a response.
    Reset,
    /// Keep `keep_permille`/1000 of the serialized frame, then close.
    Truncate {
        /// Fraction of the frame to write, in permille (always < 1000).
        keep_permille: u32,
    },
    /// Sleep this long without writing, then close.
    Stall {
        /// Stall duration in milliseconds.
        ms: u64,
    },
    /// Replace the response with this transient status.
    Status(u16),
    /// XOR every body byte with this non-zero mask after the checksum
    /// header is computed.
    Corrupt {
        /// XOR mask applied to the body.
        xor: u8,
    },
}

/// Configuration for a [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct FaultPlanConfig {
    /// Seed for the fault schedule.
    pub seed: u64,
    /// Per-request fault probability in permille (0..=1000).
    pub fault_permille: u32,
    /// Enabled fault kinds (empty disables injection entirely).
    pub kinds: Vec<FaultKind>,
    /// Ceiling on injected faults per `(connection, route)` pair: after
    /// this many faulted attempts a route is served cleanly to that
    /// connection, so every fault is *transient* and a crawler with
    /// enough retry budget recovers 100 % of apps.
    pub max_faults_per_route: u32,
    /// Stall duration for [`FaultKind::Stall`].
    pub stall_ms: u64,
    /// Routes (substring match on the request path) that fail on *every*
    /// attempt — the permanent drop-outs of the Table 2 accounting.
    pub permanent_routes: Vec<String>,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig {
            seed: 0xC4A05,
            fault_permille: 250,
            kinds: FaultKind::ALL.to_vec(),
            max_faults_per_route: 2,
            stall_ms: 30,
            permanent_routes: Vec::new(),
        }
    }
}

/// A seeded, route-aware fault schedule with per-connection attempt
/// counters.
///
/// Thread-safe, and deterministic even under concurrency: attempts are
/// keyed by `(connection id, route)`, so every crawler connection draws
/// from its own schedule (seeded `base_seed ⊕ mix(connection_id)`) in its
/// own request order, no matter how server threads interleave.
#[derive(Debug)]
pub struct FaultPlan {
    cfg: FaultPlanConfig,
    state: Mutex<PlanState>,
}

#[derive(Debug, Default)]
struct PlanState {
    attempts: HashMap<(u64, String), u32>,
    requests: u64,
    injected: u64,
}

impl FaultPlan {
    /// Build a plan from a config.
    pub fn new(cfg: FaultPlanConfig) -> FaultPlan {
        FaultPlan {
            cfg,
            state: Mutex::new(PlanState::default()),
        }
    }

    /// The configuration this plan runs.
    pub fn config(&self) -> &FaultPlanConfig {
        &self.cfg
    }

    /// Total requests the plan has ruled on.
    pub fn requests_seen(&self) -> u64 {
        self.state.lock().requests
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.state.lock().injected
    }

    /// Decide the fate of one request. Deterministic in
    /// `(seed ⊕ mix(connection), route, attempt#)`, where the attempt
    /// number counts prior requests *from the same connection* to the
    /// same route (query strings ignored, so every page of a category and
    /// every range-resumed retry of an APK share one schedule).
    pub fn decide(&self, connection_id: u64, route: &Route) -> FaultAction {
        let key = route.fault_key();
        let mut st = self.state.lock();
        st.requests += 1;
        let attempt = {
            let a = st.attempts.entry((connection_id, key.clone())).or_insert(0);
            let n = *a;
            *a += 1;
            n
        };
        let conn_seed = self.cfg.seed ^ splitmix64(connection_id);
        let h = splitmix64(conn_seed ^ hash_str(&key) ^ (attempt as u64).wrapping_mul(0xA5A5));
        if self
            .cfg
            .permanent_routes
            .iter()
            .any(|r| key.contains(r.as_str()))
        {
            st.injected += 1;
            return self.action_for(h);
        }
        if attempt >= self.cfg.max_faults_per_route {
            return FaultAction::None;
        }
        if (h % 1000) as u32 >= self.cfg.fault_permille {
            return FaultAction::None;
        }
        st.injected += 1;
        self.action_for(h >> 10)
    }

    fn action_for(&self, h: u64) -> FaultAction {
        if self.cfg.kinds.is_empty() {
            return FaultAction::None;
        }
        match self.cfg.kinds[(h as usize) % self.cfg.kinds.len()] {
            FaultKind::Reset => FaultAction::Reset,
            FaultKind::Truncate => FaultAction::Truncate {
                // Keep 10–90 % of the frame: always a strict prefix.
                keep_permille: 100 + ((h >> 8) % 800) as u32,
            },
            FaultKind::Stall => FaultAction::Stall {
                ms: self.cfg.stall_ms,
            },
            FaultKind::TransientStatus => {
                FaultAction::Status(if h & (1 << 9) == 0 { 429 } else { 503 })
            }
            FaultKind::Corrupt => FaultAction::Corrupt {
                xor: 0x01 | (h >> 16) as u8,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(cfg: FaultPlanConfig) -> FaultPlan {
        FaultPlan::new(cfg)
    }

    fn apk(pkg: &str) -> Route {
        Route::Apk {
            package: pkg.into(),
        }
    }

    fn app(pkg: &str) -> Route {
        Route::App {
            package: pkg.into(),
        }
    }

    #[test]
    fn schedule_is_deterministic() {
        let cfg = FaultPlanConfig {
            fault_permille: 500,
            ..FaultPlanConfig::default()
        };
        let a = plan(cfg.clone());
        let b = plan(cfg);
        for route in [Route::Categories, app("com.x"), apk("com.x"), app("com.x")] {
            assert_eq!(a.decide(0, &route), b.decide(0, &route), "{route}");
        }
        assert_eq!(a.injected(), b.injected());
        assert_eq!(a.requests_seen(), 4);
    }

    #[test]
    fn connections_draw_independent_schedules() {
        // Same route, same attempt number, different connections: the
        // draws come from different streams (seed ⊕ connection), so over
        // many connections the actions differ.
        let p = plan(FaultPlanConfig {
            fault_permille: 500,
            ..FaultPlanConfig::default()
        });
        let actions: Vec<FaultAction> =
            (0..32).map(|conn| p.decide(conn, &apk("com.x"))).collect();
        let distinct: std::collections::BTreeSet<String> =
            actions.iter().map(|a| format!("{a:?}")).collect();
        assert!(distinct.len() > 1, "schedules must vary by connection");
    }

    #[test]
    fn connection_attempts_are_counted_separately() {
        // One connection exhausting its fault budget must not eat into
        // another's — the PR 1 bug this redesign removes.
        let p = plan(FaultPlanConfig {
            fault_permille: 1000,
            max_faults_per_route: 2,
            ..FaultPlanConfig::default()
        });
        for _ in 0..2 {
            assert_ne!(p.decide(1, &apk("com.a")), FaultAction::None);
        }
        assert_eq!(p.decide(1, &apk("com.a")), FaultAction::None);
        // Connection 2 still gets its own two faults on the same route.
        assert_ne!(p.decide(2, &apk("com.a")), FaultAction::None);
        assert_ne!(p.decide(2, &apk("com.a")), FaultAction::None);
        assert_eq!(p.decide(2, &apk("com.a")), FaultAction::None);
    }

    #[test]
    fn faults_per_route_are_bounded() {
        let p = plan(FaultPlanConfig {
            fault_permille: 1000, // fault every eligible attempt
            max_faults_per_route: 2,
            ..FaultPlanConfig::default()
        });
        let first = p.decide(0, &apk("com.a"));
        let second = p.decide(0, &apk("com.a"));
        assert_ne!(first, FaultAction::None);
        assert_ne!(second, FaultAction::None);
        // Attempts beyond the ceiling are always served cleanly.
        for _ in 0..5 {
            assert_eq!(p.decide(0, &apk("com.a")), FaultAction::None);
        }
    }

    #[test]
    fn pages_share_one_schedule() {
        // Query strings are ignored in the schedule key: pages of one
        // category consume one fault budget, not one per page.
        let p = plan(FaultPlanConfig {
            fault_permille: 1000,
            max_faults_per_route: 1,
            ..FaultPlanConfig::default()
        });
        let page = |start| Route::Category {
            name: "games".into(),
            start,
            count: 2,
        };
        assert_ne!(p.decide(0, &page(0)), FaultAction::None);
        assert_eq!(p.decide(0, &page(2)), FaultAction::None);
        assert_eq!(p.decide(0, &page(4)), FaultAction::None);
    }

    #[test]
    fn permanent_routes_never_recover() {
        let p = plan(FaultPlanConfig {
            fault_permille: 0,
            permanent_routes: vec!["/apk/com.doomed".into()],
            ..FaultPlanConfig::default()
        });
        for conn in 0..2 {
            for _ in 0..5 {
                assert_ne!(p.decide(conn, &apk("com.doomed")), FaultAction::None);
            }
        }
        assert_eq!(p.decide(0, &apk("com.fine")), FaultAction::None);
        assert_eq!(p.injected(), 10);
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let p = plan(FaultPlanConfig {
            fault_permille: 0,
            ..FaultPlanConfig::default()
        });
        for i in 0..100 {
            assert_eq!(p.decide(0, &app(&format!("com.pkg{i}"))), FaultAction::None);
        }
        assert_eq!(p.injected(), 0);
    }

    #[test]
    fn rate_roughly_honoured_across_routes() {
        let p = plan(FaultPlanConfig {
            fault_permille: 300,
            max_faults_per_route: 1,
            ..FaultPlanConfig::default()
        });
        let mut faulted = 0;
        for i in 0..1000 {
            if p.decide(0, &app(&format!("com.pkg{i}"))) != FaultAction::None {
                faulted += 1;
            }
        }
        assert!((200..400).contains(&faulted), "{faulted} faults at 30%");
    }

    #[test]
    fn truncation_keeps_a_strict_prefix() {
        let p = plan(FaultPlanConfig {
            fault_permille: 1000,
            kinds: vec![FaultKind::Truncate],
            ..FaultPlanConfig::default()
        });
        for i in 0..50 {
            match p.decide(0, &apk(&format!("com.t{i}"))) {
                FaultAction::Truncate { keep_permille } => {
                    assert!((100..1000).contains(&keep_permille))
                }
                other => panic!("expected truncate, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_mask_is_nonzero() {
        let p = plan(FaultPlanConfig {
            fault_permille: 1000,
            kinds: vec![FaultKind::Corrupt],
            ..FaultPlanConfig::default()
        });
        for i in 0..50 {
            match p.decide(0, &apk(&format!("com.c{i}"))) {
                FaultAction::Corrupt { xor } => assert_ne!(xor, 0),
                other => panic!("expected corrupt, got {other:?}"),
            }
        }
    }
}
