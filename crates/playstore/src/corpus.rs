//! Deterministic store-corpus generator.
//!
//! Produces the app population and the unique-model pool for a snapshot.
//! The generator *plants* the structures the paper measures — duplication,
//! fine-tuning lineages, quantisation adoption, weight sparsity, cloud-API
//! calls, hardware-acceleration markers, obfuscated models — but the
//! pipeline never reads these fields: every statistic is re-derived from
//! the binary APKs served over TCP.

use crate::categories::{apportion, CATEGORIES};
use gaugenn_apk::apk::ApkBuilder;
use gaugenn_dnn::quant::{apply, prune_graph, QuantMode};
use gaugenn_dnn::task::Task;
use gaugenn_dnn::zoo::{build_for_task, fine_tune, SizeClass};
use gaugenn_dnn::Graph;
use gaugenn_modelfmt::{encode, Framework, ModelArtifact};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Which snapshot to generate (§4.1: 14 Feb 2020 / 4 Apr 2021).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Snapshot {
    /// The February 2020 snapshot.
    Y2020,
    /// The April 2021 snapshot.
    Y2021,
}

impl Snapshot {
    /// Display label.
    pub const fn label(self) -> &'static str {
        match self {
            Snapshot::Y2020 => "Feb 2020",
            Snapshot::Y2021 => "Apr 2021",
        }
    }
}

/// Corpus size profile. `Paper` reproduces the study's counts; the smaller
/// profiles keep tests and examples fast while preserving every structural
/// property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorpusScale {
    /// ~50 apps; seconds to crawl. For unit/integration tests.
    Tiny,
    /// ~400 apps. For examples.
    Small,
    /// The paper's 16.6 k apps / 1,666 models. For the repro binary.
    Paper,
}

/// Numeric targets for one (scale, snapshot) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Targets {
    /// Total apps crawled.
    pub total_apps: u32,
    /// Apps that include ML libraries (Table 2 "apps with ML").
    pub ml_lib_apps: u32,
    /// Of those, apps whose models are obfuscated/encrypted (tracked but
    /// not benchmarkable).
    pub obfuscated_apps: u32,
    /// Total model instances across apps.
    pub model_instances: u32,
    /// Distinct models (by checksum).
    pub unique_models: u32,
    /// Apps invoking cloud ML APIs.
    pub cloud_apps: u32,
    /// Of the cloud apps, how many use Google (rest use Amazon).
    pub cloud_google: u32,
    /// Apps using the NNAPI delegate.
    pub nnapi_apps: u32,
    /// Apps using XNNPACK.
    pub xnnpack_apps: u32,
    /// Apps shipping SNPE `.dlc` models (alongside TFLite twins, §6.3).
    pub snpe_apps: u32,
}

impl Targets {
    /// Targets for a scale/snapshot pair.
    pub fn for_scale(scale: CorpusScale, snapshot: Snapshot) -> Targets {
        use CorpusScale::*;
        use Snapshot::*;
        match (scale, snapshot) {
            (Paper, Y2021) => Targets {
                total_apps: 16_653,
                ml_lib_apps: 377,
                obfuscated_apps: 35,
                model_instances: 1_666,
                unique_models: 318,
                cloud_apps: 524,
                cloud_google: 452,
                nnapi_apps: 71,
                xnnpack_apps: 1,
                snpe_apps: 3,
            },
            (Paper, Y2020) => Targets {
                total_apps: 16_542,
                ml_lib_apps: 236,
                obfuscated_apps: 22,
                model_instances: 821,
                unique_models: 158,
                cloud_apps: 225,
                cloud_google: 194,
                nnapi_apps: 25,
                xnnpack_apps: 0,
                snpe_apps: 1,
            },
            (Small, Y2021) => Targets {
                total_apps: 380,
                ml_lib_apps: 42,
                obfuscated_apps: 4,
                model_instances: 170,
                unique_models: 34,
                cloud_apps: 52,
                cloud_google: 45,
                nnapi_apps: 8,
                xnnpack_apps: 1,
                snpe_apps: 1,
            },
            (Small, Y2020) => Targets {
                total_apps: 360,
                ml_lib_apps: 26,
                obfuscated_apps: 2,
                model_instances: 84,
                unique_models: 17,
                cloud_apps: 22,
                cloud_google: 19,
                nnapi_apps: 3,
                xnnpack_apps: 0,
                snpe_apps: 1,
            },
            (Tiny, Y2021) => Targets {
                total_apps: 52,
                ml_lib_apps: 11,
                obfuscated_apps: 1,
                model_instances: 26,
                unique_models: 10,
                cloud_apps: 7,
                cloud_google: 6,
                nnapi_apps: 2,
                xnnpack_apps: 1,
                snpe_apps: 1,
            },
            (Tiny, Y2020) => Targets {
                total_apps: 46,
                ml_lib_apps: 7,
                obfuscated_apps: 1,
                model_instances: 13,
                unique_models: 5,
                cloud_apps: 3,
                cloud_google: 3,
                nnapi_apps: 1,
                xnnpack_apps: 0,
                snpe_apps: 0,
            },
        }
    }
}

/// A unique model in the cross-snapshot pool. Pool ids are stable across
/// snapshots so Fig. 5's add/remove diff is meaningful.
#[derive(Debug, Clone, PartialEq)]
pub struct UniqueModel {
    /// Pool id.
    pub id: usize,
    /// Ground-truth task (never serialised into the artifact).
    pub task: Task,
    /// Framework the artifact is encoded in.
    pub framework: Framework,
    /// Weight seed.
    pub seed: u64,
    /// Size class.
    pub size: SizeClass,
    /// Quantisation applied (§6.1 populations).
    pub quant: QuantMode,
    /// Whether the file name leaks the task (§4.4: ~67 % do).
    pub hinted_name: bool,
    /// When `Some((base, layers))`, this model is `base` fine-tuned in its
    /// last `layers` weighted layers (§4.5 transfer-learning lineages).
    pub fine_tune_of: Option<(usize, usize)>,
}

impl UniqueModel {
    /// Build the graph (deterministic in `self`).
    pub fn graph(&self, pool: &[UniqueModel]) -> Graph {
        let base = match self.fine_tune_of {
            Some((base_id, layers)) => {
                let base = pool[base_id].base_graph();
                fine_tune(&base, layers, self.seed)
            }
            None => self.base_graph(),
        };
        // Plant the corpus-wide near-zero weight fraction (§6.1: 3.15 %).
        let sparse = prune_graph(&base, 0.0315);
        apply(&sparse, self.quant)
    }

    fn base_graph(&self) -> Graph {
        build_for_task(self.task, self.seed, self.size, self.hinted_name).graph
    }

    /// Serialise the artifact (deterministic).
    pub fn artifact(&self, pool: &[UniqueModel]) -> ModelArtifact {
        let g = self.graph(pool);
        // gaugelint: allow(unwrap-in-fault-path) — provably infallible: pool generation only draws frameworks from the encoder roster
        encode(&g, self.framework).expect("pool frameworks all have encoders")
    }
}

/// Cloud ML API providers tracked by gaugeNN (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CloudProvider {
    /// Google Firebase ML.
    GoogleFirebase,
    /// Google Cloud AI APIs.
    GoogleCloud,
    /// Amazon AWS ML services.
    AmazonAws,
}

/// ML payload of an app.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MlSpec {
    /// Unique-model pool ids embedded in the APK.
    pub model_ids: Vec<usize>,
    /// Frameworks whose libraries ship with the app.
    pub frameworks: Vec<Framework>,
    /// Uses the NNAPI delegate.
    pub uses_nnapi: bool,
    /// Uses XNNPACK.
    pub uses_xnnpack: bool,
    /// Uses SNPE (ships `.dlc` twins of its TFLite models).
    pub uses_snpe: bool,
    /// Models are shipped encrypted (fail validation; app still counted as
    /// ML-powered via library inclusion, §3.1).
    pub obfuscated: bool,
}

/// One store app.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    /// Package name.
    pub package: String,
    /// Store title.
    pub title: String,
    /// Category index into [`CATEGORIES`].
    pub category: usize,
    /// Download count (power-law, §4.1).
    pub downloads: u64,
    /// Star rating.
    pub rating: f32,
    /// Version code.
    pub version_code: u32,
    /// On-device ML payload, if any.
    pub ml: Option<MlSpec>,
    /// Cloud ML APIs invoked from app code, if any.
    pub cloud: Vec<CloudProvider>,
    /// Ships an OBB expansion file (textures only — the §4.2 measurement).
    pub has_obb: bool,
    /// Ships as a bundle with asset packs (no models — §4.2).
    pub has_bundle: bool,
}

/// A full snapshot corpus.
#[derive(Debug, Clone)]
pub struct StoreCorpus {
    /// Which snapshot.
    pub snapshot: Snapshot,
    /// Scale profile.
    pub scale: CorpusScale,
    /// Generator seed.
    pub seed: u64,
    /// The targets used.
    pub targets: Targets,
    /// All apps, grouped by category in store-rank order.
    pub apps: Vec<AppSpec>,
    /// The cross-snapshot unique-model pool (shared ids across snapshots).
    pub pool: Vec<UniqueModel>,
}

/// Pool layout shared by the two snapshots of a scale: ids
/// `[0, removed)` exist only in 2020, `[removed, removed+shared)` in both,
/// and the rest only in 2021.
fn pool_layout(scale: CorpusScale) -> (usize, usize, usize) {
    let t20 = Targets::for_scale(scale, Snapshot::Y2020);
    let t21 = Targets::for_scale(scale, Snapshot::Y2021);
    let removed = (t20.unique_models as usize * 16 / 100).max(1);
    let shared = t20.unique_models as usize - removed;
    let new21 = t21.unique_models as usize - shared;
    (removed, shared, new21)
}

/// Table 3 task sampling weights (per mille of model instances).
const TASK_WEIGHTS: [(Task, u32); 23] = [
    (Task::ObjectDetection, 473),
    (Task::FaceDetection, 118),
    (Task::ContourDetection, 115),
    (Task::TextRecognition, 111),
    (Task::AugmentedReality, 31),
    (Task::SemanticSegmentation, 8),
    (Task::ObjectRecognition, 8),
    (Task::PoseEstimation, 5),
    (Task::PhotoBeauty, 5),
    (Task::ImageClassification, 4),
    (Task::NudityDetection, 3),
    (Task::HairReconstruction, 3),
    (Task::OtherVision, 13),
    (Task::AutoComplete, 5),
    (Task::SentimentPrediction, 2),
    (Task::ContentFilter, 1),
    (Task::TextClassification, 1),
    (Task::Translation, 1),
    (Task::SoundRecognition, 7),
    (Task::SpeechRecognition, 1),
    (Task::KeywordDetection, 1),
    (Task::MovementTracking, 2),
    (Task::CrashDetection, 1),
];

fn sample_task(rng: &mut StdRng) -> Task {
    let total: u32 = TASK_WEIGHTS.iter().map(|(_, w)| w).sum();
    let mut pick = rng.gen_range(0..total);
    for &(task, w) in &TASK_WEIGHTS {
        if pick < w {
            return task;
        }
        pick -= w;
    }
    Task::ObjectDetection
}

fn sample_framework(rng: &mut StdRng) -> Framework {
    // §4.3 instance split, excluding the explicitly-placed TF/SNPE models:
    // TFLite 86 %, caffe 11 %, ncnn 3 %.
    let p: f64 = rng.gen();
    if p < 0.86 {
        Framework::TfLite
    } else if p < 0.97 {
        Framework::Caffe
    } else {
        Framework::Ncnn
    }
}

/// Generate the cross-snapshot unique-model pool for a scale.
///
/// Both snapshots must see the *same* pool, so this depends only on
/// `(scale, seed)`.
pub fn build_pool(scale: CorpusScale, seed: u64) -> Vec<UniqueModel> {
    let (removed, shared, new21) = pool_layout(scale);
    let total = removed + shared + new21;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB00C_0FFE);
    let mut pool: Vec<UniqueModel> = Vec::with_capacity(total);
    for id in 0..total {
        // Mid-popularity slots pin one model per §5.2.2 scenario task (so
        // even tiny corpora can run the Table 4 analysis) plus a sensor
        // model, without distorting the head of the popularity zipf.
        let mid = removed + (shared + new21) / 2;
        let task = match id {
            // The duplication zipf head: FSSD object detection and
            // BlazeFace, the two named most-popular models of §4.5.
            i if i == removed => Task::ObjectDetection,
            i if i == removed + 1 => Task::FaceDetection,
            i if i == mid => Task::SemanticSegmentation,
            i if i == mid + 1 => Task::AutoComplete,
            i if i == mid + 2 => Task::SoundRecognition,
            i if i == mid + 3 => Task::MovementTracking,
            _ => sample_task(&mut rng),
        };
        let framework = if id == mid + 4 || id == mid + 5 {
            // The corpus's handful of plain-TensorFlow models (§4.3
            // reports just 5 TF instances in 1,666).
            Framework::TensorFlow
        } else {
            sample_framework(&mut rng)
        };
        let size = match rng.gen_range(0..10) {
            0..=5 => SizeClass::Small,
            6..=8 => SizeClass::Medium,
            _ => SizeClass::Large,
        };
        // §6.1: ~10.3 % fully-quantised (dequantize layer + int8 acts),
        // ~10 % more weight-only int8 (→ 20.3 % int8 weights overall).
        let q: f64 = rng.gen();
        let quant = if q < 0.103 {
            QuantMode::Full
        } else if q < 0.203 {
            QuantMode::WeightOnly
        } else {
            QuantMode::None
        };
        let hinted_name = rng.gen_bool(0.67);
        pool.push(UniqueModel {
            id,
            task,
            framework,
            seed: seed
                .wrapping_mul(0x5851_F42D_4C95_7F2D)
                .wrapping_add(id as u64),
            size,
            quant,
            hinted_name,
            fine_tune_of: None,
        });
    }
    // §4.5 fine-tuning lineages: ~9 % of the pool share ≥20 % of weights
    // with a base model; ~4.2 % differ in at most three layers.
    let lineage_count = (total * 9 / 100).max(1);
    let small_diff_count = (total * 42 / 1000).max(1).min(lineage_count);
    // The pinned ids (zipf head + scenario/sensor/TF slots) keep their
    // roles.
    let mid = removed + (shared + new21) / 2;
    let mut candidates: Vec<usize> = (1..total)
        .filter(|&i| !(removed..=removed + 1).contains(&i) && !(mid..mid + 6).contains(&i))
        .collect();
    candidates.shuffle(&mut rng);
    for (k, &id) in candidates.iter().take(lineage_count).enumerate() {
        // Base must be a different pool entry that is itself not a
        // fine-tune (keeps lineages one level deep) and shares the
        // framework (a caffe model fine-tuned from a TFLite one would be
        // odd).
        let base = (0..total)
            .find(|&b| b != id && pool[b].fine_tune_of.is_none())
            // gaugelint: allow(unwrap-in-fault-path) — provably infallible: every CorpusScale pools ≥ 2 entries and fine-tunes are a strict subset
            .expect("pool has at least two entries");
        let layers = if k < small_diff_count {
            1 + (k % 3) // differ in up to three layers
        } else {
            6 + (k % 4) // bigger heads retrained, still sharing the trunk
        };
        // The variant reuses its base's task/size/framework so weights
        // actually align layer-for-layer.
        let (task, size, framework) = (pool[base].task, pool[base].size, pool[base].framework);
        let entry = &mut pool[id];
        entry.task = task;
        entry.size = size;
        entry.framework = framework;
        entry.quant = QuantMode::None; // quantising would hide the shared bytes
        entry.fine_tune_of = Some((base, layers));
    }
    pool
}

/// Ids of the pool visible to a snapshot.
pub fn pool_ids_for(scale: CorpusScale, snapshot: Snapshot) -> std::ops::Range<usize> {
    let (removed, shared, new21) = pool_layout(scale);
    match snapshot {
        Snapshot::Y2020 => 0..removed + shared,
        Snapshot::Y2021 => removed..removed + shared + new21,
    }
}

const WORDS_A: [&str; 24] = [
    "pixel", "swift", "nova", "lumen", "echo", "zen", "astra", "flux", "orbit", "prism", "vivid",
    "cobalt", "ember", "quill", "raven", "sol", "terra", "ultra", "verve", "wisp", "aero", "bliss",
    "crest", "drift",
];
const WORDS_B: [&str; 24] = [
    "chat", "pay", "cam", "beauty", "scan", "fit", "care", "shop", "maps", "tunes", "news",
    "sport", "trip", "date", "baby", "book", "food", "style", "auto", "home", "sky", "party",
    "toon", "lab",
];

fn app_identity(rng: &mut StdRng, category: &str, ordinal: usize) -> (String, String) {
    let a = WORDS_A[rng.gen_range(0..WORDS_A.len())];
    let b = WORDS_B[rng.gen_range(0..WORDS_B.len())];
    let cat_slug: String = category
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect();
    let package = format!("com.{a}{b}.{cat_slug}{ordinal}");
    let title = format!(
        "{}{} {}",
        a[..1].to_uppercase(),
        &a[1..],
        b[..1].to_uppercase().to_string() + &b[1..]
    );
    (package, title)
}

/// Clamp `alloc[i]` to `caps[i]`, redistributing the overflow to entries
/// with remaining room (first-fit, deterministic). The total is preserved
/// as long as `sum(caps) >= sum(alloc)`.
fn fit_to_caps(mut alloc: Vec<u32>, caps: &[u32]) -> Vec<u32> {
    let mut overflow = 0u32;
    for (a, &c) in alloc.iter_mut().zip(caps) {
        if *a > c {
            overflow += *a - c;
            *a = c;
        }
    }
    for (a, &c) in alloc.iter_mut().zip(caps) {
        if overflow == 0 {
            break;
        }
        let room = c - *a;
        let take = room.min(overflow);
        *a += take;
        overflow -= take;
    }
    alloc
}

/// Zipf-ish rank sampler over `n` items: rank r with weight 1/(r+1).
fn zipf(rng: &mut StdRng, n: usize) -> usize {
    debug_assert!(n > 0);
    let total: f64 = (0..n).map(|r| 1.0 / (r + 1) as f64).sum();
    let mut pick = rng.gen::<f64>() * total;
    for r in 0..n {
        let w = 1.0 / (r + 1) as f64;
        if pick < w {
            return r;
        }
        pick -= w;
    }
    n - 1
}

/// Generate a snapshot corpus.
pub fn generate(scale: CorpusScale, snapshot: Snapshot, seed: u64) -> StoreCorpus {
    let targets = Targets::for_scale(scale, snapshot);
    let pool = build_pool(scale, seed);
    let visible = pool_ids_for(scale, snapshot);
    let visible_ids: Vec<usize> = visible.clone().collect();
    let mut rng = StdRng::seed_from_u64(seed ^ match snapshot {
        Snapshot::Y2020 => 0x2020,
        Snapshot::Y2021 => 0x2021,
    });

    // Per-category app counts (capped at the store's 500-per-page limit).
    let n_cat = CATEGORIES.len();
    let app_counts = apportion(&vec![100u32; n_cat], targets.total_apps)
        .into_iter()
        .map(|c| c.min(500))
        .collect::<Vec<u32>>();

    // Per-category model-instance counts from the Fig. 4/5 weights.
    let weights: Vec<u32> = CATEGORIES
        .iter()
        .map(|c| match snapshot {
            Snapshot::Y2020 => c.models_2020,
            Snapshot::Y2021 => c.models_2021,
        })
        .collect();
    let instance_counts = apportion(&weights, targets.model_instances);

    // Per-category benchmarkable-ML-app counts: instances / ~4.9 avg.
    // Allocations are clamped to the category's app count (small scales
    // have categories with one or two apps) with overflow pushed to
    // categories that still have room.
    let ml_app_total = targets.ml_lib_apps - targets.obfuscated_apps;
    let ml_app_counts = fit_to_caps(
        apportion(&instance_counts, ml_app_total),
        &app_counts,
    );
    let room_after_ml: Vec<u32> = app_counts
        .iter()
        .zip(&ml_app_counts)
        .map(|(&c, &m)| c - m)
        .collect();
    let obf_counts = fit_to_caps(
        apportion(&instance_counts, targets.obfuscated_apps),
        &room_after_ml,
    );
    let cloud_weights: Vec<u32> = CATEGORIES.iter().map(|c| c.cloud_apps).collect();
    let cloud_counts = fit_to_caps(apportion(&cloud_weights, targets.cloud_apps), &app_counts);

    let mut apps = Vec::with_capacity(targets.total_apps as usize);
    let mut nnapi_left = targets.nnapi_apps;
    let mut xnn_left = targets.xnnpack_apps;
    let mut snpe_left = targets.snpe_apps;
    let mut google_cloud_left = targets.cloud_google;
    let mut cloud_left = targets.cloud_apps;

    for (cat, &count) in app_counts.iter().enumerate() {
        let cat_name = CATEGORIES[cat].name;
        let ml_apps = ml_app_counts[cat] as usize;
        let obf_apps = obf_counts[cat] as usize;
        let cloud_apps = cloud_counts[cat] as usize;
        // Spread this category's model instances over its ML apps.
        let mut per_app = vec![0u32; ml_apps];
        if ml_apps > 0 {
            for _ in 0..instance_counts[cat] {
                let a = rng.gen_range(0..ml_apps);
                per_app[a] += 1;
            }
            // Every benchmarkable ML app gets at least one model.
            for slot in per_app.iter_mut() {
                if *slot == 0 {
                    *slot = 1;
                }
            }
        }
        // `ordinal` is deliberately an index: it both ranks the app within
        // the category and selects its per-app model budget.
        #[allow(clippy::needless_range_loop)]
        for ordinal in 0..count as usize {
            let (package, title) = app_identity(&mut rng, cat_name, ordinal);
            let downloads = 10u64.pow(rng.gen_range(3..9)) * rng.gen_range(1..10) as u64;
            let rating = 3.0 + rng.gen::<f32>() * 2.0;
            let version_code = rng.gen_range(1..400);
            let mut ml = None;
            if ordinal < ml_apps {
                // Benchmarkable ML app: draw its models from the visible
                // pool with zipf popularity (duplication structure §4.5).
                let mut ids: Vec<usize> = Vec::new();
                for _ in 0..per_app[ordinal] {
                    // Retry duplicate draws a few times: an app ships each
                    // model once, and the instance totals should track the
                    // per-category plan.
                    for _attempt in 0..8 {
                        let rank = zipf(&mut rng, visible_ids.len());
                        let id = visible_ids[rank];
                        if !ids.contains(&id) {
                            ids.push(id);
                            break;
                        }
                    }
                }
                if ids.is_empty() {
                    ids.push(visible_ids[zipf(&mut rng, visible_ids.len())]);
                }
                let mut frameworks: Vec<Framework> =
                    ids.iter().map(|&i| pool[i].framework).collect();
                frameworks.sort();
                frameworks.dedup();
                let uses_snpe = snpe_left > 0;
                if uses_snpe {
                    snpe_left -= 1;
                }
                let uses_nnapi = nnapi_left > 0 && rng.gen_bool(0.5);
                if uses_nnapi {
                    nnapi_left -= 1;
                }
                let uses_xnnpack = xnn_left > 0 && rng.gen_bool(0.3);
                if uses_xnnpack {
                    xnn_left -= 1;
                }
                ml = Some(MlSpec {
                    model_ids: ids,
                    frameworks,
                    uses_nnapi,
                    uses_xnnpack,
                    uses_snpe,
                    obfuscated: false,
                });
            } else if ordinal < ml_apps + obf_apps {
                // Obfuscated-model app: library present, models encrypted.
                ml = Some(MlSpec {
                    model_ids: vec![visible_ids[zipf(&mut rng, visible_ids.len())]],
                    frameworks: vec![Framework::TfLite],
                    uses_nnapi: false,
                    uses_xnnpack: false,
                    uses_snpe: false,
                    obfuscated: true,
                });
            }
            let mut cloud = Vec::new();
            if ordinal < cloud_apps {
                // Interleave providers so Amazon apps appear across
                // categories (Fig. 15), while still hitting the global
                // Google/Amazon split exactly.
                let amazon_left = cloud_left - google_cloud_left.min(cloud_left);
                let p_google = if cloud_left == 0 {
                    0.0
                } else {
                    google_cloud_left as f64 / cloud_left as f64
                };
                cloud_left = cloud_left.saturating_sub(1);
                if (rng.gen::<f64>() < p_google && google_cloud_left > 0) || amazon_left == 0 {
                    google_cloud_left -= 1;
                    cloud.push(if rng.gen_bool(0.6) {
                        CloudProvider::GoogleFirebase
                    } else {
                        CloudProvider::GoogleCloud
                    });
                } else {
                    cloud.push(CloudProvider::AmazonAws);
                }
            }
            let has_obb = ml.is_none() && rng.gen_bool(0.02);
            let has_bundle = ml.is_none() && !has_obb && rng.gen_bool(0.02);
            apps.push(AppSpec {
                package,
                title,
                category: cat,
                downloads,
                rating,
                version_code,
                ml,
                cloud,
                has_obb,
                has_bundle,
            });
        }
    }

    StoreCorpus {
        snapshot,
        scale,
        seed,
        targets,
        apps,
        pool,
    }
}

impl StoreCorpus {
    /// Generate with default corpus seed 1402 ('20) / 404 ('21)-agnostic:
    /// both snapshots of a study must share the same seed so the pool
    /// lines up.
    pub fn generate(scale: CorpusScale, snapshot: Snapshot, seed: u64) -> StoreCorpus {
        generate(scale, snapshot, seed)
    }

    /// Apps in a category, store-rank order.
    pub fn apps_in(&self, category: &str) -> Vec<&AppSpec> {
        let Some(idx) = crate::categories::category_index(category) else {
            return vec![];
        };
        self.apps.iter().filter(|a| a.category == idx).collect()
    }

    /// Look up an app by package name.
    pub fn app(&self, package: &str) -> Option<&AppSpec> {
        self.apps.iter().find(|a| a.package == package)
    }

    /// Build the APK for an app (deterministic; models resolved from the
    /// pool through `artifact_of`, which the server memoises).
    pub fn build_apk(
        &self,
        app: &AppSpec,
        artifact_of: &mut dyn FnMut(usize) -> ModelArtifact,
    ) -> Vec<u8> {
        let mut b = ApkBuilder::new(app.package.clone(), app.version_code);
        b.add_code_string(format!("title:{}", app.title));
        // Cloud API call sites (§3.2 string matching).
        for c in &app.cloud {
            match c {
                CloudProvider::GoogleFirebase => {
                    b.add_class_ref("com.google.firebase.ml.vision.FirebaseVision");
                    b.add_code_string("com.google.firebase.ml.modeldownloader");
                }
                CloudProvider::GoogleCloud => {
                    b.add_class_ref("com.google.cloud.vision.v1.ImageAnnotatorClient");
                }
                CloudProvider::AmazonAws => {
                    b.add_class_ref("com.amazonaws.services.rekognition.AmazonRekognitionClient");
                }
            }
        }
        match &app.ml {
            Some(ml) => {
                for fw in &ml.frameworks {
                    add_framework_markers(&mut b, *fw);
                }
                if ml.uses_nnapi {
                    b.add_class_ref("org.tensorflow.lite.nnapi.NnApiDelegate");
                }
                if ml.uses_xnnpack {
                    b.add_code_string("TFLITE_ENABLE_XNNPACK");
                    let _ = b.add_native_lib("libxnnpack.so", &["xnn_initialize"]);
                }
                if ml.uses_snpe {
                    b.add_class_ref("com.qualcomm.qti.snpe.NeuralNetwork");
                    let _ = b.add_native_lib("libSNPE.so", &["Snpe_DlContainer_Open"]);
                }
                let mut used_names: Vec<String> = Vec::new();
                for (k, &mid) in ml.model_ids.iter().enumerate() {
                    let art = artifact_of(mid);
                    for (name, bytes) in &art.files {
                        let mut entry = name.clone();
                        if used_names.contains(&entry) {
                            entry = format!("v{k}_{entry}");
                        }
                        used_names.push(entry.clone());
                        let payload = if ml.obfuscated {
                            // "Encryption": the file keeps its extension but
                            // loses its signature — exactly the population
                            // gaugeNN can detect only via library inclusion.
                            bytes.iter().map(|&x| x ^ 0x5A).collect()
                        } else {
                            bytes.clone()
                        };
                        let _ = b.add_asset(&entry, payload);
                    }
                    if ml.uses_snpe && !ml.obfuscated && k == 0 {
                        // SNPE apps "deploy both a TFLite and dlc variants of
                        // the same model" (§6.3) — one dual-format model per
                        // such app.
                        let g = self.pool[mid].graph(&self.pool);
                        if let Ok(dlc) = gaugenn_modelfmt::encode(&g, Framework::Snpe) {
                            for (name, bytes) in &dlc.files {
                                let _ = b.add_asset(&format!("snpe_{name}"), bytes.clone());
                            }
                        }
                    }
                }
            }
            None => {
                // Plain app: mundane assets, including model-extension
                // decoys that must *fail* validation (exercising the §3.1
                // funnel's second stage).
                let _ = b.add_asset("strings.txt", b"hello world".to_vec());
                let _ = b.add_asset("config.json", b"{\"theme\":\"dark\"}".to_vec());
                let _ = b.add_asset("cache.bin", vec![0xC0, 0xFF, 0xEE, 0x00, 0x42]);
                b.add_code_string("android.widget.TextView");
            }
        }
        // gaugelint: allow(unwrap-in-fault-path) — provably infallible: generated assets are KBs, nowhere near the APK size limit
        b.finish().expect("corpus apps stay under the 100MB limit")
    }
}

fn add_framework_markers(b: &mut ApkBuilder, fw: Framework) {
    match fw {
        Framework::TfLite => {
            b.add_class_ref("org.tensorflow.lite.Interpreter");
            let _ = b.add_native_lib(
                "libtensorflowlite_jni.so",
                &["TfLiteModelCreate", "TfLiteInterpreterCreate"],
            );
        }
        Framework::Caffe => {
            b.add_code_string("caffe::Net<float>");
            let _ = b.add_native_lib("libcaffe_jni.so", &["caffe_net_forward"]);
        }
        Framework::Ncnn => {
            b.add_class_ref("com.tencent.ncnn.Net");
            let _ = b.add_native_lib("libncnn.so", &["ncnn_net_load_param"]);
        }
        Framework::TensorFlow => {
            b.add_class_ref("org.tensorflow.TensorFlowInferenceInterface");
            let _ = b.add_native_lib("libtensorflow_inference.so", &["TF_NewSession"]);
        }
        Framework::Snpe => {
            b.add_class_ref("com.qualcomm.qti.snpe.SNPE");
            let _ = b.add_native_lib("libSNPE.so", &["Snpe_SNPEBuilder_Build"]);
        }
        _ => {
            b.add_code_string(format!("framework:{}", fw.name()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_corpus_meets_targets() {
        let c = generate(CorpusScale::Tiny, Snapshot::Y2021, 7);
        assert_eq!(c.apps.len(), c.targets.total_apps as usize);
        let ml_apps = c.apps.iter().filter(|a| a.ml.is_some()).count();
        assert_eq!(ml_apps, c.targets.ml_lib_apps as usize);
        let obf = c
            .apps
            .iter()
            .filter(|a| a.ml.as_ref().is_some_and(|m| m.obfuscated))
            .count();
        assert_eq!(obf, c.targets.obfuscated_apps as usize);
        let cloud = c.apps.iter().filter(|a| !a.cloud.is_empty()).count();
        assert_eq!(cloud, c.targets.cloud_apps as usize);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(CorpusScale::Tiny, Snapshot::Y2021, 9);
        let b = generate(CorpusScale::Tiny, Snapshot::Y2021, 9);
        assert_eq!(a.apps, b.apps);
        assert_eq!(a.pool, b.pool);
        let c = generate(CorpusScale::Tiny, Snapshot::Y2021, 10);
        assert_ne!(a.apps, c.apps);
    }

    #[test]
    fn pool_shared_across_snapshots() {
        let p20 = generate(CorpusScale::Tiny, Snapshot::Y2020, 9).pool;
        let p21 = generate(CorpusScale::Tiny, Snapshot::Y2021, 9).pool;
        assert_eq!(p20, p21, "pool must be identical so Fig 5 can diff models");
        let ids20 = pool_ids_for(CorpusScale::Tiny, Snapshot::Y2020);
        let ids21 = pool_ids_for(CorpusScale::Tiny, Snapshot::Y2021);
        assert!(ids20.start < ids21.start, "some models exist only in 2020");
        assert!(ids21.end > ids20.end, "some models exist only in 2021");
        assert!(ids21.start < ids20.end, "snapshots overlap");
    }

    #[test]
    fn snapshot_apps_reference_only_visible_pool_ids() {
        for snap in [Snapshot::Y2020, Snapshot::Y2021] {
            let c = generate(CorpusScale::Tiny, snap, 3);
            let visible = pool_ids_for(CorpusScale::Tiny, snap);
            for app in &c.apps {
                if let Some(ml) = &app.ml {
                    for &id in &ml.model_ids {
                        assert!(visible.contains(&id), "{snap:?} app uses out-of-snapshot model");
                    }
                }
            }
        }
    }

    #[test]
    fn pool_has_finetuning_lineages() {
        let pool = build_pool(CorpusScale::Small, 5);
        let lineages: Vec<&UniqueModel> =
            pool.iter().filter(|m| m.fine_tune_of.is_some()).collect();
        assert!(!lineages.is_empty());
        for m in &lineages {
            let (base, layers) = m.fine_tune_of.unwrap();
            assert_ne!(base, m.id);
            assert!(pool[base].fine_tune_of.is_none(), "one-level lineages");
            assert!(layers >= 1);
            assert_eq!(pool[base].framework, m.framework);
        }
        // Some lineages differ in <= 3 layers (the §4.5 4.2 % population).
        assert!(lineages.iter().any(|m| m.fine_tune_of.unwrap().1 <= 3));
    }

    #[test]
    fn pool_has_quantised_models() {
        let pool = build_pool(CorpusScale::Paper, 5);
        let full = pool.iter().filter(|m| m.quant == QuantMode::Full).count();
        let weight_only = pool
            .iter()
            .filter(|m| m.quant == QuantMode::WeightOnly)
            .count();
        let frac_full = full as f64 / pool.len() as f64;
        let frac_int8 = (full + weight_only) as f64 / pool.len() as f64;
        assert!((0.05..0.17).contains(&frac_full), "full-quant fraction {frac_full}");
        assert!((0.13..0.30).contains(&frac_int8), "int8-weight fraction {frac_int8}");
    }

    #[test]
    fn apk_builds_and_contains_models() {
        let c = generate(CorpusScale::Tiny, Snapshot::Y2021, 7);
        let app = c
            .apps
            .iter()
            .find(|a| a.ml.as_ref().is_some_and(|m| !m.obfuscated))
            .unwrap();
        let mut cache = std::collections::BTreeMap::new();
        let pool = c.pool.clone();
        let apk_bytes = c.build_apk(app, &mut |id| {
            cache
                .entry(id)
                .or_insert_with(|| pool[id].artifact(&pool))
                .clone()
        });
        let apk = gaugenn_apk::Apk::parse(&apk_bytes).unwrap();
        assert_eq!(apk.package(), app.package);
        let validated = apk
            .candidate_files()
            .filter(|(name, bytes)| gaugenn_modelfmt::validate(name, bytes).is_some())
            .count();
        assert!(validated >= 1, "expected at least one extractable model");
    }

    #[test]
    fn obfuscated_apk_models_fail_validation_but_libs_visible() {
        let c = generate(CorpusScale::Tiny, Snapshot::Y2021, 7);
        let app = c
            .apps
            .iter()
            .find(|a| a.ml.as_ref().is_some_and(|m| m.obfuscated))
            .unwrap();
        let pool = c.pool.clone();
        let apk_bytes = c.build_apk(app, &mut |id| pool[id].artifact(&pool));
        let apk = gaugenn_apk::Apk::parse(&apk_bytes).unwrap();
        let validated = apk
            .candidate_files()
            .filter(|(name, bytes)| gaugenn_modelfmt::validate(name, bytes).is_some())
            .count();
        assert_eq!(validated, 0, "encrypted models must fail validation");
        let libs: Vec<&str> = apk.native_libs().map(|(n, _)| n).collect();
        assert!(libs.contains(&"libtensorflowlite_jni.so"));
    }

    #[test]
    fn duplication_exists_at_tiny_scale() {
        let c = generate(CorpusScale::Tiny, Snapshot::Y2021, 7);
        let mut by_model: std::collections::BTreeMap<usize, usize> = Default::default();
        for app in &c.apps {
            if let Some(ml) = &app.ml {
                for &id in &ml.model_ids {
                    *by_model.entry(id).or_default() += 1;
                }
            }
        }
        assert!(
            by_model.values().any(|&n| n >= 2),
            "zipf assignment should duplicate some models across apps"
        );
    }

    #[test]
    fn snapshot_labels() {
        assert_eq!(Snapshot::Y2020.label(), "Feb 2020");
        assert_eq!(Snapshot::Y2021.label(), "Apr 2021");
    }
}
