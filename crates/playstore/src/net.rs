//! Transport abstraction: real TCP or a deterministic in-process network.
//!
//! The crawler, query client and pool dial an [`Endpoint`] rather than a
//! `SocketAddr`. [`Endpoint::Tcp`] behaves exactly as before (blocking
//! client sockets with timeouts); [`Endpoint::Sim`] connects through a
//! [`SimNet`] — an in-process byte-pipe network the event-driven server's
//! `SimReactor` polls deterministically (see [`crate::reactor`]), which is
//! what makes readiness-replay tests possible without real sockets.
//!
//! A sim connection is two byte pipes. The *client* side ([`SimStream`])
//! blocks like a `TcpStream` (reads honour a timeout, writes always
//! succeed) so existing client code is oblivious to the substrate; the
//! *server* side ([`SimConnHandle`]) is non-blocking (`try_read` /
//! `try_write` returning `WouldBlock`) so the reactor's connection state
//! machines drive it exactly like a non-blocking socket. Dropping the last
//! client handle half-closes the client→server direction, which the server
//! observes as EOF — the sim analogue of TCP FIN.

use mio::{Interest, Parker, SimSource};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A bidirectional byte stream the crawler can run on: `TcpStream` or a
/// [`SimStream`]. The methods mirror `std::io::{Read, Write}` (and
/// `Box<dyn Transport>` implements those traits, so a boxed transport
/// drops into `BufReader` and the existing proto helpers); cloning via
/// [`Transport::try_clone_box`] mirrors `TcpStream::try_clone` — both
/// handles share the underlying stream, so one can feed a `BufReader`
/// while the other writes.
pub trait Transport: Send {
    /// Read bytes (blocking, subject to the stream's read timeout).
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;
    /// Write bytes.
    fn write(&mut self, buf: &[u8]) -> io::Result<usize>;
    /// Flush buffered writes.
    fn flush(&mut self) -> io::Result<()>;
    /// Clone the handle (shared underlying stream), boxed for object use.
    fn try_clone_box(&self) -> io::Result<Box<dyn Transport>>;
}

impl Transport for TcpStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        Read::read(self, buf)
    }
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        Write::write(self, buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        Write::flush(self)
    }
    fn try_clone_box(&self) -> io::Result<Box<dyn Transport>> {
        Ok(Box::new(self.try_clone()?))
    }
}

impl Transport for SimStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        Read::read(self, buf)
    }
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        Write::write(self, buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
    fn try_clone_box(&self) -> io::Result<Box<dyn Transport>> {
        Ok(Box::new(self.clone()))
    }
}

// The std-trait bridge: lets `Box<dyn Transport>` feed a `BufReader` and
// the blocking proto readers/writers unchanged. (Supertrait-based
// `dyn Transport` would not implement `Read`/`Write` as a type, so the
// trait carries its own methods and these impls forward.)
impl Read for Box<dyn Transport> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        Transport::read(&mut **self, buf)
    }
}

impl Write for Box<dyn Transport> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        Transport::write(&mut **self, buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        Transport::flush(&mut **self)
    }
}

/// Where a store lives: a real TCP address or an in-process [`SimNet`].
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// A TCP listener (the default substrate).
    Tcp(SocketAddr),
    /// An in-process simulated network served by a `SimReactor` loop.
    Sim(SimNet),
}

impl Endpoint {
    /// Dial the endpoint, producing a connected transport. For TCP this
    /// applies the connect timeout, `TCP_NODELAY` and read/write
    /// timeouts; for sim it registers a fresh connection with the
    /// server's accept queue and wakes its event loop.
    pub fn dial(
        &self,
        connect_timeout: Duration,
        read_timeout: Duration,
    ) -> io::Result<Box<dyn Transport>> {
        match self {
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect_timeout(addr, connect_timeout)?;
                stream.set_nodelay(true)?;
                stream.set_read_timeout(Some(read_timeout))?;
                stream.set_write_timeout(Some(read_timeout))?;
                Ok(Box::new(stream))
            }
            Endpoint::Sim(net) => Ok(Box::new(net.connect(read_timeout))),
        }
    }
}

/// One direction of a sim connection: an unbounded byte queue with a
/// closed flag, a condvar for blocking reads, and an optional watcher
/// parker a non-blocking *consumer* loop sleeps on (the client reactor's
/// analogue of the server's accept/write notifications).
#[derive(Default)]
struct Pipe {
    state: Mutex<PipeState>,
    cv: Condvar,
    watcher: Mutex<Option<Arc<Parker>>>,
}

#[derive(Default)]
struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

impl Pipe {
    fn push(&self, bytes: &[u8]) -> io::Result<usize> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "sim pipe closed by peer",
            ));
        }
        st.buf.extend(bytes.iter().copied());
        self.cv.notify_all();
        drop(st);
        self.notify_watcher();
        Ok(bytes.len())
    }

    fn close(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.closed = true;
        self.cv.notify_all();
        drop(st);
        self.notify_watcher();
    }

    /// Register the parker a polling consumer sleeps on; pushes and
    /// closes wake it so a reactor loop re-polls instead of timing out.
    fn set_watcher(&self, parker: Arc<Parker>) {
        *self.watcher.lock().unwrap_or_else(|e| e.into_inner()) = Some(parker);
    }

    fn notify_watcher(&self) {
        let w = self
            .watcher
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        if let Some(w) = w {
            w.notify();
        }
    }

    /// Non-blocking read: data if buffered, `Ok(0)` on EOF after a close,
    /// `WouldBlock` otherwise.
    fn try_pop(&self, out: &mut [u8]) -> io::Result<usize> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.buf.is_empty() {
            return if st.closed {
                Ok(0)
            } else {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "sim pipe empty"))
            };
        }
        let n = drain_into(&mut st.buf, out);
        Ok(n)
    }

    /// Blocking read with a timeout, mirroring a `TcpStream` with
    /// `set_read_timeout`: data, `Ok(0)` on EOF, `TimedOut` otherwise.
    fn pop_blocking(&self, out: &mut [u8], timeout: Duration) -> io::Result<usize> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !st.buf.is_empty() {
                return Ok(drain_into(&mut st.buf, out));
            }
            if st.closed {
                return Ok(0);
            }
            let (guard, res) = self
                .cv
                .wait_timeout(st, timeout)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
            if res.timed_out() && st.buf.is_empty() && !st.closed {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "sim read timed out",
                ));
            }
        }
    }

    fn readable(&self) -> bool {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        !st.buf.is_empty() || st.closed
    }
}

fn drain_into(buf: &mut VecDeque<u8>, out: &mut [u8]) -> usize {
    let n = buf.len().min(out.len());
    for slot in out.iter_mut().take(n) {
        *slot = buf.pop_front().unwrap_or_default();
    }
    n
}

/// Half-closes the client→server pipe when the last client handle goes
/// away — the sim analogue of the FIN a dropped `TcpStream` sends.
struct HalfCloseGuard {
    c2s: Arc<Pipe>,
    parker: Arc<Parker>,
}

impl Drop for HalfCloseGuard {
    fn drop(&mut self) {
        self.c2s.close();
        self.parker.notify();
    }
}

/// Client side of a sim connection: blocking reads with a timeout,
/// non-failing buffered writes — shaped like a `TcpStream` so the crawler
/// cannot tell the difference.
#[derive(Clone)]
pub struct SimStream {
    c2s: Arc<Pipe>,
    s2c: Arc<Pipe>,
    parker: Arc<Parker>,
    read_timeout: Duration,
    _guard: Arc<HalfCloseGuard>,
}

impl std::fmt::Debug for SimStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimStream")
            .field("read_timeout", &self.read_timeout)
            .finish()
    }
}

impl SimStream {
    /// Half-close the client→server direction now (instead of waiting for
    /// the last clone to drop): the server drains what was written, then
    /// sees EOF. Readiness-replay tests use this to pre-script complete
    /// request streams before the server loop starts.
    pub fn shutdown_write(&self) {
        self.c2s.close();
        self.parker.notify();
    }
}

impl Read for SimStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.s2c.pop_blocking(buf, self.read_timeout)
    }
}

impl Write for SimStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.c2s.push(buf)?;
        self.parker.notify();
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Server side of a sim connection, driven non-blocking by the reactor's
/// connection state machine. Doubles as the connection's [`SimSource`]:
/// readable while client bytes (or the client's EOF) are pending.
#[derive(Clone)]
pub struct SimConnHandle {
    c2s: Arc<Pipe>,
    s2c: Arc<Pipe>,
}

impl std::fmt::Debug for SimConnHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimConnHandle").finish()
    }
}

impl SimConnHandle {
    /// Non-blocking read of client bytes (`Ok(0)` = client half-closed).
    pub fn try_read(&self, buf: &mut [u8]) -> io::Result<usize> {
        self.c2s.try_pop(buf)
    }

    /// Non-blocking write toward the client. The pipe is unbounded, so
    /// this fails only after a close ([`io::ErrorKind::BrokenPipe`]).
    pub fn try_write(&self, buf: &[u8]) -> io::Result<usize> {
        self.s2c.push(buf)
    }

    /// Close both directions (the server's hang-up): the client drains
    /// buffered response bytes, then reads EOF; further client writes
    /// fail like writes into a reset TCP stream.
    pub fn close(&self) {
        self.c2s.close();
        self.s2c.close();
    }
}

impl SimSource for SimConnHandle {
    fn readiness(&self) -> Interest {
        // Writes never block (unbounded pipe), so a conn with write
        // interest is always ready; read readiness tracks pending client
        // bytes or the client's half-close.
        let mut r = Interest::WRITABLE;
        if self.c2s.readable() {
            r = r.with(Interest::READABLE);
        }
        r
    }
}

/// *Non-blocking* client side of a sim connection — the client-reactor
/// mirror of [`SimConnHandle`], driven by `ClientSm` state machines (see
/// [`crate::reactor_client`]) exactly like a non-blocking TCP socket.
/// Doubles as the connection's [`SimSource`]: readable while server bytes
/// (or the server's close) are pending, always writable (unbounded pipe).
///
/// Obtained from [`SimNet::connect_nonblocking`]. Dropping the last
/// handle half-closes the client→server direction like a dropped
/// [`SimStream`] would.
#[derive(Clone)]
pub struct SimClientHandle {
    c2s: Arc<Pipe>,
    s2c: Arc<Pipe>,
    server_parker: Arc<Parker>,
    _guard: Arc<HalfCloseGuard>,
}

impl std::fmt::Debug for SimClientHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimClientHandle").finish()
    }
}

impl SimClientHandle {
    /// Non-blocking read of server bytes (`Ok(0)` = server closed).
    pub fn try_read(&self, buf: &mut [u8]) -> io::Result<usize> {
        self.s2c.try_pop(buf)
    }

    /// Non-blocking write toward the server; wakes the server loop. The
    /// pipe is unbounded, so this fails only after a close
    /// ([`io::ErrorKind::BrokenPipe`] — the sim analogue of writing into
    /// a reset stream).
    pub fn try_write(&self, buf: &[u8]) -> io::Result<usize> {
        let n = self.c2s.push(buf)?;
        self.server_parker.notify();
        Ok(n)
    }

    /// Half-close the client→server direction now (the client's FIN):
    /// the server drains what was written, then sees EOF.
    pub fn close(&self) {
        self.c2s.close();
        self.server_parker.notify();
    }

    /// Register the parker the *client's* reactor loop sleeps on: server
    /// writes and closes on this connection wake it, the mirror of
    /// client writes waking the server loop.
    pub fn watch(&self, parker: Arc<Parker>) {
        self.s2c.set_watcher(parker);
    }
}

impl SimSource for SimClientHandle {
    fn readiness(&self) -> Interest {
        let mut r = Interest::WRITABLE;
        if self.s2c.readable() {
            r = r.with(Interest::READABLE);
        }
        r
    }
}

struct SimNetInner {
    accept: Mutex<VecDeque<SimConnHandle>>,
    parker: Arc<Parker>,
}

/// An in-process network with one listener: clients [`SimNet::connect`],
/// the server loop [`SimNet::try_accept`]s. Cloning shares the network
/// (it is the sim analogue of a `SocketAddr`).
#[derive(Clone)]
pub struct SimNet {
    inner: Arc<SimNetInner>,
}

impl std::fmt::Debug for SimNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNet").finish()
    }
}

impl SimNet {
    /// New network whose server loop sleeps on `parker`; connects and
    /// client writes notify it.
    pub fn new(parker: Arc<Parker>) -> SimNet {
        SimNet {
            inner: Arc::new(SimNetInner {
                accept: Mutex::new(VecDeque::new()),
                parker,
            }),
        }
    }

    /// The parker the server loop sleeps on.
    pub fn parker(&self) -> Arc<Parker> {
        Arc::clone(&self.inner.parker)
    }

    /// Open a connection: queues the server half for accept and wakes the
    /// loop. Connect order is the deterministic accept order.
    pub fn connect(&self, read_timeout: Duration) -> SimStream {
        let c2s = Arc::new(Pipe::default());
        let s2c = Arc::new(Pipe::default());
        let handle = SimConnHandle {
            c2s: Arc::clone(&c2s),
            s2c: Arc::clone(&s2c),
        };
        let mut q = self
            .inner
            .accept
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        q.push_back(handle);
        drop(q);
        self.inner.parker.notify();
        SimStream {
            _guard: Arc::new(HalfCloseGuard {
                c2s: Arc::clone(&c2s),
                parker: self.parker(),
            }),
            c2s,
            s2c,
            parker: self.parker(),
            read_timeout,
        }
    }

    /// Open a connection for a *non-blocking* client loop: queues the
    /// server half for accept, wakes the server loop, and hands back a
    /// [`SimClientHandle`] a client reactor drives readiness-style.
    /// A sim connect always succeeds immediately (there is no handshake
    /// to wait out), so unlike TCP the handle is born writable.
    pub fn connect_nonblocking(&self) -> SimClientHandle {
        let c2s = Arc::new(Pipe::default());
        let s2c = Arc::new(Pipe::default());
        let handle = SimConnHandle {
            c2s: Arc::clone(&c2s),
            s2c: Arc::clone(&s2c),
        };
        let mut q = self
            .inner
            .accept
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        q.push_back(handle);
        drop(q);
        self.inner.parker.notify();
        SimClientHandle {
            _guard: Arc::new(HalfCloseGuard {
                c2s: Arc::clone(&c2s),
                parker: self.parker(),
            }),
            c2s,
            s2c,
            server_parker: self.parker(),
        }
    }

    /// Pop the next pending connection, if any (the reactor's `accept`).
    pub fn try_accept(&self) -> Option<SimConnHandle> {
        self.inner
            .accept
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
    }

    /// A [`SimSource`] reporting the listener readable while connections
    /// wait in the accept queue.
    pub fn listener_source(&self) -> Arc<dyn SimSource> {
        Arc::new(SimListenerSource(self.clone()))
    }
}

struct SimListenerSource(SimNet);

impl SimSource for SimListenerSource {
    fn readiness(&self) -> Interest {
        let pending = !self
            .0
            .inner
            .accept
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty();
        if pending {
            Interest::READABLE
        } else {
            Interest::NONE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_pipes_carry_bytes_both_ways() {
        let net = SimNet::new(Parker::new());
        let mut client = net.connect(Duration::from_millis(200));
        let server = net.try_accept().unwrap();
        assert!(net.try_accept().is_none());

        client.write_all(b"hello").unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(server.try_read(&mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"hello");
        assert!(matches!(
            server.try_read(&mut buf),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock
        ));

        server.try_write(b"world!").unwrap();
        let n = io::Read::read(&mut client, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"world!");
    }

    #[test]
    fn client_read_times_out_then_sees_server_close() {
        let net = SimNet::new(Parker::new());
        let mut client = net.connect(Duration::from_millis(20));
        let server = net.try_accept().unwrap();
        let mut buf = [0u8; 4];
        let err = io::Read::read(&mut client, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        server.try_write(b"tail").unwrap();
        server.close();
        assert_eq!(
            io::Read::read(&mut client, &mut buf).unwrap(),
            4,
            "buffered bytes drain"
        );
        assert_eq!(io::Read::read(&mut client, &mut buf).unwrap(), 0, "then EOF");
        assert!(client.write_all(b"x").is_err(), "writes fail after close");
    }

    #[test]
    fn dropping_the_last_client_handle_half_closes() {
        let net = SimNet::new(Parker::new());
        let client = net.connect(Duration::from_millis(20));
        let clone = client.clone();
        let server = net.try_accept().unwrap();
        let mut buf = [0u8; 4];
        drop(client);
        assert!(
            matches!(server.try_read(&mut buf), Err(e) if e.kind() == io::ErrorKind::WouldBlock),
            "one clone still alive"
        );
        drop(clone);
        assert_eq!(server.try_read(&mut buf).unwrap(), 0, "EOF after last drop");
    }

    #[test]
    fn readiness_tracks_pending_bytes_and_eof() {
        let net = SimNet::new(Parker::new());
        let listener = net.listener_source();
        assert!(!listener.readiness().is_readable());
        let mut client = net.connect(Duration::from_millis(20));
        assert!(listener.readiness().is_readable());
        let server = net.try_accept().unwrap();
        assert!(!listener.readiness().is_readable());
        assert!(!server.readiness().is_readable());
        client.write_all(b"r").unwrap();
        assert!(server.readiness().is_readable());
        let mut b = [0u8; 4];
        server.try_read(&mut b).unwrap();
        assert!(!server.readiness().is_readable());
        client.shutdown_write();
        assert!(server.readiness().is_readable(), "EOF counts as readable");
    }

    #[test]
    fn nonblocking_client_handle_mirrors_the_server_side() {
        let net = SimNet::new(Parker::new());
        let client = net.connect_nonblocking();
        let server = net.try_accept().unwrap();
        // Born writable, not readable.
        assert!(client.readiness().is_writable());
        assert!(!client.readiness().is_readable());
        let mut buf = [0u8; 16];
        assert!(matches!(
            client.try_read(&mut buf),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock
        ));
        client.try_write(b"req").unwrap();
        assert_eq!(server.try_read(&mut buf).unwrap(), 3);
        server.try_write(b"resp").unwrap();
        assert!(client.readiness().is_readable());
        assert_eq!(client.try_read(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"resp");
        // Server close: buffered EOF is readable, then reads return 0 and
        // writes fail like a reset stream.
        server.close();
        assert!(client.readiness().is_readable(), "EOF counts as readable");
        assert_eq!(client.try_read(&mut buf).unwrap(), 0);
        assert!(client.try_write(b"x").is_err());
    }

    #[test]
    fn pipe_watcher_wakes_a_client_parker_on_server_writes() {
        let net = SimNet::new(Parker::new());
        let client = net.connect_nonblocking();
        let server = net.try_accept().unwrap();
        let client_parker = Parker::new();
        client.watch(Arc::clone(&client_parker));
        let p2 = Arc::clone(&client_parker);
        let h = std::thread::spawn(move || p2.wait(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        server.try_write(b"wake").unwrap();
        h.join().unwrap();
        // Close also wakes the watcher (so EOF is observed promptly).
        let p3 = Arc::clone(&client_parker);
        let h = std::thread::spawn(move || p3.wait(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        server.close();
        h.join().unwrap();
    }

    #[test]
    fn dropping_the_last_nonblocking_handle_half_closes() {
        let net = SimNet::new(Parker::new());
        let client = net.connect_nonblocking();
        let server = net.try_accept().unwrap();
        let mut buf = [0u8; 4];
        drop(client);
        assert_eq!(server.try_read(&mut buf).unwrap(), 0, "EOF after drop");
    }

    #[test]
    fn tcp_endpoint_dials_real_sockets() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let ep = Endpoint::Tcp(listener.local_addr().unwrap());
        let mut t = ep
            .dial(Duration::from_secs(1), Duration::from_secs(1))
            .unwrap();
        let (mut srv, _) = listener.accept().unwrap();
        t.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        srv.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        let mut reader = t.try_clone_box().unwrap();
        srv.write_all(b"pong").unwrap();
        reader.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }
}
